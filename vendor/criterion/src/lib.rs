//! Minimal, self-contained stand-in for the `criterion` crate (0.5-style
//! API), vendored because this workspace builds in fully offline
//! environments.
//!
//! It implements the surface the workspace's benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Throughput`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a
//! plain wall-clock loop (warm-up plus a fixed batch of timed iterations,
//! median-of-batches reported), with none of upstream's statistical
//! analysis, HTML reports, or baseline comparisons. Good enough to keep
//! benches compiling and to eyeball relative cost; not a substitute for
//! real criterion numbers.
//!
//! Two CI-oriented extensions over the upstream surface:
//!
//! - **Quick mode** ([`quick_mode`]): `--quick` on the bench command line or
//!   `PP_BENCH_QUICK=1` in the environment deterministically bounds every
//!   benchmark to at most [`QUICK_SAMPLE_SIZE`] timed batches and a short
//!   warm-up, so a full bench suite smoke-runs in seconds. Bench files can
//!   also consult [`quick_mode`] to shrink their parameter grids.
//! - **Machine-readable reports**: when `PP_BENCH_JSON=<path>` is set, every
//!   measurement is appended to `<path>` as one JSON object per line (see
//!   `results/README.md` for the schema). Appending means several bench
//!   binaries in one `cargo bench` invocation accumulate into a single
//!   file.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::Instant;

pub use std::hint::black_box;

/// Timed batches per benchmark in quick mode.
pub const QUICK_SAMPLE_SIZE: usize = 3;

/// Whether this bench process runs in quick (CI smoke) mode: `--quick` among
/// the process arguments, or `PP_BENCH_QUICK` set to anything but `0` in the
/// environment.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("PP_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Appends one measurement to the `PP_BENCH_JSON` report file (JSON lines),
/// when that environment variable is set. Failures to write are reported on
/// stderr but never fail the bench.
fn record_json(label: &str, median_ns: f64, samples: usize, throughput: Option<Throughput>) {
    let Ok(path) = std::env::var("PP_BENCH_JSON") else {
        return;
    };
    let (tp_kind, tp_per_iter) = match throughput {
        Some(Throughput::Elements(n)) => ("\"elements\"".to_string(), n.to_string()),
        Some(Throughput::Bytes(n)) => ("\"bytes\"".to_string(), n.to_string()),
        None => ("null".to_string(), "null".to_string()),
    };
    let line = format!(
        "{{\"bench\":\"{}\",\"median_ns\":{median_ns:.1},\"samples\":{samples},\
         \"throughput_kind\":{tp_kind},\"throughput_per_iter\":{tp_per_iter},\
         \"quick\":{}}}\n",
        json_escape(label),
        quick_mode(),
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("cannot append bench record to {path}: {e}");
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(100);
        f(&mut bencher);
        bencher.report(&name.into(), None);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares how much work one iteration performs, so the report can
    /// show a rate alongside the time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark identified within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.label()), self.throughput);
        self
    }

    /// Runs a benchmark over one prepared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.label()), self.throughput);
        self
    }

    /// Ends the group. (Upstream flushes reports here; this stub reports
    /// eagerly, so `finish` only consumes the group.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Work performed by one benchmark iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many abstract elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Measures closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    median_ns: f64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            // Quick mode deterministically bounds the sample count so CI
            // smoke runs finish fast regardless of what the bench requests.
            sample_size: if quick_mode() {
                sample_size.min(QUICK_SAMPLE_SIZE)
            } else {
                sample_size
            },
            median_ns: f64::NAN,
        }
    }

    /// Times `f`, recording the median per-iteration cost across
    /// `sample_size` batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and size batches so one batch is ~1ms of work.
        let warmup_budget_ms = if quick_mode() { 5 } else { 20 };
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed().as_millis() < warmup_budget_ms {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter_ns = (warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64).max(1.0);
        let batch = ((1_000_000.0 / per_iter_ns) as u64).clamp(1, 1_000_000);

        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        self.median_ns = samples[samples.len() / 2];
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.median_ns.is_nan() {
            println!("{label:<40} (no measurement)");
            return;
        }
        record_json(label, self.median_ns, self.sample_size, throughput);
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.1} Melem/s", n as f64 * 1e3 / self.median_ns)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:>12.1} MiB/s",
                    n as f64 * 1e9 / self.median_ns / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        println!("{label:<40} {:>14.1} ns/iter{rate}", self.median_ns);
    }
}

/// Records an externally measured value into the `PP_BENCH_JSON` report
/// (and echoes it on stdout), for derived metrics a bench computes itself —
/// e.g. an extrapolated full-run time or a speedup ratio. `value` lands in
/// the `median_ns` field; labels whose metric is not a time should say so
/// (see `results/README.md`).
pub fn report_external(label: &str, value: f64, samples: usize) {
    println!("{label:<40} {value:>14.1}");
    record_json(label, value, samples, None);
}

/// Bundles benchmark functions into one group runner, mirroring upstream's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
