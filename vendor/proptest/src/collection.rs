//! Collection strategies: random-length vectors and sets.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::RngExt;

use crate::strategy::Strategy;
use crate::test_runner::{Reason, TestRunner};

/// A (min, max) inclusive bound on generated collection sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn sample(self, runner: &mut TestRunner) -> usize {
        runner.rng().random_range(self.min..=self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, runner: &mut TestRunner) -> Result<Vec<S::Value>, Reason> {
        let len = self.size.sample(runner);
        (0..len).map(|_| self.element.generate(runner)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with cardinality drawn from `size`
/// (best effort: duplicates are retried a bounded number of times).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, runner: &mut TestRunner) -> Result<BTreeSet<S::Value>, Reason> {
        let target = self.size.sample(runner);
        let mut set = BTreeSet::new();
        // Collisions shrink the achievable cardinality when the element
        // domain is small; cap retries so generation always terminates.
        let mut budget = 20 * (target + 1);
        while set.len() < target && budget > 0 {
            set.insert(self.element.generate(runner)?);
            budget -= 1;
        }
        if set.len() < self.size.min {
            return Err(format!(
                "btree_set: only reached {} of minimum {} elements",
                set.len(),
                self.size.min
            ));
        }
        Ok(set)
    }
}
