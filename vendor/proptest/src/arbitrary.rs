//! The [`any`] entry point: canonical strategies for primitive types.

use std::marker::PhantomData;

use rand::{RngExt, StandardUniform};

use crate::strategy::Strategy;
use crate::test_runner::{Reason, TestRunner};

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy produced by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`: full range for integers, fair coin for
/// `bool`, unit interval for floats.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy behind [`any`] for primitives.
#[derive(Clone, Copy, Debug, Default)]
pub struct StandardStrategy<T>(PhantomData<T>);

impl<T: StandardUniform + Clone> Strategy for StandardStrategy<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> Result<T, Reason> {
        Ok(runner.rng().random())
    }
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = StandardStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                StandardStrategy(PhantomData)
            }
        }
    )*};
}

impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);
