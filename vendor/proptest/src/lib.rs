//! Minimal, self-contained stand-in for the `proptest` crate (1.x-style API).
//!
//! Vendored because this workspace builds in fully offline environments.
//! It implements the surface the workspace's property tests use — the
//! [`proptest!`] macro family, strategies over integer ranges, tuples,
//! [`strategy::Just`], `prop_map`/`prop_flat_map`, [`collection::vec`],
//! [`collection::btree_set`], [`arbitrary::any`], and a deterministic
//! [`test_runner::TestRunner`].
//!
//! The one upstream feature deliberately omitted is *shrinking*: a failing
//! case panics with the ordinary assertion message instead of a minimized
//! counterexample. Failures stay reproducible because the runner is
//! deterministic per test.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Asserts a condition inside a property; panics (failing the case) when
/// false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property; panics (failing the case) when the
/// sides differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Skips the current generated case when the precondition does not hold.
///
/// Only meaningful inside a [`proptest!`] body, which runs in a closure
/// returning [`test_runner::CaseOutcome`]: a failed assumption returns
/// `Rejected`, and the runner redraws without consuming one of the
/// configured cases (rejections are budgeted, so a never-satisfiable
/// assumption fails the test instead of looping forever).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::test_runner::CaseOutcome::Rejected;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a test that draws inputs from its strategies and runs the
/// body once per case.
///
/// An optional leading `#![proptest_config(expr)]` sets the
/// [`test_runner::ProptestConfig`] (most importantly the case count) for
/// every function in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < runner.cases() {
                $(
                    let $pat = $crate::strategy::ValueTree::current(
                        &$crate::strategy::Strategy::new_tree(&($strat), &mut runner)
                            .expect("strategy failed to generate a value"),
                    );
                )+
                let outcome = (move || -> $crate::test_runner::CaseOutcome {
                    $body
                    $crate::test_runner::CaseOutcome::Accepted
                })();
                match outcome {
                    $crate::test_runner::CaseOutcome::Accepted => accepted += 1,
                    $crate::test_runner::CaseOutcome::Rejected => {
                        rejected += 1;
                        assert!(
                            rejected < 256 * runner.cases().max(1),
                            "prop_assume! rejected {rejected} draws while accepting \
                             only {accepted}; the assumption is (nearly) unsatisfiable"
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
