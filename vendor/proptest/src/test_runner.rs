//! The deterministic case runner and its configuration.

use rand::{rngs::StdRng, SeedableRng};

/// Why a strategy failed to produce a value.
pub type Reason = String;

/// An error raised by a single test case.
///
/// Present for API compatibility; the vendored assertion macros panic
/// directly, so this type rarely appears in user code.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case hit a `prop_assume!`-style precondition.
    Reject(Reason),
    /// The case failed an assertion.
    Fail(Reason),
}

/// What one executed property-test case reported.
///
/// Produced by the [`crate::proptest!`] expansion: the case body runs in a
/// closure returning this, so `prop_assume!` can reject a draw without
/// consuming one of the configured cases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The body ran to completion; the case counts.
    Accepted,
    /// A `prop_assume!` precondition failed; redraw without counting.
    Rejected,
}

/// Configuration for [`TestRunner`].
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Drives value generation for one property.
///
/// Always deterministic: the generator seed is fixed, so a failing case
/// recurs on every run until the property (or strategy) changes.
#[derive(Clone, Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: StdRng,
}

/// Fixed generation seed (digits of π); see [`TestRunner`] on determinism.
const RUNNER_SEED: u64 = 0x3141_5926_5358_9793;

impl TestRunner {
    /// A runner for `config.cases` cases with the fixed deterministic seed.
    #[must_use]
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner {
            config,
            rng: StdRng::seed_from_u64(RUNNER_SEED),
        }
    }

    /// A runner with the default config; by construction deterministic.
    #[must_use]
    pub fn deterministic() -> Self {
        TestRunner::new(ProptestConfig::default())
    }

    /// Number of cases this runner's config asks for.
    #[must_use]
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The runner's generator, for strategies drawing raw randomness.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

impl Default for TestRunner {
    fn default() -> Self {
        TestRunner::deterministic()
    }
}
