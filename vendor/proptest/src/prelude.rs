//! Glob-import surface: `use proptest::prelude::*;`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{Just, Strategy, ValueTree};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
