//! The [`Strategy`] / [`ValueTree`] core.
//!
//! Every strategy in this vendored crate produces a [`NoShrink`] tree:
//! generation is supported, minimization is not (see the crate docs).

use crate::test_runner::{Reason, TestRunner};
use rand::RngExt;

/// A generated value plus its (here: empty) shrink search space.
pub trait ValueTree {
    /// The type of the generated value.
    type Value;

    /// Returns the current value of the tree.
    fn current(&self) -> Self::Value;

    /// Attempts to move to a simpler value; always `false` here.
    fn simplify(&mut self) -> bool {
        false
    }

    /// Attempts to move back toward the failing value; always `false` here.
    fn complicate(&mut self) -> bool {
        false
    }
}

/// The trivial [`ValueTree`]: a single value with no shrink moves.
#[derive(Clone, Debug)]
pub struct NoShrink<T>(pub T);

impl<T: Clone> ValueTree for NoShrink<T> {
    type Value = T;

    fn current(&self) -> T {
        self.0.clone()
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value: Clone;

    /// Draws one value using the runner's deterministic generator.
    fn generate(&self, runner: &mut TestRunner) -> Result<Self::Value, Reason>;

    /// Draws one value and wraps it in a (non-shrinking) tree.
    fn new_tree(&self, runner: &mut TestRunner) -> Result<NoShrink<Self::Value>, Reason> {
        self.generate(runner).map(NoShrink)
    }

    /// Maps generated values through `f`.
    fn prop_map<O: Clone, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Feeds generated values into `f` to obtain the strategy that
    /// generates the final value (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Keeps only generated values satisfying `f`, retrying up to an
    /// internal limit.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            base: self,
            whence,
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, runner: &mut TestRunner) -> Result<Self::Value, Reason> {
        (**self).generate(runner)
    }
}

/// A strategy that always yields a clone of one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _runner: &mut TestRunner) -> Result<T, Reason> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: Clone, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> Result<O, Reason> {
        self.base.generate(runner).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, runner: &mut TestRunner) -> Result<S2::Value, Reason> {
        let intermediate = self.base.generate(runner)?;
        (self.f)(intermediate).generate(runner)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    base: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, runner: &mut TestRunner) -> Result<S::Value, Reason> {
        for _ in 0..1_000 {
            let v = self.base.generate(runner)?;
            if (self.f)(&v) {
                return Ok(v);
            }
        }
        Err(format!("filter '{}' rejected 1000 candidates", self.whence))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> Result<$t, Reason> {
                if self.start >= self.end {
                    return Err(format!("empty range {}..{}", self.start, self.end));
                }
                Ok(runner.rng().random_range(self.clone()))
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> Result<$t, Reason> {
                if self.start() > self.end() {
                    return Err(format!("empty range {}..={}", self.start(), self.end()));
                }
                Ok(runner.rng().random_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, runner: &mut TestRunner) -> Result<Self::Value, Reason> {
                Ok(($(self.$idx.generate(runner)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
