//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++,
/// seeded by expanding a 64-bit seed through splitmix64.
///
/// Unlike the upstream `StdRng` (ChaCha12), the full output stream is a
/// stable, documented function of the seed — experiment tables cite seeds,
/// so reproducibility across versions matters more than crypto strength.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// The generator's full internal state: the four xoshiro256++ words.
    ///
    /// Together with [`from_state_words`](Self::from_state_words) this makes
    /// the generator checkpointable: restoring the words resumes the output
    /// stream exactly where it left off.
    pub fn state_words(&self) -> [u64; 4] {
        self.s
    }

    /// Reconstructs a generator from [`state_words`](Self::state_words).
    /// Every word combination is a valid xoshiro state (the all-zero state
    /// is degenerate but cannot be produced by seeding), so this never
    /// fails.
    pub fn from_state_words(s: [u64; 4]) -> Self {
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }
}

/// A small-footprint generator; alias of [`StdRng`] in this vendored crate.
pub type SmallRng = StdRng;

/// Philox4x32-10 multipliers (Salmon et al., *Parallel Random Numbers: As
/// Easy as 1, 2, 3*, SC'11).
const PHILOX_M0: u32 = 0xD251_1F53;
const PHILOX_M1: u32 = 0xCD9E_8D57;
/// Weyl key increments (the golden-ratio and √3 constants of the paper).
const PHILOX_W0: u32 = 0x9E37_79B9;
const PHILOX_W1: u32 = 0xBB67_AE85;

/// Counter-based Philox4x32-10 generator with explicit streams.
///
/// Unlike the sequential [`StdRng`], a Philox output block is a *pure
/// function* of `(key, counter)`: there is no hidden evolving state, so any
/// position in any stream can be constructed directly. That is exactly what
/// reproducible trial sweeps need — deriving the trial for `(sweep_seed,
/// trial_seed)` via [`Philox4x32::stream`] yields the same stream no matter
/// which thread runs it, in what order, or what ran before it.
///
/// Layout of the 128-bit counter: words 0–1 are the 64-bit block counter
/// (incremented per generated block, wrapping), words 2–3 carry the stream
/// id. Distinct stream ids therefore index disjoint counter ranges, so
/// streams under one key never overlap. The key is the 64-bit seed.
///
/// The implementation matches the Random123 reference (`philox4x32-10`)
/// bit-for-bit; the known-answer vectors are pinned in this module's tests,
/// so the stream cited by an experiment table is stable across versions.
#[derive(Clone, Debug)]
pub struct Philox4x32 {
    key: [u32; 2],
    /// Counter of the next block to generate.
    ctr: [u32; 4],
    /// Current output block; `used` words have been consumed.
    buf: [u32; 4],
    used: u8,
}

/// One Philox round: two 32×32→64 multiplies, xors and the round key.
#[inline]
fn philox_round(x: [u32; 4], k: [u32; 2]) -> [u32; 4] {
    let p0 = u64::from(PHILOX_M0) * u64::from(x[0]);
    let p1 = u64::from(PHILOX_M1) * u64::from(x[2]);
    let (lo0, hi0) = (p0 as u32, (p0 >> 32) as u32);
    let (lo1, hi1) = (p1 as u32, (p1 >> 32) as u32);
    [hi1 ^ x[1] ^ k[0], lo1, hi0 ^ x[3] ^ k[1], lo0]
}

/// The full ten-round block function.
#[inline]
fn philox_block(ctr: [u32; 4], key: [u32; 2]) -> [u32; 4] {
    let mut x = ctr;
    let mut k = key;
    for round in 0..10 {
        if round > 0 {
            k[0] = k[0].wrapping_add(PHILOX_W0);
            k[1] = k[1].wrapping_add(PHILOX_W1);
        }
        x = philox_round(x, k);
    }
    x
}

impl Philox4x32 {
    /// Stream `stream` of the generator family keyed by `seed` — the
    /// `(sweep_seed, trial_seed)` derivation used by trial runners. All
    /// streams of one seed are disjoint; all seeds are independent keys.
    pub fn stream(seed: u64, stream: u64) -> Self {
        Philox4x32 {
            key: [seed as u32, (seed >> 32) as u32],
            ctr: [0, 0, stream as u32, (stream >> 32) as u32],
            buf: [0; 4],
            used: 4,
        }
    }

    /// The generator's position as seven words: `key[0]`, `key[1]`,
    /// `ctr[0..4]`, `used`.
    ///
    /// Because a Philox block is a pure function of `(key, counter)`, these
    /// words fully determine the remaining output stream — the buffered
    /// block itself need not be stored, as
    /// [`from_state_words`](Self::from_state_words) regenerates it. Note the
    /// words identify a *stream position*, which the restored generator
    /// continues exactly; they are not secret-safe (the key is exposed).
    pub fn state_words(&self) -> [u32; 7] {
        [
            self.key[0],
            self.key[1],
            self.ctr[0],
            self.ctr[1],
            self.ctr[2],
            self.ctr[3],
            u32::from(self.used),
        ]
    }

    /// Reconstructs a generator from [`state_words`](Self::state_words),
    /// regenerating the partially consumed block when `used < 4`. Returns
    /// `None` if the `used` word is not one of `{0, 2, 4}` — the only
    /// positions [`next_u64`](RngCore::next_u64) can ever leave the
    /// generator in — so corrupted state cannot produce an out-of-bounds
    /// buffer index later.
    pub fn from_state_words(words: [u32; 7]) -> Option<Self> {
        let used = words[6];
        if !matches!(used, 0 | 2 | 4) {
            return None;
        }
        let key = [words[0], words[1]];
        let ctr = [words[2], words[3], words[4], words[5]];
        let mut rng = Philox4x32 {
            key,
            ctr,
            buf: [0; 4],
            used: 4,
        };
        if used < 4 {
            // The partially consumed block was generated just before the
            // counter advanced, i.e. at block position `ctr - 1` (wrapping,
            // mirroring next_u64's increment).
            let pos = ((u64::from(ctr[1]) << 32) | u64::from(ctr[0])).wrapping_sub(1);
            rng.buf = philox_block([pos as u32, (pos >> 32) as u32, ctr[2], ctr[3]], key);
            rng.used = used as u8;
        }
        Some(rng)
    }

    /// Jumps `blocks` output blocks (of two `u64`s each) ahead in this
    /// stream, discarding any partially consumed block. The 64-bit block
    /// counter wraps, so jumps never leak into another stream's range.
    pub fn jump_blocks(&mut self, blocks: u64) {
        let pos = (u64::from(self.ctr[1]) << 32) | u64::from(self.ctr[0]);
        let pos = pos.wrapping_add(blocks);
        self.ctr[0] = pos as u32;
        self.ctr[1] = (pos >> 32) as u32;
        self.used = 4;
    }
}

impl SeedableRng for Philox4x32 {
    /// Stream 0 of the family keyed by `seed`.
    fn seed_from_u64(seed: u64) -> Self {
        Philox4x32::stream(seed, 0)
    }
}

impl RngCore for Philox4x32 {
    fn next_u64(&mut self) -> u64 {
        if self.used >= 4 {
            self.buf = philox_block(self.ctr, self.key);
            let pos = ((u64::from(self.ctr[1]) << 32) | u64::from(self.ctr[0])).wrapping_add(1);
            self.ctr[0] = pos as u32;
            self.ctr[1] = (pos >> 32) as u32;
            self.used = 0;
        }
        // Words pair up little-endian; `used` stays even because this is the
        // only consumer, so blocks split into exactly two u64s.
        let lo = u64::from(self.buf[self.used as usize]);
        let hi = u64::from(self.buf[self.used as usize + 1]);
        self.used += 2;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngExt;

    #[test]
    fn deterministic_across_clones() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = a.clone();
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.random_range(0..=3);
            assert!(y <= 3);
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn signed_inclusive_ranges_cross_zero() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            let x: i32 = rng.random_range(-1..=1);
            assert!((-1..=1).contains(&x));
            seen[(x + 1) as usize] = true;
            let y: i64 = rng.random_range(-5..0);
            assert!((-5..0).contains(&y));
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn unit_float_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(13);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }

    /// Random123 known-answer vectors for `philox4x32-10` — the contract
    /// that our block function matches the published algorithm bit-for-bit.
    #[test]
    fn philox_known_answer_vectors() {
        assert_eq!(
            philox_block([0, 0, 0, 0], [0, 0]),
            [0x6627_e8d5, 0xe169_c58d, 0xbc57_ac4c, 0x9b00_dbd8]
        );
        assert_eq!(
            philox_block([u32::MAX; 4], [u32::MAX; 2]),
            [0x408f_276d, 0x41c8_3b0e, 0xa20b_c7c6, 0x6d54_51fd]
        );
        assert_eq!(
            philox_block(
                [0x243f_6a88, 0x85a3_08d3, 0x1319_8a2e, 0x0370_7344],
                [0xa409_3822, 0x299f_31d0]
            ),
            [0xd16c_fe09, 0x94fd_cceb, 0x5001_e420, 0x2412_6ea1]
        );
    }

    #[test]
    fn philox_streams_are_disjoint_and_order_free() {
        // The same (seed, stream) always yields the same outputs…
        let mut a = Philox4x32::stream(7, 3);
        let mut b = Philox4x32::stream(7, 3);
        for _ in 0..128 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // …different streams and different seeds never collide early.
        let mut streams: Vec<u64> = Vec::new();
        for seed in [0u64, 7, u64::MAX] {
            for stream in [0u64, 1, 2, u64::MAX] {
                let mut rng = Philox4x32::stream(seed, stream);
                streams.extend((0..32).map(|_| rng.next_u64()));
            }
        }
        let total = streams.len();
        streams.sort_unstable();
        streams.dedup();
        assert_eq!(streams.len(), total, "stream outputs collided");
    }

    #[test]
    fn philox_jump_skips_exactly_blocks() {
        let mut walked = Philox4x32::stream(11, 5);
        // One block = two u64s; walk 6 blocks by hand.
        for _ in 0..12 {
            walked.next_u64();
        }
        let mut jumped = Philox4x32::stream(11, 5);
        jumped.jump_blocks(6);
        for _ in 0..16 {
            assert_eq!(jumped.next_u64(), walked.next_u64());
        }
    }

    #[test]
    fn philox_seed_from_u64_is_stream_zero() {
        let mut a = Philox4x32::seed_from_u64(99);
        let mut b = Philox4x32::stream(99, 0);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn philox_state_round_trips_at_every_block_phase() {
        // Save/restore at used = 4 (fresh), 0 and 2 (mid-block) positions:
        // the restored generator must continue the stream identically.
        for draws in 0..9u32 {
            let mut original = Philox4x32::stream(0xDEAD_BEEF, 42);
            for _ in 0..draws {
                original.next_u64();
            }
            let mut restored =
                Philox4x32::from_state_words(original.state_words()).expect("valid state");
            for _ in 0..32 {
                assert_eq!(restored.next_u64(), original.next_u64(), "draws = {draws}");
            }
        }
    }

    #[test]
    fn philox_rejects_malformed_used_word() {
        let mut words = Philox4x32::stream(1, 2).state_words();
        for bad in [1u32, 3, 5, 6, u32::MAX] {
            words[6] = bad;
            assert!(
                Philox4x32::from_state_words(words).is_none(),
                "used = {bad}"
            );
        }
    }

    #[test]
    fn stdrng_state_round_trips() {
        let mut original = StdRng::seed_from_u64(314);
        for _ in 0..17 {
            original.next_u64();
        }
        let mut restored = StdRng::from_state_words(original.state_words());
        for _ in 0..32 {
            assert_eq!(restored.next_u64(), original.next_u64());
        }
    }

    #[test]
    fn philox_range_sampling_respects_bounds() {
        let mut rng = Philox4x32::stream(17, 2);
        for _ in 0..10_000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
