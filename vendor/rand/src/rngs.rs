//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++,
/// seeded by expanding a 64-bit seed through splitmix64.
///
/// Unlike the upstream `StdRng` (ChaCha12), the full output stream is a
/// stable, documented function of the seed — experiment tables cite seeds,
/// so reproducibility across versions matters more than crypto strength.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.s = [s0, s1, s2, s3];
        result
    }
}

/// A small-footprint generator; alias of [`StdRng`] in this vendored crate.
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngExt;

    #[test]
    fn deterministic_across_clones() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = a.clone();
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.random_range(0..=3);
            assert!(y <= 3);
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn signed_inclusive_ranges_cross_zero() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            let x: i32 = rng.random_range(-1..=1);
            assert!((-1..=1).contains(&x));
            seen[(x + 1) as usize] = true;
            let y: i64 = rng.random_range(-5..0);
            assert!((-5..0).contains(&y));
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn unit_float_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(13);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }
}
