//! Minimal, self-contained stand-in for the `rand` crate (0.9-style API).
//!
//! This workspace builds in fully offline environments, so the external
//! `rand` crate cannot be fetched from a registry. This vendored crate
//! implements exactly the surface the workspace uses:
//!
//! - [`rngs::StdRng`] — a deterministic, seedable generator
//!   (xoshiro256++ seeded via splitmix64);
//! - [`rngs::Philox4x32`] — a counter-based Philox4x32-10 generator with
//!   explicit `(seed, stream)` construction and block jumps, for trial
//!   sweeps whose per-trial streams must not depend on thread scheduling;
//! - [`SeedableRng::seed_from_u64`];
//! - [`RngExt`] — `random`, `random_range`, `random_bool` (implemented for
//!   unsized types too, so `&mut dyn RngCore` works directly);
//! - [`seq::SliceRandom::shuffle`] and [`seq::IndexedRandom::choose`].
//!
//! The generator is *not* cryptographically secure and the integer
//! `random_range` uses a widening-multiply reduction whose bias is at most
//! 2⁻⁶⁴ — both perfectly adequate for simulation workloads, neither
//! acceptable for key material.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// A source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (the high half of
    /// [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their "standard" distribution:
/// full range for integers, `[0, 1)` for floats, fair coin for `bool`.
pub trait StandardUniform: Sized {
    /// Draws one value from the standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = u128::from(rng.next_u64());
                self.start.wrapping_add(((draw * width) >> 64) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                // wrapping_sub: sign-crossing ranges (e.g. -1..=1) would
                // underflow a plain subtraction after the as-u128 casts;
                // mod-2^128 arithmetic still yields the true width.
                let width = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let draw = u128::from(rng.next_u64());
                start.wrapping_add(((draw * width) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<u128> for core::ops::Range<u128> {
    /// 128-bit ranges cannot use the widening-multiply reduction (it would
    /// need a 256-bit product), so widths beyond `u64::MAX` fall back to
    /// masked rejection sampling: draw `width.next_power_of_two()` bits and
    /// retry until the draw lands inside the range (< 2 expected draws).
    /// Widths that fit a `u64` delegate to the one-draw `u64` path, so the
    /// common case costs exactly as much as before.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let width = self.end - self.start;
        if let Ok(narrow) = u64::try_from(width) {
            return self.start + u128::from((0..narrow).sample_single(rng));
        }
        // Smallest all-ones mask covering `width` (avoids the overflow of
        // `next_power_of_two` for widths above 2^127).
        let mask = u128::MAX >> (width - 1).leading_zeros();
        loop {
            let draw = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) & mask;
            if draw < width {
                return self.start + draw;
            }
        }
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let frac = f64::sample(rng);
        let v = self.start + frac * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
///
/// (The upstream crate calls this trait `Rng`; the workspace imports it as
/// `RngExt`.)
pub trait RngExt: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when `range` is empty.
    fn random_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}
