//! Sequence helpers: in-place shuffling and uniform element choice.

use crate::{RngCore, SampleRange};

/// In-place random permutation of a mutable slice.
pub trait SliceRandom {
    /// The element type of the sequence.
    type Item;

    /// Fisher–Yates shuffle; uniform over all permutations.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }
}

/// Uniform choice from an indexable sequence.
pub trait IndexedRandom {
    /// The element type of the sequence.
    type Output;

    /// Returns a uniformly chosen element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
}

impl<T> IndexedRandom for [T] {
    type Output = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_single(rng)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rngs::StdRng, SeedableRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements staying sorted is ~impossible");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1u8, 2, 3, 4];
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[*v.choose(&mut rng).unwrap() as usize] = true;
        }
        assert_eq!(&seen[1..], &[true; 4]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
