//! Engine equivalence on the paper protocol itself.
//!
//! The generic (Max-protocol) equivalence suite lives in
//! `crates/protocol/tests/engine_equivalence.rs`; this file repeats both
//! layers on [`CirclesProtocol`], whose transitions exercise the count
//! engine much harder (asymmetric output updates, states appearing and
//! vanishing mid-run, `k³`-sized slot tables):
//!
//! 1. **Replay equivalence**: an indexed run's recorded schedule, mapped to
//!    state pairs, drives the count engine to a bit-identical `RunReport`.
//! 2. **Distributional equivalence**: steps-to-silence statistics of the
//!    batched uniform count engine match the indexed engine over many
//!    seeds.

use circles::core::{CirclesProtocol, CirclesState, Color};
use circles::protocol::{
    CountEngine, CountTrace, DenseCountEngine, Population, ReplayCountScheduler, RunReport,
    Simulation, UniformCountScheduler, UniformPairScheduler,
};
use proptest::prelude::*;

/// An inline margin workload: color 0 leads by `margin` over equally
/// supported losers (kept local so this test file stays independent of the
/// analysis crate).
fn margin_inputs(n: usize, k: u16, margin: usize) -> Vec<Color> {
    let b = (n - margin) / usize::from(k);
    let mut inputs = vec![Color(0); b + margin];
    for c in 1..k {
        inputs.extend(std::iter::repeat_n(Color(c), b));
    }
    inputs
}

/// Runs the indexed engine to silence with trace recording; returns the
/// report and the schedule as (initiator, responder) *state* pairs.
fn indexed_reference(
    protocol: &CirclesProtocol,
    inputs: &[Color],
    seed: u64,
) -> (
    RunReport<Color>,
    Vec<(circles::core::CirclesState, circles::core::CirclesState)>,
) {
    let population = Population::from_inputs(protocol, inputs);
    let mut sim = Simulation::new(protocol, population, UniformPairScheduler::new(), seed);
    sim.record_trace();
    let report = sim
        .run_until_silent(50_000_000, 16)
        .expect("circles silences");
    let trace = sim.take_trace().expect("trace was recorded");

    let mut replay = Population::from_inputs(protocol, inputs);
    let mut state_pairs = Vec::with_capacity(trace.pairs().len());
    for &(i, j) in trace.pairs() {
        state_pairs.push((replay[i], replay[j]));
        replay.interact(protocol, i, j).expect("valid trace");
    }
    (report, state_pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Replaying an indexed Circles run through the count engine reproduces
    /// the exact same `RunReport` and final configuration multiset.
    #[test]
    fn circles_replay_produces_identical_reports(
        raw in proptest::collection::vec(0u16..4, 2..20),
        k in 2u16..5,
        seed in any::<u64>(),
    ) {
        let inputs: Vec<Color> = raw.iter().map(|&c| Color(c % k)).collect();
        let protocol = CirclesProtocol::new(k).unwrap();
        let (reference, state_pairs) = indexed_reference(&protocol, &inputs, seed);
        let steps = state_pairs.len() as u64;

        let config = inputs.iter().map(|c| {
            use circles::protocol::Protocol;
            protocol.input(c)
        }).collect();
        let mut engine = CountEngine::with_scheduler(
            &protocol,
            config,
            ReplayCountScheduler::new(state_pairs),
            !seed, // the RNG must be irrelevant under replay
        );
        for _ in 0..steps {
            engine.step().unwrap();
        }
        prop_assert_eq!(engine.report(), reference);
        prop_assert!(engine.is_silent());
        prop_assert_eq!(engine.config().n(), inputs.len());
    }
}

/// Large-k Circles replay: the same indexed schedule, driven through the
/// sparse (Fenwick + adjacency) and dense (pair matrix) activity indexes,
/// produces bit-identical reports and configurations — with slot tables
/// far past the Fenwick threshold (slots ≫ 100), where the sparse
/// bookkeeping actually diverges from the dense code path.
#[test]
fn large_k_circles_replay_is_bit_identical_on_both_indexes() {
    let k = 12u16;
    let protocol = CirclesProtocol::new(k).unwrap();
    let inputs = margin_inputs(180, k, 24);
    for seed in 0..2u64 {
        let (reference, state_pairs) = indexed_reference(&protocol, &inputs, seed);
        let steps = state_pairs.len() as u64;
        let config: circles::protocol::CountConfig<CirclesState> = inputs
            .iter()
            .map(|c| {
                use circles::protocol::Protocol;
                protocol.input(c)
            })
            .collect();

        let mut sparse = CountEngine::with_scheduler(
            &protocol,
            config.clone(),
            ReplayCountScheduler::new(state_pairs.clone()),
            !seed,
        );
        let mut dense = DenseCountEngine::with_parts(
            &protocol,
            config,
            ReplayCountScheduler::new(state_pairs),
            seed ^ 0xABCD, // the RNG must be irrelevant under replay
        );
        for _ in 0..steps {
            sparse.step().unwrap();
            dense.step().unwrap();
        }
        assert_eq!(sparse.report(), reference, "sparse vs indexed, seed {seed}");
        assert_eq!(dense.report(), reference, "dense vs indexed, seed {seed}");
        assert_eq!(sparse.config(), dense.config(), "configs, seed {seed}");
        assert_eq!(sparse.slots(), dense.slots(), "slot tables, seed {seed}");
        assert!(
            sparse.slots() > 100,
            "workload must exercise a large slot table, got {}",
            sparse.slots()
        );
    }
}

/// Uniform-random batched runs on the two activity indexes are bit-identical
/// for the same seed: both draw the same geometric skips and the same
/// `r ∈ [0, mass)`, and the Fenwick prefix search must resolve `r` to
/// exactly the pair the dense linear scan finds.
#[test]
fn sparse_and_dense_uniform_runs_are_bit_identical_at_large_k() {
    let k = 18u16;
    let protocol = CirclesProtocol::new(k).unwrap();
    let inputs = margin_inputs(1200, k, 120);
    let config: circles::protocol::CountConfig<CirclesState> = inputs
        .iter()
        .map(|c| {
            use circles::protocol::Protocol;
            protocol.input(c)
        })
        .collect();

    let mut sparse = CountEngine::from_config(&protocol, config.clone(), 7);
    let sparse_report = sparse.run_until_silent(u64::MAX / 2).unwrap();
    let mut dense =
        DenseCountEngine::with_parts(&protocol, config, UniformCountScheduler::new(), 7);
    let dense_report = dense.run_until_silent(u64::MAX / 2).unwrap();

    assert_eq!(sparse_report, dense_report);
    assert_eq!(sparse.config(), dense.config());
    assert_eq!(sparse.slots(), dense.slots());
    assert!(
        sparse.slots() > 1000,
        "workload must exercise a large slot table, got {}",
        sparse.slots()
    );
}

/// A recorded count-level trace serializes to JSONL, parses back through
/// `CirclesState`'s `FromStr`, and replays to the recorded terminal
/// configuration — the reproducibility loop for large-`n` failures.
#[test]
fn count_trace_jsonl_round_trips_and_replays() {
    let k = 4u16;
    let protocol = CirclesProtocol::new(k).unwrap();
    let inputs = margin_inputs(60, k, 8);
    let mut engine = CountEngine::from_inputs(&protocol, &inputs, 11);
    engine.record_trace();
    engine.run_until_silent(u64::MAX / 2).unwrap();
    let trace = engine.take_trace().expect("recording was on");
    assert_eq!(trace.len() as u64, engine.stats().state_changes);

    let jsonl = trace.to_jsonl();
    let parsed: CountTrace<CirclesState> = CountTrace::from_jsonl(&jsonl).unwrap();
    assert_eq!(parsed, trace);

    let config: circles::protocol::CountConfig<CirclesState> = inputs
        .iter()
        .map(|c| {
            use circles::protocol::Protocol;
            protocol.input(c)
        })
        .collect();
    let steps = parsed.len();
    let mut replayed = CountEngine::with_scheduler(&protocol, config, parsed.into_scheduler(), 999);
    for _ in 0..steps {
        assert!(replayed.step().unwrap(), "every traced pair changes state");
    }
    assert_eq!(replayed.config(), engine.config());
    assert!(replayed.is_silent());
}

/// Mean and standard error of a sample.
fn mean_se(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, (var / n).sqrt())
}

/// Steps-to-silence distributions of the two engines agree on a small
/// Circles race under the uniform-random model (deterministic seed set;
/// two-sample z-style check on the means).
#[test]
fn circles_steps_to_silence_distributions_agree() {
    let k = 3u16;
    let protocol = CirclesProtocol::new(k).unwrap();
    // 10/6/4 — a clear but contested race at n = 20.
    let inputs: Vec<Color> = std::iter::repeat_n(Color(0), 10)
        .chain(std::iter::repeat_n(Color(1), 6))
        .chain(std::iter::repeat_n(Color(2), 4))
        .collect();
    let seeds = 300u64;

    let indexed: Vec<f64> = (0..seeds)
        .map(|seed| {
            let population = Population::from_inputs(&protocol, &inputs);
            let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
            sim.run_until_silent(50_000_000, 16)
                .expect("circles silences")
                .steps_to_silence as f64
        })
        .collect();
    let counted: Vec<f64> = (0..seeds)
        .map(|seed| {
            let mut engine = CountEngine::from_inputs(&protocol, &inputs, seed);
            engine
                .run_until_silent(50_000_000)
                .expect("circles silences")
                .steps_to_silence as f64
        })
        .collect();

    let (mi, si) = mean_se(&indexed);
    let (mc, sc) = mean_se(&counted);
    let gap = (mi - mc).abs();
    let se = si.hypot(sc);
    assert!(
        gap <= 4.0 * se + 0.02 * mi.max(mc),
        "steps-to-silence means diverge: indexed {mi:.1}±{si:.1} vs count {mc:.1}±{sc:.1}"
    );
}
