//! Integration tests positioning Circles against baselines across the
//! scheduler family, and auditing scheduler fairness.

use circles::baselines::{CancellationPlurality, FourStateMajority, UndecidedDynamics};
use circles::core::{CirclesProtocol, Color};
use circles::protocol::{Population, Simulation, UniformPairScheduler};
use circles::schedulers::{
    record_schedule, ClusteredScheduler, LazyAdversaryScheduler, RoundRobinScheduler,
    ShuffledRoundsScheduler,
};

fn colors(xs: &[u16]) -> Vec<Color> {
    xs.iter().map(|&x| Color(x)).collect()
}

#[test]
fn circles_survives_the_lazy_adversary() {
    let inputs = colors(&[0, 0, 0, 1, 1, 2, 2]);
    let protocol = CirclesProtocol::new(3).unwrap();
    let population = Population::from_inputs(&protocol, &inputs);
    let window = (population.len() * (population.len() - 1)) as u64;
    let mut sim = Simulation::new(
        &protocol,
        population,
        LazyAdversaryScheduler::new(protocol, window),
        0,
    );
    let report = sim.run_until_silent(10_000_000, 42).unwrap();
    assert_eq!(report.consensus, Some(Color(0)));
}

#[test]
fn circles_survives_clustered_bottleneck() {
    let inputs = colors(&[1, 1, 1, 1, 0, 0, 0, 2, 2, 2]);
    let protocol = CirclesProtocol::new(3).unwrap();
    let population = Population::from_inputs(&protocol, &inputs);
    let mut sim = Simulation::new(&protocol, population, ClusteredScheduler::new(64), 5);
    let report = sim.run_until_silent(50_000_000, 45).unwrap();
    assert_eq!(report.consensus, Some(Color(1)));
}

#[test]
fn four_state_and_circles_agree_on_binary_majority() {
    let inputs = colors(&[0, 1, 1, 0, 1, 1, 0]);
    let four = FourStateMajority::new();
    let circles_p = CirclesProtocol::new(2).unwrap();

    let population = Population::from_inputs(&four, &inputs);
    let mut sim = Simulation::new(&four, population, RoundRobinScheduler::new(), 1);
    let four_result = sim.run_until_silent(1_000_000, 21).unwrap().consensus;

    let population = Population::from_inputs(&circles_p, &inputs);
    let mut sim = Simulation::new(&circles_p, population, RoundRobinScheduler::new(), 1);
    let circles_result = sim.run_until_silent(1_000_000, 21).unwrap().consensus;

    assert_eq!(four_result, Some(Color(1)));
    assert_eq!(circles_result, Some(Color(1)));
}

#[test]
fn undecided_dynamics_fails_somewhere_circles_does_not() {
    // On a 1-margin race, USD errs on some seeds; Circles never does.
    let inputs = colors(&[0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
    let k = 3;
    let usd = UndecidedDynamics::new(k);
    let circles_p = CirclesProtocol::new(k).unwrap();
    let mut usd_wrong = 0;
    for seed in 0..40 {
        let population = Population::from_inputs(&usd, &inputs);
        let mut sim = Simulation::new(&usd, population, UniformPairScheduler::new(), seed);
        let report = sim.run_until_silent(10_000_000, 16).unwrap();
        if report.consensus != Some(Color(0)) {
            usd_wrong += 1;
        }

        let population = Population::from_inputs(&circles_p, &inputs);
        let mut sim = Simulation::new(&circles_p, population, UniformPairScheduler::new(), seed);
        let report = sim.run_until_silent(10_000_000, 16).unwrap();
        assert_eq!(
            report.consensus,
            Some(Color(0)),
            "circles wrong at seed {seed}"
        );
    }
    assert!(
        usd_wrong > 0,
        "USD never failed in 40 close races — suspicious for a w.h.p. protocol"
    );
}

#[test]
fn cancellation_fails_on_some_seeds_for_three_colors() {
    let inputs = colors(&[0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
    let k = 3;
    let cancel = CancellationPlurality::new(k);
    let mut wrong = 0;
    for seed in 0..60 {
        let population = Population::from_inputs(&cancel, &inputs);
        let mut sim = Simulation::new(&cancel, population, UniformPairScheduler::new(), seed);
        let report = sim.run_until_silent(10_000_000, 16).unwrap();
        if report.consensus != Some(Color(0)) {
            wrong += 1;
        }
    }
    assert!(
        wrong > 0,
        "cancellation never failed — counterexample family broken?"
    );
}

#[test]
fn schedulers_are_weakly_fair_on_recorded_prefixes() {
    let population: Population<u8> = (0u8..8).collect();
    let pairs = 8 * 7;

    let rr = record_schedule(&mut RoundRobinScheduler::new(), &population, pairs * 4, 0);
    assert!(rr.max_pair_gap().unwrap() <= pairs);

    let sh = record_schedule(
        &mut ShuffledRoundsScheduler::new(),
        &population,
        pairs * 4,
        1,
    );
    assert!(sh.max_pair_gap().unwrap() <= 2 * pairs);

    let cl = record_schedule(&mut ClusteredScheduler::new(4), &population, 40_000, 2);
    assert!(
        cl.max_pair_gap().is_some(),
        "clustered starved a pair in 40k steps"
    );
}

#[test]
fn trace_replay_reproduces_runs_exactly() {
    let inputs = colors(&[0, 0, 1, 2, 2, 2]);
    let protocol = CirclesProtocol::new(3).unwrap();
    let population = Population::from_inputs(&protocol, &inputs);
    let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 77);
    sim.record_trace();
    sim.run_until_silent(1_000_000, 16).unwrap();
    let trace = sim.take_trace().unwrap();
    let final_states = sim.into_population();

    // Replay through the text round-trip.
    let parsed: circles::protocol::InteractionTrace = trace.to_string().parse().unwrap();
    let mut population = Population::from_inputs(&protocol, &inputs);
    for &(i, j) in parsed.pairs() {
        population.interact(&protocol, i, j).unwrap();
    }
    assert_eq!(population.states(), final_states.states());
}
