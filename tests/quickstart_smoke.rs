//! Smoke test for the documented entrypoint.
//!
//! `examples/quickstart.rs` is the first thing README points a new user
//! at; this test exercises the same core path in-process (protocol
//! construction → population → simulation → consensus) plus the compiled
//! example binary itself, so CI fails loudly if the quickstart rots.

use std::process::Command;

use circles::core::{CirclesProtocol, Color, GreedyDecomposition};
use circles::protocol::{EnumerableProtocol, Population, Simulation, UniformPairScheduler};

/// The quickstart's exact scenario, asserted step by step.
#[test]
fn quickstart_core_path() {
    let k = 4;
    let votes: Vec<Color> = [2, 1, 2, 0, 2, 1, 3, 2, 1, 2, 1, 0].map(Color).to_vec();

    let protocol = CirclesProtocol::new(k).expect("k = 4 is a valid color count");
    assert_eq!(protocol.state_complexity(), 64, "state complexity is k³");

    let greedy = GreedyDecomposition::from_inputs(&votes, k).expect("valid inputs");
    let counts: Vec<usize> = (0..k).map(|c| greedy.count(Color(c))).collect();
    assert_eq!(counts, vec![2, 4, 5, 1]);

    let population = Population::from_inputs(&protocol, &votes);
    let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 42);
    let report = sim
        .run_until_silent(1_000_000, 16)
        .expect("quickstart instance stabilizes well within a million steps");

    assert_eq!(report.consensus, Some(Color(2)), "color 2 leads 5:4:2:1");
    assert!(report.steps_to_consensus <= report.steps_to_silence);
}

/// Runs the example the way README tells users to (skipped when the
/// binary has not been built, e.g. under `cargo test` without examples).
#[test]
fn quickstart_example_binary_runs() {
    let target_dir = std::env::var_os("CARGO_TARGET_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target"));
    let exe = target_dir
        .join(if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        })
        .join("examples")
        .join("quickstart");
    if !exe.exists() {
        eprintln!("skipping: {} not built", exe.display());
        return;
    }
    let output = Command::new(&exe).output().expect("example should launch");
    assert!(
        output.status.success(),
        "quickstart exited with {:?}:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("consensus output: Some(Color(2))"),
        "unexpected quickstart output:\n{stdout}"
    );
}
