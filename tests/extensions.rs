//! Integration tests for the paper §4 extensions: ordering, the unordered
//! composition, tie semantics, and fault injection.

use circles::core::{CirclesProtocol, Color};
use circles::extensions::faults::{run_with_faults, Fault, FaultPlan};
use circles::extensions::ordering::OrderingProtocol;
use circles::extensions::ties::{TieAnalysis, TieAwareOutput, TieSemantics};
use circles::extensions::unordered::UnorderedCircles;
use circles::protocol::{Population, Protocol, Simulation, UniformPairScheduler};
use circles::schedulers::{RoundRobinScheduler, ShuffledRoundsScheduler};
use proptest::prelude::*;

fn colors(xs: &[u16]) -> Vec<Color> {
    xs.iter().map(|&x| Color(x)).collect()
}

#[test]
fn ordering_protocol_labels_every_color_under_round_robin() {
    let protocol = OrderingProtocol::new(4);
    let inputs = colors(&[11, 11, 22, 33, 33, 33, 44]);
    let population = Population::from_inputs(&protocol, &inputs);
    let mut sim = Simulation::new(&protocol, population, RoundRobinScheduler::new(), 0);
    sim.run_until_silent(10_000_000, 42).unwrap();
    assert!(OrderingProtocol::labeling_is_valid(sim.population()));
}

#[test]
fn unordered_circles_elects_plurality_of_opaque_colors() {
    let protocol = UnorderedCircles::new(3);
    let inputs = colors(&[500, 500, 500, 600, 600, 700]);
    let population = Population::from_inputs(&protocol, &inputs);
    let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 21);
    sim.run_until_silent(50_000_000, 30).unwrap();
    let population = sim.into_population();
    assert_eq!(
        UnorderedCircles::consensus_winner(&population),
        Some(Color(500))
    );
    assert!(UnorderedCircles::conservation_holds(&population, 3));
}

#[test]
fn unordered_circles_works_under_shuffled_rounds() {
    let protocol = UnorderedCircles::new(3);
    let inputs = colors(&[9, 9, 9, 9, 8, 8, 7]);
    let population = Population::from_inputs(&protocol, &inputs);
    let mut sim = Simulation::new(&protocol, population, ShuffledRoundsScheduler::new(), 4);
    sim.run_until_silent(50_000_000, 42).unwrap();
    assert_eq!(
        UnorderedCircles::consensus_winner(sim.population()),
        Some(Color(9))
    );
}

#[test]
fn unordered_circles_model_checked_on_tiny_instances() {
    // Exhaustive global-fairness verification of the §4 reconstruction:
    // from the initial configuration, every bottom SCC of the reachable
    // graph must consist of configurations where all agents are Active,
    // outputs agree, and the consensus names the true plurality color.
    use circles::mc::properties::bscc_counterexample;
    use circles::mc::{ExploreLimits, ReachabilityGraph};
    use circles::protocol::CountConfig;

    // (inputs as opaque ids, k, expected winner id)
    let cases: Vec<(Vec<u16>, u16, u16)> = vec![
        (vec![7, 7, 9], 2, 7),
        (vec![7, 9, 9], 2, 9),
        (vec![7, 7, 7, 9], 2, 7),
        (vec![5, 5, 6, 6, 6], 2, 6),
        (vec![1, 2, 2, 2], 3, 2),
    ];
    for (raw, k, expected) in cases {
        let inputs = colors(&raw);
        let protocol = UnorderedCircles::new(k);
        let initial: CountConfig<_> = inputs.iter().map(|c| protocol.input(c)).collect();
        let graph = ReachabilityGraph::explore(&protocol, &initial, ExploreLimits::default())
            .unwrap_or_else(|e| panic!("exploration failed for {raw:?}: {e}"));
        let bad = bscc_counterexample(&graph, |config| {
            let population = circles::protocol::Population::from_states(config.to_state_vec());
            UnorderedCircles::consensus_winner(&population) == Some(Color(expected))
                && UnorderedCircles::conservation_holds(&population, k)
        });
        assert!(
            bad.is_none(),
            "instance {raw:?} (k={k}) has a bad bottom config: {:?} ({} configs explored)",
            bad.map(|id| graph.config(id)),
            graph.len()
        );
    }
}

#[test]
fn vanilla_circles_under_tie_satisfies_no_semantics() {
    // With a tie, vanilla Circles freezes outputs at historical values;
    // the checkers should reject all three semantics for typical runs.
    let inputs = colors(&[0, 0, 0, 1, 1, 1]);
    let k = 2;
    let analysis = TieAnalysis::of(&inputs, k).unwrap();
    assert!(analysis.is_tie());

    let protocol = CirclesProtocol::new(k).unwrap();
    let population = Population::from_inputs(&protocol, &inputs);
    let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 3);
    sim.run_until_silent(10_000_000, 16).unwrap();
    let outputs: Vec<TieAwareOutput> = sim
        .population()
        .iter()
        .map(|s| TieAwareOutput::Winner(protocol.output(s)))
        .collect();

    // Report demands everyone say "tie" — vanilla cannot.
    assert!(!TieSemantics::Report.is_satisfied_by(&inputs, &outputs, &analysis));
    // For binary full ties every output points at *a* winner, so Share's
    // loser clause is vacuous — but winners must output their *own* color,
    // which frozen outputs generally violate somewhere. Break demands
    // unanimity. At least one of the two must fail; record both.
    let brk = TieSemantics::Break.is_satisfied_by(&inputs, &outputs, &analysis);
    let share = TieSemantics::Share.is_satisfied_by(&inputs, &outputs, &analysis);
    assert!(!brk || !share, "vanilla circles accidentally handles ties?");
}

#[test]
fn fault_free_plan_reports_conserved_and_correct() {
    let inputs = colors(&[2, 2, 2, 0, 1]);
    let report = run_with_faults(
        &inputs,
        3,
        UniformPairScheduler::new(),
        9,
        &FaultPlan::new(),
        10_000_000,
    )
    .unwrap();
    assert!(report.stabilized && report.correct && report.conserved_at_end);
}

#[test]
fn mid_run_fault_usually_breaks_conservation() {
    // Reset an agent after the run has mixed: its old ket lives on.
    let inputs = colors(&[0, 0, 0, 1, 1, 2, 2]);
    let mut conserved_runs = 0;
    let mut total = 0;
    for seed in 0..10 {
        let mut plan = FaultPlan::new();
        plan.push(Fault {
            at_step: 30,
            agent: 0,
        });
        let report = run_with_faults(
            &inputs,
            3,
            UniformPairScheduler::new(),
            seed,
            &plan,
            10_000_000,
        )
        .unwrap();
        total += 1;
        if report.conserved_at_end {
            conserved_runs += 1;
        }
    }
    assert!(total == 10);
    // Conservation should break in at least some runs (the reset is after
    // real mixing). Not asserting all: the agent may still hold its own ket.
    assert!(conserved_runs < total, "faults never broke conservation");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The unordered composition finds the plurality of random opaque
    /// inputs whenever a unique winner exists.
    #[test]
    fn unordered_random_instances_correct(
        raw in proptest::collection::vec(0u16..3, 3..=8),
        seed in any::<u64>(),
    ) {
        // Map 0..3 to sparse opaque ids.
        let inputs: Vec<Color> = raw.iter().map(|&c| Color(c * 1000 + 17)).collect();
        let greedy_ids: Vec<Color> = raw.iter().map(|&c| Color(c)).collect();
        let greedy = circles::core::GreedyDecomposition::from_inputs(&greedy_ids, 3).unwrap();
        prop_assume!(greedy.winner().is_some());
        let expected = Color(greedy.winner().unwrap().0 * 1000 + 17);

        let protocol = UnorderedCircles::new(3);
        let population = Population::from_inputs(&protocol, &inputs);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        sim.run_until_silent(100_000_000, 32).unwrap();
        let population = sim.into_population();
        prop_assert_eq!(UnorderedCircles::consensus_winner(&population), Some(expected));
        prop_assert!(UnorderedCircles::conservation_holds(&population, 3));
    }

    /// The ordering protocol stabilizes to a valid labeling on random
    /// inputs.
    #[test]
    fn ordering_random_instances_label_validly(
        raw in proptest::collection::vec(0u16..4, 2..=9),
        seed in any::<u64>(),
    ) {
        let inputs: Vec<Color> = raw.iter().map(|&c| Color(c + 100)).collect();
        let protocol = OrderingProtocol::new(4);
        let population = Population::from_inputs(&protocol, &inputs);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        sim.run_until_silent(50_000_000, 32).unwrap();
        prop_assert!(OrderingProtocol::labeling_is_valid(sim.population()));
    }
}
