//! End-to-end integration tests: Circles from inputs to verified consensus,
//! across engines and schedulers.

use circles::core::prediction::{braket_config_of_population, matches_prediction};
use circles::core::{invariants, CirclesProtocol, Color, GreedyDecomposition};
use circles::protocol::{CountEngine, Population, Simulation, UniformPairScheduler};
use circles::schedulers::{RoundRobinScheduler, ShuffledRoundsScheduler};

fn colors(xs: &[u16]) -> Vec<Color> {
    xs.iter().map(|&x| Color(x)).collect()
}

#[test]
fn converges_to_predicted_configuration_under_uniform() {
    let inputs = colors(&[0, 0, 0, 1, 1, 2, 3, 3]);
    let k = 4;
    let protocol = CirclesProtocol::new(k).unwrap();
    let population = Population::from_inputs(&protocol, &inputs);
    let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 17);
    let report = sim.run_until_silent(10_000_000, 16).unwrap();
    let population = sim.into_population();

    // The terminal bra-ket multiset is exactly the Lemma 3.6 prediction.
    assert!(matches_prediction(&population, &inputs, k).unwrap());
    // And outputs agree on the plurality.
    assert_eq!(report.consensus, Some(Color(0)));
}

#[test]
fn all_schedulers_reach_the_same_terminal_brakets() {
    let inputs = colors(&[2, 2, 2, 0, 0, 1]);
    let k = 3;
    let protocol = CirclesProtocol::new(k).unwrap();

    let run_uniform = {
        let population = Population::from_inputs(&protocol, &inputs);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 3);
        sim.run_until_silent(10_000_000, 16).unwrap();
        braket_config_of_population(sim.population())
    };
    let run_rr = {
        let population = Population::from_inputs(&protocol, &inputs);
        let mut sim = Simulation::new(&protocol, population, RoundRobinScheduler::new(), 4);
        sim.run_until_silent(10_000_000, 30).unwrap();
        braket_config_of_population(sim.population())
    };
    let run_shuffled = {
        let population = Population::from_inputs(&protocol, &inputs);
        let mut sim = Simulation::new(&protocol, population, ShuffledRoundsScheduler::new(), 5);
        sim.run_until_silent(10_000_000, 30).unwrap();
        braket_config_of_population(sim.population())
    };

    // Lemma 3.6: the terminal multiset is schedule-independent.
    assert_eq!(run_uniform, run_rr);
    assert_eq!(run_rr, run_shuffled);
}

#[test]
fn counting_engine_agrees_with_indexed_engine_on_terminal_config() {
    let inputs = colors(&[0, 0, 1, 1, 1, 2, 2, 2, 2]);
    let k = 3;
    let protocol = CirclesProtocol::new(k).unwrap();

    let indexed_terminal = {
        let population = Population::from_inputs(&protocol, &inputs);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 7);
        sim.run_until_silent(10_000_000, 16).unwrap();
        sim.into_population().to_count_config()
    };
    let counting_terminal = {
        let mut engine = CountEngine::from_inputs(&protocol, &inputs, 8);
        engine.run_until_silent(10_000_000).unwrap();
        engine.config()
    };
    // Both engines must land on the identical (unique) silent configuration.
    assert_eq!(indexed_terminal, counting_terminal);
}

#[test]
fn conservation_invariant_holds_throughout_any_run() {
    let inputs = colors(&[4, 4, 0, 1, 2, 3, 4, 0]);
    let k = 5;
    let protocol = CirclesProtocol::new(k).unwrap();
    let population = Population::from_inputs(&protocol, &inputs);
    let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 23);
    for _ in 0..2000 {
        sim.step().unwrap();
        assert!(invariants::population_conserves(sim.population(), k));
        assert!(invariants::bras_match_inputs(sim.population(), &inputs, k));
    }
}

#[test]
fn winner_is_correct_for_every_rotation_of_color_identities() {
    // Circles' weights depend on numeric color distances; correctness must
    // not: rotate all color identities and verify the rotated winner wins.
    let base = [0u16, 0, 0, 1, 1, 2];
    let k = 3u16;
    for shift in 0..k {
        let inputs: Vec<Color> = base.iter().map(|&c| Color((c + shift) % k)).collect();
        let winner = circles::core::run_to_consensus(&inputs, k, 11, 10_000_000).unwrap();
        assert_eq!(winner, Color(shift), "shift {shift}");
    }
}

#[test]
fn large_population_converges_on_counting_engine() {
    let k = 5;
    let mut inputs = Vec::new();
    for (c, count) in [(0u16, 3000), (1, 2500), (2, 2000), (3, 1500), (4, 1000)] {
        for _ in 0..count {
            inputs.push(Color(c));
        }
    }
    let protocol = CirclesProtocol::new(k).unwrap();
    let mut engine = CountEngine::from_inputs(&protocol, &inputs, 99);
    let report = engine.run_until_silent(5_000_000_000).unwrap();
    assert_eq!(report.consensus, Some(Color(0)));
}

#[test]
fn two_agents_two_colors_is_a_tie_and_stalls() {
    let inputs = colors(&[0, 1]);
    let protocol = CirclesProtocol::new(2).unwrap();
    let population = Population::from_inputs(&protocol, &inputs);
    let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 1);
    let report = sim.run_until_silent(10_000, 1).unwrap();
    // ⟨0|0⟩+⟨1|1⟩ exchange once into the 2-circle, then silence, outputs
    // frozen at the inputs: no consensus.
    assert_eq!(report.state_changes, 1);
    assert_eq!(report.consensus, None);
    let greedy = GreedyDecomposition::from_inputs(&inputs, 2).unwrap();
    assert!(greedy.is_tie());
}

#[test]
fn single_agent_outputs_its_own_color_forever() {
    let winner = circles::core::run_to_consensus(&colors(&[3]), 5, 0, 100).unwrap();
    assert_eq!(winner, Color(3));
}

#[test]
fn k_equals_one_population_is_silent_immediately() {
    let winner = circles::core::run_to_consensus(&colors(&[0, 0, 0, 0]), 1, 0, 100).unwrap();
    assert_eq!(winner, Color(0));
}
