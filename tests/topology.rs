//! Integration tests for topology-restricted Circles: what survives on a
//! graph (stabilization, conservation) and what provably breaks (the
//! predicted terminal multiset, output correctness, even silence).

use circles::core::{invariants, prediction, CirclesProtocol, Color};
use circles::protocol::{Population, Protocol, Scheduler, Simulation};
use circles::topology::{
    audit_schedule, is_graph_silent, EdgeScheduler, InteractionGraph, RoundRobinEdgeScheduler,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn complete_graph_edge_scheduler_reproduces_the_paper_model() {
    // On the complete graph the edge scheduler is the uniform scheduler:
    // always silent, predicted bra-kets, correct consensus.
    let k = 3u16;
    let inputs: Vec<Color> = [0, 0, 0, 0, 1, 1, 2, 2, 2].map(Color).to_vec();
    let protocol = CirclesProtocol::new(k).unwrap();
    let predicted = prediction::predicted_brakets(&inputs, k).unwrap();
    for seed in 0..8 {
        let graph = InteractionGraph::complete(inputs.len()).unwrap();
        let population = Population::from_inputs(&protocol, &inputs);
        let mut sim = Simulation::new(&protocol, population, EdgeScheduler::new(graph), seed);
        let report = sim.run_until_silent(2_000_000, 16).unwrap();
        assert_eq!(report.consensus, Some(Color(0)));
        assert_eq!(
            prediction::braket_config_of_population(sim.population()),
            predicted
        );
    }
}

/// The documented 3-path counterexample, executed deterministically: after
/// the single interaction (1, 2), the line `0–1–2` with inputs `[0, 0, 1]`
/// is graph-silent with the end agent outputting the minority color —
/// even though the bra-ket multiset is exactly Lemma 3.6's prediction.
/// What breaks on the path is *output dissemination*: rule 2 transmits only
/// on direct contact with a self-loop agent, and agent 2 never meets the
/// `⟨0|0⟩` at the other end.
#[test]
fn three_path_freezes_with_wrong_output() {
    let k = 2u16;
    let protocol = CirclesProtocol::new(k).unwrap();
    let inputs: Vec<Color> = [0, 0, 1].map(Color).to_vec();
    let mut population = Population::from_inputs(&protocol, &inputs);
    let graph = InteractionGraph::path(3).unwrap();

    // One interaction across the edge (1, 2): ⟨0|0⟩ + ⟨1|1⟩ → ⟨0|1⟩ + ⟨1|0⟩.
    population.interact(&protocol, 1, 2).unwrap();

    assert!(
        is_graph_silent(&graph, &population, &protocol),
        "the path must be frozen after one exchange"
    );
    // Bra-kets conserve (Lemma 3.3 is topology-proof) …
    let brakets = prediction::braket_config_of_population(&population);
    assert!(invariants::conservation_holds(&brakets, k));
    // … and this particular freeze even *matches* Lemma 3.6's multiset —
    // stabilization is not what breaks on the path …
    let predicted = prediction::predicted_brakets(&inputs, k).unwrap();
    assert_eq!(brakets, predicted);
    // … yet agent 2 outputs the minority color forever: it is not adjacent
    // to the ⟨0|0⟩ agent, and only self-loop agents transmit outputs.
    assert_eq!(protocol.output(&population[2]), Color(1));
    assert_eq!(protocol.output(&population[0]), Color(0));
}

/// A star with self-loops of both colors on leaves never goes silent: the
/// hub's output flips forever — correctness can fail *without* freezing.
#[test]
fn star_oscillates_forever() {
    let k = 2u16;
    let protocol = CirclesProtocol::new(k).unwrap();
    // Hub = agent 0 (color 0); leaves: 0, 1, 1, 1 — winner is color 1.
    let inputs: Vec<Color> = [0, 0, 1, 1, 1].map(Color).to_vec();
    let graph = InteractionGraph::star(5).unwrap();
    let population = Population::from_inputs(&protocol, &inputs);
    let mut sim = Simulation::new(&protocol, population, EdgeScheduler::new(graph.clone()), 3);

    // Long prefix: bra-kets must freeze (Theorem 3.4 is topology-proof)…
    sim.run_observed(20_000, |_| ()).unwrap();
    let brakets_mid = prediction::braket_config_of_population(sim.population());
    let mut hub_outputs = std::collections::BTreeSet::new();
    sim.run_observed(20_000, |step| {
        // Track the hub's output whenever it participates.
        if step.pair.0 == 0 {
            hub_outputs.insert(step.after.0.out);
        } else if step.pair.1 == 0 {
            hub_outputs.insert(step.after.1.out);
        }
    })
    .unwrap();
    let brakets_end = prediction::braket_config_of_population(sim.population());
    assert_eq!(brakets_mid, brakets_end, "bra-kets must be frozen by now");
    // …but outputs keep flipping: the hub visits both colors in the tail,
    // and the configuration is never graph-silent.
    assert_eq!(
        hub_outputs.len(),
        2,
        "hub output must oscillate: {hub_outputs:?}"
    );
    assert!(!is_graph_silent(&graph, sim.population(), &protocol));
}

#[test]
fn round_robin_edge_scheduler_is_graph_fair() {
    let graph = InteractionGraph::grid(3, 3).unwrap();
    let mut scheduler = RoundRobinEdgeScheduler::new(graph.clone());
    let population: Population<u8> = (0..9u8).collect();
    let mut rng = StdRng::seed_from_u64(5);
    let schedule: Vec<(usize, usize)> = (0..2_000)
        .map(|_| scheduler.next_pair(&population, &mut rng))
        .collect();
    let report = audit_schedule(&graph, &schedule);
    assert!(report.is_covering());
    assert_eq!(report.off_graph_pairs, 0);
    // One full round = 2·|E| directed edges; every edge recurs within two
    // rounds.
    assert!(report.max_gap <= 4 * graph.edge_count());
}

#[test]
fn dense_random_graphs_stay_correct_in_practice() {
    // Erdős–Rényi with p = 0.5 at n = 24 is diameter-2-ish and dense; the
    // election should succeed for typical placements even though the
    // worst-case guarantee is gone.
    let k = 2u16;
    let protocol = CirclesProtocol::new(k).unwrap();
    let mut inputs: Vec<Color> = Vec::new();
    inputs.extend(std::iter::repeat_n(Color(0), 16));
    inputs.extend(std::iter::repeat_n(Color(1), 8));
    let mut graph_rng = StdRng::seed_from_u64(11);
    let graph = InteractionGraph::erdos_renyi(24, 0.5, &mut graph_rng).unwrap();

    let mut correct = 0;
    let seeds = 10;
    for seed in 0..seeds {
        let population = Population::from_inputs(&protocol, &inputs);
        let mut sim = Simulation::new(
            &protocol,
            population,
            EdgeScheduler::new(graph.clone()),
            seed,
        );
        let mut silent = false;
        for _ in 0..200 {
            sim.run_observed(2_000, |_| ()).unwrap();
            if is_graph_silent(&graph, sim.population(), &protocol) {
                silent = true;
                break;
            }
        }
        let outputs = sim.population().output_counts(&protocol);
        if silent && outputs.len() == 1 && outputs.keys().next() == Some(&Color(0)) {
            correct += 1;
        }
    }
    assert!(
        correct >= seeds / 2,
        "dense random graph should usually elect correctly ({correct}/{seeds})"
    );
}
