//! Property-based tests (proptest) over the core invariants of the paper.
//!
//! Each property is a lemma or proof obligation from the paper, exercised
//! on randomized instances:
//!
//! - Lemma 3.3 (bra-ket conservation) under arbitrary interaction sequences;
//! - Theorem 3.4 (strict potential descent at every exchange);
//! - Lemma 3.2 (greedy-set structure);
//! - Lemma 3.6 (unique predicted terminal configuration) under randomized
//!   weakly fair schedules;
//! - Theorem 3.7 (correct consensus) end to end;
//! - engine equivalence (indexed vs counting) on terminal configurations;
//! - the ordinal `g(C)` of Theorem 3.4 (order-isomorphic to the
//!   lexicographic potential; natural sums well-behaved);
//! - the source-epidemic closed form (monotone in its arguments);
//! - the CRN layer (stochastic trajectories stay on the probability
//!   simplex).

use circles::analysis::epidemic::expected_source_epidemic_interactions;
use circles::core::ordinal::OmegaPolynomial;
use circles::core::potential::weight_vector;
use circles::core::prediction::{
    braket_config_of_population, is_exchange_stable, predicted_brakets,
};
use circles::core::{invariants, CirclesProtocol, Color, GreedyDecomposition};
use circles::crn::{ssa_density_trajectory, ReactionNetwork};
use circles::protocol::{
    CountConfig, CountEngine, Population, Protocol, Simulation, UniformPairScheduler,
};
use circles::schedulers::ShuffledRoundsScheduler;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random instance: 2..=10 agents over 1..=5 colors.
fn instance() -> impl Strategy<Value = (Vec<u16>, u16)> {
    (1u16..=5).prop_flat_map(|k| (proptest::collection::vec(0..k, 2..=10), Just(k)))
}

/// Random larger instance for the counting engine.
fn large_instance() -> impl Strategy<Value = (Vec<u16>, u16)> {
    (2u16..=6).prop_flat_map(|k| (proptest::collection::vec(0..k, 16..=80), Just(k)))
}

fn to_colors(raw: &[u16]) -> Vec<Color> {
    raw.iter().map(|&c| Color(c)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 3.3: per color, #bras == #kets in every reachable
    /// configuration, under any (even unfair) interaction sequence.
    #[test]
    fn conservation_under_arbitrary_interactions(
        (raw, k) in instance(),
        steps in 0usize..400,
        seed in any::<u64>(),
    ) {
        let inputs = to_colors(&raw);
        let protocol = CirclesProtocol::new(k).unwrap();
        let population = Population::from_inputs(&protocol, &inputs);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        for _ in 0..steps {
            sim.step().unwrap();
        }
        prop_assert!(invariants::population_conserves(sim.population(), k));
        prop_assert!(invariants::bras_match_inputs(sim.population(), &inputs, k));
    }

    /// Theorem 3.4: the ascending-sorted weight vector strictly decreases
    /// (lexicographically) at every ket exchange, and never changes
    /// otherwise.
    #[test]
    fn potential_strictly_decreases_on_every_exchange(
        (raw, k) in instance(),
        seed in any::<u64>(),
    ) {
        let inputs = to_colors(&raw);
        let protocol = CirclesProtocol::new(k).unwrap();
        let population = Population::from_inputs(&protocol, &inputs);
        let mut last = weight_vector(&braket_config_of_population(&population), k);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        for _ in 0..300 {
            let report = sim.step().unwrap();
            let ket_moved = report.before.0.braket.ket != report.after.0.braket.ket
                || report.before.1.braket.ket != report.after.1.braket.ket;
            let next = weight_vector(&braket_config_of_population(sim.population()), k);
            if ket_moved {
                prop_assert!(next < last, "exchange did not decrease the potential");
            } else {
                prop_assert_eq!(&next, &last, "potential moved without an exchange");
            }
            last = next;
        }
    }

    /// Lemma 3.2 structure: every greedy set contains every winner, the
    /// sets are nested, and they partition the input multiset.
    #[test]
    fn greedy_sets_are_nested_partitions((raw, k) in instance()) {
        let inputs = to_colors(&raw);
        let greedy = GreedyDecomposition::from_inputs(&inputs, k).unwrap();
        prop_assert!(greedy.is_partition());
        for winner in greedy.winners() {
            for p in 1..=greedy.num_sets() {
                prop_assert!(greedy.set(p).contains(&winner));
            }
        }
        for p in 1..greedy.num_sets() {
            let outer = greedy.set(p);
            for c in greedy.set(p + 1) {
                prop_assert!(outer.contains(&c), "G_{} ⊄ G_{}", p + 1, p);
            }
        }
    }

    /// Lemma 3.6: under a weakly fair randomized schedule the run reaches
    /// exactly the predicted terminal bra-ket multiset, which is
    /// exchange-stable.
    #[test]
    fn runs_reach_the_predicted_terminal_configuration(
        (raw, k) in instance(),
        seed in any::<u64>(),
    ) {
        let inputs = to_colors(&raw);
        let protocol = CirclesProtocol::new(k).unwrap();
        let population = Population::from_inputs(&protocol, &inputs);
        let mut sim = Simulation::new(&protocol, population, ShuffledRoundsScheduler::new(), seed);
        sim.run_until_silent(50_000_000, 64).unwrap();
        let terminal = braket_config_of_population(sim.population());
        let predicted = predicted_brakets(&inputs, k).unwrap();
        prop_assert_eq!(&terminal, &predicted);
        prop_assert!(is_exchange_stable(&terminal, k));
    }

    /// Theorem 3.7: with a unique winner, every agent ends up outputting it.
    #[test]
    fn consensus_is_the_plurality_winner(
        (raw, k) in instance(),
        seed in any::<u64>(),
    ) {
        let inputs = to_colors(&raw);
        let greedy = GreedyDecomposition::from_inputs(&inputs, k).unwrap();
        prop_assume!(greedy.winner().is_some());
        let winner = circles::core::run_to_consensus(&inputs, k, seed, 50_000_000).unwrap();
        prop_assert_eq!(Some(winner), greedy.winner());
    }

    /// Engine equivalence: the counting engine reaches the same unique
    /// silent configuration as the indexed engine.
    #[test]
    fn counting_engine_terminal_matches_prediction(
        (raw, k) in large_instance(),
        seed in any::<u64>(),
    ) {
        let inputs = to_colors(&raw);
        let protocol = CirclesProtocol::new(k).unwrap();
        let mut sim = CountEngine::from_inputs(&protocol, &inputs, seed);
        sim.run_until_silent(200_000_000).unwrap();
        let predicted = predicted_brakets(&inputs, k).unwrap();
        let terminal: circles::protocol::CountConfig<circles::core::BraKet> = sim
            .config()
            .iter()
            .flat_map(|(s, c)| std::iter::repeat_n(s.braket, c))
            .collect();
        prop_assert_eq!(terminal, predicted);
    }

    /// The ordinal `g` built from an ascending weight vector orders exactly
    /// like the lexicographic potential, on random same-length vectors.
    #[test]
    fn ordinal_order_matches_lexicographic_potential(
        mut a in proptest::collection::vec(1u32..9, 1..8),
        mut raw_b in proptest::collection::vec(1u32..9, 1..8),
    ) {
        // Same-length vectors: potentials only compare within one n.
        raw_b.resize(a.len(), 1);
        a.sort_unstable();
        raw_b.sort_unstable();
        let lex = a.cmp(&raw_b);
        let ord = OmegaPolynomial::from_ascending_weights(&a)
            .cmp(&OmegaPolynomial::from_ascending_weights(&raw_b));
        prop_assert_eq!(lex, ord, "orders disagree on {:?} vs {:?}", a, raw_b);
    }

    /// Natural sums: commutative, zero-identity, and strictly monotone on
    /// the left argument.
    #[test]
    fn natural_sum_laws(
        terms_a in proptest::collection::vec((0u64..6, 0u64..9), 0..5),
        terms_b in proptest::collection::vec((0u64..6, 0u64..9), 0..5),
    ) {
        let dedup = |terms: Vec<(u64, u64)>| {
            let mut by_degree = std::collections::BTreeMap::new();
            for (d, c) in terms {
                *by_degree.entry(d).or_insert(0u64) += c;
            }
            OmegaPolynomial::from_terms(by_degree).unwrap()
        };
        let a = dedup(terms_a);
        let b = dedup(terms_b);
        prop_assert_eq!(a.natural_sum(&b), b.natural_sum(&a));
        prop_assert_eq!(a.natural_sum(&OmegaPolynomial::zero()), a.clone());
        if !b.is_zero() {
            prop_assert!(a.natural_sum(&b) > a, "x ⊕ y > x for y > 0");
        }
    }

    /// The source-epidemic expectation is increasing in the uninformed
    /// count and decreasing in the source count.
    #[test]
    fn source_epidemic_is_monotone(
        n in 4u64..200,
        s in 1u64..8,
        u in 1u64..100,
    ) {
        // The doubled-sources check below needs 2s + u to stay within the
        // population, which also covers the (n, s, u + 1) call.
        prop_assume!(2 * s + u + 1 < n);
        let base = expected_source_epidemic_interactions(n, s, u);
        prop_assert!(expected_source_epidemic_interactions(n, s, u + 1) > base);
        prop_assert!(expected_source_epidemic_interactions(n, s + 1, u) < base);
        // Exact halving when sources double.
        let halved = expected_source_epidemic_interactions(n, 2 * s, u);
        prop_assert!((halved - base / 2.0).abs() < 1e-9 * base);
    }

    /// Every row of a stochastic density trajectory is a probability vector.
    #[test]
    fn ssa_trajectories_stay_on_the_simplex(
        (raw, k) in instance(),
        seed in any::<u64>(),
    ) {
        prop_assume!(raw.len() >= 2);
        let protocol = CirclesProtocol::new(k).unwrap();
        let support: Vec<_> = (0..k).map(|i| protocol.input(&Color(i))).collect();
        let network = ReactionNetwork::from_protocol(&protocol, &support, 100_000).unwrap();
        let initial: CountConfig<_> =
            raw.iter().map(|&c| protocol.input(&Color(c))).collect();
        let times = [0.0, 0.5, 1.5, 4.0];
        let mut rng = StdRng::seed_from_u64(seed);
        let traj =
            ssa_density_trajectory(&network, &initial, &mut rng, &times, 100_000).unwrap();
        for row in &traj.rows {
            let total: f64 = row.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "row mass {total}");
            prop_assert!(row.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }
}
