//! Integration tests for the chemical-reaction-network view: the SSA and
//! the mean-field ODE must agree with the discrete engines and with the
//! paper's predicted terminal configuration (Lemma 3.6).

use circles::core::{prediction, weight, CirclesProtocol, CirclesState, Color};
use circles::crn::{MeanField, ReactionNetwork, StochasticSimulation};
use circles::protocol::{CountConfig, CountEngine, Protocol};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(
    k: u16,
    inputs: &[u16],
) -> (
    CirclesProtocol,
    ReactionNetwork<CirclesState>,
    CountConfig<CirclesState>,
    Vec<Color>,
) {
    let protocol = CirclesProtocol::new(k).unwrap();
    let support: Vec<CirclesState> = (0..k).map(|i| protocol.input(&Color(i))).collect();
    let network = ReactionNetwork::from_protocol(&protocol, &support, 1_000_000).unwrap();
    let colors: Vec<Color> = inputs.iter().map(|&c| Color(c)).collect();
    let initial: CountConfig<CirclesState> = colors.iter().map(|c| protocol.input(c)).collect();
    (protocol, network, initial, colors)
}

#[test]
fn ssa_terminal_brakets_match_prediction_across_instances() {
    let instances: &[(u16, &[u16])] = &[
        (2, &[0, 0, 0, 1, 1]),
        (3, &[0, 0, 1, 1, 1, 2]),
        (4, &[0, 1, 1, 2, 2, 2, 2, 3]),
        (5, &[0, 0, 0, 1, 2, 2, 3, 4, 4, 4, 4]),
    ];
    for &(k, inputs) in instances {
        let (_, network, initial, colors) = setup(k, inputs);
        let predicted = prediction::predicted_brakets(&colors, k).unwrap();
        for seed in 0..5 {
            let mut sim = StochasticSimulation::new(&network, &initial).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let report = sim.run_until_silent(&mut rng, 1_000_000);
            assert!(report.silent, "k={k} seed={seed} did not silence");
            assert_eq!(
                prediction::braket_config(&sim.config()),
                predicted,
                "k={k} seed={seed}: terminal bra-kets differ from Lemma 3.6"
            );
        }
    }
}

/// The SSA's embedded jump chain is the discrete uniform-pair chain
/// conditioned on productive steps, so the *number of state changes* must
/// have the same distribution in both engines. Compare means over many
/// seeds.
#[test]
fn ssa_jump_chain_agrees_with_counting_engine() {
    let k = 3u16;
    let inputs: &[u16] = &[0, 0, 0, 0, 1, 1, 1, 2, 2];
    let (protocol, network, initial, colors) = setup(k, inputs);
    let trials = 300u64;

    let mut ssa_changes = 0.0;
    for seed in 0..trials {
        let mut sim = StochasticSimulation::new(&network, &initial).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let report = sim.run_until_silent(&mut rng, 1_000_000);
        assert!(report.silent);
        ssa_changes += report.reactions as f64;
    }
    let ssa_mean = ssa_changes / trials as f64;

    let mut discrete_changes = 0.0;
    for seed in 0..trials {
        let mut engine = CountEngine::from_inputs(&protocol, &colors, 1_000 + seed);
        let report = engine.run_until_silent(1_000_000).unwrap();
        discrete_changes += report.state_changes as f64;
    }
    let discrete_mean = discrete_changes / trials as f64;

    let rel = (ssa_mean - discrete_mean).abs() / discrete_mean;
    assert!(
        rel < 0.05,
        "productive-step means diverge: SSA {ssa_mean} vs discrete {discrete_mean} ({rel:.3})"
    );
}

#[test]
fn ode_equilibrium_energy_is_k_times_top_density() {
    // Profiles with a strict leader: terminal energy per agent must be
    // k·p_max (c_max circles, each of total weight k).
    let k = 4u16;
    let protocol = CirclesProtocol::new(k).unwrap();
    let support: Vec<CirclesState> = (0..k).map(|i| protocol.input(&Color(i))).collect();
    let network = ReactionNetwork::from_protocol(&protocol, &support, 1_000_000).unwrap();
    let field = MeanField::new(&network);
    for profile in [
        [0.4, 0.3, 0.2, 0.1],
        [0.7, 0.1, 0.1, 0.1],
        [0.31, 0.27, 0.22, 0.2],
    ] {
        let mut x0 = vec![0.0; network.species_count()];
        for (i, &p) in profile.iter().enumerate() {
            x0[network.species().id(&support[i]).unwrap() as usize] = p;
        }
        let (x, _) = field.run_to_equilibrium(x0, 1e-10, 0.02, 2_000.0).unwrap();
        let energy = field.observe(&x, |s| f64::from(weight(k, s.braket)));
        let floor = f64::from(k) * profile[0];
        assert!(
            (energy - floor).abs() < 1e-4,
            "profile {profile:?}: energy {energy} vs floor {floor}"
        );
    }
}

#[test]
fn ode_consensus_density_lands_on_winner() {
    let k = 3u16;
    let protocol = CirclesProtocol::new(k).unwrap();
    let support: Vec<CirclesState> = (0..k).map(|i| protocol.input(&Color(i))).collect();
    let network = ReactionNetwork::from_protocol(&protocol, &support, 1_000_000).unwrap();
    let field = MeanField::new(&network);
    let mut x0 = vec![0.0; network.species_count()];
    let profile = [0.2, 0.45, 0.35];
    for (i, &p) in profile.iter().enumerate() {
        x0[network.species().id(&support[i]).unwrap() as usize] = p;
    }
    let (x, _) = field.run_to_equilibrium(x0, 1e-10, 0.02, 2_000.0).unwrap();
    let winner_mass = field.observe(&x, |s| f64::from(s.out == Color(1)));
    assert!(winner_mass > 1.0 - 1e-6, "winner out-mass {winner_mass}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random no-tie instances: the SSA silences and reaches consensus on
    /// the plurality winner (Theorem 3.7 transported to continuous time).
    #[test]
    fn ssa_always_correct_on_random_instances(
        counts in pvec(0usize..6, 3),
        seed in 0u64..1_000,
    ) {
        // Make color 0 the strict winner.
        let mut counts = counts;
        let max_other = counts.iter().skip(1).copied().max().unwrap_or(0);
        counts[0] = max_other + 1 + counts[0] % 2;
        let total: usize = counts.iter().sum();
        prop_assume!(total >= 2);
        let inputs: Vec<u16> = counts
            .iter()
            .enumerate()
            .flat_map(|(c, &n)| std::iter::repeat_n(c as u16, n))
            .collect();
        let (protocol, network, initial, _) = setup(3, &inputs);
        let mut sim = StochasticSimulation::new(&network, &initial).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let report = sim.run_until_silent(&mut rng, 1_000_000);
        prop_assert!(report.silent);
        prop_assert_eq!(sim.config().output_consensus(&protocol), Some(Color(0)));
    }

    /// Mass and the bra/ket conservation law survive arbitrary prefixes of
    /// SSA runs.
    #[test]
    fn ssa_preserves_mass_and_conservation(
        steps in 0u64..200,
        seed in 0u64..1_000,
    ) {
        let (_, network, initial, _) = setup(4, &[0, 0, 1, 1, 2, 3, 3]);
        let mut sim = StochasticSimulation::new(&network, &initial).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..steps {
            if sim.step(&mut rng).is_none() {
                break;
            }
        }
        prop_assert_eq!(sim.counts().iter().sum::<u64>(), 7);
        let brakets = prediction::braket_config(&sim.config());
        prop_assert!(circles::core::invariants::conservation_holds(&brakets, 4));
    }
}
