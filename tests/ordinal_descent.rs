//! End-to-end Theorem 3.4, through the ordinal lens: record the literal
//! `g(C)` (an ordinal below `ω^ω`) along full runs and verify the whole
//! descent chain — strictly decreasing at every ket exchange, constant
//! otherwise, and bounded by the combinatorial descent-chain bound.

use circles::core::ordinal::{paper_potential_of_states, OmegaPolynomial};
use circles::core::potential::descent_chain_bound;
use circles::core::{CirclesProtocol, Color};
use circles::protocol::{CountConfig, Population, Simulation, UniformPairScheduler};

fn config_of(
    population: &Population<circles::core::CirclesState>,
) -> CountConfig<circles::core::CirclesState> {
    population.iter().copied().collect()
}

#[test]
fn full_runs_descend_through_the_ordinals() {
    for (k, inputs, seed) in [
        (3u16, vec![0u16, 0, 0, 1, 1, 2], 1u64),
        (4, vec![0, 1, 1, 2, 2, 2, 3, 3], 2),
        (5, vec![0, 0, 1, 2, 3, 4, 4, 4, 4, 1], 3),
    ] {
        let colors: Vec<Color> = inputs.iter().map(|&c| Color(c)).collect();
        let protocol = CirclesProtocol::new(k).unwrap();
        let population = Population::from_inputs(&protocol, &colors);
        let n = population.len();
        let mut g = paper_potential_of_states(&config_of(&population), k);
        let initial_g = g.clone();
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        let mut chain = vec![g.clone()];
        for _ in 0..200_000 {
            let report = sim.step().unwrap();
            let exchanged = report.before.0.braket != report.after.0.braket
                || report.before.1.braket != report.after.1.braket;
            let next = paper_potential_of_states(&config_of(sim.population()), k);
            if exchanged {
                assert!(
                    next < g,
                    "g did not strictly decrease at an exchange (k={k})"
                );
                chain.push(next.clone());
            } else {
                assert_eq!(next, g, "g moved without an exchange (k={k})");
            }
            g = next;
            if sim.population().is_silent(&protocol) {
                break;
            }
        }
        // The chain is strictly decreasing, starts at the all-self-loop
        // ordinal (every coefficient k), and its length respects the bound.
        assert!(chain.windows(2).all(|w| w[1] < w[0]));
        assert_eq!(
            initial_g,
            OmegaPolynomial::from_ascending_weights(&vec![u32::from(k); n]),
            "initial ordinal must be ω^{{n-1}}·k + … + k"
        );
        let bound = descent_chain_bound(n, k);
        assert!(
            (chain.len() as u128) <= bound,
            "descent chain of length {} exceeds the bound {bound}",
            chain.len()
        );
        // Theorem 3.4's point: the chain is *finite* — and in practice tiny.
        assert!(
            chain.len() <= 4 * n,
            "chain unexpectedly long: {}",
            chain.len()
        );
    }
}

#[test]
fn ordinal_display_of_a_real_run_reads_like_the_paper() {
    // A 3-agent instance: initial g = ω²·2 + ω·2 + 2 for k = 2.
    let protocol = CirclesProtocol::new(2).unwrap();
    let colors = [Color(0), Color(0), Color(1)];
    let population = Population::from_inputs(&protocol, &colors);
    let g = paper_potential_of_states(&config_of(&population), 2);
    assert_eq!(g.to_string(), "ω^2·2 + ω·2 + 2");
    // After the single exchange ⟨0|0⟩+⟨1|1⟩ → ⟨0|1⟩+⟨1|0⟩ the weights are
    // (1, 1, 2): g = ω²·1 + ω·1 + 2 — strictly below.
    let after = OmegaPolynomial::from_ascending_weights(&[1, 1, 2]);
    assert!(after < g);
    assert_eq!(after.to_string(), "ω^2·1 + ω·1 + 2");
}
