//! At `k = 2`, Circles *is* the classical 4-state exact-majority automaton
//! in disguise.
//!
//! Identify `⟨0|0⟩ → A`, `⟨1|1⟩ → B` (strong states) and `⟨0|1⟩, ⟨1|0⟩ →
//! weak (with the `out` register carrying the weak opinion). Then:
//!
//! - the only firing exchange is `⟨0|0⟩ + ⟨1|1⟩ → ⟨0|1⟩ + ⟨1|0⟩`
//!   (min weight 2 → 1), which is exactly `A + B → a + b`;
//! - the out rule `⟨i|i⟩ sets out := i` is exactly "strong converts
//!   opposing weak".
//!
//! Consequence: under the *same* interaction schedule, the two protocols'
//! output trajectories coincide step by step — which also explains why
//! experiment E6 reports identical per-seed consensus times for them.
//! These tests pin the isomorphism down exactly.

use circles::baselines::{FourState, FourStateMajority};
use circles::core::{CirclesProtocol, Color};
use circles::protocol::{Population, Protocol, Simulation, UniformPairScheduler};
use proptest::prelude::*;

/// Maps a Circles k=2 state to the four-state automaton's state, using the
/// out register for weak opinions.
fn project(state: &circles::core::CirclesState) -> FourState {
    if state.braket.is_self_loop() {
        match state.braket.bra {
            Color(0) => FourState::StrongZero,
            _ => FourState::StrongOne,
        }
    } else {
        match state.out {
            Color(0) => FourState::WeakZero,
            _ => FourState::WeakOne,
        }
    }
}

#[test]
fn exchange_table_matches_annihilation() {
    let circles = CirclesProtocol::new(2).unwrap();
    let a = circles.input(&Color(0));
    let b = circles.input(&Color(1));
    let (x, y) = circles.transition(&a, &b);
    assert!(!x.braket.is_self_loop() && !y.braket.is_self_loop());
    assert_eq!(project(&x), FourState::WeakZero);
    assert_eq!(project(&y), FourState::WeakOne);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Coupled runs: same inputs, same schedule (same seed through the
    /// blind uniform scheduler) — the projected Circles population equals
    /// the four-state population after every interaction.
    #[test]
    fn coupled_trajectories_project_exactly(
        zeros in 1usize..7,
        ones in 1usize..7,
        steps in 1u64..400,
        seed in any::<u64>(),
    ) {
        let mut inputs = vec![Color(0); zeros];
        inputs.extend(vec![Color(1); ones]);

        let circles = CirclesProtocol::new(2).unwrap();
        let four = FourStateMajority::new();
        let mut sim_c = Simulation::new(
            &circles,
            Population::from_inputs(&circles, &inputs),
            UniformPairScheduler::new(),
            seed,
        );
        let mut sim_f = Simulation::new(
            &four,
            Population::from_inputs(&four, &inputs),
            UniformPairScheduler::new(),
            seed,
        );
        for _ in 0..steps {
            let rc = sim_c.step().unwrap();
            let rf = sim_f.step().unwrap();
            // Blind schedulers with equal seeds pick identical pairs.
            prop_assert_eq!(rc.pair, rf.pair);
            let projected: Vec<FourState> =
                sim_c.population().iter().map(project).collect();
            prop_assert_eq!(projected.as_slice(), sim_f.population().states());
        }
    }

    /// In particular the *outputs* coincide at every step, so consensus
    /// times per seed are identical — the E6 observation.
    #[test]
    fn output_trajectories_coincide(
        zeros in 1usize..7,
        ones in 1usize..7,
        seed in any::<u64>(),
    ) {
        prop_assume!(zeros != ones);
        let mut inputs = vec![Color(0); zeros];
        inputs.extend(vec![Color(1); ones]);

        let circles = CirclesProtocol::new(2).unwrap();
        let four = FourStateMajority::new();
        let mut sim_c = Simulation::new(
            &circles,
            Population::from_inputs(&circles, &inputs),
            UniformPairScheduler::new(),
            seed,
        );
        let mut sim_f = Simulation::new(
            &four,
            Population::from_inputs(&four, &inputs),
            UniformPairScheduler::new(),
            seed,
        );
        let rc = sim_c.run_until_silent(10_000_000, 8).unwrap();
        let rf = sim_f.run_until_silent(10_000_000, 8).unwrap();
        prop_assert_eq!(rc.consensus, rf.consensus);
        prop_assert_eq!(rc.steps_to_consensus, rf.steps_to_consensus);
    }
}
