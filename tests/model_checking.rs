//! Integration tests for the model checker against Circles and baselines.

use circles::baselines::FourStateMajority;
use circles::core::variants::{ExchangeRule, VariantCircles};
use circles::core::Color;
use circles::mc::circles::{verify_circles_full, verify_circles_instance};
use circles::mc::properties::{
    changes_always_terminate, check_stable_computation, is_eventually_silent,
};
use circles::mc::{ExploreLimits, ReachabilityGraph};
use circles::protocol::{CountConfig, Protocol};
use proptest::prelude::*;

fn colors(xs: &[u16]) -> Vec<Color> {
    xs.iter().map(|&x| Color(x)).collect()
}

#[test]
fn verification_grid_k2_up_to_n8() {
    for n in 2..=8usize {
        for c0 in 0..=n {
            let c1 = n - c0;
            let mut inputs = vec![Color(0); c0];
            inputs.extend(vec![Color(1); c1]);
            let report = verify_circles_instance(&inputs, 2, ExploreLimits::default()).unwrap();
            assert!(
                report.verified,
                "k=2 profile ({c0},{c1}) failed: {report:?}"
            );
        }
    }
}

#[test]
fn verification_k3_selected_instances() {
    for profile in [[3, 2, 1], [4, 1, 1], [2, 2, 2], [5, 0, 1], [1, 3, 3]] {
        let mut inputs = Vec::new();
        for (color, &count) in profile.iter().enumerate() {
            inputs.extend(vec![Color(color as u16); count]);
        }
        let report = verify_circles_instance(&inputs, 3, ExploreLimits::default()).unwrap();
        assert!(report.verified, "profile {profile:?} failed: {report:?}");
    }
}

#[test]
fn full_state_space_check_small_instances() {
    let report = verify_circles_full(&colors(&[0, 0, 1, 2]), 3, ExploreLimits::default()).unwrap();
    assert!(report.eventually_silent);
    assert!(report.stably_computes);
}

#[test]
fn four_state_majority_stably_computes_under_global_fairness() {
    let protocol = FourStateMajority::new();
    for (c0, c1) in [(3, 2), (4, 1), (2, 5), (1, 6)] {
        let mut inputs = vec![Color(0); c0];
        inputs.extend(vec![Color(1); c1]);
        let initial: CountConfig<_> = inputs.iter().map(|c| protocol.input(c)).collect();
        let graph =
            ReachabilityGraph::explore(&protocol, &initial, ExploreLimits::default()).unwrap();
        let expected = Color(u16::from(c1 > c0));
        let report = check_stable_computation(&graph, &protocol, &expected);
        assert!(report.holds, "four-state failed on ({c0},{c1})");
        assert!(is_eventually_silent(&graph));
    }
}

#[test]
fn always_swap_variant_never_stabilizes() {
    let protocol = VariantCircles::new(2, ExchangeRule::AlwaysSwap).unwrap();
    let initial: CountConfig<_> = colors(&[0, 1]).iter().map(|c| protocol.input(c)).collect();
    let graph = ReachabilityGraph::explore(&protocol, &initial, ExploreLimits::default()).unwrap();
    assert!(!changes_always_terminate(&graph));
    assert!(!is_eventually_silent(&graph));
}

#[test]
fn nonstrict_variant_admits_livelock() {
    // Find some instance over k=3 where non-strict exchanges cycle.
    let protocol = VariantCircles::new(3, ExchangeRule::NonStrictMinDecrease).unwrap();
    let mut found_livelock = false;
    for profile in [[1usize, 1, 1], [2, 1, 0], [2, 1, 1], [2, 2, 0]] {
        let mut inputs = Vec::new();
        for (color, &count) in profile.iter().enumerate() {
            inputs.extend(vec![Color(color as u16); count]);
        }
        let initial: CountConfig<_> = inputs.iter().map(|c| protocol.input(c)).collect();
        let graph =
            ReachabilityGraph::explore(&protocol, &initial, ExploreLimits::default()).unwrap();
        if !changes_always_terminate(&graph) {
            found_livelock = true;
        }
    }
    assert!(
        found_livelock,
        "non-strict rule showed no livelock on the grid"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random small instances all verify under weak fairness.
    #[test]
    fn random_instances_verify(
        k in 2u16..=4,
        raw in proptest::collection::vec(0u16..4, 2..=6),
    ) {
        let inputs: Vec<Color> = raw.iter().map(|&c| Color(c % k)).collect();
        let report = verify_circles_instance(&inputs, k, ExploreLimits::default()).unwrap();
        prop_assert!(report.verified, "instance {:?} failed: {:?}", inputs, report);
    }
}
