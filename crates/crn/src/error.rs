//! Error type for the CRN layer.

use std::error::Error;
use std::fmt;

/// Errors produced when building or simulating a reaction network.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CrnError {
    /// The initial configuration contains no molecules (agents).
    EmptyPopulation,
    /// A single molecule cannot collide with anything.
    PopulationTooSmall {
        /// Number of molecules supplied.
        n: usize,
    },
    /// The initial configuration contains a state that is not a species of
    /// the network it is being simulated against.
    UnknownSpecies {
        /// Debug rendering of the offending state.
        state: String,
    },
    /// The species closure exceeded the configured bound; the protocol's
    /// reachable state space is too large for an explicit network.
    ClosureTooLarge {
        /// The bound that was exceeded.
        limit: usize,
    },
    /// A non-finite or negative integration parameter was supplied.
    BadIntegrationParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
}

impl fmt::Display for CrnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrnError::EmptyPopulation => write!(f, "initial configuration is empty"),
            CrnError::PopulationTooSmall { n } => {
                write!(f, "population of {n} molecule(s) cannot collide")
            }
            CrnError::UnknownSpecies { state } => {
                write!(f, "state {state} is not a species of this network")
            }
            CrnError::ClosureTooLarge { limit } => {
                write!(f, "species closure exceeded the limit of {limit} species")
            }
            CrnError::BadIntegrationParameter { name } => {
                write!(
                    f,
                    "integration parameter `{name}` must be finite and positive"
                )
            }
        }
    }
}

impl Error for CrnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            CrnError::EmptyPopulation,
            CrnError::PopulationTooSmall { n: 1 },
            CrnError::UnknownSpecies {
                state: "⟨0|1⟩".into(),
            },
            CrnError::ClosureTooLarge { limit: 10 },
            CrnError::BadIntegrationParameter { name: "dt" },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CrnError>();
    }
}
