//! Chemical-reaction-network (CRN) view of population protocols.
//!
//! The Circles paper's title credits its design to *energy minimization in
//! chemical settings*: a population protocol is exactly a bimolecular
//! chemical reaction network whose species are agent states and whose
//! reactions are the productive ordered transitions `A + B → A' + B'`. This
//! crate materializes that reading for any [`Protocol`]:
//!
//! - [`ReactionNetwork`]: the explicit network over the *species closure* of
//!   an initial support (every state reachable by pairwise interactions),
//!   with per-initiator adjacency for fast simulation.
//! - [`StochasticSimulation`]: exact Gillespie/SSA sampling of the
//!   continuous-time Markov chain in which every ordered agent pair carries
//!   a rate-`1/(n-1)` Poisson clock — one time unit = `n` interactions
//!   (*parallel time*). Null interactions are thinned away exactly.
//! - [`MeanField`]: the large-`n` law-of-mass-action ODE
//!   `dx_s/dt = Σ x_A x_B φ_s(A,B)` with an RK4 integrator — the
//!   deterministic limit (Kurtz) the stochastic densities converge to.
//! - [`ssa_density_trajectory`] / [`ode_density_trajectory`]: grid-sampled
//!   density trajectories, used by experiments E13/E14 to measure how fast
//!   the stochastic system approaches its fluid limit and how the Circles
//!   energy descends in continuous time.
//!
//! # Example
//!
//! Stochastic and mean-field views of Circles with `k = 2`:
//!
//! ```
//! use circles_core::{CirclesProtocol, Color};
//! use pp_crn::{MeanField, ReactionNetwork, StochasticSimulation};
//! use pp_protocol::{CountConfig, Protocol};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let protocol = CirclesProtocol::new(2)?;
//! let support: Vec<_> = (0..2).map(|i| protocol.input(&Color(i))).collect();
//! let network = ReactionNetwork::from_protocol(&protocol, &support, 1_000)?;
//!
//! // Stochastic: 60 majority vs 40 minority agents.
//! let mut initial = CountConfig::new();
//! initial.insert(support[0], 60);
//! initial.insert(support[1], 40);
//! let mut sim = StochasticSimulation::new(&network, &initial)?;
//! let mut rng = StdRng::seed_from_u64(1);
//! let report = sim.run_until_silent(&mut rng, 1_000_000);
//! assert!(report.silent);
//! assert_eq!(sim.config().output_consensus(&protocol), Some(Color(0)));
//!
//! // Mean field: the same instance as densities.
//! let field = MeanField::new(&network);
//! let x0 = network.densities(&network.counts_from_config(&initial)?);
//! let (x, _) = field.run_to_equilibrium(x0, 1e-9, 0.02, 500.0)?;
//! let majority_out = field.observe(&x, |s| f64::from(s.out == Color(0)));
//! assert!(majority_out > 0.999);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`Protocol`]: pp_protocol::Protocol

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod gillespie;
mod network;
mod ode;
mod trajectory;

pub use error::CrnError;
pub use gillespie::{FiredReaction, SsaReport, StochasticSimulation};
pub use network::{Partner, Reaction, ReactionNetwork, SpeciesId, SpeciesMap};
pub use ode::MeanField;
pub use trajectory::{ode_density_trajectory, ssa_density_trajectory, DensityTrajectory};
