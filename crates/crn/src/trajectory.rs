//! Grid-sampled density trajectories for comparing the stochastic and
//! mean-field views of a network (experiment E13/E14 substrate).

use std::fmt::Debug;
use std::hash::Hash;

use pp_protocol::CountConfig;
use rand::rngs::StdRng;

use crate::error::CrnError;
use crate::gillespie::StochasticSimulation;
use crate::network::ReactionNetwork;
use crate::ode::MeanField;

/// Species densities sampled on a fixed time grid.
///
/// `rows[i]` holds the full density vector (one entry per species, indexed
/// by [`SpeciesId`](crate::network::SpeciesId)) at `times[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityTrajectory {
    /// The sampling grid, in parallel-time units.
    pub times: Vec<f64>,
    /// One density vector per grid point.
    pub rows: Vec<Vec<f64>>,
}

impl DensityTrajectory {
    /// Largest absolute per-species density difference against `other`,
    /// over all grid points (the sup-norm distance used to measure Kurtz
    /// convergence in E13).
    ///
    /// # Panics
    ///
    /// Panics when the two trajectories have different shapes.
    pub fn sup_distance(&self, other: &DensityTrajectory) -> f64 {
        assert_eq!(self.times.len(), other.times.len(), "grid length mismatch");
        let mut worst = 0.0f64;
        for (a, b) in self.rows.iter().zip(&other.rows) {
            assert_eq!(a.len(), b.len(), "species count mismatch");
            for (x, y) in a.iter().zip(b) {
                worst = worst.max((x - y).abs());
            }
        }
        worst
    }

    /// Extracts one species' density series.
    pub fn series(&self, species: usize) -> Vec<f64> {
        self.rows.iter().map(|row| row[species]).collect()
    }
}

/// Samples one stochastic run of `network` from `initial` at the given
/// non-decreasing `times` (parallel-time units).
///
/// The recorded value at grid time `t` is the configuration in force at `t`
/// (the state immediately before the first reaction firing after `t`). When
/// the run goes silent early, the terminal densities fill the remaining grid
/// points — silence is absorbing, so this is exact rather than an
/// approximation.
///
/// # Errors
///
/// Propagates [`CrnError`] from simulation construction; returns
/// [`CrnError::BadIntegrationParameter`] when `times` is not non-decreasing
/// or not finite.
pub fn ssa_density_trajectory<S>(
    network: &ReactionNetwork<S>,
    initial: &CountConfig<S>,
    rng: &mut StdRng,
    times: &[f64],
    max_reactions: u64,
) -> Result<DensityTrajectory, CrnError>
where
    S: Clone + Eq + Ord + Hash + Debug,
{
    validate_grid(times)?;
    let mut sim = StochasticSimulation::new(network, initial)?;
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(times.len());
    let mut next_grid = 0usize;
    let mut fired = 0u64;
    // The configuration is a càdlàg step function of time: grid points
    // strictly before the next firing see the configuration in force; a
    // grid point equal to a firing time sees the post-firing state.
    let mut current = network.densities(sim.counts());
    while next_grid < times.len() && fired < max_reactions {
        let in_force = current;
        if sim.step(rng).is_none() {
            current = in_force; // silent: absorbing, fill below
            break;
        }
        fired += 1;
        let fire_time = sim.time();
        while next_grid < times.len() && times[next_grid] < fire_time {
            rows.push(in_force.clone());
            next_grid += 1;
        }
        current = network.densities(sim.counts());
    }
    while next_grid < times.len() {
        rows.push(current.clone());
        next_grid += 1;
    }
    Ok(DensityTrajectory {
        times: times.to_vec(),
        rows,
    })
}

/// Integrates the mean-field ODE and samples it at the given `times`.
///
/// # Errors
///
/// Returns [`CrnError::BadIntegrationParameter`] for a bad grid or step.
pub fn ode_density_trajectory<S>(
    network: &ReactionNetwork<S>,
    x0: Vec<f64>,
    times: &[f64],
    dt: f64,
) -> Result<DensityTrajectory, CrnError>
where
    S: Clone + Eq + Hash + Debug,
{
    validate_grid(times)?;
    let field = MeanField::new(network);
    let t_end = times.last().copied().unwrap_or(0.0);
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(times.len());
    let mut next = 0usize;
    let mut last: Option<Vec<f64>> = None;
    field.integrate(x0, t_end, dt, |t, x| {
        while next < times.len() && times[next] <= t + 1e-12 {
            rows.push(x.to_vec());
            next += 1;
        }
        last = Some(x.to_vec());
    })?;
    // Fill any trailing grid points (t_end rounding).
    while rows.len() < times.len() {
        rows.push(last.clone().expect("integrate observed at least t = 0"));
    }
    Ok(DensityTrajectory {
        times: times.to_vec(),
        rows,
    })
}

fn validate_grid(times: &[f64]) -> Result<(), CrnError> {
    let monotone = times.windows(2).all(|w| w[0] <= w[1]);
    let finite = times.iter().all(|t| t.is_finite() && *t >= 0.0);
    if monotone && finite {
        Ok(())
    } else {
        Err(CrnError::BadIntegrationParameter { name: "times" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circles_core::{CirclesProtocol, Color};
    use pp_protocol::Protocol;
    use rand::SeedableRng;

    struct Epidemic;
    impl pp_protocol::Protocol for Epidemic {
        type State = bool;
        type Input = bool;
        type Output = bool;
        fn name(&self) -> &str {
            "epidemic"
        }
        fn input(&self, i: &bool) -> bool {
            *i
        }
        fn output(&self, s: &bool) -> bool {
            *s
        }
        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            let t = *a || *b;
            (t, t)
        }
    }

    #[test]
    fn ssa_trajectory_is_monotone_for_epidemic() {
        let network = ReactionNetwork::from_protocol(&Epidemic, &[true, false], 10).unwrap();
        let informed = network.species().id(&true).unwrap() as usize;
        let initial: CountConfig<bool> = std::iter::once(true)
            .chain(std::iter::repeat_n(false, 127))
            .collect();
        let times: Vec<f64> = (0..=20).map(|i| i as f64 * 0.5).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let traj = ssa_density_trajectory(&network, &initial, &mut rng, &times, 100_000).unwrap();
        assert_eq!(traj.rows.len(), times.len());
        let series = traj.series(informed);
        assert!(
            series.windows(2).all(|w| w[0] <= w[1] + 1e-12),
            "not monotone: {series:?}"
        );
        assert!(
            (series[0] - 1.0 / 128.0).abs() < 1e-9,
            "t=0 must be the initial density"
        );
        assert!(
            *series.last().unwrap() > 0.99,
            "epidemic must finish by t = 10"
        );
    }

    #[test]
    fn ssa_trajectory_fills_after_silence() {
        let network = ReactionNetwork::from_protocol(&Epidemic, &[true, false], 10).unwrap();
        let initial: CountConfig<bool> = [true, false, false, false].into_iter().collect();
        // Grid extends far past completion.
        let times = [0.0, 50.0, 100.0];
        let mut rng = StdRng::seed_from_u64(3);
        let traj = ssa_density_trajectory(&network, &initial, &mut rng, &times, 100).unwrap();
        let informed = network.species().id(&true).unwrap() as usize;
        assert_eq!(traj.rows[1][informed], 1.0);
        assert_eq!(traj.rows[2][informed], 1.0);
    }

    #[test]
    fn ode_trajectory_matches_direct_integration() {
        let network = ReactionNetwork::from_protocol(&Epidemic, &[true, false], 10).unwrap();
        let informed = network.species().id(&true).unwrap() as usize;
        let mut x0 = vec![0.0; 2];
        x0[informed] = 0.1;
        x0[1 - informed] = 0.9;
        let times = [0.0, 1.0, 2.0];
        let traj = ode_density_trajectory(&network, x0, &times, 0.01).unwrap();
        assert_eq!(traj.rows.len(), 3);
        for (i, &t) in times.iter().enumerate() {
            let e = (2.0 * t).exp();
            let exact = 0.1 * e / (0.9 + 0.1 * e);
            assert!(
                (traj.rows[i][informed] - exact).abs() < 1e-4,
                "t={t}: {} vs {exact}",
                traj.rows[i][informed]
            );
        }
    }

    #[test]
    fn ssa_and_ode_agree_for_large_n_circles() {
        // A smoke-scale Kurtz check: n = 4096 should track the ODE to a few
        // percent in sup norm on a short horizon (full sweep is E13).
        let protocol = CirclesProtocol::new(2).unwrap();
        let support: Vec<_> = (0..2).map(|i| protocol.input(&Color(i))).collect();
        let network = ReactionNetwork::from_protocol(&protocol, &support, 1_000).unwrap();
        let n = 4096usize;
        let heavy = (n as f64 * 0.65) as usize;
        let mut initial = CountConfig::new();
        initial.insert(support[0], heavy);
        initial.insert(support[1], n - heavy);
        let times: Vec<f64> = (0..=10).map(|i| i as f64 * 0.4).collect();
        let mut rng = StdRng::seed_from_u64(9);
        let ssa = ssa_density_trajectory(&network, &initial, &mut rng, &times, 10_000_000).unwrap();
        let x0 = network.densities(&network.counts_from_config(&initial).unwrap());
        let ode = ode_density_trajectory(&network, x0, &times, 0.01).unwrap();
        let d = ssa.sup_distance(&ode);
        assert!(d < 0.06, "sup distance {d} too large for n = 4096");
    }

    #[test]
    fn bad_grid_is_rejected() {
        let network = ReactionNetwork::from_protocol(&Epidemic, &[true, false], 10).unwrap();
        let initial: CountConfig<bool> = [true, false].into_iter().collect();
        let mut rng = StdRng::seed_from_u64(1);
        let err =
            ssa_density_trajectory(&network, &initial, &mut rng, &[1.0, 0.5], 10).unwrap_err();
        assert_eq!(err, CrnError::BadIntegrationParameter { name: "times" });
        let err2 = ode_density_trajectory(&network, vec![0.5, 0.5], &[f64::NAN], 0.1).unwrap_err();
        assert_eq!(err2, CrnError::BadIntegrationParameter { name: "times" });
    }
}
