//! Reaction networks derived from population protocols.
//!
//! A population protocol *is* a chemical reaction network whose species are
//! the protocol's states and whose reactions are the non-null ordered
//! transitions `A + B → A' + B'`. This module materializes that
//! correspondence: [`ReactionNetwork::from_protocol`] computes the *species
//! closure* of an initial support (every state reachable through pairwise
//! interactions) and enumerates every productive reaction among those
//! species.
//!
//! Working with the closure rather than the declared state space matters in
//! practice: Circles declares `k³` states, but an execution started from
//! self-loops can only ever visit a much smaller set, and the explicit
//! reaction list is quadratic in the species count.

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

use pp_protocol::{CountConfig, Protocol};

use crate::error::CrnError;

/// Dense index of a species within a [`ReactionNetwork`].
pub type SpeciesId = u32;

/// A bijection between protocol states and dense species indices.
#[derive(Debug, Clone, Default)]
pub struct SpeciesMap<S> {
    by_index: Vec<S>,
    by_state: HashMap<S, SpeciesId>,
}

impl<S: Clone + Eq + Hash> SpeciesMap<S> {
    /// Creates an empty map.
    pub fn new() -> Self {
        SpeciesMap {
            by_index: Vec::new(),
            by_state: HashMap::new(),
        }
    }

    /// Number of species.
    pub fn len(&self) -> usize {
        self.by_index.len()
    }

    /// Whether the map contains no species.
    pub fn is_empty(&self) -> bool {
        self.by_index.is_empty()
    }

    /// Returns the id of `state`, inserting it if new.
    pub fn intern(&mut self, state: &S) -> SpeciesId {
        if let Some(&id) = self.by_state.get(state) {
            return id;
        }
        let id = SpeciesId::try_from(self.by_index.len()).expect("species id overflow");
        self.by_index.push(state.clone());
        self.by_state.insert(state.clone(), id);
        id
    }

    /// Returns the id of `state` if present.
    pub fn id(&self, state: &S) -> Option<SpeciesId> {
        self.by_state.get(state).copied()
    }

    /// Returns the state with id `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is out of range.
    pub fn state(&self, id: SpeciesId) -> &S {
        &self.by_index[id as usize]
    }

    /// Iterates over `(id, state)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SpeciesId, &S)> {
        self.by_index
            .iter()
            .enumerate()
            .map(|(i, s)| (i as SpeciesId, s))
    }
}

/// One productive ordered reaction `A + B → A' + B'`.
///
/// `initiator`/`responder` follow the population-protocol convention; for
/// symmetric protocols both orders appear and carry the same joint update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reaction {
    /// Initiator species before the collision.
    pub initiator: SpeciesId,
    /// Responder species before the collision.
    pub responder: SpeciesId,
    /// Species of the two molecules after the collision (initiator first).
    pub products: (SpeciesId, SpeciesId),
}

/// A partner entry of the per-initiator adjacency: responder species and the
/// two product species.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partner {
    /// Responder species.
    pub responder: SpeciesId,
    /// Products `(initiator', responder')`.
    pub products: (SpeciesId, SpeciesId),
}

/// An explicit bimolecular reaction network over the reachable species of a
/// protocol.
///
/// # Example
///
/// ```
/// use pp_crn::ReactionNetwork;
/// use pp_protocol::Protocol;
///
/// /// Two-state epidemic: an informed agent informs the other.
/// struct Epidemic;
/// impl Protocol for Epidemic {
///     type State = bool;
///     type Input = bool;
///     type Output = bool;
///     fn name(&self) -> &str { "epidemic" }
///     fn input(&self, i: &bool) -> bool { *i }
///     fn output(&self, s: &bool) -> bool { *s }
///     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
///         let informed = *a || *b;
///         (informed, informed)
///     }
/// }
///
/// let network = ReactionNetwork::from_protocol(&Epidemic, &[true, false], 100)?;
/// assert_eq!(network.species_count(), 2);
/// // true+false → true+true and false+true → true+true.
/// assert_eq!(network.reaction_count(), 2);
/// # Ok::<(), pp_crn::CrnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReactionNetwork<S> {
    species: SpeciesMap<S>,
    reactions: Vec<Reaction>,
    /// `partners[a]` = productive responders of initiator `a`.
    partners: Vec<Vec<Partner>>,
    /// `influences[c]` = initiators `a` such that `c` appears among
    /// `partners[a]` (used for incremental propensity maintenance).
    influences: Vec<Vec<SpeciesId>>,
}

impl<S: Clone + Eq + Hash + Debug> ReactionNetwork<S> {
    /// Builds the network over the species closure of `support` under
    /// `protocol`, refusing to intern more than `max_species` species.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::ClosureTooLarge`] when the reachable species
    /// count exceeds `max_species`, and [`CrnError::EmptyPopulation`] when
    /// `support` is empty.
    pub fn from_protocol<P>(
        protocol: &P,
        support: &[S],
        max_species: usize,
    ) -> Result<Self, CrnError>
    where
        P: Protocol<State = S>,
    {
        if support.is_empty() {
            return Err(CrnError::EmptyPopulation);
        }
        let mut species = SpeciesMap::new();
        for s in support {
            species.intern(s);
            if species.len() > max_species {
                return Err(CrnError::ClosureTooLarge { limit: max_species });
            }
        }

        // Closure: repeatedly evaluate the transition on every ordered pair
        // of known species; `frontier_start` avoids re-evaluating pairs both
        // of whose species predate the previous round.
        let mut frontier_start = 0;
        loop {
            let known = species.len();
            let mut discovered = false;
            for a_idx in 0..known {
                for b_idx in 0..known {
                    if a_idx < frontier_start && b_idx < frontier_start {
                        continue; // evaluated in an earlier round
                    }
                    let a = species.state(a_idx as SpeciesId).clone();
                    let b = species.state(b_idx as SpeciesId).clone();
                    let (a2, b2) = protocol.transition(&a, &b);
                    for product in [&a2, &b2] {
                        if species.id(product).is_none() {
                            species.intern(product);
                            discovered = true;
                            if species.len() > max_species {
                                return Err(CrnError::ClosureTooLarge { limit: max_species });
                            }
                        }
                    }
                }
            }
            if !discovered {
                break;
            }
            frontier_start = known;
        }

        // Enumerate productive reactions among the closed species set.
        let m = species.len();
        let mut reactions = Vec::new();
        let mut partners: Vec<Vec<Partner>> = vec![Vec::new(); m];
        for (a_idx, partner_list) in partners.iter_mut().enumerate() {
            for b_idx in 0..m {
                let a = species.state(a_idx as SpeciesId);
                let b = species.state(b_idx as SpeciesId);
                let (a2, b2) = protocol.transition(a, b);
                if a2 == *a && b2 == *b {
                    continue; // null interaction: not a reaction
                }
                let pa = species.id(&a2).expect("closure contains all products");
                let pb = species.id(&b2).expect("closure contains all products");
                reactions.push(Reaction {
                    initiator: a_idx as SpeciesId,
                    responder: b_idx as SpeciesId,
                    products: (pa, pb),
                });
                partner_list.push(Partner {
                    responder: b_idx as SpeciesId,
                    products: (pa, pb),
                });
            }
        }

        let mut influences: Vec<Vec<SpeciesId>> = vec![Vec::new(); m];
        for (a_idx, list) in partners.iter().enumerate() {
            for p in list {
                let entry = &mut influences[p.responder as usize];
                if entry.last() != Some(&(a_idx as SpeciesId)) {
                    entry.push(a_idx as SpeciesId);
                }
            }
        }

        Ok(ReactionNetwork {
            species,
            reactions,
            partners,
            influences,
        })
    }

    /// The species map.
    pub fn species(&self) -> &SpeciesMap<S> {
        &self.species
    }

    /// Number of species in the closure.
    pub fn species_count(&self) -> usize {
        self.species.len()
    }

    /// Number of productive ordered reactions.
    pub fn reaction_count(&self) -> usize {
        self.reactions.len()
    }

    /// All productive reactions.
    pub fn reactions(&self) -> &[Reaction] {
        &self.reactions
    }

    /// Productive responders of initiator species `a`.
    pub fn partners(&self, a: SpeciesId) -> &[Partner] {
        &self.partners[a as usize]
    }

    /// Initiator species whose partner list contains `c` as responder.
    pub fn influences(&self, c: SpeciesId) -> &[SpeciesId] {
        &self.influences[c as usize]
    }

    /// Converts an anonymous configuration into a dense per-species count
    /// vector.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::UnknownSpecies`] when `config` contains a state
    /// outside this network's closure, and [`CrnError::EmptyPopulation`]
    /// when it is empty.
    pub fn counts_from_config(&self, config: &CountConfig<S>) -> Result<Vec<u64>, CrnError>
    where
        S: Ord,
    {
        if config.is_empty() {
            return Err(CrnError::EmptyPopulation);
        }
        let mut counts = vec![0u64; self.species.len()];
        for (state, c) in config.iter() {
            let id = self
                .species
                .id(state)
                .ok_or_else(|| CrnError::UnknownSpecies {
                    state: format!("{state:?}"),
                })?;
            counts[id as usize] += c as u64;
        }
        Ok(counts)
    }

    /// Converts a dense count vector back into an anonymous configuration.
    pub fn config_from_counts(&self, counts: &[u64]) -> CountConfig<S>
    where
        S: Ord,
    {
        let mut config = CountConfig::new();
        for (id, state) in self.species.iter() {
            let c = counts[id as usize];
            if c > 0 {
                config.insert(state.clone(), c as usize);
            }
        }
        config
    }

    /// Converts a count vector into a density (unit-sum) vector.
    pub fn densities(&self, counts: &[u64]) -> Vec<f64> {
        let n: u64 = counts.iter().sum();
        assert!(n > 0, "cannot normalize an empty count vector");
        counts.iter().map(|&c| c as f64 / n as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circles_core::{CirclesProtocol, Color};
    use pp_protocol::Protocol;

    /// Three-state one-directional cycle: initiator advances the responder.
    struct Rps;
    impl Protocol for Rps {
        type State = u8;
        type Input = u8;
        type Output = u8;
        fn name(&self) -> &str {
            "rps"
        }
        fn input(&self, i: &u8) -> u8 {
            *i
        }
        fn output(&self, s: &u8) -> u8 {
            *s
        }
        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            if (*b + 1) % 3 == *a {
                (*a, *a) // initiator beats responder
            } else {
                (*a, *b)
            }
        }
    }

    #[test]
    fn closure_discovers_reachable_species_only() {
        // Starting from {0, 1} of the RPS protocol, state 2 is unreachable.
        let network = ReactionNetwork::from_protocol(&Rps, &[0, 1], 10).unwrap();
        assert_eq!(network.species_count(), 2);
        // 0 beats 1 is false ((1+1)%3==2≠0); 1 beats 0 ((0+1)%3==1): one reaction.
        assert_eq!(network.reaction_count(), 1);
        let r = network.reactions()[0];
        assert_eq!(network.species().state(r.initiator), &1);
        assert_eq!(network.species().state(r.responder), &0);
    }

    #[test]
    fn closure_bound_is_enforced() {
        let protocol = CirclesProtocol::new(4).unwrap();
        let support: Vec<_> = (0..4).map(|i| protocol.input(&Color(i))).collect();
        let err = ReactionNetwork::from_protocol(&protocol, &support, 3).unwrap_err();
        assert_eq!(err, CrnError::ClosureTooLarge { limit: 3 });
    }

    #[test]
    fn empty_support_is_rejected() {
        let err = ReactionNetwork::from_protocol(&Rps, &[], 10).unwrap_err();
        assert_eq!(err, CrnError::EmptyPopulation);
    }

    #[test]
    fn circles_closure_is_smaller_than_declared_space() {
        // k=4: declared state space is 64; the closure from the 4 initial
        // self-loops stays well below (outs only take self-loop colors seen).
        let protocol = CirclesProtocol::new(4).unwrap();
        let support: Vec<_> = (0..4).map(|i| protocol.input(&Color(i))).collect();
        let network = ReactionNetwork::from_protocol(&protocol, &support, 100).unwrap();
        assert!(network.species_count() <= 64);
        assert!(network.species_count() >= 16, "bra-kets alone give ≥ k²");
    }

    #[test]
    fn reactions_are_productive_and_closed() {
        let protocol = CirclesProtocol::new(3).unwrap();
        let support: Vec<_> = (0..3).map(|i| protocol.input(&Color(i))).collect();
        let network = ReactionNetwork::from_protocol(&protocol, &support, 100).unwrap();
        for r in network.reactions() {
            let a = network.species().state(r.initiator);
            let b = network.species().state(r.responder);
            let (a2, b2) = protocol.transition(a, b);
            assert!(!(a2 == *a && b2 == *b), "null reaction listed");
            assert_eq!(network.species().id(&a2), Some(r.products.0));
            assert_eq!(network.species().id(&b2), Some(r.products.1));
        }
    }

    #[test]
    fn partner_lists_match_reaction_list() {
        let protocol = CirclesProtocol::new(3).unwrap();
        let support: Vec<_> = (0..3).map(|i| protocol.input(&Color(i))).collect();
        let network = ReactionNetwork::from_protocol(&protocol, &support, 100).unwrap();
        let from_partners: usize = (0..network.species_count())
            .map(|a| network.partners(a as SpeciesId).len())
            .sum();
        assert_eq!(from_partners, network.reaction_count());
    }

    #[test]
    fn influences_are_consistent_with_partners() {
        let protocol = CirclesProtocol::new(3).unwrap();
        let support: Vec<_> = (0..3).map(|i| protocol.input(&Color(i))).collect();
        let network = ReactionNetwork::from_protocol(&protocol, &support, 100).unwrap();
        for c in 0..network.species_count() as SpeciesId {
            for &a in network.influences(c) {
                assert!(
                    network.partners(a).iter().any(|p| p.responder == c),
                    "influence list lists a non-partner"
                );
            }
        }
    }

    #[test]
    fn counts_round_trip_through_config() {
        let protocol = CirclesProtocol::new(3).unwrap();
        let support: Vec<_> = (0..3).map(|i| protocol.input(&Color(i))).collect();
        let network = ReactionNetwork::from_protocol(&protocol, &support, 100).unwrap();
        let config: CountConfig<_> = [support[0], support[0], support[1], support[2]]
            .into_iter()
            .collect();
        let counts = network.counts_from_config(&config).unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 4);
        assert_eq!(network.config_from_counts(&counts), config);
    }

    #[test]
    fn unknown_species_is_rejected() {
        let network = ReactionNetwork::from_protocol(&Rps, &[0, 1], 10).unwrap();
        let config: CountConfig<u8> = [2].into_iter().collect();
        assert!(matches!(
            network.counts_from_config(&config),
            Err(CrnError::UnknownSpecies { .. })
        ));
    }

    #[test]
    fn densities_sum_to_one() {
        let network = ReactionNetwork::from_protocol(&Rps, &[0, 1], 10).unwrap();
        let d = network.densities(&[3, 1]);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(d, vec![0.75, 0.25]);
    }
}
