//! Exact stochastic simulation (Gillespie / SSA) of a protocol's reaction
//! network.
//!
//! The continuous-time reading of a population protocol puts every ordered
//! pair of agents on an independent Poisson clock of rate `1/(n-1)`, so each
//! agent initiates interactions at rate 1 and a unit of time corresponds to
//! `n` interactions — *parallel time*. Null interactions do not change the
//! configuration, so the time to the next *state change* is exponential with
//! rate equal to the total propensity of the productive reactions only; the
//! simulation samples exactly that embedded process (a thinning of the full
//! chain), which keeps silent detection free and sampling exact.
//!
//! Propensity of the ordered reaction `A + B → …`:
//!
//! ```text
//! a(A,B) = N_A · N_B / (n-1)        A ≠ B
//! a(A,A) = N_A · (N_A - 1) / (n-1)
//! ```
//!
//! Sampling is two-level: first the initiator species `A` with weight
//! `N_A · (W_A - [A productive with itself])` where `W_A = Σ_{B ∈
//! partners(A)} N_B`, then the responder within `partners(A)`. The `W_A`
//! accumulators are maintained incrementally through the network's influence
//! lists, so a step costs `O(m + |partners(A)|)` for `m` present species —
//! independent of the reaction count.

use std::fmt::Debug;
use std::hash::Hash;

use pp_protocol::CountConfig;
use rand::rngs::StdRng;
use rand::RngExt;

use crate::error::CrnError;
use crate::network::{ReactionNetwork, SpeciesId};

/// One fired reaction, as reported by [`StochasticSimulation::step`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiredReaction {
    /// Initiator species at the time of the collision.
    pub initiator: SpeciesId,
    /// Responder species at the time of the collision.
    pub responder: SpeciesId,
    /// Product species `(initiator', responder')`.
    pub products: (SpeciesId, SpeciesId),
    /// Time elapsed since the previous state change (exponential holding
    /// time of the productive process).
    pub dt: f64,
}

/// Result of driving a stochastic simulation to silence (or a step budget).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsaReport {
    /// Whether the configuration became silent (no productive reaction has
    /// positive propensity).
    pub silent: bool,
    /// Productive reactions fired.
    pub reactions: u64,
    /// Continuous (parallel) time elapsed.
    pub time: f64,
}

/// An exact continuous-time stochastic simulation over species counts.
///
/// # Example
///
/// ```
/// use circles_core::{CirclesProtocol, Color};
/// use pp_crn::{ReactionNetwork, StochasticSimulation};
/// use pp_protocol::Protocol;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let protocol = CirclesProtocol::new(3)?;
/// let inputs = [Color(0), Color(0), Color(1), Color(2)];
/// let support: Vec<_> = inputs.iter().map(|c| protocol.input(c)).collect();
/// let network = ReactionNetwork::from_protocol(&protocol, &support, 1_000)?;
/// let initial = support.iter().copied().collect();
/// let mut sim = StochasticSimulation::new(&network, &initial)?;
/// let mut rng = StdRng::seed_from_u64(7);
/// let report = sim.run_until_silent(&mut rng, 100_000);
/// assert!(report.silent);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct StochasticSimulation<'a, S> {
    network: &'a ReactionNetwork<S>,
    counts: Vec<u64>,
    /// `w[a] = Σ_{B ∈ partners(a)} N_B`, maintained incrementally.
    w: Vec<i64>,
    /// `self_productive[a]`: whether `(a, a)` is a productive reaction.
    self_productive: Vec<bool>,
    n: u64,
    time: f64,
    reactions: u64,
}

impl<'a, S: Clone + Eq + Ord + Hash + Debug> StochasticSimulation<'a, S> {
    /// Creates a simulation of `network` from the anonymous configuration
    /// `initial`.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::EmptyPopulation`] / [`CrnError::PopulationTooSmall`]
    /// for degenerate populations and [`CrnError::UnknownSpecies`] when
    /// `initial` contains a state outside the network.
    pub fn new(
        network: &'a ReactionNetwork<S>,
        initial: &CountConfig<S>,
    ) -> Result<Self, CrnError> {
        let counts = network.counts_from_config(initial)?;
        let n: u64 = counts.iter().sum();
        if n < 2 {
            return Err(CrnError::PopulationTooSmall { n: n as usize });
        }
        let m = network.species_count();
        let mut w = vec![0i64; m];
        let mut self_productive = vec![false; m];
        for a in 0..m {
            let mut acc = 0i64;
            for p in network.partners(a as SpeciesId) {
                acc += counts[p.responder as usize] as i64;
                if p.responder as usize == a {
                    self_productive[a] = true;
                }
            }
            w[a] = acc;
        }
        Ok(StochasticSimulation {
            network,
            counts,
            w,
            self_productive,
            n,
            time: 0.0,
            reactions: 0,
        })
    }

    /// Continuous (parallel) time elapsed so far.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Productive reactions fired so far.
    pub fn reactions_fired(&self) -> u64 {
        self.reactions
    }

    /// Number of molecules (agents).
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Current per-species counts, indexed by [`SpeciesId`].
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Current configuration as a state multiset.
    pub fn config(&self) -> CountConfig<S> {
        self.network.config_from_counts(&self.counts)
    }

    /// Initiator weight `N_A · (W_A - [A self-productive])` (integer part
    /// of the propensity; the common factor `1/(n-1)` is applied once).
    fn initiator_weight(&self, a: usize) -> u64 {
        let count = self.counts[a];
        if count == 0 {
            return 0;
        }
        let adj = i64::from(self.self_productive[a]);
        let partners = self.w[a] - adj;
        debug_assert!(partners >= 0, "negative partner mass for species {a}");
        count * partners as u64
    }

    /// Fires one reaction; returns `None` when the configuration is silent.
    ///
    /// Advances [`time`](Self::time) by an exponential holding time with
    /// rate `total_weight / (n-1)`.
    pub fn step(&mut self, rng: &mut StdRng) -> Option<FiredReaction> {
        let m = self.network.species_count();
        let mut total: u64 = 0;
        for a in 0..m {
            total += self.initiator_weight(a);
        }
        if total == 0 {
            return None; // silent: no productive pair exists
        }

        // Holding time of the productive process.
        let rate = total as f64 / (self.n - 1) as f64;
        let u: f64 = rng.random();
        let dt = -(1.0 - u).ln() / rate;
        self.time += dt;

        // Two-level sampling: initiator species, then responder species.
        let mut r = rng.random_range(0..total);
        let mut initiator = usize::MAX;
        for a in 0..m {
            let wa = self.initiator_weight(a);
            if r < wa {
                initiator = a;
                break;
            }
            r -= wa;
        }
        debug_assert!(initiator != usize::MAX, "initiator sampling fell through");

        let adj = i64::from(self.self_productive[initiator]);
        let partner_total = (self.w[initiator] - adj) as u64;
        let mut r2 = rng.random_range(0..partner_total);
        let mut chosen = None;
        for p in self.network.partners(initiator as SpeciesId) {
            let mut nb = self.counts[p.responder as usize];
            if p.responder as usize == initiator {
                nb = nb.saturating_sub(1);
            }
            if r2 < nb {
                chosen = Some(*p);
                break;
            }
            r2 -= nb;
        }
        let partner = chosen.expect("responder sampling fell through");

        // Apply A + B → A' + B' and maintain the W accumulators.
        let (pa, pb) = partner.products;
        let deltas = [
            (initiator as SpeciesId, -1i64),
            (partner.responder, -1),
            (pa, 1),
            (pb, 1),
        ];
        for (species, delta) in deltas {
            let c = &mut self.counts[species as usize];
            *c = c
                .checked_add_signed(delta)
                .expect("species count underflow");
            for &a in self.network.influences(species) {
                self.w[a as usize] += delta;
            }
        }
        self.reactions += 1;
        Some(FiredReaction {
            initiator: initiator as SpeciesId,
            responder: partner.responder,
            products: (pa, pb),
            dt,
        })
    }

    /// Fires reactions until the configuration is silent or `max_reactions`
    /// have fired.
    pub fn run_until_silent(&mut self, rng: &mut StdRng, max_reactions: u64) -> SsaReport {
        let mut fired = 0;
        while fired < max_reactions {
            if self.step(rng).is_none() {
                return SsaReport {
                    silent: true,
                    reactions: self.reactions,
                    time: self.time,
                };
            }
            fired += 1;
        }
        let silent = (0..self.network.species_count()).all(|a| self.initiator_weight(a) == 0);
        SsaReport {
            silent,
            reactions: self.reactions,
            time: self.time,
        }
    }

    /// A density observable: `Σ_s f(state_s) · N_s / n`.
    pub fn observe(&self, mut f: impl FnMut(&S) -> f64) -> f64 {
        let mut acc = 0.0;
        for (id, state) in self.network.species().iter() {
            let c = self.counts[id as usize];
            if c > 0 {
                acc += f(state) * c as f64;
            }
        }
        acc / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circles_core::{
        invariants::conservation_holds, prediction, CirclesProtocol, CirclesState, Color,
    };
    use pp_protocol::Protocol;
    use rand::SeedableRng;

    /// Two-state epidemic: any informed participant informs the other.
    struct Epidemic;
    impl Protocol for Epidemic {
        type State = bool;
        type Input = bool;
        type Output = bool;
        fn name(&self) -> &str {
            "epidemic"
        }
        fn input(&self, i: &bool) -> bool {
            *i
        }
        fn output(&self, s: &bool) -> bool {
            *s
        }
        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            let informed = *a || *b;
            (informed, informed)
        }
    }

    fn circles_setup(
        k: u16,
        inputs: &[u16],
    ) -> (
        CirclesProtocol,
        ReactionNetwork<CirclesState>,
        CountConfig<CirclesState>,
    ) {
        let protocol = CirclesProtocol::new(k).unwrap();
        let support: Vec<_> = (0..k).map(|i| protocol.input(&Color(i))).collect();
        let network = ReactionNetwork::from_protocol(&protocol, &support, 100_000).unwrap();
        let initial: CountConfig<_> = inputs.iter().map(|&i| protocol.input(&Color(i))).collect();
        (protocol, network, initial)
    }

    #[test]
    fn epidemic_fires_exactly_n_minus_one_reactions() {
        let network = ReactionNetwork::from_protocol(&Epidemic, &[true, false], 10).unwrap();
        let initial: CountConfig<bool> = std::iter::once(true)
            .chain(std::iter::repeat_n(false, 63))
            .collect();
        let mut rng = StdRng::seed_from_u64(11);
        let mut sim = StochasticSimulation::new(&network, &initial).unwrap();
        let report = sim.run_until_silent(&mut rng, 10_000);
        assert!(report.silent);
        assert_eq!(report.reactions, 63);
        assert_eq!(sim.counts().iter().sum::<u64>(), 64);
    }

    #[test]
    fn epidemic_completion_time_matches_analytic_expectation() {
        // Informed count i → productive rate 2·i·(n-i)/(n-1), so
        // E[T] = Σ_{i=1}^{n-1} (n-1) / (2 i (n-i)).
        let n = 32u64;
        let expected: f64 = (1..n)
            .map(|i| (n - 1) as f64 / (2.0 * i as f64 * (n - i) as f64))
            .sum();
        let network = ReactionNetwork::from_protocol(&Epidemic, &[true, false], 10).unwrap();
        let initial: CountConfig<bool> = std::iter::once(true)
            .chain(std::iter::repeat_n(false, n as usize - 1))
            .collect();
        let trials = 600;
        let mut rng = StdRng::seed_from_u64(5);
        let mut acc = 0.0;
        for _ in 0..trials {
            let mut sim = StochasticSimulation::new(&network, &initial).unwrap();
            acc += sim.run_until_silent(&mut rng, 10_000).time;
        }
        let mean = acc / trials as f64;
        let rel = (mean - expected).abs() / expected;
        assert!(
            rel < 0.08,
            "mean {mean} vs expected {expected} (rel err {rel})"
        );
    }

    #[test]
    fn mass_is_conserved_across_steps() {
        let (_, network, initial) = circles_setup(3, &[0, 0, 0, 1, 1, 2]);
        let mut sim = StochasticSimulation::new(&network, &initial).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            if sim.step(&mut rng).is_none() {
                break;
            }
            assert_eq!(sim.counts().iter().sum::<u64>(), 6);
        }
    }

    #[test]
    fn circles_braket_invariant_is_conserved() {
        let (_, network, initial) = circles_setup(4, &[0, 0, 1, 1, 2, 3, 3, 3]);
        let mut sim = StochasticSimulation::new(&network, &initial).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..500 {
            let fired = sim.step(&mut rng);
            let brakets = prediction::braket_config(&sim.config());
            assert!(conservation_holds(&brakets, 4), "Lemma 3.3 violated in SSA");
            if fired.is_none() {
                break;
            }
        }
    }

    #[test]
    fn circles_ssa_reaches_predicted_terminal_brakets() {
        // The SSA's embedded jump chain is the discrete uniform-pair chain
        // conditioned on productive steps, so Lemma 3.6 applies verbatim:
        // the terminal bra-ket multiset is ⋃_p f(G_p).
        let inputs = [0u16, 0, 0, 1, 1, 2, 2, 3];
        let (_, network, initial) = circles_setup(4, &inputs);
        let colors: Vec<Color> = inputs.iter().map(|&c| Color(c)).collect();
        let predicted = prediction::predicted_brakets(&colors, 4).unwrap();
        for seed in 0..20 {
            let mut sim = StochasticSimulation::new(&network, &initial).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let report = sim.run_until_silent(&mut rng, 100_000);
            assert!(report.silent, "run {seed} did not stabilize");
            assert_eq!(
                prediction::braket_config(&sim.config()),
                predicted,
                "terminal bra-kets differ from Lemma 3.6 prediction (seed {seed})"
            );
        }
    }

    #[test]
    fn circles_ssa_reaches_majority_consensus() {
        let (protocol, network, initial) = circles_setup(3, &[0, 0, 0, 0, 1, 1, 2]);
        let mut sim = StochasticSimulation::new(&network, &initial).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let report = sim.run_until_silent(&mut rng, 100_000);
        assert!(report.silent);
        assert_eq!(sim.config().output_consensus(&protocol), Some(Color(0)));
    }

    #[test]
    fn silent_configuration_yields_no_step() {
        // All agents share one color: ⟨i|i⟩ everywhere is silent from the
        // start (self-loop meets self-loop of the same color: null).
        let (_, network, initial) = circles_setup(3, &[1, 1, 1, 1]);
        let mut sim = StochasticSimulation::new(&network, &initial).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sim.step(&mut rng).is_none());
        assert_eq!(sim.time(), 0.0);
        assert_eq!(sim.reactions_fired(), 0);
    }

    #[test]
    fn same_seed_reproduces_run() {
        let (_, network, initial) = circles_setup(3, &[0, 0, 1, 1, 2]);
        let run = |seed: u64| {
            let mut sim = StochasticSimulation::new(&network, &initial).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let report = sim.run_until_silent(&mut rng, 100_000);
            (report.reactions, report.time.to_bits(), sim.config())
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    fn population_of_one_is_rejected() {
        let (_, network, _) = circles_setup(3, &[0, 1]);
        let single: CountConfig<CirclesState> =
            [CirclesState::initial(Color(0))].into_iter().collect();
        assert_eq!(
            StochasticSimulation::new(&network, &single).unwrap_err(),
            CrnError::PopulationTooSmall { n: 1 }
        );
    }

    #[test]
    fn observe_computes_density_weighted_average() {
        let (_, network, initial) = circles_setup(3, &[0, 0, 0, 1]);
        let sim = StochasticSimulation::new(&network, &initial).unwrap();
        // Fraction of agents whose bra is color 0: 3/4.
        let frac = sim.observe(|s| f64::from(s.braket.bra == Color(0)));
        assert!((frac - 0.75).abs() < 1e-12);
    }

    #[test]
    fn step_budget_reports_non_silent() {
        let (_, network, initial) = circles_setup(3, &[0, 0, 1, 1, 2]);
        let mut sim = StochasticSimulation::new(&network, &initial).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let report = sim.run_until_silent(&mut rng, 1);
        assert_eq!(report.reactions, 1);
        assert!(!report.silent, "one step cannot silence this instance");
    }
}
