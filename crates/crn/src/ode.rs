//! Mean-field (large-`n` limit) dynamics of a reaction network.
//!
//! As `n → ∞` with time measured in parallel units (`n` interactions per
//! unit), the empirical species densities `x_s = N_s / n` of a population
//! protocol under the uniform-random scheduler converge (Kurtz's theorem) to
//! the solution of the deterministic *mean-field* ODE
//!
//! ```text
//! dx_s/dt  =  Σ_{(A,B) productive}  x_A · x_B · φ_s(A,B)
//! φ_s(A,B) =  [s = A'] + [s = B'] − [s = A] − [s = B]
//! ```
//!
//! where the sum ranges over ordered productive pairs. This is the classical
//! chemical *law of mass action* for the bimolecular network — the setting
//! the Circles paper's energy-minimization intuition comes from.
//!
//! The module integrates the ODE with a fixed-step classical Runge–Kutta
//! (RK4) scheme; the vector field is polynomial (quadratic) and globally
//! smooth on the simplex, so fixed steps of `dt ≤ 0.05` are accurate to well
//! below measurement noise for every experiment in this repository.

use std::fmt::Debug;
use std::hash::Hash;

use crate::error::CrnError;
use crate::network::ReactionNetwork;

/// Mean-field integrator for a [`ReactionNetwork`].
///
/// # Example
///
/// The two-way epidemic has mean field `dx/dt = 2x(1−x)` (logistic growth);
/// see [`MeanField::integrate`] below.
///
/// ```
/// use pp_crn::{MeanField, ReactionNetwork};
/// # use pp_protocol::Protocol;
/// # struct Epidemic;
/// # impl Protocol for Epidemic {
/// #     type State = bool; type Input = bool; type Output = bool;
/// #     fn name(&self) -> &str { "epidemic" }
/// #     fn input(&self, i: &bool) -> bool { *i }
/// #     fn output(&self, s: &bool) -> bool { *s }
/// #     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
/// #         let t = *a || *b; (t, t)
/// #     }
/// # }
/// let network = ReactionNetwork::from_protocol(&Epidemic, &[true, false], 10)?;
/// let field = MeanField::new(&network);
/// let informed = network.species().id(&true).unwrap() as usize;
/// let mut x0 = vec![0.0; 2];
/// x0[informed] = 0.1;
/// x0[1 - informed] = 0.9;
/// let x = field.integrate(x0, 4.0, 0.01, |_, _| ())?;
/// assert!(x[informed] > 0.99); // logistic: x(4) ≈ 0.997
/// # Ok::<(), pp_crn::CrnError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MeanField<'a, S> {
    network: &'a ReactionNetwork<S>,
}

impl<'a, S: Clone + Eq + Hash + Debug> MeanField<'a, S> {
    /// Creates the mean-field view of `network`.
    pub fn new(network: &'a ReactionNetwork<S>) -> Self {
        MeanField { network }
    }

    /// Evaluates the vector field: writes `dx/dt` into `dx`.
    ///
    /// # Panics
    ///
    /// Panics when `x` or `dx` do not have one entry per species.
    pub fn derivative(&self, x: &[f64], dx: &mut [f64]) {
        let m = self.network.species_count();
        assert_eq!(x.len(), m, "density vector length mismatch");
        assert_eq!(dx.len(), m, "derivative vector length mismatch");
        dx.fill(0.0);
        for a in 0..m {
            let xa = x[a];
            if xa == 0.0 {
                continue;
            }
            for p in self.network.partners(a as u32) {
                let flux = xa * x[p.responder as usize];
                if flux == 0.0 {
                    continue;
                }
                dx[a] -= flux;
                dx[p.responder as usize] -= flux;
                dx[p.products.0 as usize] += flux;
                dx[p.products.1 as usize] += flux;
            }
        }
    }

    /// Sup-norm of the vector field at `x` — zero exactly at mean-field
    /// fixed points.
    pub fn residual(&self, x: &[f64]) -> f64 {
        let mut dx = vec![0.0; x.len()];
        self.derivative(x, &mut dx);
        dx.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// One classical RK4 step of size `dt`, in place.
    fn rk4_step(&self, x: &mut [f64], dt: f64, scratch: &mut Rk4Scratch) {
        let m = x.len();
        let Rk4Scratch {
            k1,
            k2,
            k3,
            k4,
            tmp,
        } = scratch;
        self.derivative(x, k1);
        for i in 0..m {
            tmp[i] = x[i] + 0.5 * dt * k1[i];
        }
        self.derivative(tmp, k2);
        for i in 0..m {
            tmp[i] = x[i] + 0.5 * dt * k2[i];
        }
        self.derivative(tmp, k3);
        for i in 0..m {
            tmp[i] = x[i] + dt * k3[i];
        }
        self.derivative(tmp, k4);
        for i in 0..m {
            x[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
            // Quadratic fields can overshoot the simplex boundary by O(dt⁵);
            // clamp to keep densities physical over long horizons.
            x[i] = x[i].max(0.0);
        }
    }

    /// Integrates from `x0` to time `t_end` with fixed step `dt`, invoking
    /// `observer(t, x)` after every step (and once at `t = 0`). Returns the
    /// final density vector.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::BadIntegrationParameter`] when `dt` or `t_end`
    /// is non-finite or non-positive.
    pub fn integrate(
        &self,
        x0: Vec<f64>,
        t_end: f64,
        dt: f64,
        mut observer: impl FnMut(f64, &[f64]),
    ) -> Result<Vec<f64>, CrnError> {
        if !dt.is_finite() || dt <= 0.0 {
            return Err(CrnError::BadIntegrationParameter { name: "dt" });
        }
        if !t_end.is_finite() || t_end < 0.0 {
            return Err(CrnError::BadIntegrationParameter { name: "t_end" });
        }
        let m = self.network.species_count();
        assert_eq!(x0.len(), m, "density vector length mismatch");
        let mut x = x0;
        let mut scratch = Rk4Scratch::new(m);
        let mut t = 0.0;
        observer(t, &x);
        while t < t_end {
            let step = dt.min(t_end - t);
            self.rk4_step(&mut x, step, &mut scratch);
            t += step;
            observer(t, &x);
        }
        Ok(x)
    }

    /// Integrates until the residual drops below `tol` (a mean-field fixed
    /// point, up to tolerance) or time exceeds `max_t`. Returns the final
    /// densities and the time reached.
    ///
    /// # Errors
    ///
    /// Returns [`CrnError::BadIntegrationParameter`] for bad `dt`, `tol`
    /// or `max_t`.
    pub fn run_to_equilibrium(
        &self,
        x0: Vec<f64>,
        tol: f64,
        dt: f64,
        max_t: f64,
    ) -> Result<(Vec<f64>, f64), CrnError> {
        if !tol.is_finite() || tol <= 0.0 {
            return Err(CrnError::BadIntegrationParameter { name: "tol" });
        }
        if !dt.is_finite() || dt <= 0.0 {
            return Err(CrnError::BadIntegrationParameter { name: "dt" });
        }
        if !max_t.is_finite() || max_t <= 0.0 {
            return Err(CrnError::BadIntegrationParameter { name: "max_t" });
        }
        let m = self.network.species_count();
        assert_eq!(x0.len(), m, "density vector length mismatch");
        let mut x = x0;
        let mut scratch = Rk4Scratch::new(m);
        let mut t = 0.0;
        while t < max_t {
            if self.residual(&x) < tol {
                break;
            }
            self.rk4_step(&mut x, dt, &mut scratch);
            t += dt;
        }
        Ok((x, t))
    }

    /// A density observable: `Σ_s f(state_s) · x_s`.
    pub fn observe(&self, x: &[f64], mut f: impl FnMut(&S) -> f64) -> f64 {
        self.network
            .species()
            .iter()
            .map(|(id, state)| f(state) * x[id as usize])
            .sum()
    }
}

/// Reusable RK4 stage buffers.
#[derive(Debug)]
struct Rk4Scratch {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    tmp: Vec<f64>,
}

impl Rk4Scratch {
    fn new(m: usize) -> Self {
        Rk4Scratch {
            k1: vec![0.0; m],
            k2: vec![0.0; m],
            k3: vec![0.0; m],
            k4: vec![0.0; m],
            tmp: vec![0.0; m],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::ReactionNetwork;
    use circles_core::{CirclesProtocol, CirclesState, Color};
    use pp_protocol::Protocol;

    struct Epidemic;
    impl Protocol for Epidemic {
        type State = bool;
        type Input = bool;
        type Output = bool;
        fn name(&self) -> &str {
            "epidemic"
        }
        fn input(&self, i: &bool) -> bool {
            *i
        }
        fn output(&self, s: &bool) -> bool {
            *s
        }
        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            let t = *a || *b;
            (t, t)
        }
    }

    fn epidemic_network() -> ReactionNetwork<bool> {
        ReactionNetwork::from_protocol(&Epidemic, &[true, false], 10).unwrap()
    }

    #[test]
    fn epidemic_matches_logistic_closed_form() {
        // dx/dt = 2x(1-x) ⇒ x(t) = x0 e^{2t} / (1 − x0 + x0 e^{2t}).
        let network = epidemic_network();
        let field = MeanField::new(&network);
        let informed = network.species().id(&true).unwrap() as usize;
        let x0_density = 0.05;
        let mut x0 = vec![0.0; 2];
        x0[informed] = x0_density;
        x0[1 - informed] = 1.0 - x0_density;
        let t_end = 2.5;
        let x = field.integrate(x0, t_end, 0.005, |_, _| ()).unwrap();
        let e = (2.0 * t_end).exp();
        let exact = x0_density * e / (1.0 - x0_density + x0_density * e);
        assert!(
            (x[informed] - exact).abs() < 1e-6,
            "rk4 {} vs exact {exact}",
            x[informed]
        );
    }

    #[test]
    fn mass_is_conserved_by_integration() {
        let protocol = CirclesProtocol::new(3).unwrap();
        let support: Vec<_> = (0..3).map(|i| protocol.input(&Color(i))).collect();
        let network = ReactionNetwork::from_protocol(&protocol, &support, 1_000).unwrap();
        let field = MeanField::new(&network);
        let m = network.species_count();
        let mut x0 = vec![0.0; m];
        let weights = [0.5, 0.3, 0.2];
        for (i, s) in support.iter().enumerate() {
            x0[network.species().id(s).unwrap() as usize] = weights[i];
        }
        let mut max_drift = 0.0f64;
        field
            .integrate(x0, 20.0, 0.02, |_, x| {
                let total: f64 = x.iter().sum();
                max_drift = max_drift.max((total - 1.0).abs());
            })
            .unwrap();
        assert!(max_drift < 1e-9, "density mass drifted by {max_drift}");
    }

    #[test]
    fn circles_k2_mean_field_reaches_predicted_equilibrium() {
        // Densities (p, 1−p) with p = 0.7: the bra-ket marginal must settle
        // at x(⟨0|0⟩)=2p−1, x(⟨0|1⟩)=x(⟨1|0⟩)=1−p, x(⟨1|1⟩)=0, and every
        // agent's out must converge to the majority color 0.
        let protocol = CirclesProtocol::new(2).unwrap();
        let support: Vec<_> = (0..2).map(|i| protocol.input(&Color(i))).collect();
        let network = ReactionNetwork::from_protocol(&protocol, &support, 1_000).unwrap();
        let field = MeanField::new(&network);
        let m = network.species_count();
        let p = 0.7;
        let mut x0 = vec![0.0; m];
        x0[network.species().id(&support[0]).unwrap() as usize] = p;
        x0[network.species().id(&support[1]).unwrap() as usize] = 1.0 - p;
        let (x, _) = field.run_to_equilibrium(x0, 1e-10, 0.02, 500.0).unwrap();

        let braket_mass = |bra: u16, ket: u16| {
            field.observe(&x, |s: &CirclesState| {
                f64::from(s.braket.bra == Color(bra) && s.braket.ket == Color(ket))
            })
        };
        assert!((braket_mass(0, 0) - (2.0 * p - 1.0)).abs() < 1e-6);
        assert!((braket_mass(1, 1) - 0.0).abs() < 1e-6);
        assert!((braket_mass(0, 1) - (1.0 - p)).abs() < 1e-6);
        assert!((braket_mass(1, 0) - (1.0 - p)).abs() < 1e-6);

        let out_majority = field.observe(&x, |s: &CirclesState| f64::from(s.out == Color(0)));
        assert!(
            out_majority > 1.0 - 1e-6,
            "out mass on majority: {out_majority}"
        );
    }

    #[test]
    fn residual_is_zero_at_fixed_point() {
        let network = epidemic_network();
        let field = MeanField::new(&network);
        let informed = network.species().id(&true).unwrap() as usize;
        let mut x = vec![0.0; 2];
        x[informed] = 1.0; // all informed: absorbing
        assert_eq!(field.residual(&x), 0.0);
    }

    #[test]
    fn bad_parameters_are_rejected() {
        let network = epidemic_network();
        let field = MeanField::new(&network);
        let x0 = vec![0.5, 0.5];
        assert_eq!(
            field
                .integrate(x0.clone(), 1.0, 0.0, |_, _| ())
                .unwrap_err(),
            CrnError::BadIntegrationParameter { name: "dt" }
        );
        assert_eq!(
            field
                .integrate(x0.clone(), f64::NAN, 0.1, |_, _| ())
                .unwrap_err(),
            CrnError::BadIntegrationParameter { name: "t_end" }
        );
        assert_eq!(
            field.run_to_equilibrium(x0, -1.0, 0.1, 1.0).unwrap_err(),
            CrnError::BadIntegrationParameter { name: "tol" }
        );
    }

    #[test]
    fn observer_sees_initial_and_final_time() {
        let network = epidemic_network();
        let field = MeanField::new(&network);
        let mut times = Vec::new();
        field
            .integrate(vec![0.5, 0.5], 0.35, 0.1, |t, _| times.push(t))
            .unwrap();
        assert_eq!(times.first(), Some(&0.0));
        assert!((times.last().unwrap() - 0.35).abs() < 1e-12);
        // 0.0, 0.1, 0.2, 0.3, 0.35 — final partial step included.
        assert_eq!(times.len(), 5);
    }
}
