//! Robustness of the on-disk transition-table store.
//!
//! Three claims:
//!
//! 1. **Round trips are lossless**: `save` → `load` reproduces a
//!    bit-identical table (`dump()` equality), and an engine warm-started
//!    from the loaded table replays a cold run's `RunReport` exactly —
//!    with **zero protocol transition calls** on the load itself.
//! 2. **Corruption fails loudly**: truncation at every prefix length, a
//!    flipped checksum byte, a flipped body byte, a wrong format version
//!    and a foreign magic each produce the matching typed [`StoreError`] —
//!    never a wrong table.
//! 3. **Identity is enforced**: a store saved for one protocol
//!    parameterization refuses to load for another
//!    ([`StoreError::IdentityMismatch`]).

use std::cell::Cell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use pp_protocol::transition_store::{self, StoreError, FORMAT_V1, FORMAT_VERSION};
use pp_protocol::{CountEngine, Protocol, TransitionTable};
use proptest::prelude::*;

/// A randomly generated symmetric rule over states `0..m` (u8 states give
/// the `Display`/`FromStr` codec for free); mirrors the `warm_table`
/// integration test's generator.
struct RandSym {
    m: u8,
    seed: u64,
    calls: Cell<u64>,
}

impl RandSym {
    fn new(m: u8, seed: u64) -> Self {
        RandSym {
            m,
            seed,
            calls: Cell::new(0),
        }
    }
}

fn mix(seed: u64, lo: u8, hi: u8) -> u64 {
    let mut h = seed ^ (u64::from(lo) << 8) ^ (u64::from(hi) << 20) ^ 0x9E37_79B9_7F4A_7C15;
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

impl Protocol for RandSym {
    type State = u8;
    type Input = u8;
    type Output = u8;

    fn name(&self) -> &str {
        "rand-sym"
    }

    fn input(&self, i: &u8) -> u8 {
        *i % self.m
    }

    fn output(&self, s: &u8) -> u8 {
        *s
    }

    fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
        self.calls.set(self.calls.get() + 1);
        let (lo, hi) = (*a.min(b), *a.max(b));
        let h = mix(self.seed, lo, hi);
        if h.is_multiple_of(3) {
            let t = ((h >> 2) % u64::from(self.m)) as u8;
            (t, t)
        } else {
            (*a, *b)
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }

    fn fingerprint_param(&self) -> u64 {
        // Rule seed and state count identify the random protocol instance.
        self.seed ^ (u64::from(self.m) << 56)
    }
}

const BUDGET: u64 = 200_000;

/// A unique temp path per call, cleaned up by [`TempStore`]'s Drop.
struct TempStore(PathBuf);

impl TempStore {
    fn new() -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        TempStore(std::env::temp_dir().join(format!(
            "pp-store-roundtrip-{}-{}.ppts",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Runs a bounded uniform trial, returning the warm table and the report.
fn discovered(
    protocol: &RandSym,
    inputs: &[u8],
    seed: u64,
) -> (TransitionTable<RandSym>, pp_protocol::RunReport<u8>) {
    let mut engine = CountEngine::from_inputs(protocol, inputs, seed);
    let _ = engine.run_until_silent(BUDGET);
    (engine.warm_table(), engine.report())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Claim 1: save → load is bit-lossless, warm runs off the loaded
    /// table replay cold reports exactly, and the load itself makes zero
    /// protocol transition calls.
    #[test]
    fn round_trip_is_bit_identical(
        rule_seed in any::<u64>(),
        inputs in proptest::collection::vec(0u8..12, 2..40),
        run_seed in any::<u64>(),
    ) {
        let protocol = RandSym::new(12, rule_seed);
        let (table, cold_report) = discovered(&protocol, &inputs, run_seed);
        let tmp = TempStore::new();

        let meta = transition_store::save(&table, &protocol, &tmp.0).unwrap();
        prop_assert_eq!(meta.states as usize, table.len());
        prop_assert_eq!(meta.pairs as usize, table.active_pairs());

        let calls_before = protocol.calls.get();
        let loaded = transition_store::load(&protocol, &tmp.0).unwrap();
        prop_assert_eq!(
            protocol.calls.get(),
            calls_before,
            "loading must make zero protocol transition calls"
        );
        prop_assert_eq!(loaded.dump(), table.dump());

        // A warm engine over the loaded table replays the cold run's
        // report bit-identically (canonical slot order contract).
        let config = inputs.iter().map(|i| protocol.input(i)).collect();
        let mut warm = CountEngine::with_table(
            &protocol,
            config,
            pp_protocol::UniformCountScheduler::new(),
            run_seed,
            &loaded,
        );
        let _ = warm.run_until_silent(BUDGET);
        prop_assert_eq!(warm.report(), cold_report);
    }

    /// Claim 2 (exhaustive truncation): every proper prefix of a valid
    /// store fails with a typed error — never loads.
    #[test]
    fn every_truncation_fails_loudly(
        rule_seed in any::<u64>(),
        cut_permille in 0u64..1000,
    ) {
        let protocol = RandSym::new(8, rule_seed);
        let (table, _) = discovered(&protocol, &[0, 1, 2, 3, 4, 5, 6, 7], 1);
        let tmp = TempStore::new();
        transition_store::save(&table, &protocol, &tmp.0).unwrap();
        let bytes = std::fs::read(&tmp.0).unwrap();
        let cut = bytes.len() * usize::try_from(cut_permille).unwrap() / 1000;
        std::fs::write(&tmp.0, &bytes[..cut]).unwrap();
        let err = transition_store::load(&protocol, &tmp.0).unwrap_err();
        prop_assert!(
            matches!(
                err,
                StoreError::Truncated { .. } | StoreError::ChecksumMismatch { .. }
            ),
            "prefix of {cut}/{} bytes gave {err}", bytes.len()
        );
    }
}

/// Builds one small valid store on disk and returns its bytes.
fn saved_store(protocol: &RandSym) -> (TempStore, Vec<u8>) {
    let (table, _) = discovered(protocol, &[0, 1, 2, 3, 4, 5], 3);
    let tmp = TempStore::new();
    transition_store::save(&table, protocol, &tmp.0).unwrap();
    let bytes = std::fs::read(&tmp.0).unwrap();
    (tmp, bytes)
}

#[test]
fn flipped_checksum_byte_is_a_checksum_mismatch() {
    let protocol = RandSym::new(8, 0xABCDEF);
    let (tmp, mut bytes) = saved_store(&protocol);
    bytes[0x80] ^= 0xFF; // first byte of the stored checksum
    std::fs::write(&tmp.0, &bytes).unwrap();
    assert!(matches!(
        transition_store::load(&protocol, &tmp.0),
        Err(StoreError::ChecksumMismatch { .. })
    ));
}

#[test]
fn flipped_body_byte_is_a_checksum_mismatch() {
    let protocol = RandSym::new(8, 0xABCDEF);
    let (tmp, mut bytes) = saved_store(&protocol);
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&tmp.0, &bytes).unwrap();
    assert!(matches!(
        transition_store::load(&protocol, &tmp.0),
        Err(StoreError::ChecksumMismatch { .. })
    ));
}

#[test]
fn wrong_version_is_unsupported() {
    let protocol = RandSym::new(8, 0xABCDEF);
    let (tmp, mut bytes) = saved_store(&protocol);
    bytes[0x0C..0x10].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    std::fs::write(&tmp.0, &bytes).unwrap();
    match transition_store::load(&protocol, &tmp.0) {
        Err(StoreError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn foreign_magic_is_rejected() {
    let protocol = RandSym::new(8, 0xABCDEF);
    let (tmp, mut bytes) = saved_store(&protocol);
    bytes[0] = b'X';
    std::fs::write(&tmp.0, &bytes).unwrap();
    assert!(matches!(
        transition_store::load(&protocol, &tmp.0),
        Err(StoreError::BadMagic)
    ));
    std::fs::write(&tmp.0, b"not a store at all").unwrap();
    assert!(matches!(
        transition_store::load(&protocol, &tmp.0),
        Err(StoreError::BadMagic)
    ));
}

#[test]
fn flipped_endian_marker_is_an_endian_mismatch() {
    let protocol = RandSym::new(8, 0xABCDEF);
    let (tmp, mut bytes) = saved_store(&protocol);
    bytes[0x08..0x0C].reverse(); // a big-endian writer's marker
    std::fs::write(&tmp.0, &bytes).unwrap();
    assert!(matches!(
        transition_store::load(&protocol, &tmp.0),
        Err(StoreError::EndianMismatch)
    ));
}

#[test]
fn mismatched_fingerprint_is_an_identity_mismatch() {
    let writer = RandSym::new(8, 0xABCDEF);
    let (tmp, _) = saved_store(&writer);
    // Same state space, different rule seed: a different protocol identity.
    let reader = RandSym::new(8, 0xABCDEE);
    match transition_store::load(&reader, &tmp.0) {
        Err(StoreError::IdentityMismatch { stored, expected }) => {
            assert_eq!(stored, transition_store::fingerprint(&writer));
            assert_eq!(expected, transition_store::fingerprint(&reader));
        }
        other => panic!("expected IdentityMismatch, got {other:?}"),
    }
}

#[test]
fn missing_file_is_io_not_found() {
    let protocol = RandSym::new(8, 1);
    let path = std::env::temp_dir().join("pp-store-never-written.ppts");
    match transition_store::load(&protocol, &path) {
        Err(StoreError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
        other => panic!("expected Io(NotFound), got {other:?}"),
    }
}

#[test]
fn inspect_reports_the_header_without_a_protocol() {
    let protocol = RandSym::new(8, 0x5EED);
    let (table, _) = discovered(&protocol, &[0, 1, 2, 3, 4, 5, 6, 7], 9);
    let tmp = TempStore::new();
    let saved = transition_store::save(&table, &protocol, &tmp.0).unwrap();
    let inspected = transition_store::inspect(&tmp.0).unwrap();
    assert_eq!(inspected, saved);
    assert_eq!(inspected.protocol, "rand-sym");
    assert_eq!(inspected.version, FORMAT_V1);
    assert_eq!(
        inspected.fingerprint,
        transition_store::fingerprint(&protocol)
    );
    assert_eq!(inspected.states as usize, table.len());
}

#[test]
fn audit_catches_a_protocol_that_drifted() {
    // Same fingerprint_param forced onto a different rule: load succeeds
    // (identity looks right) but audit must expose the semantic drift.
    struct Impostor(RandSym, u64);
    impl Protocol for Impostor {
        type State = u8;
        type Input = u8;
        type Output = u8;
        fn name(&self) -> &str {
            self.0.name()
        }
        fn input(&self, i: &u8) -> u8 {
            self.0.input(i)
        }
        fn output(&self, s: &u8) -> u8 {
            self.0.output(s)
        }
        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            self.0.transition(a, b)
        }
        fn is_symmetric(&self) -> bool {
            true
        }
        fn fingerprint_param(&self) -> u64 {
            self.1
        }
    }

    let writer = RandSym::new(8, 77);
    let param = writer.fingerprint_param();
    let (tmp, _) = saved_store(&writer);
    // A different rule wearing the writer's identity.
    let impostor = Impostor(RandSym::new(8, 78), param);
    let table = transition_store::load(&impostor, &tmp.0).unwrap();
    assert!(
        transition_store::audit(&impostor, &table, u64::MAX).is_err(),
        "audit must notice the table disagrees with the impostor's rule"
    );
    // The genuine protocol audits clean.
    let table = transition_store::load(&writer, &tmp.0).unwrap();
    let report = transition_store::audit(&writer, &table, u64::MAX).unwrap();
    assert_eq!(report.states, table.len());
}
