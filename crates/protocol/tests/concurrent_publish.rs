//! Lock-free publication invariants of the segmented [`TransitionTable`].
//!
//! Two claims, property-tested over randomly generated symmetric rules and
//! a fixed asymmetric one:
//!
//! 1. **Racing cold discovery loses nothing**: when `N` threads race their
//!    engines' exports into one shared table, the resulting state set
//!    equals the union a serial replay discovers, every ordered pair is
//!    classified exactly as the protocol classifies it, and the final
//!    snapshot resolves every published id round-trip — i.e. every
//!    installed segment is reachable from the snapshot handle.
//! 2. **Snapshots are stable under racing writers**: a snapshot captured
//!    while publishers are still appending serves bit-identical contents
//!    when re-read after every writer joined. Segments are immutable and
//!    the handle pins them, so a reader can never observe a change.

use pp_protocol::{CountEngine, Protocol, TableSnapshot, TransitionTable};
use proptest::prelude::*;

/// A randomly generated *symmetric* rule over states `0..m` (the same
/// construction the warm-table suite uses): each unordered pair either
/// rewrites both agents to a pair-determined target or is null.
struct RandSym {
    m: u8,
    seed: u64,
}

fn mix(seed: u64, lo: u8, hi: u8) -> u64 {
    let mut h = seed ^ (u64::from(lo) << 8) ^ (u64::from(hi) << 20) ^ 0x9E37_79B9_7F4A_7C15;
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

impl Protocol for RandSym {
    type State = u8;
    type Input = u8;
    type Output = u8;

    fn name(&self) -> &str {
        "rand-sym"
    }

    fn input(&self, i: &u8) -> u8 {
        *i % self.m
    }

    fn output(&self, s: &u8) -> u8 {
        *s
    }

    fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
        let (lo, hi) = (*a.min(b), *a.max(b));
        let h = mix(self.seed, lo, hi);
        if h.is_multiple_of(3) {
            let t = ((h >> 2) % u64::from(self.m)) as u8;
            (t, t)
        } else {
            (*a, *b)
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }
}

/// The asymmetric counterpart: the responder adopts the initiator's
/// successor mod `m`, so order matters and the table keeps separate
/// in-rows.
struct Chase {
    m: u8,
}

impl Protocol for Chase {
    type State = u8;
    type Input = u8;
    type Output = u8;

    fn name(&self) -> &str {
        "chase"
    }

    fn input(&self, i: &u8) -> u8 {
        *i % self.m
    }

    fn output(&self, s: &u8) -> u8 {
        *s
    }

    fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
        if *b == (*a + 1) % self.m {
            (*a, *b)
        } else {
            (*a, (*a + 1) % self.m)
        }
    }
}

const BUDGET: u64 = 100_000;
const THREADS: usize = 8;

/// Thread `t`'s slice of the input space: overlapping windows so racing
/// publishers contend on shared states *and* bring private ones.
fn thread_inputs(inputs: &[u8], t: usize) -> Vec<u8> {
    inputs
        .iter()
        .map(|&i| i.wrapping_add(t as u8 * 3))
        .collect()
}

/// Deep-reads everything `snap` serves into a comparable structure.
fn deep_read(snap: &TableSnapshot<u8>) -> (Vec<u8>, Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let n = snap.len() as u32;
    let mut states = Vec::new();
    let mut outs = Vec::new();
    let mut ins = Vec::new();
    for t in 0..n {
        states.push(*snap.state(t));
        let mut row = Vec::new();
        snap.walk_out(t, |j| {
            row.push(j);
            true
        });
        outs.push(row);
        let mut row = Vec::new();
        snap.walk_in(t, |i| {
            row.push(i);
            true
        });
        ins.push(row);
    }
    (states, outs, ins)
}

/// Races `THREADS` cold engines of `protocol` into one table and checks
/// claim 1 against a serial replay of the same engines.
fn check_racing_union<P: Protocol<State = u8, Input = u8> + Sync>(protocol: &P, inputs: &[u8]) {
    let racing = TransitionTable::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let racing = &racing;
            scope.spawn(move || {
                let inputs = thread_inputs(inputs, t);
                let mut engine = CountEngine::from_inputs(protocol, &inputs, t as u64);
                let _ = engine.run_until_silent(BUDGET);
                engine.export_to(racing);
            });
        }
    });
    let serial = TransitionTable::new();
    for t in 0..THREADS {
        let inputs = thread_inputs(inputs, t);
        let mut engine = CountEngine::from_inputs(protocol, &inputs, t as u64);
        let _ = engine.run_until_silent(BUDGET);
        engine.export_to(&serial);
    }
    let (raced, reference) = (racing.dump(), serial.dump());
    let mut raced_states = raced.states.clone();
    let mut serial_states = reference.states.clone();
    raced_states.sort_unstable();
    serial_states.sort_unstable();
    assert_eq!(
        raced_states, serial_states,
        "racing exports must publish exactly the serial union"
    );
    // Every ordered pair classified as the protocol classifies it.
    for (i, si) in raced.states.iter().enumerate() {
        for (j, sj) in raced.states.iter().enumerate() {
            assert_eq!(
                raced.rows[i].binary_search(&(j as u32)).is_ok(),
                !protocol.is_null_interaction(si, sj),
                "pair ({si}, {sj}) misclassified after racing publication"
            );
        }
    }
    // Claim 1's reachability half: the final snapshot covers the table and
    // resolves every id round-trip through whatever segment owns it.
    let snap = racing.snapshot();
    assert_eq!(snap.len(), racing.len());
    for t in 0..snap.len() as u32 {
        assert_eq!(
            snap.id_of(snap.state(t)),
            Some(t),
            "id {t} must round-trip through the final snapshot"
        );
    }
}

/// Claim 2 for `protocol`: a mid-race snapshot re-reads identically after
/// the race.
fn check_snapshot_stability<P: Protocol<State = u8, Input = u8> + Sync>(
    protocol: &P,
    inputs: &[u8],
) {
    let table = TransitionTable::new();
    std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            // Engines with non-empty inputs always publish at least one
            // state, so the first export is guaranteed to land.
            while table.is_empty() {
                std::hint::spin_loop();
            }
            let snap = table.snapshot();
            let first = deep_read(&snap);
            (snap, first)
        });
        for t in 0..THREADS {
            let table = &table;
            scope.spawn(move || {
                let inputs = thread_inputs(inputs, t);
                let mut engine = CountEngine::from_inputs(protocol, &inputs, t as u64);
                let _ = engine.run_until_silent(BUDGET);
                engine.export_to(table);
            });
        }
        let (snap, first) = reader.join().expect("reader thread");
        // Writers may still be publishing here — that is the point: the
        // handle must already be immutable.
        assert_eq!(
            deep_read(&snap),
            first,
            "a snapshot changed between its mid-race and its later read"
        );
    });
    // And once more after every writer joined.
    let final_snap = table.snapshot();
    assert_eq!(final_snap.len(), table.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Claim 1 over random symmetric rules.
    #[test]
    fn racing_publication_equals_the_serial_union(
        rule_seed in any::<u64>(),
        inputs in proptest::collection::vec(0u8..12, 2..24),
    ) {
        let protocol = RandSym { m: 12, seed: rule_seed };
        check_racing_union(&protocol, &inputs);
    }

    /// Claim 2 over random symmetric rules.
    #[test]
    fn snapshots_are_stable_under_racing_writers(
        rule_seed in any::<u64>(),
        inputs in proptest::collection::vec(0u8..12, 2..24),
    ) {
        let protocol = RandSym { m: 12, seed: rule_seed };
        check_snapshot_stability(&protocol, &inputs);
    }
}

/// Claims 1 and 2 on the asymmetric path (separate in-rows and in-row
/// extensions), deterministic inputs.
#[test]
fn asymmetric_racing_publication_is_complete_and_stable() {
    let protocol = Chase { m: 11 };
    let inputs: Vec<u8> = (0..20).map(|i| i % 11).collect();
    check_racing_union(&protocol, &inputs);
    check_snapshot_stability(&protocol, &inputs);
}
