//! Robustness of the on-disk run checkpoint (`.pprc`).
//!
//! Three claims, mirroring `store_roundtrip.rs` for the sibling `.ppts`
//! format:
//!
//! 1. **Resume is bit-exact everywhere**: a run interrupted at a randomly
//!    chosen change-point, checkpointed to disk, loaded back and resumed
//!    finishes with the same `RunReport`, recorded `CountTrace` and final
//!    configuration as the uninterrupted reference — across every activity
//!    index ({sparse, compact, dense}) and both cold and warm starts, and
//!    the loaded checkpoint equals the saved one field-for-field.
//! 2. **Corruption fails loudly**: truncation at every prefix length and a
//!    bit flip at an arbitrary offset each produce a typed
//!    [`CheckpointError`] — never a panic, never a silently-wrong resume.
//! 3. **Identity is enforced**: a checkpoint saved under one protocol
//!    parameterization refuses to resume under another.

use std::ops::ControlFlow;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use pp_protocol::run_checkpoint::{self, CheckpointError, FORMAT_VERSION};
use pp_protocol::{
    Activity, CompactActivity, CountConfig, CountEngine, CountTrace, DenseActivity, Protocol,
    RunCheckpoint, RunReport, SparseActivity, TransitionTable, UniformCountScheduler,
};
use proptest::prelude::*;
use rand::rngs::Philox4x32;

/// A randomly generated symmetric rule over states `0..m`; mirrors the
/// `store_roundtrip` generator (u8 states give the `Display`/`FromStr`
/// codec for free).
struct RandSym {
    m: u8,
    seed: u64,
}

fn mix(seed: u64, lo: u8, hi: u8) -> u64 {
    let mut h = seed ^ (u64::from(lo) << 8) ^ (u64::from(hi) << 20) ^ 0x9E37_79B9_7F4A_7C15;
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

impl Protocol for RandSym {
    type State = u8;
    type Input = u8;
    type Output = u8;

    fn name(&self) -> &str {
        "rand-sym"
    }

    fn input(&self, i: &u8) -> u8 {
        *i % self.m
    }

    fn output(&self, s: &u8) -> u8 {
        *s
    }

    fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
        let (lo, hi) = (*a.min(b), *a.max(b));
        let h = mix(self.seed, lo, hi);
        if h.is_multiple_of(3) {
            let t = ((h >> 2) % u64::from(self.m)) as u8;
            (t, t)
        } else {
            (*a, *b)
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }

    fn fingerprint_param(&self) -> u64 {
        self.seed ^ (u64::from(self.m) << 56)
    }
}

const BUDGET: u64 = 200_000;

/// A unique temp path per call, cleaned up on Drop.
struct TempCk(PathBuf);

impl TempCk {
    fn new() -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        TempCk(std::env::temp_dir().join(format!(
            "pp-run-checkpoint-{}-{}.pprc",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for TempCk {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Builds an engine over activity index `A`, cold or warm from `table`.
fn make_engine<'p, A: Activity>(
    protocol: &'p RandSym,
    config: CountConfig<u8>,
    seed: u64,
    table: Option<&TransitionTable<RandSym>>,
) -> CountEngine<'p, RandSym, UniformCountScheduler, A, Philox4x32> {
    let scheduler = UniformCountScheduler::new();
    let rng = Philox4x32::stream(5, seed);
    match table {
        Some(table) => CountEngine::with_table_rng(protocol, config, scheduler, rng, table),
        None => CountEngine::with_rng(protocol, config, scheduler, rng),
    }
}

/// Drives an engine to silence (or the step budget) and returns its
/// observable outcome — the full bit-identity surface.
fn finish<A: Activity>(
    mut engine: CountEngine<'_, RandSym, UniformCountScheduler, A, Philox4x32>,
) -> (RunReport<u8>, Option<CountTrace<u8>>, CountConfig<u8>) {
    let _ = engine.run_until_silent(BUDGET);
    let trace = engine.take_trace();
    (engine.report(), trace, engine.config())
}

/// One matrix cell: reference run vs interrupt-at-a-random-change-point →
/// save → load → resume.
fn roundtrip_case<A: Activity>(
    protocol: &RandSym,
    config: &CountConfig<u8>,
    seed: u64,
    table: Option<&TransitionTable<RandSym>>,
    every: u64,
    break_at: u64,
) {
    let mut reference = make_engine::<A>(protocol, config.clone(), seed, table);
    reference.record_trace();
    let want = finish(reference);

    let mut engine = make_engine::<A>(protocol, config.clone(), seed, table);
    engine.record_trace();
    let mut saved = None;
    let mut offers = 0u64;
    let _ = engine.run_until_silent_checkpointed(BUDGET, every, |e| {
        offers += 1;
        if offers == break_at {
            saved = Some(e.checkpoint());
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    let Some(ck) = saved else {
        // The run ended before the chosen change-point; the hooked run
        // itself must already match the reference.
        assert_eq!(finish(engine), want);
        return;
    };

    let tmp = TempCk::new();
    let meta = run_checkpoint::save(&ck, &tmp.0).unwrap();
    assert_eq!(meta.slots as usize, ck.states.len());
    let loaded: RunCheckpoint<u8> = run_checkpoint::load(protocol, &tmp.0).unwrap();
    assert_eq!(&loaded, &ck, "save → load must be lossless");

    let resumed =
        CountEngine::<_, _, A, Philox4x32>::resume(protocol, UniformCountScheduler::new(), &loaded)
            .unwrap();
    assert_eq!(finish(resumed), want, "resumed run must be bit-identical");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Claim 1: the full {sparse, compact, dense} × {cold, warm} matrix
    /// resumes bit-identically from a random change-point.
    #[test]
    fn resume_is_bit_identical_across_engines_and_warmth(
        rule_seed in any::<u64>(),
        inputs in proptest::collection::vec(0u8..10, 4..48),
        run_seed in any::<u64>(),
        every in 1u64..24,
        break_at in 1u64..6,
    ) {
        let protocol = RandSym { m: 10, seed: rule_seed };
        let config: CountConfig<u8> = inputs.iter().map(|i| protocol.input(i)).collect();
        // Discover a warm table from a throwaway cold run.
        let table = {
            let mut engine = CountEngine::from_inputs(&protocol, &inputs, 1);
            let _ = engine.run_until_silent(BUDGET);
            engine.warm_table()
        };
        for table in [None, Some(&table)] {
            roundtrip_case::<SparseActivity>(&protocol, &config, run_seed, table, every, break_at);
            roundtrip_case::<CompactActivity>(&protocol, &config, run_seed, table, every, break_at);
            roundtrip_case::<DenseActivity>(&protocol, &config, run_seed, table, every, break_at);
        }
    }
}

/// Builds one valid checkpoint on disk mid-run and returns its bytes.
fn saved_checkpoint(protocol: &RandSym) -> (TempCk, Vec<u8>) {
    let inputs: Vec<u8> = (0..64).map(|i| i % 8).collect();
    let config: CountConfig<u8> = inputs.iter().map(|i| protocol.input(i)).collect();
    let mut engine = make_engine::<SparseActivity>(protocol, config, 3, None);
    engine.record_trace();
    let mut saved = None;
    let _ = engine.run_until_silent_checkpointed(BUDGET, 2, |e| {
        saved = Some(e.checkpoint());
        ControlFlow::Break(())
    });
    let ck = saved.expect("the run reaches at least two state changes");
    let tmp = TempCk::new();
    run_checkpoint::save(&ck, &tmp.0).unwrap();
    let bytes = std::fs::read(&tmp.0).unwrap();
    (tmp, bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Claim 2 (exhaustive truncation): every proper prefix of a valid
    /// checkpoint fails with a typed error — never loads.
    #[test]
    fn every_truncation_fails_loudly(
        rule_seed in any::<u64>(),
        cut_permille in 0u64..1000,
    ) {
        let protocol = RandSym { m: 8, seed: rule_seed };
        let (tmp, bytes) = saved_checkpoint(&protocol);
        let cut = bytes.len() * usize::try_from(cut_permille).unwrap() / 1000;
        std::fs::write(&tmp.0, &bytes[..cut]).unwrap();
        let err = run_checkpoint::load::<RandSym>(&protocol, &tmp.0).unwrap_err();
        prop_assert!(
            matches!(
                err,
                CheckpointError::Truncated { .. } | CheckpointError::ChecksumMismatch { .. }
            ),
            "prefix of {cut}/{} bytes gave {err}", bytes.len()
        );
    }

    /// Claim 2 (arbitrary bit flips): flipping any single bit anywhere in
    /// the file yields a typed error — the whole-file checksum leaves no
    /// unprotected byte, so corruption can never resume silently wrong.
    #[test]
    fn any_single_bit_flip_fails_loudly(
        rule_seed in any::<u64>(),
        offset_permille in 0u64..1000,
        bit in 0u8..8,
    ) {
        let protocol = RandSym { m: 8, seed: rule_seed };
        let (tmp, mut bytes) = saved_checkpoint(&protocol);
        let offset = bytes.len() * usize::try_from(offset_permille).unwrap() / 1000;
        let offset = offset.min(bytes.len() - 1);
        bytes[offset] ^= 1 << bit;
        std::fs::write(&tmp.0, &bytes).unwrap();
        let err = run_checkpoint::load::<RandSym>(&protocol, &tmp.0).unwrap_err();
        // Which typed error depends on the field hit (magic, endianness,
        // version, section table, checksum, body); all are loud.
        prop_assert!(
            !matches!(err, CheckpointError::Io(_)),
            "a readable corrupt file must give a format error, got {err}"
        );
    }
}

#[test]
fn wrong_version_is_unsupported() {
    let protocol = RandSym {
        m: 8,
        seed: 0xABCDEF,
    };
    let (tmp, mut bytes) = saved_checkpoint(&protocol);
    bytes[0x0C..0x10].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    std::fs::write(&tmp.0, &bytes).unwrap();
    match run_checkpoint::load::<RandSym>(&protocol, &tmp.0) {
        Err(CheckpointError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn foreign_magic_is_rejected() {
    let protocol = RandSym {
        m: 8,
        seed: 0xABCDEF,
    };
    let (tmp, mut bytes) = saved_checkpoint(&protocol);
    bytes[0] = b'X';
    std::fs::write(&tmp.0, &bytes).unwrap();
    assert!(matches!(
        run_checkpoint::load::<RandSym>(&protocol, &tmp.0),
        Err(CheckpointError::BadMagic)
    ));
    std::fs::write(&tmp.0, b"not a checkpoint").unwrap();
    assert!(matches!(
        run_checkpoint::load::<RandSym>(&protocol, &tmp.0),
        Err(CheckpointError::BadMagic)
    ));
}

#[test]
fn flipped_endian_marker_is_an_endian_mismatch() {
    let protocol = RandSym {
        m: 8,
        seed: 0xABCDEF,
    };
    let (tmp, mut bytes) = saved_checkpoint(&protocol);
    bytes[0x08..0x0C].reverse(); // a big-endian writer's marker
    std::fs::write(&tmp.0, &bytes).unwrap();
    assert!(matches!(
        run_checkpoint::load::<RandSym>(&protocol, &tmp.0),
        Err(CheckpointError::EndianMismatch)
    ));
}

/// Claim 3: a checkpoint saved under one protocol parameterization refuses
/// to load under another.
#[test]
fn mismatched_fingerprint_is_an_identity_mismatch() {
    let writer = RandSym {
        m: 8,
        seed: 0xABCDEF,
    };
    let (tmp, _) = saved_checkpoint(&writer);
    let reader = RandSym {
        m: 8,
        seed: 0xABCDEE,
    };
    assert!(matches!(
        run_checkpoint::load::<RandSym>(&reader, &tmp.0),
        Err(CheckpointError::IdentityMismatch { .. })
    ));
}

#[test]
fn missing_file_is_io_not_found() {
    let protocol = RandSym { m: 8, seed: 1 };
    let path = std::env::temp_dir().join("pp-checkpoint-never-written.pprc");
    match run_checkpoint::load::<RandSym>(&protocol, &path) {
        Err(CheckpointError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
        other => panic!("expected Io(NotFound), got {other:?}"),
    }
}
