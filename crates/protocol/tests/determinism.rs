//! Bit-reproducibility of seeded uniform runs.
//!
//! The canonical-slot-order contract: for a fixed seed, the engine's
//! trajectory — `RunReport`, final configuration, counters — is identical
//! across cold starts, warm starts from *any* table (including tables whose
//! id order was produced by a different seed's trajectory, or by another
//! protocol run entirely), and all three activity indexes. Warm tables are
//! lookup oracles, never orderings, so nothing the table contains may
//! perturb a single draw.

use pp_protocol::{
    CompactActivity, CountConfig, CountEngine, DenseActivity, Protocol, RunReport, SimStats,
    SparseActivity, TransitionTable, UniformCountScheduler,
};
use proptest::prelude::*;

/// A randomly generated *symmetric* rule over states `0..m`: each unordered
/// pair either rewrites both agents to a pair-determined target or is null.
struct RandSym {
    m: u8,
    seed: u64,
}

fn mix(seed: u64, lo: u8, hi: u8) -> u64 {
    let mut h = seed ^ (u64::from(lo) << 8) ^ (u64::from(hi) << 20) ^ 0x9E37_79B9_7F4A_7C15;
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

impl Protocol for RandSym {
    type State = u8;
    type Input = u8;
    type Output = u8;

    fn name(&self) -> &str {
        "rand-sym"
    }

    fn input(&self, i: &u8) -> u8 {
        *i % self.m
    }

    fn output(&self, s: &u8) -> u8 {
        *s
    }

    fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
        let (lo, hi) = (*a.min(b), *a.max(b));
        let h = mix(self.seed, lo, hi);
        if h.is_multiple_of(3) {
            let t = ((h >> 2) % u64::from(self.m)) as u8;
            (t, t)
        } else {
            (*a, *b)
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }
}

/// The asymmetric member: the responder copies the initiator.
struct CopyCat;

impl Protocol for CopyCat {
    type State = u8;
    type Input = u8;
    type Output = u8;

    fn name(&self) -> &str {
        "copycat"
    }

    fn input(&self, i: &u8) -> u8 {
        *i
    }

    fn output(&self, s: &u8) -> u8 {
        *s
    }

    fn transition(&self, a: &u8, _b: &u8) -> (u8, u8) {
        (*a, *a)
    }
}

const BUDGET: u64 = 200_000;

/// Runs a warm engine on activity index `A` and asserts it is bit-identical
/// to the cold reference of the same seed.
fn assert_warm_matches_cold<P, A>(
    protocol: &P,
    config: &CountConfig<u8>,
    seed: u64,
    table: &TransitionTable<P>,
    report: &RunReport<u8>,
    final_config: &CountConfig<u8>,
    stats: SimStats,
) where
    P: Protocol<State = u8, Input = u8, Output = u8>,
    A: pp_protocol::Activity,
{
    let mut warm = CountEngine::<P, UniformCountScheduler, A>::with_table_parts(
        protocol,
        config.clone(),
        UniformCountScheduler::new(),
        seed,
        table,
    );
    let _ = warm.run_until_silent(BUDGET);
    assert_eq!(&warm.report(), report, "RunReport diverged");
    assert_eq!(&warm.config(), final_config, "final configuration diverged");
    assert_eq!(warm.stats(), stats, "counters diverged");
}

fn check_bit_identity<P: Protocol<State = u8, Input = u8, Output = u8>>(
    protocol: &P,
    inputs: &[u8],
    run_seed: u64,
    scout_seed: u64,
) {
    let config: CountConfig<u8> = inputs.iter().map(|i| protocol.input(i)).collect();
    // Cold reference trajectory.
    let mut cold = CountEngine::from_config(protocol, config.clone(), run_seed);
    let _ = cold.run_until_silent(BUDGET);
    let report = cold.report();
    let final_config = cold.config();
    let stats = cold.stats();

    // A table discovered by a *different* seed's trajectory generally holds
    // its states in a different id order (and possibly more of them) — the
    // warm run must not notice.
    let mut scout = CountEngine::from_config(protocol, config.clone(), scout_seed);
    let _ = scout.run_until_silent(BUDGET);
    let table = scout.warm_table();

    assert_warm_matches_cold::<P, SparseActivity>(
        protocol,
        &config,
        run_seed,
        &table,
        &report,
        &final_config,
        stats,
    );
    assert_warm_matches_cold::<P, CompactActivity>(
        protocol,
        &config,
        run_seed,
        &table,
        &report,
        &final_config,
        stats,
    );
    assert_warm_matches_cold::<P, DenseActivity>(
        protocol,
        &config,
        run_seed,
        &table,
        &report,
        &final_config,
        stats,
    );

    // An empty table (cold path through the warm constructor) agrees too.
    let empty = TransitionTable::new();
    assert_warm_matches_cold::<P, SparseActivity>(
        protocol,
        &config,
        run_seed,
        &empty,
        &report,
        &final_config,
        stats,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// For random symmetric rules and the asymmetric copycat: the same
    /// seed's uniform run is bit-identical warm vs cold, on every activity
    /// index, for tables of any origin.
    #[test]
    fn warm_and_cold_runs_of_the_same_seed_are_bit_identical(
        rule_seed in any::<u64>(),
        inputs in proptest::collection::vec(0u8..10, 2..32),
        run_seed in any::<u64>(),
        scout_seed in any::<u64>(),
    ) {
        let sym = RandSym { m: 10, seed: rule_seed };
        check_bit_identity(&sym, &inputs, run_seed, scout_seed);
        check_bit_identity(&CopyCat, &inputs, run_seed, scout_seed);
    }

    /// A table that keeps growing mid-sweep (exports from other seeds)
    /// still never perturbs a given seed's trajectory.
    #[test]
    fn growing_tables_do_not_perturb_trajectories(
        rule_seed in any::<u64>(),
        inputs in proptest::collection::vec(0u8..8, 2..24),
        run_seed in any::<u64>(),
    ) {
        let protocol = RandSym { m: 8, seed: rule_seed };
        let config: CountConfig<u8> = inputs.iter().map(|i| protocol.input(i)).collect();
        let mut cold = CountEngine::from_config(&protocol, config.clone(), run_seed);
        let _ = cold.run_until_silent(BUDGET);

        let table = TransitionTable::new();
        let mut last: Option<RunReport<u8>> = None;
        // Three rounds: the table is empty, then partially, then fully
        // populated — the warm run's report must never move.
        for round in 0..3u64 {
            let mut warm = CountEngine::with_table(
                &protocol,
                config.clone(),
                UniformCountScheduler::new(),
                run_seed,
                &table,
            );
            let _ = warm.run_until_silent(BUDGET);
            prop_assert_eq!(warm.report(), cold.report(), "round {}", round);
            if let Some(prev) = &last {
                prop_assert_eq!(prev, &warm.report());
            }
            last = Some(warm.report());
            // Grow the table: this round's run plus an unrelated seed.
            warm.export_to(&table);
            let mut other = CountEngine::from_config(&protocol, config.clone(), run_seed ^ (round + 1));
            let _ = other.run_until_silent(BUDGET);
            other.export_to(&table);
        }
    }
}
