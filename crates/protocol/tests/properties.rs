//! Property-based tests for the framework's core data structures.

use pp_protocol::{
    CountConfig, CountEngine, InteractionTrace, Population, Protocol, Simulation,
    UniformPairScheduler,
};
use proptest::prelude::*;

/// Toy protocol used throughout: epidemic maximum.
struct Max;

impl Protocol for Max {
    type State = u8;
    type Input = u8;
    type Output = u8;

    fn name(&self) -> &str {
        "max"
    }

    fn input(&self, i: &u8) -> u8 {
        *i
    }

    fn output(&self, s: &u8) -> u8 {
        *s
    }

    fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
        let m = *a.max(b);
        (m, m)
    }

    fn is_symmetric(&self) -> bool {
        true
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CountConfig is canonical: insertion order never matters.
    #[test]
    fn count_config_is_order_independent(mut states in proptest::collection::vec(0u8..8, 1..40)) {
        let a: CountConfig<u8> = states.iter().copied().collect();
        states.reverse();
        let b: CountConfig<u8> = states.iter().copied().collect();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.n(), states.len());
    }

    /// to_state_vec is a sorted expansion whose length matches n.
    #[test]
    fn count_config_expansion_round_trips(states in proptest::collection::vec(0u8..8, 1..40)) {
        let config: CountConfig<u8> = states.iter().copied().collect();
        let expanded = config.to_state_vec();
        prop_assert_eq!(expanded.len(), states.len());
        prop_assert!(expanded.windows(2).all(|w| w[0] <= w[1]));
        let mut sorted = states.clone();
        sorted.sort_unstable();
        prop_assert_eq!(expanded, sorted);
    }

    /// insert/remove/transfer keep n and counts consistent.
    #[test]
    fn count_config_mutation_consistency(
        states in proptest::collection::vec(0u8..6, 2..30),
        moves in proptest::collection::vec((0u8..6, 0u8..6), 0..20),
    ) {
        let mut config: CountConfig<u8> = states.iter().copied().collect();
        let n = config.n();
        for (from, to) in moves {
            if config.count(&from) > 0 {
                config.transfer(&from, to);
            }
        }
        prop_assert_eq!(config.n(), n);
        let total: usize = config.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, n);
    }

    /// The population's multiset is invariant under the max protocol's
    /// total agent count, and the maximum value is preserved exactly.
    #[test]
    fn max_protocol_preserves_count_and_max(
        states in proptest::collection::vec(0u8..50, 2..30),
        steps in 0u64..500,
        seed in any::<u64>(),
    ) {
        let max_in = *states.iter().max().unwrap();
        let population: Population<u8> = states.iter().copied().collect();
        let mut sim = Simulation::new(&Max, population, UniformPairScheduler::new(), seed);
        for _ in 0..steps {
            let _ = sim.step().unwrap();
        }
        prop_assert_eq!(sim.population().len(), states.len());
        let max_now = *sim.population().iter().max().unwrap();
        prop_assert_eq!(max_now, max_in);
    }

    /// Output histograms maintained incrementally always match recomputed
    /// ones (indexed engine).
    #[test]
    fn output_histogram_incremental_consistency(
        states in proptest::collection::vec(0u8..5, 2..20),
        steps in 1u64..200,
        seed in any::<u64>(),
    ) {
        let population: Population<u8> = states.iter().copied().collect();
        let mut sim = Simulation::new(&Max, population, UniformPairScheduler::new(), seed);
        for _ in 0..steps {
            let _ = sim.step().unwrap();
            prop_assert_eq!(&sim.population().output_counts(&Max), sim.output_counts());
        }
    }

    /// The count engine preserves population size and converges to the
    /// same consensus as the ground truth (the max).
    #[test]
    fn count_engine_finds_the_max(
        states in proptest::collection::vec(0u8..12, 2..60),
        seed in any::<u64>(),
    ) {
        let expected = *states.iter().max().unwrap();
        let mut engine = CountEngine::from_inputs(&Max, &states, seed);
        let report = engine.run_until_silent(10_000_000).unwrap();
        prop_assert_eq!(report.consensus, Some(expected));
        prop_assert_eq!(engine.config().n(), states.len());
    }

    /// Traces round-trip through the text format for arbitrary valid pair
    /// sequences.
    #[test]
    fn trace_text_round_trip(
        n in 2usize..12,
        raw in proptest::collection::vec((0usize..12, 0usize..12), 0..50),
    ) {
        let pairs: Vec<(usize, usize)> = raw
            .into_iter()
            .map(|(i, j)| {
                let i = i % n;
                let mut j = j % n;
                if i == j {
                    j = (j + 1) % n;
                }
                (i, j)
            })
            .collect();
        let trace = InteractionTrace::from_pairs(n, pairs).unwrap();
        let parsed: InteractionTrace = trace.to_string().parse().unwrap();
        prop_assert_eq!(parsed, trace);
    }

    /// Replaying a recorded uniform schedule reproduces the exact final
    /// population.
    #[test]
    fn recorded_runs_replay_exactly(
        states in proptest::collection::vec(0u8..9, 2..15),
        steps in 1u64..300,
        seed in any::<u64>(),
    ) {
        let population: Population<u8> = states.iter().copied().collect();
        let mut sim = Simulation::new(&Max, population, UniformPairScheduler::new(), seed);
        sim.record_trace();
        for _ in 0..steps {
            let _ = sim.step().unwrap();
        }
        let trace = sim.take_trace().unwrap();
        let reference = sim.into_population();

        let mut replay: Population<u8> = states.iter().copied().collect();
        for &(i, j) in trace.pairs() {
            replay.interact(&Max, i, j).unwrap();
        }
        prop_assert_eq!(replay.states(), reference.states());
    }
}
