//! Discovery-path equivalences for the warm-start machinery.
//!
//! Three claims, over a grab-bag of symmetric and asymmetric protocols
//! (including randomly generated symmetric rules):
//!
//! 1. **Symmetric discovery is lossless**: an engine using the
//!    halved-query symmetric path produces a [`TransitionTable`]
//!    bit-identical to one discovered by brute-force over all ordered
//!    pairs (the same protocol with `is_symmetric()` masked off).
//! 2. **Warm starts replay bit-identically**: a warm-started engine driven
//!    through a cold run's recorded change-point schedule (via
//!    [`ReplayCountScheduler`]) reaches the same configuration with the
//!    same statistics — on the sparse, compact and dense activity indexes.
//! 3. **Concurrent exports stay complete**: engines racing their exports
//!    into one shared table leave it classifying every ordered state pair
//!    exactly as the protocol does.

use pp_protocol::{
    CompactActivity, CountConfig, CountEngine, DenseActivity, Protocol, ReplayCountScheduler,
    TransitionTable,
};
use proptest::prelude::*;

/// Forwards every query to the inner protocol but reports it as
/// asymmetric, forcing the all-ordered-pairs discovery path.
struct ForceAsym<'a, P>(&'a P);

impl<P: Protocol> Protocol for ForceAsym<'_, P> {
    type State = P::State;
    type Input = P::Input;
    type Output = P::Output;

    fn name(&self) -> &str {
        self.0.name()
    }

    fn input(&self, input: &Self::Input) -> Self::State {
        self.0.input(input)
    }

    fn output(&self, state: &Self::State) -> Self::Output {
        self.0.output(state)
    }

    fn transition(&self, a: &Self::State, b: &Self::State) -> (Self::State, Self::State) {
        self.0.transition(a, b)
    }

    fn is_symmetric(&self) -> bool {
        false
    }
}

/// A randomly generated *symmetric* rule over states `0..m`: each unordered
/// pair either rewrites both agents to a pair-determined target or is null.
/// Symmetric by construction (the rule reads only the unordered pair), and
/// free to livelock — runs are budget-bounded.
struct RandSym {
    m: u8,
    seed: u64,
}

fn mix(seed: u64, lo: u8, hi: u8) -> u64 {
    let mut h = seed ^ (u64::from(lo) << 8) ^ (u64::from(hi) << 20) ^ 0x9E37_79B9_7F4A_7C15;
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

impl Protocol for RandSym {
    type State = u8;
    type Input = u8;
    type Output = u8;

    fn name(&self) -> &str {
        "rand-sym"
    }

    fn input(&self, i: &u8) -> u8 {
        *i % self.m
    }

    fn output(&self, s: &u8) -> u8 {
        *s
    }

    fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
        let (lo, hi) = (*a.min(b), *a.max(b));
        let h = mix(self.seed, lo, hi);
        if h.is_multiple_of(3) {
            let t = ((h >> 2) % u64::from(self.m)) as u8;
            (t, t)
        } else {
            (*a, *b)
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }
}

/// The asymmetric member of the grab bag: the responder copies the
/// initiator — order matters, no symmetric path.
struct CopyCat;

impl Protocol for CopyCat {
    type State = u8;
    type Input = u8;
    type Output = u8;

    fn name(&self) -> &str {
        "copycat"
    }

    fn input(&self, i: &u8) -> u8 {
        *i
    }

    fn output(&self, s: &u8) -> u8 {
        *s
    }

    fn transition(&self, a: &u8, _b: &u8) -> (u8, u8) {
        (*a, *a)
    }
}

const BUDGET: u64 = 200_000;

/// Runs a bounded uniform trial and returns the engine's warm table.
fn discovered_table<P: Protocol<State = u8, Input = u8>>(
    protocol: &P,
    inputs: &[u8],
    seed: u64,
) -> TransitionTable<P> {
    let mut engine = CountEngine::from_inputs(protocol, inputs, seed);
    let _ = engine.run_until_silent(BUDGET);
    engine.warm_table()
}

/// Replays `trace` through a warm-started engine on activity index `A` and
/// asserts the run is bit-identical to the cold reference.
fn assert_warm_replay_matches<P, A>(
    protocol: &P,
    config: &CountConfig<u8>,
    table: &TransitionTable<P>,
    trace: &pp_protocol::CountTrace<u8>,
    reference: &CountEngine<'_, P>,
) where
    P: Protocol<State = u8, Input = u8, Output = u8>,
    A: pp_protocol::Activity,
{
    let mut warm = CountEngine::<P, ReplayCountScheduler<u8>, A>::with_table_parts(
        protocol,
        config.clone(),
        trace.clone().into_scheduler(),
        0, // the RNG must be irrelevant under replay
        table,
    );
    for k in 0..trace.len() {
        assert!(warm.step().unwrap(), "traced pair {k} must be active");
    }
    assert_eq!(warm.config(), reference.config(), "final configurations");
    assert_eq!(
        warm.stats().state_changes,
        reference.stats().state_changes,
        "state-change counts"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Claim 1 for random symmetric rules: the symmetric discovery path
    /// yields a table bit-identical to brute-force ordered discovery.
    #[test]
    fn symmetric_discovery_is_bit_identical_to_bruteforce(
        rule_seed in any::<u64>(),
        inputs in proptest::collection::vec(0u8..12, 2..40),
        run_seed in any::<u64>(),
    ) {
        let protocol = RandSym { m: 12, seed: rule_seed };
        let sym = discovered_table(&protocol, &inputs, run_seed);
        let forced = ForceAsym(&protocol);
        let asym = discovered_table(&forced, &inputs, run_seed);
        prop_assert_eq!(sym.dump(), asym.dump());
    }

    /// Claim 2 across the grab bag: warm engines replay cold schedules
    /// bit-identically on every activity index.
    #[test]
    fn warm_engines_replay_cold_runs_bit_identically(
        rule_seed in any::<u64>(),
        inputs in proptest::collection::vec(0u8..10, 2..32),
        run_seed in any::<u64>(),
    ) {
        let sym = RandSym { m: 10, seed: rule_seed };
        check_warm_replay(&sym, &inputs, run_seed);
        check_warm_replay(&CopyCat, &inputs, run_seed);
    }
}

fn check_warm_replay<P: Protocol<State = u8, Input = u8, Output = u8>>(
    protocol: &P,
    inputs: &[u8],
    seed: u64,
) {
    let config: CountConfig<u8> = inputs.iter().map(|i| protocol.input(i)).collect();
    let mut cold = CountEngine::from_config(protocol, config.clone(), seed);
    cold.record_trace();
    let _ = cold.run_until_silent(BUDGET);
    let trace = cold.take_trace().expect("recording was on");
    let table = cold.warm_table();
    assert_warm_replay_matches::<_, pp_protocol::SparseActivity>(
        protocol, &config, &table, &trace, &cold,
    );
    assert_warm_replay_matches::<_, CompactActivity>(protocol, &config, &table, &trace, &cold);
    assert_warm_replay_matches::<_, DenseActivity>(protocol, &config, &table, &trace, &cold);
}

/// Claim 3: concurrent exports from racing engines leave the shared table
/// complete and protocol-faithful.
#[test]
fn concurrent_exports_keep_the_table_complete() {
    let protocol = RandSym {
        m: 16,
        seed: 0xC0FFEE,
    };
    let table = TransitionTable::new();
    std::thread::scope(|scope| {
        for t in 0u8..4 {
            let table = &table;
            let protocol = &protocol;
            scope.spawn(move || {
                // Each thread works a different slice of the state space,
                // with overlap, so merges hit both known and unknown states.
                let inputs: Vec<u8> = (0..24).map(|i| (i + u64::from(t) * 3) as u8 % 16).collect();
                let mut engine = CountEngine::from_inputs(protocol, &inputs, u64::from(t));
                let _ = engine.run_until_silent(BUDGET);
                engine.export_to(table);
            });
        }
    });
    let dump = table.dump();
    assert!(!dump.states.is_empty());
    for (i, si) in dump.states.iter().enumerate() {
        for (j, sj) in dump.states.iter().enumerate() {
            let expected = !protocol.is_null_interaction(si, sj);
            assert_eq!(
                dump.rows[i].binary_search(&(j as u32)).is_ok(),
                expected,
                "pair ({si}, {sj}) misclassified after concurrent merges"
            );
        }
    }
    // Outcomes must agree with the protocol wherever memoized.
    for (&(i, j), &(a, b)) in dump.outcomes.iter().map(|(k, v)| (k, v)) {
        let (ta, tb) = protocol.transition(&dump.states[i as usize], &dump.states[j as usize]);
        assert_eq!((ta, tb), (dump.states[a as usize], dump.states[b as usize]));
    }
}
