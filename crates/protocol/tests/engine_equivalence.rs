//! Equivalence of the indexed and count-based engines.
//!
//! Two layers:
//!
//! 1. **Replay equivalence** (exact): record an indexed run's interaction
//!    schedule, map it to the corresponding *state pair* sequence, and drive
//!    the count engine through a [`ReplayCountScheduler`] — both engines
//!    must produce identical [`RunReport`]s and final configurations.
//!    This pins the count engine's delta application, statistics and
//!    consensus bookkeeping to the indexed reference, independent of
//!    sampling.
//! 2. **Distributional equivalence** (statistical): under the
//!    uniform-random model the two engines sample differently (agent pairs
//!    vs hypergeometric state pairs with geometric change-point skips) but
//!    must agree in distribution; compare steps-to-silence statistics over
//!    many seeds.

use pp_protocol::{
    CountConfig, CountEngine, Population, Protocol, ReplayCountScheduler, Simulation,
    UniformPairScheduler,
};
use proptest::prelude::*;

struct Max;

impl Protocol for Max {
    type State = u8;
    type Input = u8;
    type Output = u8;

    fn name(&self) -> &str {
        "max"
    }

    fn input(&self, i: &u8) -> u8 {
        *i
    }

    fn output(&self, s: &u8) -> u8 {
        *s
    }

    fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
        let m = *a.max(b);
        (m, m)
    }

    fn is_symmetric(&self) -> bool {
        true
    }
}

/// Runs the indexed engine to silence with trace recording and returns the
/// report plus the interaction schedule as state pairs.
fn indexed_reference(inputs: &[u8], seed: u64) -> (pp_protocol::RunReport<u8>, Vec<(u8, u8)>) {
    let population = Population::from_inputs(&Max, inputs);
    let mut sim = Simulation::new(&Max, population, UniformPairScheduler::new(), seed);
    sim.record_trace();
    let report = sim.run_until_silent(10_000_000, 16).expect("max silences");
    let trace = sim.take_trace().expect("trace was recorded");

    // Map agent pairs to the states they held at interaction time.
    let mut replay = Population::from_inputs(&Max, inputs);
    let mut state_pairs = Vec::with_capacity(trace.pairs().len());
    for &(i, j) in trace.pairs() {
        state_pairs.push((replay[i], replay[j]));
        replay.interact(&Max, i, j).expect("valid trace");
    }
    (report, state_pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replaying an indexed run's state-pair schedule through the count
    /// engine reproduces the exact same `RunReport` and final multiset.
    #[test]
    fn replayed_runs_produce_identical_reports(
        inputs in proptest::collection::vec(0u8..6, 2..24),
        seed in any::<u64>(),
    ) {
        let (reference, state_pairs) = indexed_reference(&inputs, seed);
        let steps = state_pairs.len() as u64;

        let config = inputs.iter().copied().collect();
        let mut engine = CountEngine::with_scheduler(
            &Max,
            config,
            ReplayCountScheduler::new(state_pairs),
            seed ^ 0xDEAD_BEEF, // the RNG must be irrelevant under replay
        );
        for _ in 0..steps {
            engine.step().unwrap();
        }
        prop_assert_eq!(engine.report(), reference);
        prop_assert!(engine.is_silent());

        // A silent max-protocol population is unanimous at the input max.
        let max_in = *inputs.iter().max().unwrap();
        prop_assert_eq!(engine.config().to_state_vec(), vec![max_in; inputs.len()]);
    }

    /// The batched uniform path conserves the population multiset size and
    /// reaches the same consensus as the indexed engine for every seed.
    #[test]
    fn batched_uniform_run_matches_indexed_consensus(
        inputs in proptest::collection::vec(0u8..6, 2..24),
        seed in any::<u64>(),
    ) {
        let (reference, _) = indexed_reference(&inputs, seed);
        let mut engine = CountEngine::from_inputs(&Max, &inputs, seed);
        let report = engine.run_until_silent(10_000_000).unwrap();
        prop_assert_eq!(report.consensus, reference.consensus);
        prop_assert_eq!(engine.config().n(), inputs.len());
    }
}

/// The `u128` mass path: populations past `u32::MAX`, whose pair weights
/// overflow the former `u64` arithmetic, sample and update exactly.
#[test]
fn u128_mass_path_handles_populations_past_u32_max() {
    // Two states with 4·10^9 agents each: n = 8·10^9 > u32::MAX, and the
    // active mass 2 · (4·10^9)² = 3.2·10^19 > u64::MAX.
    let big = 4_000_000_000usize;
    let mut config = CountConfig::new();
    config.insert(1u8, big);
    config.insert(2u8, big);
    let mut engine = CountEngine::from_config(&Max, config, 42);
    assert_eq!(engine.n(), 8_000_000_000);
    let expected_mass = 2 * (big as u128) * (big as u128);
    assert!(expected_mass > u128::from(u64::MAX), "must exceed u64");
    assert_eq!(engine.mass(), expected_mass);

    // Drive real change-points through the u128 sampler: every interaction
    // between the two states is active, so a small budget executes ~half
    // as many state changes.
    let err = engine.run_until_silent(10_000).unwrap_err();
    assert_eq!(
        err,
        pp_protocol::FrameworkError::MaxStepsExceeded { max_steps: 10_000 }
    );
    let stats = engine.stats();
    assert_eq!(stats.steps, 10_000);
    assert!(stats.state_changes > 2_000, "p = mass/total ≈ 1/2");
    let config = engine.config();
    assert_eq!(config.n(), 2 * big, "agents conserved at 8·10^9");
    let moved = config.count(&2) - big;
    assert_eq!(
        moved as u64, stats.state_changes,
        "each change moves exactly one agent from 1 to 2"
    );
    // Mass stays exact after u128 updates.
    let c1 = config.count(&1) as u128;
    let c2 = config.count(&2) as u128;
    assert_eq!(engine.mass(), 2 * c1 * c2);
}

/// A protocol that is one interaction away from silence: the single `1`
/// turns into an inert `2` on first contact, everything else is null.
struct Quench;

impl Protocol for Quench {
    type State = u8;
    type Input = u8;
    type Output = u8;

    fn name(&self) -> &str {
        "quench"
    }

    fn input(&self, i: &u8) -> u8 {
        *i
    }

    fn output(&self, s: &u8) -> u8 {
        *s
    }

    fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
        match (*a, *b) {
            (1, 0) => (2, 0),
            (0, 1) => (0, 2),
            other => other,
        }
    }
}

/// Near-silent configurations at huge `n` skip astronomically many null
/// interactions in one geometric draw without overflowing the step budget.
#[test]
fn geometric_skip_survives_astronomical_null_stretches() {
    // One lonely 1 among 5·10^9 zeros: only pairs touching the 1 are
    // active (weight ≈ 10^10 of ~2.5·10^19 total), so the expected skip to
    // the single state change is ~2.5·10^9 null interactions — all
    // consumed by one geometric draw.
    let n0 = 5_000_000_000usize;
    let mut config = CountConfig::new();
    config.insert(0u8, n0);
    config.insert(1u8, 1);
    let mut engine = CountEngine::from_config(&Quench, config, 3);
    let report = engine.run_until_silent(u64::MAX).unwrap();
    assert!(engine.is_silent());
    assert_eq!(report.state_changes, 1, "exactly one quenching interaction");
    assert!(
        report.steps > 1_000_000,
        "nulls must have been skipped in bulk, steps = {}",
        report.steps
    );
    assert_eq!(engine.config().count(&2), 1);
    assert_eq!(engine.config().count(&0), n0);
}

/// Mean and standard error of a sample.
fn mean_se(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, (var / n).sqrt())
}

/// Steps-to-silence distributions of the two engines agree at small `n`
/// under the uniform-random model: a two-sample z-style check on the means
/// over many seeds, with a deterministic seed set.
#[test]
fn steps_to_silence_distributions_agree() {
    let inputs: Vec<u8> = (0..20).map(|i| (i % 4) as u8).collect();
    let seeds = 400u64;

    let indexed: Vec<f64> = (0..seeds)
        .map(|seed| {
            let population = Population::from_inputs(&Max, &inputs);
            let mut sim = Simulation::new(&Max, population, UniformPairScheduler::new(), seed);
            sim.run_until_silent(10_000_000, 16)
                .expect("max silences")
                .steps_to_silence as f64
        })
        .collect();
    let counted: Vec<f64> = (0..seeds)
        .map(|seed| {
            let mut engine = CountEngine::from_inputs(&Max, &inputs, seed);
            engine
                .run_until_silent(10_000_000)
                .expect("max silences")
                .steps_to_silence as f64
        })
        .collect();

    let (mi, si) = mean_se(&indexed);
    let (mc, sc) = mean_se(&counted);
    let gap = (mi - mc).abs();
    let se = si.hypot(sc);
    // Under H0 the standardized gap is ~N(0, 1); allow 4σ plus a small
    // absolute slack so the deterministic seed set cannot flake.
    assert!(
        gap <= 4.0 * se + 0.02 * mi.max(mc),
        "steps-to-silence means diverge: indexed {mi:.1}±{si:.1} vs count {mc:.1}±{sc:.1}"
    );
}

/// The unbatched (`step`) and batched (`run_until_silent`) uniform paths of
/// the count engine agree in distribution too — they share the sampler but
/// exercise different code paths.
#[test]
fn stepped_and_batched_count_paths_agree() {
    let inputs: Vec<u8> = (0..16).map(|i| (i % 5) as u8).collect();
    let seeds = 400u64;

    let stepped: Vec<f64> = (0..seeds)
        .map(|seed| {
            let mut engine = CountEngine::from_inputs(&Max, &inputs, seed);
            while !engine.is_silent() {
                engine.step().unwrap();
            }
            engine.report().steps_to_silence as f64
        })
        .collect();
    let batched: Vec<f64> = (0..seeds)
        .map(|seed| {
            let mut engine = CountEngine::from_inputs(&Max, &inputs, seed ^ 0x5EED);
            engine
                .run_until_silent(10_000_000)
                .expect("max silences")
                .steps_to_silence as f64
        })
        .collect();

    let (ms, ss) = mean_se(&stepped);
    let (mb, sb) = mean_se(&batched);
    let gap = (ms - mb).abs();
    let se = ss.hypot(sb);
    assert!(
        gap <= 4.0 * se + 0.02 * ms.max(mb),
        "stepped vs batched means diverge: {ms:.1}±{ss:.1} vs {mb:.1}±{sb:.1}"
    );
}
