//! The color-orbit quotient is a pure accelerator — never an observable.
//!
//! Four claims, pinned against the real Circles protocol (the dev-only
//! dependency cycle is deliberate: Circles is the quotient user that
//! matters):
//!
//! 1. **One table, four builders**: brute-force ordered classification,
//!    the symmetric last-query memo, the per-pair quotient memo inside the
//!    engine, and the bulk representative classification of
//!    [`quotient_table`] produce bit-identical tables — while spending
//!    strictly decreasing transition-call budgets.
//! 2. **Runs cannot tell who built their engine**: fixed-seed reports are
//!    bit-identical across memo/quotient discovery × sparse, compact and
//!    dense activity indexes × cold and warm starts.
//! 3. **`.ppts` v2 round trips**: `save_quotient` → `load` is bit-lossless
//!    with zero protocol calls, `inspect` reports the quotient stats, the
//!    advertised `v1_bytes` is exactly the size of the v1 file written on
//!    demand, and a v2-loaded table re-saves to v1 byte-for-byte.
//! 4. **Row encoding is canonical**: equal-content tables built in
//!    different orders (incremental engine pushes vs bulk sorted rows)
//!    save to byte-identical v1 files — the on-disk representation choice
//!    depends on final row contents, not build history.

use std::cell::Cell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use circles_core::{CirclesProtocol, CirclesState, Color};
use pp_protocol::transition_store::{self, FORMAT_V1, FORMAT_VERSION};
use pp_protocol::{
    quotient_table, Activity, CompactActivity, CountConfig, CountEngine, DenseActivity,
    EnumerableProtocol, Protocol, RunReport, SparseActivity, StateQuotient, TransitionTable,
    UniformCountScheduler,
};

const K: u16 = 6;
const BUDGET: u64 = 20_000_000;

/// Forwards to Circles while counting transition calls and masking, on
/// demand, the symmetry flag and/or the color quotient — selecting which
/// discovery path an engine takes.
struct Masked {
    inner: CirclesProtocol,
    sym: bool,
    quotient: bool,
    calls: Cell<u64>,
}

impl Masked {
    fn new(k: u16, sym: bool, quotient: bool) -> Self {
        Masked {
            inner: CirclesProtocol::new(k).expect("valid k"),
            sym,
            quotient,
            calls: Cell::new(0),
        }
    }
}

impl Protocol for Masked {
    type State = CirclesState;
    type Input = Color;
    type Output = Color;

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn input(&self, i: &Color) -> CirclesState {
        self.inner.input(i)
    }

    fn output(&self, s: &CirclesState) -> Color {
        self.inner.output(s)
    }

    fn transition(&self, a: &CirclesState, b: &CirclesState) -> (CirclesState, CirclesState) {
        self.calls.set(self.calls.get() + 1);
        self.inner.transition(a, b)
    }

    fn is_symmetric(&self) -> bool {
        self.sym && self.inner.is_symmetric()
    }

    fn color_quotient(&self) -> Option<&dyn StateQuotient<CirclesState>> {
        if self.quotient {
            self.inner.color_quotient()
        } else {
            None
        }
    }

    fn fingerprint_param(&self) -> u64 {
        self.inner.fingerprint_param()
    }
}

impl EnumerableProtocol for Masked {
    fn states(&self) -> Vec<CirclesState> {
        self.inner.states()
    }
}

/// A unique temp path per call, cleaned up on drop.
struct TempStore(PathBuf);

impl TempStore {
    fn new() -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        TempStore(std::env::temp_dir().join(format!(
            "pp-quotient-discovery-{}-{}.ppts",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        )))
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Primes a cold engine with the full enumeration and exports its table.
fn primed_table(protocol: &Masked) -> TransitionTable<Masked> {
    let mut engine = CountEngine::from_config(protocol, CountConfig::new(), 1);
    engine.prime_states(protocol.states());
    engine.warm_table()
}

#[test]
fn four_discovery_paths_one_table() {
    let brute = Masked::new(K, false, false);
    let brute_table = primed_table(&brute);
    let reference = brute_table.dump();
    let slots = reference.states.len() as u64;
    assert_eq!(slots, u64::from(K).pow(3));
    assert_eq!(
        brute.calls.get(),
        slots * slots,
        "ordered brute force classifies every ordered pair"
    );

    let memo = Masked::new(K, true, false);
    assert_eq!(primed_table(&memo).dump(), reference);
    assert!(
        memo.calls.get() <= slots * slots / 2 + slots,
        "the symmetric memo halves the ordered bill, got {}",
        memo.calls.get()
    );

    let qmemo = Masked::new(K, true, true);
    assert_eq!(primed_table(&qmemo).dump(), reference);
    assert!(
        qmemo.calls.get() * u64::from(K) <= memo.calls.get() + slots * u64::from(K),
        "the quotient memo folds rotations on top of swaps: {} vs {}",
        qmemo.calls.get(),
        memo.calls.get()
    );

    let bulk = Masked::new(K, true, true);
    let bulk_table = quotient_table(&bulk).expect("circles exposes a quotient");
    assert_eq!(bulk_table.dump(), reference);
    assert!(
        bulk.calls.get() <= qmemo.calls.get() + slots,
        "bulk classification matches the per-pair memo up to the unfolded \
         within-orbit diagonal: {} vs {}",
        bulk.calls.get(),
        qmemo.calls.get()
    );
}

/// A 48-agent workload with a clear color-0 margin.
fn workload(protocol: &Masked) -> CountConfig<CirclesState> {
    (0..48u16)
        .map(|i| if i % 4 == 0 { Color(0) } else { Color(i % K) })
        .map(|c| protocol.input(&c))
        .collect()
}

fn cold_report<A: Activity>(protocol: &Masked, seed: u64) -> RunReport<Color> {
    let mut engine = CountEngine::<_, _, A>::with_parts(
        protocol,
        workload(protocol),
        UniformCountScheduler::new(),
        seed,
    );
    let _ = engine.run_until_silent(BUDGET);
    engine.report()
}

fn warm_report<A: Activity>(
    protocol: &Masked,
    seed: u64,
    table: &TransitionTable<Masked>,
) -> RunReport<Color> {
    let mut engine = CountEngine::<_, _, A>::with_table_parts(
        protocol,
        workload(protocol),
        UniformCountScheduler::new(),
        seed,
        table,
    );
    let _ = engine.run_until_silent(BUDGET);
    engine.report()
}

#[test]
fn reports_identical_across_discovery_activity_and_warmth() {
    let memo = Masked::new(K, true, false);
    let quot = Masked::new(K, true, true);
    let oracle = quotient_table(&quot).expect("circles exposes a quotient");
    for seed in [3, 17] {
        let reference = cold_report::<SparseActivity>(&memo, seed);
        for protocol in [&memo, &quot] {
            assert_eq!(cold_report::<SparseActivity>(protocol, seed), reference);
            assert_eq!(cold_report::<CompactActivity>(protocol, seed), reference);
            assert_eq!(cold_report::<DenseActivity>(protocol, seed), reference);
            assert_eq!(
                warm_report::<SparseActivity>(protocol, seed, &oracle),
                reference
            );
            assert_eq!(
                warm_report::<CompactActivity>(protocol, seed, &oracle),
                reference
            );
            assert_eq!(
                warm_report::<DenseActivity>(protocol, seed, &oracle),
                reference
            );
        }
    }
}

#[test]
fn v2_store_round_trips_losslessly_and_resaves_v1_bytes() {
    let protocol = Masked::new(K, true, true);
    let table = quotient_table(&protocol).expect("circles exposes a quotient");

    let v2 = TempStore::new();
    let meta = transition_store::save_quotient(&table, &protocol, &v2.0).unwrap();
    assert_eq!(meta.version, FORMAT_VERSION);
    assert_eq!(meta.states as usize, table.len());
    let stats = meta.quotient.expect("v2 stores carry quotient stats");
    assert_eq!(stats.reps, u64::from(K) * u64::from(K));
    assert_eq!(stats.group_order, u32::from(K));
    assert_eq!(transition_store::inspect(&v2.0).unwrap(), meta);

    let calls_before = protocol.calls.get();
    let loaded = transition_store::load(&protocol, &v2.0).unwrap();
    assert_eq!(
        protocol.calls.get(),
        calls_before,
        "orbit expansion on load must make zero protocol calls"
    );
    assert_eq!(loaded.dump(), table.dump());

    // Writing v1 on demand: from the original and from the v2 round trip,
    // byte-for-byte the same file — and exactly as large as the v2 header
    // advertised.
    let v1_direct = TempStore::new();
    let v1_meta = transition_store::save(&table, &protocol, &v1_direct.0).unwrap();
    assert_eq!(v1_meta.version, FORMAT_V1);
    assert_eq!(v1_meta.quotient, None);
    let v1_resaved = TempStore::new();
    transition_store::save(&loaded, &protocol, &v1_resaved.0).unwrap();
    let direct_bytes = std::fs::read(&v1_direct.0).unwrap();
    assert_eq!(direct_bytes, std::fs::read(&v1_resaved.0).unwrap());
    assert_eq!(stats.v1_bytes, direct_bytes.len() as u64);
    assert!(
        stats.v1_bytes > meta.file_bytes,
        "the quotient layout must be smaller than the expanded one"
    );

    // And the expanded table serves warm runs exactly like a cold engine.
    let cold = cold_report::<CompactActivity>(&protocol, 11);
    assert_eq!(warm_report::<CompactActivity>(&protocol, 11, &loaded), cold);
}

#[test]
fn row_encoding_is_canonical_across_build_orders() {
    // Incremental engine discovery densifies rows mid-build (thresholds
    // are judged against the slot count at push time); the bulk builder
    // installs final sorted rows. Equal contents must save equal bytes.
    let protocol = Masked::new(K, true, true);
    let incremental = primed_table(&protocol);
    let bulk = quotient_table(&protocol).expect("circles exposes a quotient");
    assert_eq!(incremental.dump(), bulk.dump());

    let a = TempStore::new();
    let b = TempStore::new();
    transition_store::save(&incremental, &protocol, &a.0).unwrap();
    transition_store::save(&bulk, &protocol, &b.0).unwrap();
    assert_eq!(
        std::fs::read(&a.0).unwrap(),
        std::fs::read(&b.0).unwrap(),
        "equal-content tables must be byte-identical on disk"
    );
}
