//! Execution framework for *population protocols*.
//!
//! Population protocols (Angluin et al., 2006) model computation distributed
//! across a population of `n` identical, anonymous agents. A *scheduler*
//! repeatedly selects an ordered pair of agents (*initiator*, *responder*);
//! the two agents observe each other's states and update their own state
//! according to the protocol's deterministic transition function.
//!
//! This crate provides the substrate shared by every protocol in the
//! workspace:
//!
//! - [`Protocol`]: the trait a protocol implements (input, output and
//!   transition functions), plus [`EnumerableProtocol`] for protocols with an
//!   enumerable state space (used for state-complexity accounting and model
//!   checking).
//! - [`Population`]: an indexed vector of agent states, the representation
//!   used by schedulers that distinguish agents.
//! - [`CountConfig`]: an anonymous configuration — the multiset of states of
//!   Definition 1.1 of the Circles paper — used by the counting simulator and
//!   the model checker.
//! - [`Simulation`]: the indexed simulation engine, driven by any
//!   [`Scheduler`].
//! - [`CountEngine`]: the batched count-based engine, driven by any
//!   [`CountScheduler`] — it samples interacting *state pairs* instead of
//!   agent indices and jumps between change-points in one draw. Its
//!   [`Activity`] index (sparse adjacency + Fenwick sampling by default,
//!   dense pair matrix as the benchmarked baseline) and `u128` pair
//!   weights scale it to populations of billions of agents.
//! - [`InteractionTrace`]: record/replay of indexed interaction schedules;
//!   [`CountTrace`]: its count-level analogue — the JSONL change-point
//!   schedules that keep large-`n` failures reproducible and shrinkable.
//!
//! # Example
//!
//! ```
//! use pp_protocol::{Population, Protocol, Simulation, UniformPairScheduler};
//!
//! /// A toy "epidemic maximum" protocol: both agents adopt the larger value.
//! struct MaxProtocol;
//!
//! impl Protocol for MaxProtocol {
//!     type State = u8;
//!     type Input = u8;
//!     type Output = u8;
//!
//!     fn name(&self) -> &str {
//!         "max-epidemic"
//!     }
//!
//!     fn input(&self, input: &u8) -> u8 {
//!         *input
//!     }
//!
//!     fn output(&self, state: &u8) -> u8 {
//!         *state
//!     }
//!
//!     fn transition(&self, initiator: &u8, responder: &u8) -> (u8, u8) {
//!         let m = (*initiator).max(*responder);
//!         (m, m)
//!     }
//! }
//!
//! let protocol = MaxProtocol;
//! let population = Population::from_inputs(&protocol, &[3, 1, 4, 1, 5]);
//! let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 42);
//! let report = sim.run_until_silent(100_000, 16)?;
//! assert_eq!(report.consensus, Some(5));
//! # Ok::<(), pp_protocol::FrameworkError>(())
//! ```

#![forbid(unsafe_code)]
// The execution framework is the workspace's core public surface —
// undocumented items are build errors here, not warnings like in the
// leaf crates.
#![deny(missing_docs)]

pub mod activity;
mod config;
mod count_engine;
mod count_trace;
mod error;
pub mod fenwick;
mod hashing;
mod population;
mod protocol;
pub mod quotient;
pub mod run_checkpoint;
pub mod scheduler;
mod simulation;
mod time;
mod trace;
pub mod transition_store;
pub mod transition_table;

pub use activity::{
    Activity, AdjActivity, AdjRows, AdjStore, CompactActivity, CompactAdj, DenseActivity, RowRepr,
    SparseActivity, VecAdj,
};
pub use config::CountConfig;
pub use count_engine::{CompactCountEngine, CountEngine, DenseCountEngine};
pub use count_trace::CountTrace;
pub use error::FrameworkError;
pub use fenwick::Fenwick;
pub use population::Population;
pub use protocol::{EnumerableProtocol, Protocol};
pub use quotient::{quotient_table, CanonicalPair, QuotientError, StateQuotient};
pub use run_checkpoint::{CheckpointError, CheckpointMeta, ResumableRng, RunCheckpoint};
pub use scheduler::{
    CountScheduler, CountView, PairDraw, ReplayCountScheduler, Scheduler, UniformCountScheduler,
    UniformPairScheduler,
};
pub use simulation::{RunReport, SimStats, Simulation, StepReport};
pub use time::{parallel_time, GillespieClock};
pub use trace::InteractionTrace;
pub use transition_store::{AuditReport, QuotientStats, StoreError, StoreMeta};
pub use transition_table::{TableDump, TableSnapshot, TransitionTable};
