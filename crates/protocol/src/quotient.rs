//! Symmetry quotients of a protocol's state space, and the machinery that
//! lets discovery classify one canonical representative per orbit instead
//! of every concrete state pair.
//!
//! A [`StateQuotient`] names a finite group acting on the protocol's
//! states such that the transition function is *equivariant*: applying a
//! group element to both interaction partners commutes with the
//! transition. Protocols advertise their quotient through
//! [`Protocol::color_quotient`](crate::Protocol::color_quotient) (the
//! Circles rotation quotient lives in `circles_core`); the discovery
//! paths then consult it in two ways:
//!
//! - **Lazily** (`QuotientMemo`): [`CountEngine`](crate::CountEngine)
//!   routes every pair classification and outcome resolution through a
//!   memo keyed by *canonical pair*, so the protocol's transition function
//!   runs once per orbit and every other member of the orbit is
//!   reconstructed by applying the recorded group element. Slot
//!   materialization order — and therefore every `RunReport` — is
//!   untouched: only *who answers* a classification changes, never the
//!   answer.
//! - **In bulk** ([`quotient_table`]): full-table discovery classifies the
//!   rows of the `|S| / |G|` canonical representatives through the
//!   protocol and expands every other row mechanically through the group
//!   action — zero further protocol calls. This is what makes Circles
//!   `k = 50` (125 000 states, ~10¹⁰ ordered pairs) buildable in seconds,
//!   and it is the in-memory half of the `.ppts` v2 store format (see
//!   [`transition_store`](crate::transition_store)).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use crate::activity::AdjRows;
use crate::hashing::FxBuildHasher;
use crate::protocol::EnumerableProtocol;
use crate::transition_table::TransitionTable;

/// The canonical representative of an ordered state pair's orbit, plus the
/// data to reconstruct the original pair: `(a, b)` is the representative,
/// and the original pair is `(apply(g, a), apply(g, b))` — the two swapped
/// when `swapped` is set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalPair<S> {
    /// Canonical initiator.
    pub a: S,
    /// Canonical responder.
    pub b: S,
    /// Group element mapping the canonical pair back onto the original.
    pub g: u32,
    /// Whether the original pair is the *swap* of `(apply(g, a),
    /// apply(g, b))`. Implementations may only set this for protocols
    /// whose transition is symmetric
    /// ([`Protocol::is_symmetric`](crate::Protocol::is_symmetric)), where
    /// the outcome of the swapped pair is the swapped outcome.
    pub swapped: bool,
}

/// A finite group action on a protocol's states under which the transition
/// function is equivariant.
///
/// Group elements are named `0..group_order()`; **element `0` must be the
/// identity**. The contract, for all states `a`, `b` and elements `g`:
///
/// - `apply(0, s) == s`, and `s ↦ apply(g, s)` is a bijection of the state
///   set;
/// - **equivariance**: `transition(apply(g, a), apply(g, b)) ==
///   (apply(g, x), apply(g, y))` where `(x, y) = transition(a, b)`;
/// - [`canonical_state`](Self::canonical_state) and
///   [`canonical_pair`](Self::canonical_pair) are constant on orbits and
///   return an element of the orbit together with the group element
///   mapping it back onto the argument.
///
/// Everything the engine and the store do with a quotient — memoized
/// classification, orbit expansion, the v2 store format — is correct
/// exactly when this contract holds; `circles_core` verifies it
/// exhaustively for small `k` and the property suite cross-checks
/// quotient-discovered tables against brute force.
pub trait StateQuotient<S> {
    /// Number of group elements (the rotation count `k` for Circles).
    fn group_order(&self) -> u32;

    /// Applies group element `g` to `state`.
    fn apply(&self, g: u32, state: &S) -> S;

    /// The canonical representative of `state`'s orbit, and the element
    /// `g` with `apply(g, canonical) == *state`.
    fn canonical_state(&self, state: &S) -> (S, u32);

    /// The canonical representative of the ordered pair's orbit (folding
    /// the initiator/responder swap when the protocol is symmetric); see
    /// [`CanonicalPair`] for the reconstruction contract.
    fn canonical_pair(&self, a: &S, b: &S) -> CanonicalPair<S>;
}

/// Memo entries above this cap are recomputed instead of stored, bounding
/// memory on adversarial state spaces. A full Circles `k = 30` enumeration
/// holds ~12.2 M canonical pairs, comfortably below the cap — correctness
/// never depends on a hit, only the measured call ratio does.
const QUOTIENT_MEMO_CAP: usize = 1 << 24;

/// The lazy canonical-pair memo a [`CountEngine`](crate::CountEngine)
/// carries when its protocol exposes a quotient: canonical pair →
/// canonical outcome. One protocol transition call per orbit; every
/// concrete pair of the orbit resolves by hash lookup plus one group
/// application per returned state.
pub(crate) struct QuotientMemo<'p, S> {
    quotient: &'p dyn StateQuotient<S>,
    memo: HashMap<(S, S), (S, S), FxBuildHasher>,
}

impl<'p, S: Clone + Eq + Hash> QuotientMemo<'p, S> {
    pub(crate) fn new(quotient: &'p dyn StateQuotient<S>) -> Self {
        QuotientMemo {
            quotient,
            memo: HashMap::with_hasher(FxBuildHasher::default()),
        }
    }

    /// The canonical outcome of canonical pair `(a, b)`, from the memo or
    /// (on a miss) from one protocol transition call.
    fn canonical_outcome(
        &mut self,
        transition: impl FnOnce(&S, &S) -> (S, S),
        a: S,
        b: S,
    ) -> (S, S) {
        if let Some(out) = self.memo.get(&(a.clone(), b.clone())) {
            return out.clone();
        }
        let out = transition(&a, &b);
        if self.memo.len() < QUOTIENT_MEMO_CAP {
            self.memo.insert((a, b), out.clone());
        }
        out
    }

    /// The transition of concrete pair `(a, b)`, resolved through the
    /// orbit representative. Agrees exactly with `transition(a, b)` by
    /// equivariance.
    pub(crate) fn resolve(
        &mut self,
        transition: impl FnOnce(&S, &S) -> (S, S),
        a: &S,
        b: &S,
    ) -> (S, S) {
        let cp = self.quotient.canonical_pair(a, b);
        let g = cp.g;
        let swapped = cp.swapped;
        let (oa, ob) = self.canonical_outcome(transition, cp.a, cp.b);
        if swapped {
            (self.quotient.apply(g, &ob), self.quotient.apply(g, &oa))
        } else {
            (self.quotient.apply(g, &oa), self.quotient.apply(g, &ob))
        }
    }

    /// Whether concrete pair `(a, b)` is a null interaction — a pair is
    /// null iff its canonical representative is, so no group application
    /// is needed on the way back.
    pub(crate) fn is_null(
        &mut self,
        transition: impl FnOnce(&S, &S) -> (S, S),
        a: &S,
        b: &S,
    ) -> bool {
        let cp = self.quotient.canonical_pair(a, b);
        let key = (cp.a, cp.b);
        let (oa, ob) = self.canonical_outcome(transition, key.0.clone(), key.1.clone());
        (oa, ob) == key
    }

    /// Read-only variant of [`is_null`](Self::is_null) for `&self`
    /// contexts (segment publication): memo hits answer for free, misses
    /// classify the representative through the protocol without recording.
    pub(crate) fn is_null_readonly(
        &self,
        transition: impl FnOnce(&S, &S) -> (S, S),
        a: &S,
        b: &S,
    ) -> bool {
        let cp = self.quotient.canonical_pair(a, b);
        let key = (cp.a, cp.b);
        match self.memo.get(&key) {
            Some(out) => *out == key,
            None => {
                let out = transition(&key.0, &key.1);
                out == key
            }
        }
    }
}

impl<S: fmt::Debug> fmt::Debug for QuotientMemo<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QuotientMemo")
            .field("entries", &self.memo.len())
            .finish_non_exhaustive()
    }
}

/// Failures of [`quotient_table`].
#[derive(Debug)]
#[non_exhaustive]
pub enum QuotientError {
    /// The protocol does not expose a color quotient.
    Unsupported,
    /// The group action left the enumerated state set, or a canonical
    /// representative is not itself enumerated — the quotient violates its
    /// contract on this protocol.
    NotClosed(String),
}

impl fmt::Display for QuotientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuotientError::Unsupported => {
                write!(f, "protocol exposes no color quotient")
            }
            QuotientError::NotClosed(msg) => {
                write!(f, "quotient is not closed over the state set: {msg}")
            }
        }
    }
}

impl std::error::Error for QuotientError {}

/// Builds the **full** transition table of an enumerable protocol through
/// its color quotient: the rows of the `|S| / |G|` canonical
/// representatives are classified with protocol transition calls, and
/// every other row is expanded mechanically through the group action —
/// zero further protocol calls.
///
/// The result is bit-identical to priming a cold
/// [`CountEngine`](crate::CountEngine) with
/// [`EnumerableProtocol::states`] and exporting — same state order (the
/// enumeration order), same pair classification, no outcomes — the
/// property suite pins this. For Circles this turns the `O(k⁶)` transition
/// bill of a full `k = 50` build into `O(k⁵)`.
///
/// # Errors
///
/// [`QuotientError::Unsupported`] when the protocol exposes no quotient;
/// [`QuotientError::NotClosed`] when the group action is inconsistent with
/// the enumerated state set.
pub fn quotient_table<P>(protocol: &P) -> Result<TransitionTable<P>, QuotientError>
where
    P: EnumerableProtocol,
{
    let quotient = protocol
        .color_quotient()
        .ok_or(QuotientError::Unsupported)?;
    let states = protocol.states();
    let slots = states.len();
    let mut index: HashMap<&P::State, u32, FxBuildHasher> =
        HashMap::with_capacity_and_hasher(slots, FxBuildHasher::default());
    for (t, s) in states.iter().enumerate() {
        index.insert(s, t as u32);
    }

    // Orbit decomposition: per state its representative's tid and the
    // group element mapping the representative onto it.
    let mut rep_of: Vec<(u32, u32)> = Vec::with_capacity(slots);
    let mut rep_index: HashMap<u32, u32, FxBuildHasher> =
        HashMap::with_hasher(FxBuildHasher::default());
    let mut reps: Vec<u32> = Vec::new();
    for s in &states {
        let (canon, g) = quotient.canonical_state(s);
        let &rep_tid = index.get(&canon).ok_or_else(|| {
            QuotientError::NotClosed(format!(
                "canonical representative {canon:?} is not an enumerated state"
            ))
        })?;
        if quotient.apply(g, &canon) != *s {
            return Err(QuotientError::NotClosed(format!(
                "apply(g, canonical) does not recover {s:?}"
            )));
        }
        rep_index.entry(rep_tid).or_insert_with(|| {
            reps.push(rep_tid);
            reps.len() as u32 - 1
        });
        rep_of.push((rep_tid, g));
    }

    // Classify the representatives' rows through the protocol — the only
    // transition calls of the whole build. For swap-equivariant protocols
    // (`is_symmetric`) the bill is halved again: once representative `j`'s
    // row is known, the activity of `(rep_i, g·rep_j)` for any later `i`
    // is `active(rep_j, g⁻¹·rep_i)` — a bit lookup, not a transition call.
    let symmetric = protocol.is_symmetric();
    let row_words = slots.div_ceil(64);
    let mut rep_rows: Vec<Vec<u32>> = Vec::with_capacity(reps.len());
    let mut rep_bits: Vec<Vec<u64>> = Vec::new();
    // inv_perms[g][t] = tid of the state `g` maps onto `states[t]`.
    let mut inv_perms: HashMap<u32, Vec<u32>, FxBuildHasher> =
        HashMap::with_hasher(FxBuildHasher::default());
    for (i, &rt) in reps.iter().enumerate() {
        let rs = &states[rt as usize];
        let mut row: Vec<u32> = Vec::new();
        for t in 0..slots as u32 {
            let (rb_tid, g) = rep_of[t as usize];
            let j = rep_index[&rb_tid] as usize;
            let active = if symmetric && j < i {
                if let Entry::Vacant(e) = inv_perms.entry(g) {
                    let mut inv = vec![u32::MAX; slots];
                    for (src, s) in states.iter().enumerate() {
                        let image = quotient.apply(g, s);
                        let &it = index.get(&image).ok_or_else(|| {
                            QuotientError::NotClosed(format!(
                                "group element {g} maps {s:?} outside the state set"
                            ))
                        })?;
                        inv[it as usize] = src as u32;
                    }
                    e.insert(inv);
                }
                let src = inv_perms[&g][rt as usize];
                if src == u32::MAX {
                    return Err(QuotientError::NotClosed(format!(
                        "group element {g} does not act bijectively on the state set"
                    )));
                }
                rep_bits[j][src as usize / 64] >> (src % 64) & 1 == 1
            } else {
                !protocol.is_null_interaction(rs, &states[t as usize])
            };
            if active {
                row.push(t);
            }
        }
        if symmetric {
            let mut bits = vec![0u64; row_words];
            for &t in &row {
                bits[t as usize / 64] |= 1 << (t % 64);
            }
            rep_bits.push(bits);
        }
        rep_rows.push(row);
    }
    drop(inv_perms);
    drop(rep_bits);

    let rows = expand_orbit_rows(quotient, &states, &index, &rep_of, &rep_index, &rep_rows)
        .map_err(QuotientError::NotClosed)?;
    Ok(TransitionTable::from_parts(
        states,
        rows,
        HashMap::with_hasher(FxBuildHasher::default()),
        protocol.is_symmetric(),
    ))
}

/// Expands per-representative out-rows into the full [`AdjRows`] through
/// the group action: row of `apply(g, rep)` is the image of `rep`'s row
/// under the tid-level permutation of `g`. Shared between
/// [`quotient_table`] and the `.ppts` v2 loader. `rep_of[tid]` is
/// `(rep_tid, g)`; `rep_index` maps a representative's tid to its index in
/// `rep_rows`.
///
/// Rows land in the same representation the incremental discovery path
/// would produce: delta-varint lists while small, blocked bitsets past the
/// [`CompactAdj`](crate::CompactAdj) densify threshold.
pub(crate) fn expand_orbit_rows<S, Q>(
    quotient: &Q,
    states: &[S],
    index: &HashMap<&S, u32, FxBuildHasher>,
    rep_of: &[(u32, u32)],
    rep_index: &HashMap<u32, u32, FxBuildHasher>,
    rep_rows: &[Vec<u32>],
) -> Result<AdjRows, String>
where
    S: Clone + Eq + Hash + fmt::Debug,
    Q: StateQuotient<S> + ?Sized,
{
    let slots = states.len();
    let mut rows = AdjRows::new();
    for _ in 0..slots {
        rows.push_slot();
    }
    // Tid-level permutation tables, one per group element actually used,
    // built lazily: perm[t] = tid of apply(g, states[t]).
    let mut perms: HashMap<u32, Vec<u32>, FxBuildHasher> =
        HashMap::with_hasher(FxBuildHasher::default());
    let threshold = slots / 8 + 8;
    let row_words = slots.div_ceil(64);
    let mut scratch: Vec<u32> = Vec::new();
    for (tid, &(rep_tid, g)) in rep_of.iter().enumerate() {
        let r = rep_index
            .get(&rep_tid)
            .copied()
            .ok_or_else(|| format!("state {tid} names an unlisted representative"))?;
        let rep_row = rep_rows
            .get(r as usize)
            .ok_or_else(|| format!("representative index {r} out of range"))?;
        if tid as u32 == rep_tid {
            // The representative's own row: already in ascending tid order.
            set_sorted_row(&mut rows, tid, rep_row, threshold, row_words);
            continue;
        }
        if let Entry::Vacant(e) = perms.entry(g) {
            let mut perm = Vec::with_capacity(slots);
            for s in states {
                let image = quotient.apply(g, s);
                let &t = index
                    .get(&image)
                    .ok_or_else(|| format!("group element {g} maps {s:?} outside the state set"))?;
                perm.push(t);
            }
            e.insert(perm);
        }
        let perm = &perms[&g];
        if rep_row.len() > threshold {
            // A sparse encoding cannot fit (≥ 1 byte per id): go straight
            // to the bitset, which needs no sort.
            let mut blocks = vec![0u64; row_words];
            for &t in rep_row {
                let m = perm[t as usize] as usize;
                blocks[m / 64] |= 1 << (m % 64);
            }
            rows.set_row_dense(tid, blocks, rep_row.len() as u32);
        } else {
            scratch.clear();
            scratch.extend(rep_row.iter().map(|&t| perm[t as usize]));
            scratch.sort_unstable();
            set_sorted_row(&mut rows, tid, &scratch, threshold, row_words);
        }
    }
    Ok(rows)
}

/// Installs `ids` (ascending) as row `tid`, choosing the same sparse/dense
/// representation the incremental path would.
fn set_sorted_row(rows: &mut AdjRows, tid: usize, ids: &[u32], threshold: usize, row_words: usize) {
    if ids.is_empty() {
        return;
    }
    if ids.len() > threshold {
        let mut blocks = vec![0u64; row_words];
        for &m in ids {
            blocks[m as usize / 64] |= 1 << (m % 64);
        }
        rows.set_row_dense(tid, blocks, ids.len() as u32);
        return;
    }
    let mut payload = Vec::with_capacity(ids.len() * 2);
    let mut prev = 0u32;
    for (n, &m) in ids.iter().enumerate() {
        let delta = if n == 0 { m } else { m - prev };
        let mut v = delta;
        while v >= 0x80 {
            payload.push((v as u8 & 0x7F) | 0x80);
            v >>= 7;
        }
        payload.push(v as u8);
        prev = m;
    }
    // `set_row_varint` densifies by the shared threshold policy itself
    // when the payload turns out too large.
    rows.set_row_varint(tid, ids.len() as u32, prev, &payload);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;

    /// A toy protocol invariant under rotation of `Z_m` (`m` even):
    /// partners at odd cyclic distance exchange states, everyone else
    /// ignores each other. Symmetric, swap-equivariant, and equivariant
    /// under `x ↦ x + g mod m` — a minimal stand-in for Circles in
    /// crate-local tests. (`m` must be even: `d` and `m − d` must share
    /// parity for the exchange rule to commute with swapping.)
    #[derive(Debug)]
    struct RotMod {
        m: u8,
        quotient: RotModQuotient,
    }

    #[derive(Debug)]
    struct RotModQuotient {
        m: u8,
    }

    impl RotMod {
        fn new(m: u8) -> Self {
            assert_eq!(m % 2, 0, "RotMod needs an even modulus");
            RotMod {
                m,
                quotient: RotModQuotient { m },
            }
        }
    }

    impl StateQuotient<u8> for RotModQuotient {
        fn group_order(&self) -> u32 {
            u32::from(self.m)
        }

        fn apply(&self, g: u32, state: &u8) -> u8 {
            ((u32::from(*state) + g) % u32::from(self.m)) as u8
        }

        fn canonical_state(&self, state: &u8) -> (u8, u32) {
            (0, u32::from(*state))
        }

        fn canonical_pair(&self, a: &u8, b: &u8) -> CanonicalPair<u8> {
            let m = u32::from(self.m);
            let fwd = (0u8, ((u32::from(*b) + m - u32::from(*a)) % m) as u8);
            let rev = (0u8, ((u32::from(*a) + m - u32::from(*b)) % m) as u8);
            if rev < fwd {
                CanonicalPair {
                    a: rev.0,
                    b: rev.1,
                    g: u32::from(*b),
                    swapped: true,
                }
            } else {
                CanonicalPair {
                    a: fwd.0,
                    b: fwd.1,
                    g: u32::from(*a),
                    swapped: false,
                }
            }
        }
    }

    impl Protocol for RotMod {
        type State = u8;
        type Input = u8;
        type Output = u8;

        fn name(&self) -> &str {
            "rot-mod"
        }

        fn input(&self, i: &u8) -> u8 {
            *i % self.m
        }

        fn output(&self, s: &u8) -> u8 {
            *s
        }

        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            let m = u16::from(self.m);
            let d = (u16::from(*b) + m - u16::from(*a)) % m;
            if d % 2 == 1 {
                (*b, *a)
            } else {
                (*a, *b)
            }
        }

        fn is_symmetric(&self) -> bool {
            true
        }

        fn color_quotient(&self) -> Option<&dyn StateQuotient<u8>> {
            Some(&self.quotient)
        }
    }

    impl EnumerableProtocol for RotMod {
        fn states(&self) -> Vec<u8> {
            (0..self.m).collect()
        }
    }

    #[test]
    fn toy_quotient_is_equivariant() {
        // Sanity-check the fixture itself; the real equivariance suite for
        // Circles lives in `circles_core`.
        let p = RotMod::new(8);
        let q = p.color_quotient().unwrap();
        for a in 0..8u8 {
            for b in 0..8u8 {
                let (x, y) = p.transition(&a, &b);
                for g in 0..8 {
                    let (rx, ry) = p.transition(&q.apply(g, &a), &q.apply(g, &b));
                    assert_eq!((rx, ry), (q.apply(g, &x), q.apply(g, &y)));
                }
            }
        }
    }

    #[test]
    fn memo_resolves_like_the_protocol() {
        let p = RotMod::new(6);
        let mut memo = QuotientMemo::new(p.color_quotient().unwrap());
        for a in 0..6u8 {
            for b in 0..6u8 {
                let expect = p.transition(&a, &b);
                let got = memo.resolve(|x, y| p.transition(x, y), &a, &b);
                assert_eq!(got, expect, "resolve disagrees at ({a}, {b})");
                assert_eq!(
                    memo.is_null(|x, y| p.transition(x, y), &a, &b),
                    p.is_null_interaction(&a, &b)
                );
                assert_eq!(
                    memo.is_null_readonly(|x, y| p.transition(x, y), &a, &b),
                    p.is_null_interaction(&a, &b)
                );
            }
        }
        // 6 states → 36 ordered pairs, but at most 6 canonical keys (the
        // cyclic difference), swap-folded down to 4.
        assert!(memo.memo.len() <= 4, "memo holds {} keys", memo.memo.len());
    }

    #[test]
    fn quotient_table_matches_brute_force() {
        let p = RotMod::new(10);
        let table = quotient_table(&p).unwrap();
        let snap = table.snapshot();
        assert_eq!(snap.len(), 10);
        for i in 0..10u32 {
            for j in 0..10u32 {
                let (a, b) = (i as u8, j as u8);
                assert_eq!(
                    snap.contains(i, j),
                    !p.is_null_interaction(&a, &b),
                    "pair ({i}, {j}) misclassified"
                );
            }
        }
    }

    #[test]
    fn quotient_table_requires_a_quotient() {
        struct Plain;
        impl Protocol for Plain {
            type State = u8;
            type Input = u8;
            type Output = u8;
            fn name(&self) -> &str {
                "plain"
            }
            fn input(&self, i: &u8) -> u8 {
                *i
            }
            fn output(&self, s: &u8) -> u8 {
                *s
            }
            fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
                (*a.max(b), *a.max(b))
            }
        }
        impl EnumerableProtocol for Plain {
            fn states(&self) -> Vec<u8> {
                (0..4).collect()
            }
        }
        assert!(matches!(
            quotient_table(&Plain),
            Err(QuotientError::Unsupported)
        ));
    }
}
