//! Continuous-time views of an execution.
//!
//! Two time scales are standard in the population-protocol and chemical
//! reaction network literature:
//!
//! - **parallel time**: interactions divided by `n` — the unit in which
//!   "each agent participates in O(1) interactions per time unit";
//! - **Gillespie time**: the stochastic chemical clock, where each of the
//!   `n(n-1)/2` unordered agent pairs collides at rate `1/n` (so the whole
//!   solution performs `(n-1)/2` interactions per unit time in expectation,
//!   matching the parallel-time scale asymptotically).
//!
//! The simulators count discrete interactions; this module converts those
//! counts to both clocks, with an exact exponential-increment sampler for
//! event timestamps when an experiment needs a bona fide CTMC trajectory.

use rand::rngs::StdRng;
use rand::RngExt;

/// Converts an interaction count to parallel time.
///
/// # Panics
///
/// Panics when `n == 0`.
pub fn parallel_time(steps: u64, n: usize) -> f64 {
    assert!(n > 0, "population must be nonempty");
    steps as f64 / n as f64
}

/// A Gillespie clock for a well-mixed population of `n` agents: each of the
/// `n(n-1)/2` unordered pairs fires at rate `1/n`, so inter-event times are
/// `Exp(λ)` with `λ = (n-1)/2`.
///
/// # Example
///
/// ```
/// use pp_protocol::GillespieClock;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut clock = GillespieClock::new(100);
/// let mut rng = StdRng::seed_from_u64(1);
/// for _ in 0..495 {
///     clock.tick(&mut rng);
/// }
/// // ~495 events at rate 49.5/unit ≈ 10 time units.
/// assert!((clock.now() - 10.0).abs() < 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct GillespieClock {
    rate: f64,
    now: f64,
    events: u64,
}

impl GillespieClock {
    /// Creates the clock for a population of `n` agents.
    ///
    /// # Panics
    ///
    /// Panics when `n < 2` — a single agent never interacts and the clock
    /// would never advance.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "gillespie clock needs at least two agents");
        GillespieClock {
            rate: (n as f64 - 1.0) / 2.0,
            now: 0.0,
            events: 0,
        }
    }

    /// Total event rate `λ = (n-1)/2`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Events ticked so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Advances the clock past one interaction and returns the new time.
    /// The increment is an exact `Exp(λ)` sample.
    pub fn tick(&mut self, rng: &mut StdRng) -> f64 {
        // Inverse-transform sampling; guard the log against u == 0.
        let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        self.now += -u.ln() / self.rate;
        self.events += 1;
        self.now
    }

    /// The expected time after `steps` interactions (the deterministic
    /// fluid-limit clock): `steps / λ`.
    pub fn expected_time(&self, steps: u64) -> f64 {
        steps as f64 / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn parallel_time_is_steps_over_n() {
        assert_eq!(parallel_time(1000, 100), 10.0);
        assert_eq!(parallel_time(0, 5), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn parallel_time_rejects_empty() {
        let _ = parallel_time(1, 0);
    }

    #[test]
    fn clock_rate_matches_formula() {
        assert_eq!(GillespieClock::new(101).rate(), 50.0);
        assert_eq!(GillespieClock::new(2).rate(), 0.5);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut clock = GillespieClock::new(10);
        let mut rng = StdRng::seed_from_u64(3);
        let mut last = 0.0;
        for _ in 0..100 {
            let t = clock.tick(&mut rng);
            assert!(t > last);
            last = t;
        }
        assert_eq!(clock.events(), 100);
    }

    #[test]
    fn clock_concentrates_around_expectation() {
        // Law of large numbers: after many events the realized time is
        // close to events/rate.
        let mut clock = GillespieClock::new(50);
        let mut rng = StdRng::seed_from_u64(7);
        let events = 20_000;
        for _ in 0..events {
            clock.tick(&mut rng);
        }
        let expected = clock.expected_time(events);
        let rel = (clock.now() - expected).abs() / expected;
        assert!(rel < 0.05, "relative deviation {rel}");
    }

    #[test]
    #[should_panic(expected = "two agents")]
    fn clock_rejects_singleton() {
        let _ = GillespieClock::new(1);
    }
}
