//! A fast, non-cryptographic hasher for the engine's hot state→slot lookups.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of nanoseconds
//! per lookup, which dominates the count engine's per-change-point budget
//! (two slot resolutions per applied transition). Protocol states are small
//! fixed-size values chosen by the simulation itself — not attacker
//! input — so the rustc-style Fx multiply-rotate hash is the right
//! trade-off.

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` for [`FxHasher`], usable as a `HashMap` hasher parameter.
pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc Fx hash: one rotate, xor and multiply per word.
#[derive(Debug, Default, Clone)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn distinct_keys_resolve_in_a_map() {
        let mut map: HashMap<(u16, u16, u16), usize, FxBuildHasher> = HashMap::default();
        for i in 0..100u16 {
            for j in 0..10u16 {
                map.insert((i, j, i ^ j), (i as usize) * 10 + j as usize);
            }
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map[&(7, 3, 7 ^ 3)], 73);
    }

    #[test]
    fn byte_stream_and_word_writes_are_deterministic() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), c.finish());
    }
}
