//! A Fenwick (binary-indexed) tree over `u128` weights, specialized for the
//! count engine's conditional pair sampling.
//!
//! The sparse activity index keeps one weight per slot (`row_mass`) and must
//! answer "which slot does the `r`-th unit of weight fall in?" once per
//! change-point. A Fenwick tree answers that in `O(log slots)` and absorbs a
//! single-row update in `O(log slots)`; when a change-point dirties many rows
//! at once (dense-activity protocols such as Circles), rebuilding the whole
//! tree in `O(slots)` is cheaper than `dirty · log` point updates, so
//! [`Fenwick::rebuild`] is part of the interface and callers pick
//! per-update or rebuild adaptively.

/// A Fenwick tree over non-negative `u128` weights.
///
/// Weight indices are 0-based at the API surface (matching slot ids); the
/// classic 1-based layout is internal.
#[derive(Debug, Clone)]
pub struct Fenwick {
    /// 1-based partial sums; `tree[i]` covers `(i - lsb(i), i]`; `tree[0]`
    /// is a placeholder so the classic index arithmetic stays branch-free.
    tree: Vec<u128>,
    len: usize,
}

impl Default for Fenwick {
    fn default() -> Self {
        Fenwick::new()
    }
}

impl Fenwick {
    /// An empty tree.
    pub fn new() -> Self {
        Fenwick {
            tree: vec![0],
            len: 0,
        }
    }

    /// Number of weights tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree tracks no weights.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Builds a tree over `weights` in `O(len)`.
    pub fn from_weights(weights: &[u128]) -> Self {
        let mut f = Fenwick::new();
        f.rebuild(weights);
        f
    }

    /// Replaces the tracked weights wholesale in `O(len)` — the batched
    /// alternative to many [`add`](Self::add) calls.
    pub fn rebuild(&mut self, weights: &[u128]) {
        self.len = weights.len();
        self.tree.clear();
        self.tree.resize(weights.len() + 1, 0);
        self.tree[1..].copy_from_slice(weights);
        for i in 1..=weights.len() {
            let parent = i + (i & i.wrapping_neg());
            if parent <= weights.len() {
                let v = self.tree[i];
                self.tree[parent] += v;
            }
        }
    }

    /// Appends a weight in `O(log len)`.
    pub fn push(&mut self, weight: u128) {
        self.len += 1;
        let i = self.len;
        // tree[i] covers (i - lsb(i), i]: the new element plus the sum of the
        // preceding lsb(i) - 1 elements, both O(log) prefix queries.
        let low = i - (i & i.wrapping_neg());
        let covered = self.prefix(i - 1) - self.prefix(low);
        self.tree.push(weight + covered);
    }

    /// Adds `delta` to the weight at `index` in `O(log len)`.
    ///
    /// # Panics
    ///
    /// Panics when a node sum would go negative — a negative excursion
    /// means the caller's weights are out of sync, and a wrapped node
    /// would silently bias every subsequent [`find`](Self::find).
    pub fn add(&mut self, index: usize, delta: i128) {
        debug_assert!(index < self.len, "fenwick index {index} out of bounds");
        let mut i = index + 1;
        while i <= self.len {
            self.tree[i] = self.tree[i]
                .checked_add_signed(delta)
                .expect("fenwick node sum underflow");
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of the first `count` weights.
    pub fn prefix(&self, count: usize) -> u128 {
        debug_assert!(count <= self.len, "fenwick prefix {count} out of bounds");
        let mut i = count;
        let mut sum = 0u128;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Total weight.
    pub fn total(&self) -> u128 {
        self.prefix(self.len)
    }

    /// Finds the 0-based index `i` with `prefix(i) <= r < prefix(i + 1)` —
    /// the slot containing the `r`-th unit of weight — and returns it with
    /// the residual `r - prefix(i)`. Identical to a linear scan that
    /// subtracts weights until one exceeds the remainder, in `O(log len)`.
    ///
    /// # Panics
    ///
    /// Panics when `r >= total()` (the caller sampled outside the mass).
    pub fn find(&self, mut r: u128) -> (usize, u128) {
        let mut pos = 0usize;
        let mut mask = self.tree.len().saturating_sub(1).next_power_of_two();
        while mask > 0 {
            let next = pos + mask;
            if next < self.tree.len() && self.tree[next] <= r {
                r -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        assert!(pos < self.len, "fenwick find walked past the total weight");
        (pos, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_find(weights: &[u128], mut r: u128) -> (usize, u128) {
        for (i, &w) in weights.iter().enumerate() {
            if r < w {
                return (i, r);
            }
            r -= w;
        }
        panic!("r out of range");
    }

    #[test]
    fn find_matches_linear_scan() {
        let weights: Vec<u128> = vec![3, 0, 5, 1, 0, 0, 7, 2, 0, 4];
        let f = Fenwick::from_weights(&weights);
        let total: u128 = weights.iter().sum();
        assert_eq!(f.total(), total);
        for r in 0..total {
            assert_eq!(f.find(r), linear_find(&weights, r), "r = {r}");
        }
    }

    #[test]
    fn add_and_push_track_updates() {
        let mut weights: Vec<u128> = vec![2, 4, 0, 6];
        let mut f = Fenwick::from_weights(&weights);
        f.add(1, -4);
        weights[1] = 0;
        f.add(2, 9);
        weights[2] = 9;
        f.push(5);
        weights.push(5);
        f.push(0);
        weights.push(0);
        let total: u128 = weights.iter().sum();
        assert_eq!(f.total(), total);
        for r in 0..total {
            assert_eq!(f.find(r), linear_find(&weights, r), "r = {r}");
        }
    }

    #[test]
    fn rebuild_matches_incremental() {
        let weights: Vec<u128> = (0..100).map(|i| (i * 7919) % 13).collect();
        let mut incremental = Fenwick::new();
        for &w in &weights {
            incremental.push(w);
        }
        let rebuilt = Fenwick::from_weights(&weights);
        let total: u128 = weights.iter().sum();
        for r in (0..total).step_by(7) {
            assert_eq!(incremental.find(r), rebuilt.find(r), "r = {r}");
        }
    }

    #[test]
    fn u128_weights_beyond_u64() {
        // Two huge rows whose sum exceeds u64::MAX.
        let big = u128::from(u64::MAX);
        let weights = vec![big, 0, big + 5];
        let f = Fenwick::from_weights(&weights);
        assert_eq!(f.total(), 2 * big + 5);
        assert_eq!(f.find(big - 1), (0, big - 1));
        assert_eq!(f.find(big), (2, 0));
        assert_eq!(f.find(2 * big + 4), (2, big + 4));
    }

    #[test]
    #[should_panic(expected = "walked past")]
    fn find_past_total_panics() {
        let f = Fenwick::from_weights(&[1, 2]);
        let _ = f.find(3);
    }

    #[test]
    fn empty_tree_is_empty() {
        let f = Fenwick::new();
        assert!(f.is_empty());
        assert_eq!(f.total(), 0);
    }
}
