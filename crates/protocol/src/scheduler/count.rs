//! Count-level scheduling: interactions drawn as *state pairs* over an
//! anonymous configuration.
//!
//! Agents with equal states are interchangeable under the uniform-random
//! scheduler, so an execution can be driven without agent identities at all:
//! a [`CountScheduler`] draws ordered pairs of *state slots* from the dense
//! count representation exposed as a [`CountView`]. Drawing an initiator
//! state with probability `c_i / n` and then a responder with probability
//! `c_j' / (n - 1)` (where `c_j'` excludes the initiator) is exactly the
//! hypergeometric two-draw over the multiset — the count-level image of the
//! uniform pair distribution `1 / (n (n - 1))` on agent pairs.
//!
//! The trait also has a *batched* entry point, [`CountScheduler::next_change`]:
//! instead of materializing every interaction, a scheduler may jump straight
//! to the next interaction that changes some state, reporting how many silent
//! (null) interactions it provably skipped. For the uniform-random scheduler
//! the skip length is geometric with success probability `mass / (n (n - 1))`
//! where `mass` is the total weight of state-changing ordered pairs, so
//! silent-heavy runs advance in one draw per change-point instead of one draw
//! per interaction. The conditional change-pair draw itself is answered by
//! the engine's [`Activity`](crate::activity::Activity) index through
//! [`CountView::sample_change`] — a Fenwick-tree prefix search plus an
//! adjacency walk (`O(log slots + deg)`) on the default sparse index. All
//! pair weights are `u128`, so populations beyond `u32::MAX` sample without
//! overflow.

use rand::{RngCore, RngExt};

use crate::activity::PairSampling;

/// A read-only, dense snapshot of an anonymous configuration plus the
/// activity structure maintained by the count engine.
///
/// Slots index the engine's dense arrays; every state ever seen keeps its
/// slot, so zero-count slots exist and simply carry no weight.
#[derive(Clone, Copy)]
pub struct CountView<'a, S> {
    /// Distinct states by slot.
    pub states: &'a [S],
    /// Agents currently in each slot's state.
    pub counts: &'a [u64],
    /// Total number of agents.
    pub n: u64,
    /// Per-initiator-slot total weight of *active* (state-changing) ordered
    /// pairs: `row_mass[i] = Σ_j active(i, j) · c_i · (c_j − [i = j])`.
    pub row_mass: &'a [u128],
    /// Total active weight: `Σ_i row_mass[i]`. Zero iff the configuration is
    /// silent.
    pub mass: u128,
    /// The engine's activity index, answering pair-activity and conditional
    /// sampling queries.
    pub(crate) sampler: &'a dyn PairSampling,
}

impl<S> CountView<'_, S> {
    /// Number of slots (distinct states ever seen, including empty slots).
    pub fn slots(&self) -> usize {
        self.states.len()
    }

    /// Whether the ordered slot pair `(i, j)` changes state when it
    /// interacts.
    pub fn is_active(&self, i: usize, j: usize) -> bool {
        self.sampler.is_active(i, j)
    }

    /// The sampling weight of the ordered slot pair `(i, j)`: the number of
    /// ordered *agent* pairs realizing it, `c_i · (c_j − [i = j])`, or `0`
    /// when the pair is null.
    pub fn pair_weight(&self, i: usize, j: usize) -> u128 {
        if !self.is_active(i, j) {
            return 0;
        }
        let exclude = u64::from(i == j);
        u128::from(self.counts[i]) * u128::from(self.counts[j].saturating_sub(exclude))
    }

    /// Maps the `r`-th unit of active weight (`r < mass`) to its ordered
    /// slot pair: pairs are ordered by initiator slot then responder slot,
    /// each spanning its [`pair_weight`](Self::pair_weight). On the sparse
    /// index this is a Fenwick prefix search plus an adjacency walk; on the
    /// dense baseline a linear row-and-column scan. Both orderings agree,
    /// so the same `r` yields the same pair on either index.
    ///
    /// # Panics
    ///
    /// Panics when `r >= mass` — sampling outside the active weight is
    /// always a caller bug and must surface instead of biasing draws.
    pub fn sample_change(&self, r: u128) -> (usize, usize) {
        assert!(r < self.mass, "sample_change past the active mass");
        self.sampler.sample_change(r, self.counts)
    }
}

impl<S> std::fmt::Debug for CountView<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountView")
            .field("slots", &self.states.len())
            .field("n", &self.n)
            .field("mass", &self.mass)
            .finish_non_exhaustive()
    }
}

/// The outcome of a batched draw: how many provably-null interactions were
/// skipped, and the active pair that follows them (or `None` when the step
/// budget ran out first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairDraw {
    /// Null interactions consumed before the active one.
    pub skipped: u64,
    /// The ordered slot pair of the next state-changing interaction;
    /// `None` when `budget` interactions elapsed without a change.
    pub pair: Option<(usize, usize)>,
}

/// A source of count-level interactions.
///
/// Implementors choose ordered slot pairs from a [`CountView`]; the engine
/// threads a seeded RNG through (as `&mut dyn RngCore`, so sequential and
/// counter-based generators both fit) so whole runs stay reproducible. The batched
/// [`next_change`](CountScheduler::next_change) has a universally correct
/// default (rejection-sample single draws); schedulers whose distribution
/// admits a closed-form skip length override it.
pub trait CountScheduler<S> {
    /// Draws the ordered slot pair of the next interaction, null or not.
    ///
    /// Both slots must currently hold at least one agent (two for a diagonal
    /// pair), mirroring the "two distinct agents" requirement at the agent
    /// level.
    fn next_slot_pair(&mut self, view: &CountView<'_, S>, rng: &mut dyn RngCore) -> (usize, usize);

    /// Advances directly to the next state-changing interaction, consuming at
    /// most `budget` interactions (the returned change, when present, is the
    /// `skipped + 1`-th).
    fn next_change(
        &mut self,
        view: &CountView<'_, S>,
        budget: u64,
        rng: &mut dyn RngCore,
    ) -> PairDraw {
        let mut skipped = 0;
        while skipped < budget {
            let (i, j) = self.next_slot_pair(view, rng);
            if view.is_active(i, j) {
                return PairDraw {
                    skipped,
                    pair: Some((i, j)),
                };
            }
            skipped += 1;
        }
        PairDraw {
            skipped,
            pair: None,
        }
    }

    /// Human-readable scheduler name used in reports and benchmarks.
    fn name(&self) -> &str;
}

/// The count-level uniform-random scheduler: the hypergeometric two-draw
/// described in the [module docs](self), with a geometric fast path for
/// [`next_change`](CountScheduler::next_change).
///
/// Statistically equivalent to driving the indexed engine with
/// [`UniformPairScheduler`](crate::UniformPairScheduler); the equivalence is
/// covered by the `engine_equivalence` integration tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformCountScheduler {
    _private: (),
}

impl UniformCountScheduler {
    /// Creates a uniform count-level scheduler.
    pub fn new() -> Self {
        UniformCountScheduler { _private: () }
    }
}

/// Walks `counts` to find the slot containing the `r`-th agent, with
/// `excluded` agents of slot `exclude` set aside.
///
/// Exhausting the counts before placing `r` means the caller's `r` exceeded
/// the total remaining weight — a sampling bug that must panic loudly
/// (`unreachable!`) rather than silently bias draws toward the last slot.
fn slot_of<S>(view: &CountView<'_, S>, mut r: u64, exclude: usize, excluded: u64) -> usize {
    debug_assert!(
        exclude == usize::MAX || view.counts[exclude] >= excluded,
        "cannot exclude {excluded} agents from a slot holding {}",
        view.counts.get(exclude).copied().unwrap_or(0)
    );
    for (idx, &c) in view.counts.iter().enumerate() {
        let c = if idx == exclude {
            c.checked_sub(excluded)
                .expect("excluded more agents than the slot holds")
        } else {
            c
        };
        if r < c {
            return idx;
        }
        r -= c;
    }
    unreachable!("sampling walked past the total population (residual {r})");
}

impl<S> CountScheduler<S> for UniformCountScheduler {
    fn next_slot_pair(&mut self, view: &CountView<'_, S>, rng: &mut dyn RngCore) -> (usize, usize) {
        debug_assert!(view.n >= 2, "scheduler requires at least two agents");
        let i = slot_of(view, rng.random_range(0..view.n), usize::MAX, 0);
        let j = slot_of(view, rng.random_range(0..view.n - 1), i, 1);
        (i, j)
    }

    fn next_change(
        &mut self,
        view: &CountView<'_, S>,
        budget: u64,
        rng: &mut dyn RngCore,
    ) -> PairDraw {
        if view.mass == 0 {
            // Silent: every interaction is null.
            return PairDraw {
                skipped: budget,
                pair: None,
            };
        }
        let total = u128::from(view.n) * u128::from(view.n - 1);
        // Geometric skip: each interaction is active with probability
        // `p = mass / total`, independently, so the number of nulls before
        // the next change is Geometric(p). Inverse-transform sampling; the
        // f64 is compared against the budget before narrowing so enormous
        // skips in nearly-silent configurations cannot overflow.
        let skipped = if view.mass == total {
            0
        } else {
            // u64 → f64 is a native instruction while u128 → f64 is a
            // library call; masses below 2^64 (every population up to
            // ~4·10^9 agents) take the fast path. The total is computed
            // from `n` directly for the same reason.
            let mass_f = match u64::try_from(view.mass) {
                Ok(m) => m as f64,
                Err(_) => view.mass as f64,
            };
            let p = mass_f / ((view.n as f64) * ((view.n - 1) as f64));
            let u: f64 = rng.random();
            let skip = ((1.0 - u).ln() / (-p).ln_1p()).floor();
            if skip >= budget as f64 {
                return PairDraw {
                    skipped: budget,
                    pair: None,
                };
            }
            skip as u64
        };
        if skipped >= budget {
            return PairDraw {
                skipped: budget,
                pair: None,
            };
        }
        // Conditioned on "this interaction changes state", the pair is
        // distributed by its weight among active pairs; the activity index
        // resolves the draw.
        let r = rng.random_range(0..view.mass);
        PairDraw {
            skipped,
            pair: Some(view.sample_change(r)),
        }
    }

    fn name(&self) -> &str {
        "uniform-count"
    }
}

/// A scripted count-level scheduler that replays a fixed sequence of *state*
/// pairs — the count-level analogue of trace replay, used to drive the count
/// engine through exactly the interaction sequence of a recorded indexed run
/// (see the `engine_equivalence` tests) or through a recorded
/// [`CountTrace`](crate::CountTrace).
#[derive(Debug, Clone)]
pub struct ReplayCountScheduler<S> {
    pairs: Vec<(S, S)>,
    pos: usize,
}

impl<S: Clone + Eq> ReplayCountScheduler<S> {
    /// Creates a replay scheduler over `(initiator, responder)` state pairs.
    pub fn new(pairs: Vec<(S, S)>) -> Self {
        ReplayCountScheduler { pairs, pos: 0 }
    }

    /// How many scripted pairs remain.
    pub fn remaining(&self) -> usize {
        self.pairs.len().saturating_sub(self.pos)
    }
}

impl<S: Clone + Eq> CountScheduler<S> for ReplayCountScheduler<S> {
    /// # Panics
    ///
    /// Panics when the script is exhausted or names a state that is absent
    /// from the configuration — a scripted pair that cannot be realized
    /// indicates a bug in the caller (or in the engine under test).
    fn next_slot_pair(
        &mut self,
        view: &CountView<'_, S>,
        _rng: &mut dyn RngCore,
    ) -> (usize, usize) {
        let (a, b) = self
            .pairs
            .get(self.pos)
            .expect("replay script exhausted")
            .clone();
        self.pos += 1;
        let slot = |s: &S| {
            view.states
                .iter()
                .position(|t| t == s)
                .expect("replayed state absent from configuration")
        };
        let i = slot(&a);
        let j = slot(&b);
        assert!(
            view.counts[i] >= 1 && view.counts[j] > u64::from(i == j),
            "replayed pair cannot be realized by two distinct agents"
        );
        (i, j)
    }

    fn name(&self) -> &str {
        "replay-count"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A test-only activity index backed by an explicit null matrix, so
    /// scheduler tests can state activity patterns directly.
    struct GridSampler {
        null: Vec<bool>,
        stride: usize,
    }

    impl PairSampling for GridSampler {
        fn is_active(&self, i: usize, j: usize) -> bool {
            !self.null[i * self.stride + j]
        }

        fn sample_change(&self, mut r: u128, counts: &[u64]) -> (usize, usize) {
            for i in 0..self.stride {
                for j in 0..self.stride {
                    if self.null[i * self.stride + j] {
                        continue;
                    }
                    let w = u128::from(counts[i])
                        * u128::from(counts[j].saturating_sub(u64::from(i == j)));
                    if r < w {
                        return (i, j);
                    }
                    r -= w;
                }
            }
            unreachable!("r past the active mass");
        }
    }

    fn view<'a>(
        states: &'a [u8],
        counts: &'a [u64],
        row_mass: &'a [u128],
        mass: u128,
        sampler: &'a GridSampler,
    ) -> CountView<'a, u8> {
        CountView {
            states,
            counts,
            n: counts.iter().sum(),
            row_mass,
            mass,
            sampler,
        }
    }

    #[test]
    fn uniform_slot_pairs_respect_counts() {
        // Two slots, all pairs active.
        let states = [0u8, 1];
        let counts = [3u64, 1];
        let sampler = GridSampler {
            null: vec![false; 4],
            stride: 2,
        };
        let row_mass = [3 * 2 + 3, 3];
        let v = view(&states, &counts, &row_mass, 12, &sampler);
        let mut s = UniformCountScheduler::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let (i, j) = s.next_slot_pair(&v, &mut rng);
            assert!(i < 2 && j < 2);
            seen.insert((i, j));
        }
        // (1, 1) is impossible: only one agent in slot 1.
        assert!(seen.contains(&(0, 0)));
        assert!(seen.contains(&(0, 1)));
        assert!(seen.contains(&(1, 0)));
        assert!(!seen.contains(&(1, 1)));
    }

    #[test]
    fn next_change_on_silent_view_reports_budget() {
        let states = [0u8];
        let counts = [5u64];
        let sampler = GridSampler {
            null: vec![true],
            stride: 1,
        };
        let row_mass = [0u128];
        let v = view(&states, &counts, &row_mass, 0, &sampler);
        let mut s = UniformCountScheduler::new();
        let mut rng = StdRng::seed_from_u64(2);
        let draw = CountScheduler::<u8>::next_change(&mut s, &v, 17, &mut rng);
        assert_eq!(
            draw,
            PairDraw {
                skipped: 17,
                pair: None
            }
        );
    }

    #[test]
    fn next_change_picks_only_active_pairs() {
        // Slot 0 self-pair is null; cross pairs active.
        let states = [0u8, 1];
        let counts = [2u64, 2];
        let sampler = GridSampler {
            // (0,0) true, (0,1) false, (1,0) false, (1,1) true
            null: vec![true, false, false, true],
            stride: 2,
        };
        let row_mass = [4u128, 4];
        let v = view(&states, &counts, &row_mass, 8, &sampler);
        let mut s = UniformCountScheduler::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let draw = s.next_change(&v, u64::MAX, &mut rng);
            let (i, j) = draw.pair.expect("active pairs exist");
            assert_ne!(i, j, "diagonal pairs are null here");
        }
    }

    #[test]
    fn geometric_skip_mean_matches_null_density() {
        // 1 active ordered-agent-pair arrangement out of n(n-1).
        let states = [0u8, 1];
        let counts = [1u64, 9];
        let sampler = GridSampler {
            // Only (0, 1) active.
            null: vec![true, false, true, true],
            stride: 2,
        };
        let row_mass = [9u128, 0];
        let v = view(&states, &counts, &row_mass, 9, &sampler);
        let mut s = UniformCountScheduler::new();
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 20_000;
        let mut total = 0u64;
        for _ in 0..trials {
            let draw = s.next_change(&v, u64::MAX, &mut rng);
            assert_eq!(draw.pair, Some((0, 1)));
            total += draw.skipped;
        }
        // p = 9/90 = 0.1 ⇒ E[skips] = (1 − p)/p = 9.
        let mean = total as f64 / f64::from(trials);
        assert!((mean - 9.0).abs() < 0.3, "mean skip {mean} far from 9");
    }

    #[test]
    fn sample_change_weights_match_pair_weights() {
        let states = [0u8, 1];
        let counts = [3u64, 2];
        let sampler = GridSampler {
            null: vec![false, false, true, true],
            stride: 2,
        };
        // row 0: (0,0) weight 3·2 = 6, (0,1) weight 3·2 = 6.
        let row_mass = [12u128, 0];
        let v = view(&states, &counts, &row_mass, 12, &sampler);
        assert_eq!(v.pair_weight(0, 0), 6);
        assert_eq!(v.pair_weight(0, 1), 6);
        assert_eq!(v.pair_weight(1, 0), 0, "null pair weighs nothing");
        for r in 0..6 {
            assert_eq!(v.sample_change(r), (0, 0));
        }
        for r in 6..12 {
            assert_eq!(v.sample_change(r), (0, 1));
        }
    }

    #[test]
    #[should_panic(expected = "past the active mass")]
    fn sample_change_past_mass_panics() {
        let states = [0u8];
        let counts = [2u64];
        let sampler = GridSampler {
            null: vec![false],
            stride: 1,
        };
        let row_mass = [2u128];
        let v = view(&states, &counts, &row_mass, 2, &sampler);
        let _ = v.sample_change(2);
    }

    #[test]
    fn replay_scheduler_maps_states_to_slots() {
        let states = [7u8, 9];
        let counts = [1u64, 2];
        let sampler = GridSampler {
            null: vec![false; 4],
            stride: 2,
        };
        let row_mass = [2u128, 2 + 1];
        let v = view(&states, &counts, &row_mass, 5, &sampler);
        let mut s = ReplayCountScheduler::new(vec![(9u8, 7u8), (9, 9)]);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(s.next_slot_pair(&v, &mut rng), (1, 0));
        assert_eq!(s.next_slot_pair(&v, &mut rng), (1, 1));
        assert_eq!(s.remaining(), 0);
    }
}
