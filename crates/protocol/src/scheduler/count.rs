//! Count-level scheduling: interactions drawn as *state pairs* over an
//! anonymous configuration.
//!
//! Agents with equal states are interchangeable under the uniform-random
//! scheduler, so an execution can be driven without agent identities at all:
//! a [`CountScheduler`] draws ordered pairs of *state slots* from the dense
//! count representation exposed as a [`CountView`]. Drawing an initiator
//! state with probability `c_i / n` and then a responder with probability
//! `c_j' / (n - 1)` (where `c_j'` excludes the initiator) is exactly the
//! hypergeometric two-draw over the multiset — the count-level image of the
//! uniform pair distribution `1 / (n (n - 1))` on agent pairs.
//!
//! The trait also has a *batched* entry point, [`CountScheduler::next_change`]:
//! instead of materializing every interaction, a scheduler may jump straight
//! to the next interaction that changes some state, reporting how many silent
//! (null) interactions it provably skipped. For the uniform-random scheduler
//! the skip length is geometric with success probability `mass / (n (n - 1))`
//! where `mass` is the total weight of state-changing ordered pairs, so
//! silent-heavy runs advance in one draw per change-point instead of one draw
//! per interaction.

use rand::rngs::StdRng;
use rand::RngExt;

/// A read-only, dense snapshot of an anonymous configuration plus the
/// activity structure maintained by the count engine.
///
/// Slots index the engine's dense arrays; every state ever seen keeps its
/// slot, so zero-count slots exist and simply carry no weight.
#[derive(Debug)]
pub struct CountView<'a, S> {
    /// Distinct states by slot.
    pub states: &'a [S],
    /// Agents currently in each slot's state.
    pub counts: &'a [u64],
    /// Total number of agents.
    pub n: u64,
    /// Per-initiator-slot total weight of *active* (state-changing) ordered
    /// pairs: `row_mass[i] = Σ_j active(i, j) · c_i · (c_j − [i = j])`.
    pub row_mass: &'a [u64],
    /// Total active weight: `Σ_i row_mass[i]`. Zero iff the configuration is
    /// silent.
    pub mass: u64,
    pub(crate) null: &'a [bool],
    pub(crate) stride: usize,
}

impl<S> CountView<'_, S> {
    /// Number of slots (distinct states ever seen, including empty slots).
    pub fn slots(&self) -> usize {
        self.states.len()
    }

    /// Whether the ordered slot pair `(i, j)` changes state when it
    /// interacts.
    pub fn is_active(&self, i: usize, j: usize) -> bool {
        !self.null[i * self.stride + j]
    }

    /// The sampling weight of the ordered slot pair `(i, j)`: the number of
    /// ordered *agent* pairs realizing it, `c_i · (c_j − [i = j])`, or `0`
    /// when the pair is null.
    pub fn pair_weight(&self, i: usize, j: usize) -> u64 {
        if !self.is_active(i, j) {
            return 0;
        }
        let exclude = u64::from(i == j);
        self.counts[i] * (self.counts[j].saturating_sub(exclude))
    }
}

/// The outcome of a batched draw: how many provably-null interactions were
/// skipped, and the active pair that follows them (or `None` when the step
/// budget ran out first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairDraw {
    /// Null interactions consumed before the active one.
    pub skipped: u64,
    /// The ordered slot pair of the next state-changing interaction;
    /// `None` when `budget` interactions elapsed without a change.
    pub pair: Option<(usize, usize)>,
}

/// A source of count-level interactions.
///
/// Implementors choose ordered slot pairs from a [`CountView`]; the engine
/// threads a seeded RNG through so whole runs stay reproducible. The batched
/// [`next_change`](CountScheduler::next_change) has a universally correct
/// default (rejection-sample single draws); schedulers whose distribution
/// admits a closed-form skip length override it.
pub trait CountScheduler<S> {
    /// Draws the ordered slot pair of the next interaction, null or not.
    ///
    /// Both slots must currently hold at least one agent (two for a diagonal
    /// pair), mirroring the "two distinct agents" requirement at the agent
    /// level.
    fn next_slot_pair(&mut self, view: &CountView<'_, S>, rng: &mut StdRng) -> (usize, usize);

    /// Advances directly to the next state-changing interaction, consuming at
    /// most `budget` interactions (the returned change, when present, is the
    /// `skipped + 1`-th).
    fn next_change(&mut self, view: &CountView<'_, S>, budget: u64, rng: &mut StdRng) -> PairDraw {
        let mut skipped = 0;
        while skipped < budget {
            let (i, j) = self.next_slot_pair(view, rng);
            if view.is_active(i, j) {
                return PairDraw {
                    skipped,
                    pair: Some((i, j)),
                };
            }
            skipped += 1;
        }
        PairDraw {
            skipped,
            pair: None,
        }
    }

    /// Human-readable scheduler name used in reports and benchmarks.
    fn name(&self) -> &str;
}

/// The count-level uniform-random scheduler: the hypergeometric two-draw
/// described in the [module docs](self), with a geometric fast path for
/// [`next_change`](CountScheduler::next_change).
///
/// Statistically equivalent to driving the indexed engine with
/// [`UniformPairScheduler`](crate::UniformPairScheduler); the equivalence is
/// covered by the `engine_equivalence` integration tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformCountScheduler {
    _private: (),
}

impl UniformCountScheduler {
    /// Creates a uniform count-level scheduler.
    pub fn new() -> Self {
        UniformCountScheduler { _private: () }
    }
}

/// Walks `counts` to find the slot containing the `r`-th agent, with
/// `excluded` agents of slot `exclude` set aside.
fn slot_of<S>(view: &CountView<'_, S>, mut r: u64, exclude: usize, excluded: u64) -> usize {
    for (idx, &c) in view.counts.iter().enumerate() {
        let c = if idx == exclude { c - excluded } else { c };
        if r < c {
            return idx;
        }
        r -= c;
    }
    unreachable!("sampling walked past the total population");
}

impl<S> CountScheduler<S> for UniformCountScheduler {
    fn next_slot_pair(&mut self, view: &CountView<'_, S>, rng: &mut StdRng) -> (usize, usize) {
        debug_assert!(view.n >= 2, "scheduler requires at least two agents");
        let i = slot_of(view, rng.random_range(0..view.n), usize::MAX, 0);
        let j = slot_of(view, rng.random_range(0..view.n - 1), i, 1);
        (i, j)
    }

    fn next_change(&mut self, view: &CountView<'_, S>, budget: u64, rng: &mut StdRng) -> PairDraw {
        if view.mass == 0 {
            // Silent: every interaction is null.
            return PairDraw {
                skipped: budget,
                pair: None,
            };
        }
        let total = view.n * (view.n - 1);
        // Geometric skip: each interaction is active with probability
        // `p = mass / total`, independently, so the number of nulls before
        // the next change is Geometric(p). Inverse-transform sampling; the
        // f64 is compared against the budget before narrowing so enormous
        // skips in nearly-silent configurations cannot overflow.
        let skipped = if view.mass == total {
            0
        } else {
            let p = view.mass as f64 / total as f64;
            let u: f64 = rng.random();
            let skip = ((1.0 - u).ln() / (-p).ln_1p()).floor();
            if skip >= budget as f64 {
                return PairDraw {
                    skipped: budget,
                    pair: None,
                };
            }
            skip as u64
        };
        if skipped >= budget {
            return PairDraw {
                skipped: budget,
                pair: None,
            };
        }
        // Conditioned on "this interaction changes state", the pair is
        // distributed by its weight among active pairs: walk rows, then
        // columns within the chosen row.
        let mut r = rng.random_range(0..view.mass);
        for (i, &row) in view.row_mass.iter().enumerate() {
            if r >= row {
                r -= row;
                continue;
            }
            for j in 0..view.slots() {
                let w = view.pair_weight(i, j);
                if r < w {
                    return PairDraw {
                        skipped,
                        pair: Some((i, j)),
                    };
                }
                r -= w;
            }
            unreachable!("row mass out of sync with pair weights");
        }
        unreachable!("total mass out of sync with row masses");
    }

    fn name(&self) -> &str {
        "uniform-count"
    }
}

/// A scripted count-level scheduler that replays a fixed sequence of *state*
/// pairs — the count-level analogue of trace replay, used to drive the count
/// engine through exactly the interaction sequence of a recorded indexed run
/// (see the `engine_equivalence` tests).
#[derive(Debug, Clone)]
pub struct ReplayCountScheduler<S> {
    pairs: Vec<(S, S)>,
    pos: usize,
}

impl<S: Clone + Eq> ReplayCountScheduler<S> {
    /// Creates a replay scheduler over `(initiator, responder)` state pairs.
    pub fn new(pairs: Vec<(S, S)>) -> Self {
        ReplayCountScheduler { pairs, pos: 0 }
    }

    /// How many scripted pairs remain.
    pub fn remaining(&self) -> usize {
        self.pairs.len().saturating_sub(self.pos)
    }
}

impl<S: Clone + Eq> CountScheduler<S> for ReplayCountScheduler<S> {
    /// # Panics
    ///
    /// Panics when the script is exhausted or names a state that is absent
    /// from the configuration — a scripted pair that cannot be realized
    /// indicates a bug in the caller (or in the engine under test).
    fn next_slot_pair(&mut self, view: &CountView<'_, S>, _rng: &mut StdRng) -> (usize, usize) {
        let (a, b) = self
            .pairs
            .get(self.pos)
            .expect("replay script exhausted")
            .clone();
        self.pos += 1;
        let slot = |s: &S| {
            view.states
                .iter()
                .position(|t| t == s)
                .expect("replayed state absent from configuration")
        };
        let i = slot(&a);
        let j = slot(&b);
        assert!(
            view.counts[i] >= 1 && view.counts[j] > u64::from(i == j),
            "replayed pair cannot be realized by two distinct agents"
        );
        (i, j)
    }

    fn name(&self) -> &str {
        "replay-count"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn view<'a>(
        states: &'a [u8],
        counts: &'a [u64],
        row_mass: &'a [u64],
        mass: u64,
        null: &'a [bool],
        stride: usize,
    ) -> CountView<'a, u8> {
        CountView {
            states,
            counts,
            n: counts.iter().sum(),
            row_mass,
            mass,
            null,
            stride,
        }
    }

    #[test]
    fn uniform_slot_pairs_respect_counts() {
        // Two slots, all pairs active.
        let states = [0u8, 1];
        let counts = [3u64, 1];
        let null = [false; 4];
        let row_mass = [3 * 2 + 3, 3];
        let v = view(&states, &counts, &row_mass, 12, &null, 2);
        let mut s = UniformCountScheduler::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let (i, j) = s.next_slot_pair(&v, &mut rng);
            assert!(i < 2 && j < 2);
            seen.insert((i, j));
        }
        // (1, 1) is impossible: only one agent in slot 1.
        assert!(seen.contains(&(0, 0)));
        assert!(seen.contains(&(0, 1)));
        assert!(seen.contains(&(1, 0)));
        assert!(!seen.contains(&(1, 1)));
    }

    #[test]
    fn next_change_on_silent_view_reports_budget() {
        let states = [0u8];
        let counts = [5u64];
        let null = [true];
        let row_mass = [0u64];
        let v = view(&states, &counts, &row_mass, 0, &null, 1);
        let mut s = UniformCountScheduler::new();
        let mut rng = StdRng::seed_from_u64(2);
        let draw = CountScheduler::<u8>::next_change(&mut s, &v, 17, &mut rng);
        assert_eq!(
            draw,
            PairDraw {
                skipped: 17,
                pair: None
            }
        );
    }

    #[test]
    fn next_change_picks_only_active_pairs() {
        // Slot 0 self-pair is null; cross pairs active.
        let states = [0u8, 1];
        let counts = [2u64, 2];
        // null matrix: (0,0) true, (0,1) false, (1,0) false, (1,1) true
        let null = [true, false, false, true];
        let row_mass = [4u64, 4];
        let v = view(&states, &counts, &row_mass, 8, &null, 2);
        let mut s = UniformCountScheduler::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let draw = s.next_change(&v, u64::MAX, &mut rng);
            let (i, j) = draw.pair.expect("active pairs exist");
            assert_ne!(i, j, "diagonal pairs are null here");
        }
    }

    #[test]
    fn geometric_skip_mean_matches_null_density() {
        // 1 active ordered-agent-pair arrangement out of n(n-1).
        let states = [0u8, 1];
        let counts = [1u64, 9];
        // Only (0, 1) active.
        let null = [true, false, true, true];
        let row_mass = [9u64, 0];
        let v = view(&states, &counts, &row_mass, 9, &null, 2);
        let mut s = UniformCountScheduler::new();
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 20_000;
        let mut total = 0u64;
        for _ in 0..trials {
            let draw = s.next_change(&v, u64::MAX, &mut rng);
            assert_eq!(draw.pair, Some((0, 1)));
            total += draw.skipped;
        }
        // p = 9/90 = 0.1 ⇒ E[skips] = (1 − p)/p = 9.
        let mean = total as f64 / f64::from(trials);
        assert!((mean - 9.0).abs() < 0.3, "mean skip {mean} far from 9");
    }

    #[test]
    fn replay_scheduler_maps_states_to_slots() {
        let states = [7u8, 9];
        let counts = [1u64, 2];
        let null = [false; 4];
        let row_mass = [2u64, 2 + 1];
        let v = view(&states, &counts, &row_mass, 5, &null, 2);
        let mut s = ReplayCountScheduler::new(vec![(9u8, 7u8), (9, 9)]);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(s.next_slot_pair(&v, &mut rng), (1, 0));
        assert_eq!(s.next_slot_pair(&v, &mut rng), (1, 1));
        assert_eq!(s.remaining(), 0);
    }
}
