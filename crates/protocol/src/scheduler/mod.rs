//! Scheduling at both abstraction levels.
//!
//! The module is split by representation:
//!
//! - [`indexed`]: the classic [`Scheduler`] trait over agent indices, used by
//!   [`Simulation`](crate::Simulation). Schedulers at this level can
//!   distinguish agents, which the adversarial and topology-restricted
//!   families require.
//! - [`count`]: the [`CountScheduler`] trait over anonymous state counts,
//!   used by [`CountEngine`](crate::CountEngine). Schedulers at this level
//!   draw *state pairs* hypergeometrically and may batch past provably-null
//!   interactions, which is what makes large-`n` simulation cheap.

pub mod count;
pub mod indexed;

pub use count::{CountScheduler, CountView, PairDraw, ReplayCountScheduler, UniformCountScheduler};
pub use indexed::{Scheduler, UniformPairScheduler};
