//! Agent-indexed scheduling: the [`Scheduler`] trait and the baseline
//! uniform-random scheduler.
//!
//! A scheduler produces the infinite sequence of pairwise interactions that —
//! together with the input assignment — fully determines an execution. The
//! correctness claim of the Circles paper quantifies over all *weakly fair*
//! schedulers (Definition 1.2: every pair of agents interacts infinitely
//! often). The richer scheduler family (round-robin, adversarial, clustered,
//! replay) lives in the `pp-schedulers` crate; the uniform-random scheduler is
//! defined here because the engines use it as the default.

use rand::{RngCore, RngExt};

use crate::population::Population;

/// A source of pairwise interactions.
///
/// `next_pair` returns an ordered `(initiator, responder)` pair of distinct
/// agent indices in `[0, population.len())`. Schedulers may inspect the
/// current population (state-aware adversaries do); blind schedulers ignore
/// it.
///
/// The RNG is threaded through by the simulation engine so that an entire run
/// is reproducible from a single seed. It arrives as `&mut dyn RngCore`, so
/// the same scheduler serves engines driven by the sequential
/// [`StdRng`](rand::rngs::StdRng) and by counter-based
/// [`Philox4x32`](rand::rngs::Philox4x32) trial streams alike.
pub trait Scheduler<S> {
    /// Produces the next ordered interaction pair.
    fn next_pair(&mut self, population: &Population<S>, rng: &mut dyn RngCore) -> (usize, usize);

    /// Human-readable scheduler name used in reports and benchmarks.
    fn name(&self) -> &str;
}

/// The uniform-random scheduler: each interaction selects an ordered pair of
/// distinct agents uniformly at random.
///
/// This is the standard probabilistic scheduler of the population-protocol
/// literature (and the natural model of a well-mixed chemical solution). It
/// is weakly fair with probability 1: every pair has probability
/// `1/(n(n-1))` per step, so it recurs infinitely often almost surely.
///
/// # Example
///
/// ```
/// use pp_protocol::{Population, Scheduler, UniformPairScheduler};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let population: Population<u8> = [0u8, 1, 2].into_iter().collect();
/// let mut scheduler = UniformPairScheduler::new();
/// let mut rng = StdRng::seed_from_u64(7);
/// let (i, j) = scheduler.next_pair(&population, &mut rng);
/// assert_ne!(i, j);
/// assert!(i < 3 && j < 3);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformPairScheduler {
    _private: (),
}

impl UniformPairScheduler {
    /// Creates a uniform-random scheduler.
    pub fn new() -> Self {
        UniformPairScheduler { _private: () }
    }
}

impl<S> Scheduler<S> for UniformPairScheduler {
    fn next_pair(&mut self, population: &Population<S>, rng: &mut dyn RngCore) -> (usize, usize) {
        let n = population.len();
        debug_assert!(n >= 2, "scheduler requires at least two agents");
        let i = rng.random_range(0..n);
        let mut j = rng.random_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        (i, j)
    }

    fn name(&self) -> &str {
        "uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_pairs_are_distinct_and_in_range() {
        let population: Population<u8> = (0u8..10).collect();
        let mut s = UniformPairScheduler::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let (i, j) = s.next_pair(&population, &mut rng);
            assert_ne!(i, j);
            assert!(i < 10 && j < 10);
        }
    }

    #[test]
    fn uniform_pairs_cover_all_ordered_pairs() {
        let population: Population<u8> = (0u8..4).collect();
        let mut s = UniformPairScheduler::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            seen.insert(s.next_pair(&population, &mut rng));
        }
        // 4*3 = 12 ordered pairs must all appear in 2000 draws.
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn uniform_is_unbiased_enough() {
        // Chi-squared-flavored sanity check on pair frequencies.
        let population: Population<u8> = (0u8..5).collect();
        let mut s = UniformPairScheduler::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = std::collections::HashMap::new();
        let draws = 100_000;
        for _ in 0..draws {
            *counts
                .entry(s.next_pair(&population, &mut rng))
                .or_insert(0usize) += 1;
        }
        let expected = draws as f64 / 20.0;
        for (_, c) in counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.10, "pair frequency deviates {dev}");
        }
    }

    #[test]
    fn works_on_two_agents() {
        let population: Population<u8> = [0u8, 1].into_iter().collect();
        let mut s = UniformPairScheduler::new();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let (i, j) = s.next_pair(&population, &mut rng);
            assert!((i, j) == (0, 1) || (i, j) == (1, 0));
        }
    }
}
