//! Indexed populations: a vector of agent states.

use std::collections::BTreeMap;

use crate::config::CountConfig;
use crate::error::FrameworkError;
use crate::protocol::Protocol;

/// An indexed population of agents.
///
/// Agents in the population-protocol model are anonymous, but schedulers are
/// defined over agent *indices* (weak fairness quantifies over pairs of
/// agents, not pairs of states), so the indexed representation is the one the
/// model's definitions are phrased in. For anonymous analysis, convert to a
/// [`CountConfig`] with [`Population::to_count_config`].
///
/// # Example
///
/// ```
/// # use pp_protocol::{Population, Protocol};
/// # struct Max;
/// # impl Protocol for Max {
/// #     type State = u8; type Input = u8; type Output = u8;
/// #     fn name(&self) -> &str { "max" }
/// #     fn input(&self, i: &u8) -> u8 { *i }
/// #     fn output(&self, s: &u8) -> u8 { *s }
/// #     fn transition(&self, a: &u8, b: &u8) -> (u8, u8) { let m = *a.max(b); (m, m) }
/// # }
/// let population = Population::from_inputs(&Max, &[1, 2, 3]);
/// assert_eq!(population.len(), 3);
/// assert_eq!(population.outputs(&Max), vec![1, 2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Population<S> {
    states: Vec<S>,
}

impl<S> Population<S> {
    /// Creates a population directly from agent states.
    pub fn from_states(states: Vec<S>) -> Self {
        Population { states }
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the population has no agents.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state of agent `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn state(&self, index: usize) -> &S {
        &self.states[index]
    }

    /// All agent states, in index order.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Iterates over agent states in index order.
    pub fn iter(&self) -> std::slice::Iter<'_, S> {
        self.states.iter()
    }

    /// Overwrites the state of agent `index` (used by fault injection).
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::AgentOutOfBounds`] if `index` is invalid.
    pub fn set_state(&mut self, index: usize, state: S) -> Result<(), FrameworkError> {
        let n = self.states.len();
        match self.states.get_mut(index) {
            Some(slot) => {
                *slot = state;
                Ok(())
            }
            None => Err(FrameworkError::AgentOutOfBounds { index, n }),
        }
    }
}

impl<S: Clone + Eq + Ord + std::hash::Hash + std::fmt::Debug> Population<S> {
    /// Creates a population by applying the protocol's input function to each
    /// input symbol.
    pub fn from_inputs<P>(protocol: &P, inputs: &[P::Input]) -> Self
    where
        P: Protocol<State = S>,
    {
        Population {
            states: inputs.iter().map(|i| protocol.input(i)).collect(),
        }
    }

    /// Applies one interaction between the `initiator` and `responder`
    /// agents and returns whether either state changed.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::ReflexivePair`] when `initiator ==
    /// responder` and [`FrameworkError::AgentOutOfBounds`] when either index
    /// is invalid.
    pub fn interact<P>(
        &mut self,
        protocol: &P,
        initiator: usize,
        responder: usize,
    ) -> Result<bool, FrameworkError>
    where
        P: Protocol<State = S>,
    {
        let n = self.states.len();
        if initiator == responder {
            return Err(FrameworkError::ReflexivePair { index: initiator });
        }
        if initiator >= n {
            return Err(FrameworkError::AgentOutOfBounds {
                index: initiator,
                n,
            });
        }
        if responder >= n {
            return Err(FrameworkError::AgentOutOfBounds {
                index: responder,
                n,
            });
        }
        let (a, b) = protocol.transition(&self.states[initiator], &self.states[responder]);
        let changed = a != self.states[initiator] || b != self.states[responder];
        self.states[initiator] = a;
        self.states[responder] = b;
        Ok(changed)
    }

    /// The outputs of all agents, in index order.
    pub fn outputs<P>(&self, protocol: &P) -> Vec<P::Output>
    where
        P: Protocol<State = S>,
    {
        self.states.iter().map(|s| protocol.output(s)).collect()
    }

    /// Returns `Some(o)` when every agent currently outputs `o`.
    pub fn output_consensus<P>(&self, protocol: &P) -> Option<P::Output>
    where
        P: Protocol<State = S>,
    {
        let mut iter = self.states.iter();
        let first = protocol.output(iter.next()?);
        for s in iter {
            if protocol.output(s) != first {
                return None;
            }
        }
        Some(first)
    }

    /// Histogram of outputs.
    pub fn output_counts<P>(&self, protocol: &P) -> BTreeMap<P::Output, usize>
    where
        P: Protocol<State = S>,
    {
        let mut counts = BTreeMap::new();
        for s in &self.states {
            *counts.entry(protocol.output(s)).or_insert(0) += 1;
        }
        counts
    }

    /// The anonymous configuration: the multiset of states (Definition 1.1).
    pub fn to_count_config(&self) -> CountConfig<S> {
        self.states.iter().cloned().collect()
    }

    /// Whether no pair of agents can change state: the configuration is
    /// *silent*. Checked on the anonymous configuration, which is sound
    /// because agents with equal states are interchangeable.
    pub fn is_silent<P>(&self, protocol: &P) -> bool
    where
        P: Protocol<State = S>,
    {
        self.to_count_config().is_silent(protocol)
    }
}

impl<S> std::ops::Index<usize> for Population<S> {
    type Output = S;

    fn index(&self, index: usize) -> &S {
        &self.states[index]
    }
}

impl<S> FromIterator<S> for Population<S> {
    fn from_iter<T: IntoIterator<Item = S>>(iter: T) -> Self {
        Population {
            states: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Max;

    impl Protocol for Max {
        type State = u8;
        type Input = u8;
        type Output = u8;

        fn name(&self) -> &str {
            "max"
        }

        fn input(&self, i: &u8) -> u8 {
            *i
        }

        fn output(&self, s: &u8) -> u8 {
            *s
        }

        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            let m = *a.max(b);
            (m, m)
        }

        fn is_symmetric(&self) -> bool {
            true
        }
    }

    #[test]
    fn from_inputs_applies_input_function() {
        let p = Population::from_inputs(&Max, &[2, 9, 4]);
        assert_eq!(p.states(), &[2, 9, 4]);
    }

    #[test]
    fn interact_updates_both_agents() {
        let mut p = Population::from_inputs(&Max, &[2, 9, 4]);
        let changed = p.interact(&Max, 0, 1).unwrap();
        assert!(changed);
        assert_eq!(p.states(), &[9, 9, 4]);
    }

    #[test]
    fn interact_reports_null_interactions() {
        let mut p = Population::from_inputs(&Max, &[9, 9]);
        let changed = p.interact(&Max, 0, 1).unwrap();
        assert!(!changed);
    }

    #[test]
    fn interact_rejects_reflexive_pair() {
        let mut p = Population::from_inputs(&Max, &[1, 2]);
        assert_eq!(
            p.interact(&Max, 1, 1),
            Err(FrameworkError::ReflexivePair { index: 1 })
        );
    }

    #[test]
    fn interact_rejects_out_of_bounds() {
        let mut p = Population::from_inputs(&Max, &[1, 2]);
        assert_eq!(
            p.interact(&Max, 0, 5),
            Err(FrameworkError::AgentOutOfBounds { index: 5, n: 2 })
        );
    }

    #[test]
    fn consensus_none_when_disagreeing() {
        let p = Population::from_inputs(&Max, &[1, 2]);
        assert_eq!(p.output_consensus(&Max), None);
    }

    #[test]
    fn consensus_some_when_unanimous() {
        let p = Population::from_inputs(&Max, &[7, 7, 7]);
        assert_eq!(p.output_consensus(&Max), Some(7));
    }

    #[test]
    fn output_counts_histogram() {
        let p = Population::from_inputs(&Max, &[1, 2, 2, 3]);
        let h = p.output_counts(&Max);
        assert_eq!(h.get(&2), Some(&2));
        assert_eq!(h.get(&1), Some(&1));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn silence_detection() {
        let noisy = Population::from_inputs(&Max, &[1, 2]);
        assert!(!noisy.is_silent(&Max));
        let silent = Population::from_inputs(&Max, &[2, 2]);
        assert!(silent.is_silent(&Max));
    }

    #[test]
    fn set_state_round_trips() {
        let mut p = Population::from_inputs(&Max, &[1, 2]);
        p.set_state(0, 9).unwrap();
        assert_eq!(p.state(0), &9);
        assert!(p.set_state(5, 0).is_err());
    }

    #[test]
    fn count_config_matches_multiset() {
        let p = Population::from_inputs(&Max, &[5, 5, 1]);
        let c = p.to_count_config();
        assert_eq!(c.count(&5), 2);
        assert_eq!(c.count(&1), 1);
        assert_eq!(c.n(), 3);
    }
}
