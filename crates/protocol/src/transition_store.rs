//! Versioned, checksummed on-disk persistence for discovered
//! [`TransitionTable`]s.
//!
//! Discovering a protocol's slot structure costs `O(slots²)` transition
//! calls — minutes of wall-clock per process at Circles `k ≳ 40` — yet the
//! result is a pure function of the protocol. This module turns discovery
//! into a build-once artifact: [`save`] serializes a table into a compact,
//! checksummed file and [`load`] bulk-reads it back into a
//! [`TransitionTable`] with **zero protocol calls**, ready to warm-start
//! engines through the lazy-oracle path
//! ([`CountEngine::with_table`](crate::CountEngine::with_table)).
//!
//! The byte-level layout is specified in `docs/transition-store-format.md`;
//! the invariants in short:
//!
//! - **Versioned**: a magic, an endianness marker and a format version gate
//!   every load; unknown versions are rejected, never guessed at.
//! - **Identity-locked**: a 64-bit FNV-1a [`fingerprint`] of the protocol's
//!   name, symmetry flag and
//!   [`fingerprint_param`](Protocol::fingerprint_param) (the color count `k`
//!   for Circles) is stored in the header, so a store built for one protocol
//!   parameterization can never load for another.
//! - **Checksummed**: a whole-file checksum (FNV-1a 64 folded over 8-byte
//!   words, see [`checksum64`]) detects truncation and bit rot; every
//!   corruption path fails loudly with a typed [`StoreError`] — never a
//!   silently wrong table.
//! - **Text states**: states are serialized through their `Display` /
//!   `FromStr` round-trip (the codec the JSONL traces already use), keeping
//!   the format independent of in-memory layout. Rows persist in the dual
//!   representation of [`CompactAdj`](crate::CompactAdj) — delta-varint
//!   lists while sparse, blocked bitsets once dense — so the bulk of a
//!   discovered Circles table loads back as word copies, not one varint
//!   decode per pair.
//!
//! Files are written atomically (temp file + rename), so a crashed writer
//! leaves either the previous store or none. Loads go through one
//! `std::fs::read` bulk read — the workspace forbids `unsafe`, so no
//! memory-mapping; at the ~MB scale of Circles stores the copy is
//! negligible next to parsing.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt::{self, Display};
use std::fs;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::activity::{AdjRows, RowRepr};
use crate::hashing::FxBuildHasher;
use crate::protocol::Protocol;
use crate::quotient::{expand_orbit_rows, StateQuotient};
use crate::transition_table::TransitionTable;

/// Newest format version this build reads. [`save`] writes version 1
/// (every row expanded); [`save_quotient`] writes version 2 — one row per
/// canonical orbit representative plus per-state expansion metadata, which
/// [`load`] re-expands with zero protocol calls.
pub const FORMAT_VERSION: u32 = 2;

/// The v1 layout: fully expanded rows.
pub const FORMAT_V1: u32 = 1;

/// The v2 layout: quotient representative rows plus orbit-expansion
/// metadata (see `docs/transition-store-format.md`).
pub const FORMAT_V2: u32 = 2;

/// Conventional file extension for store files (`.ppts`).
pub const STORE_EXT: &str = "ppts";

const MAGIC: [u8; 8] = *b"PPTABLE\0";
const ENDIAN_MARKER: u32 = 0x1A2B_3C4D;
const HEADER_LEN: usize = 0x88;
const CHECKSUM_OFFSET: usize = 0x80;
const SECTION_TABLE_OFFSET: usize = 0x40;
const FLAG_SYMMETRIC: u32 = 1;
/// Set exactly on v2 files: the rows section holds quotient representative
/// rows plus expansion metadata instead of expanded rows.
const FLAG_QUOTIENT: u32 = 2;

/// Row-encoding flag byte: delta-varint id list.
const ROW_SPARSE: u8 = 0x00;
/// Row-encoding flag byte: blocked bitset.
const ROW_DENSE: u8 = 0x01;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a 64 hash.
fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The whole-file checksum: FNV-1a 64 folded over little-endian 8-byte
/// words (the trailing partial word zero-padded), with the byte length
/// folded in last so padding cannot alias a longer file. Word folding
/// keeps verification at memory speed on ~100 MB stores, where the
/// canonical byte-at-a-time FNV loop would dominate load time; one
/// multiply per word still diffuses any flipped bit through all later
/// state.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut words = bytes.chunks_exact(8);
    for word in &mut words {
        h = (h ^ u64::from_le_bytes(word.try_into().expect("8-byte chunk")))
            .wrapping_mul(FNV_PRIME);
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        let mut last = [0u8; 8];
        last[..tail.len()].copy_from_slice(tail);
        h = (h ^ u64::from_le_bytes(last)).wrapping_mul(FNV_PRIME);
    }
    (h ^ bytes.len() as u64).wrapping_mul(FNV_PRIME)
}

/// The 64-bit identity fingerprint of a protocol parameterization: FNV-1a
/// over the protocol [`name`](Protocol::name), the
/// [`is_symmetric`](Protocol::is_symmetric) flag, whether the protocol
/// exposes a [color quotient](Protocol::color_quotient) (a quotient changes
/// *who answers* discovery queries, so cached tables must not cross that
/// line), and the [`fingerprint_param`](Protocol::fingerprint_param) (the
/// color count `k` for Circles) — separated by a byte that cannot occur in
/// UTF-8, so a name cannot masquerade as a flag.
///
/// [`load`] refuses any store whose header records a different fingerprint,
/// which is what makes cache lookups keyed by this value safe.
pub fn fingerprint<P: Protocol>(protocol: &P) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, protocol.name().as_bytes());
    h = fnv1a(
        h,
        &[
            0xFF,
            u8::from(protocol.is_symmetric()),
            u8::from(protocol.color_quotient().is_some()),
        ],
    );
    fnv1a(h, &protocol.fingerprint_param().to_le_bytes())
}

/// Typed failures of the on-disk store. Every corruption path on the load
/// side maps to a distinct variant so callers can report precisely and fall
/// back to cold discovery — a load never silently yields a wrong table.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The file does not start with the store magic — not a store file.
    BadMagic,
    /// The endianness marker does not decode; the file was produced by an
    /// incompatible writer.
    EndianMismatch,
    /// The header declares a format version this build does not read.
    UnsupportedVersion {
        /// Version recorded in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The file is shorter than its header or section table requires.
    Truncated {
        /// Bytes the header/sections require.
        needed: u64,
        /// Bytes actually present.
        len: u64,
    },
    /// The whole-file checksum does not match the stored one.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum recomputed over the file.
        computed: u64,
    },
    /// The store was built for a different protocol parameterization.
    IdentityMismatch {
        /// Fingerprint recorded in the header.
        stored: u64,
        /// Fingerprint of the protocol supplied to [`load`].
        expected: u64,
    },
    /// A section failed structural validation (bad varint, malformed state,
    /// out-of-range id, counts disagreeing with the header).
    Corrupt(String),
    /// A v2 (quotient) store could not be written or expanded: the protocol
    /// exposes no quotient, the state set is not orbit-closed, or the
    /// stored rows are not coherent with the group action.
    Quotient(String),
    /// An [`audit`] re-derivation disagreed with the table contents.
    AuditMismatch(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a transition-table store (bad magic)"),
            StoreError::EndianMismatch => write!(f, "store endianness marker mismatch"),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "store format version {found} unsupported (this build reads versions 1..={supported})"
            ),
            StoreError::Truncated { needed, len } => {
                write!(f, "store truncated: {len} byte(s) present, {needed} required")
            }
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "store checksum mismatch: header records {stored:#018x}, file hashes to {computed:#018x}"
            ),
            StoreError::IdentityMismatch { stored, expected } => write!(
                f,
                "store fingerprint {stored:#018x} does not match protocol fingerprint {expected:#018x}"
            ),
            StoreError::Corrupt(msg) => write!(f, "store corrupt: {msg}"),
            StoreError::Quotient(msg) => write!(f, "quotient store: {msg}"),
            StoreError::AuditMismatch(msg) => write!(f, "store audit failed: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Quotient statistics of a v2 store, decoded from the fixed prefix of its
/// rows section — available from [`inspect`] without expanding anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotientStats {
    /// Number of canonical orbit representatives whose rows are stored.
    pub reps: u64,
    /// Order of the quotient group (`k` for the Circles rotation quotient).
    pub group_order: u32,
    /// Byte size the same table would occupy in the v1 (expanded) layout —
    /// recorded at save time so `inspect` can report the shrink factor.
    pub v1_bytes: u64,
}

/// Header-level metadata of a store file, as returned by [`inspect`] and
/// [`save`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreMeta {
    /// Protocol name recorded in the store.
    pub protocol: String,
    /// Format version of the file.
    pub version: u32,
    /// Protocol identity fingerprint (see [`fingerprint`]).
    pub fingerprint: u64,
    /// Protocol family parameter (`k` for Circles, `0` by default).
    pub param: u64,
    /// Whether the protocol declared itself symmetric when the store was
    /// written.
    pub symmetric: bool,
    /// Number of canonical states.
    pub states: u64,
    /// Number of active ordered state pairs.
    pub pairs: u64,
    /// Number of memoized transition outcomes.
    pub outcomes: u64,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Whole-file checksum recorded in (and verified against) the header.
    pub checksum: u64,
    /// Quotient statistics — `Some` exactly for v2 files.
    pub quotient: Option<QuotientStats>,
}

/// Appends `v` as an LEB128 varint (7 data bits per byte, high bit set on
/// continuation) — the same encoding `CompactAdj` rows use in memory.
/// Shared with the run-checkpoint codec ([`crate::run_checkpoint`]).
pub(crate) fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Bounds-checked reader over one section, with varint decoding.
struct Cursor<'a> {
    section: &'static str,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(section: &'static str, buf: &'a [u8]) -> Self {
        Cursor {
            section,
            buf,
            pos: 0,
        }
    }

    fn varint(&mut self) -> Result<u64, StoreError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let &b = self.buf.get(self.pos).ok_or_else(|| {
                StoreError::Corrupt(format!("{} section ends inside a varint", self.section))
            })?;
            self.pos += 1;
            if shift >= 64 || (shift == 63 && b & 0x7F > 1) {
                return Err(StoreError::Corrupt(format!(
                    "oversized varint in {} section",
                    self.section
                )));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                StoreError::Corrupt(format!("{} section shorter than declared", self.section))
            })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn finish(self) -> Result<(), StoreError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(StoreError::Corrupt(format!(
                "{} section has {} trailing byte(s)",
                self.section,
                self.buf.len() - self.pos
            )))
        }
    }
}

pub(crate) fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("4-byte slice"))
}

pub(crate) fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8-byte slice"))
}

/// A verified header plus borrowed section slices — magic, endianness,
/// version, section bounds and whole-file checksum already checked.
struct RawStore<'a> {
    version: u32,
    fingerprint: u64,
    param: u64,
    flags: u32,
    states: u64,
    pairs: u64,
    outcomes: u64,
    checksum: u64,
    name: &'a [u8],
    states_sec: &'a [u8],
    rows_sec: &'a [u8],
    outcomes_sec: &'a [u8],
}

fn parse_and_verify(bytes: &mut [u8]) -> Result<RawStore<'_>, StoreError> {
    // A prefix of the magic is a truncated store, not a foreign file.
    let magic_len = MAGIC.len().min(bytes.len());
    if bytes[..magic_len] != MAGIC[..magic_len] {
        return Err(StoreError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            needed: HEADER_LEN as u64,
            len: bytes.len() as u64,
        });
    }
    if read_u32(bytes, 0x08) != ENDIAN_MARKER {
        return Err(StoreError::EndianMismatch);
    }
    let version = read_u32(bytes, 0x0C);
    if !(FORMAT_V1..=FORMAT_VERSION).contains(&version) {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    // Verify integrity before interpreting the rest of the header:
    // [`checksum64`] over the whole file with the checksum field read as
    // zero (zeroed in place here — the field is never consulted again).
    // Truncation past the header surfaces here.
    let stored = read_u64(bytes, CHECKSUM_OFFSET);
    bytes[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].fill(0);
    let computed = checksum64(bytes);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    let bytes = &*bytes;
    // Section bounds; with a passing checksum this only trips on writer
    // bugs, but the guard keeps slicing panic-free by construction.
    let mut sections = [&bytes[..0]; 4];
    for (s, slot) in sections.iter_mut().enumerate() {
        let off = read_u64(bytes, SECTION_TABLE_OFFSET + s * 16);
        let len = read_u64(bytes, SECTION_TABLE_OFFSET + s * 16 + 8);
        let end = off.saturating_add(len);
        if off < HEADER_LEN as u64 || end > bytes.len() as u64 {
            return Err(StoreError::Truncated {
                needed: end,
                len: bytes.len() as u64,
            });
        }
        *slot = &bytes[off as usize..end as usize];
    }
    // The quotient flag and the version must agree: the flag redundantly
    // marks the rows-section layout, so a disagreement is writer damage
    // the checksum cannot see.
    let flags = read_u32(bytes, 0x20);
    if (flags & FLAG_QUOTIENT != 0) != (version == FORMAT_V2) {
        return Err(StoreError::Corrupt(format!(
            "version {version} disagrees with the quotient flag ({flags:#x})"
        )));
    }
    Ok(RawStore {
        version,
        fingerprint: read_u64(bytes, 0x10),
        param: read_u64(bytes, 0x18),
        flags,
        states: read_u64(bytes, 0x28),
        pairs: read_u64(bytes, 0x30),
        outcomes: read_u64(bytes, 0x38),
        checksum: stored,
        name: sections[0],
        states_sec: sections[1],
        rows_sec: sections[2],
        outcomes_sec: sections[3],
    })
}

/// Number of bytes `v` occupies as an LEB128 varint.
fn varint_len(v: u64) -> usize {
    let bits = 64 - (v | 1).leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Decodes an (in-memory, trusted) row representation into its ascending
/// id list.
fn row_ids(repr: RowRepr<'_>) -> Vec<u32> {
    match repr {
        RowRepr::Sparse { payload, len, .. } => {
            let mut ids = Vec::with_capacity(len as usize);
            let mut pos = 0;
            let mut cur = 0u32;
            for n in 0..len {
                let mut v = 0u32;
                let mut shift = 0;
                loop {
                    let b = payload[pos];
                    pos += 1;
                    v |= u32::from(b & 0x7F) << shift;
                    if b & 0x80 == 0 {
                        break;
                    }
                    shift += 7;
                }
                cur = if n == 0 { v } else { cur + v };
                ids.push(cur);
            }
            ids
        }
        RowRepr::Dense { blocks, len } => {
            let mut ids = Vec::with_capacity(len as usize);
            for (w, &word) in blocks.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    ids.push((w as u32) * 64 + bits.trailing_zeros());
                    bits &= bits - 1;
                }
            }
            ids
        }
    }
}

/// The delta-varint payload of an ascending id list — the sparse row wire
/// format.
fn sparse_payload(ids: &[u32]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(ids.len() * 2);
    let mut prev = 0u32;
    for (n, &id) in ids.iter().enumerate() {
        push_varint(&mut payload, u64::from(if n == 0 { id } else { id - prev }));
        prev = id;
    }
    payload
}

/// Appends one row's **canonical** v1 encoding: a varint count, then (when
/// non-empty) a flag byte and either the delta-varint payload
/// ([`ROW_SPARSE`]) or `row_words` bitset words ([`ROW_DENSE`]).
///
/// The representation is chosen from the row's *final contents* — sparse
/// iff the delta-varint payload fits `threshold` (the shared
/// [`CompactAdj`](crate::CompactAdj) densify policy) — **not** from the
/// in-memory representation. The two can disagree: incremental discovery
/// densifies against the slot count *at push time*, so a row filled early
/// may sit in a bitset that the final, larger threshold would keep sparse.
/// Re-deciding here is what makes equal tables byte-identical on disk
/// regardless of how they were built.
fn encode_row(out: &mut Vec<u8>, repr: RowRepr<'_>, threshold: usize, row_words: usize) {
    let (RowRepr::Sparse { len, .. } | RowRepr::Dense { len, .. }) = repr;
    push_varint(out, u64::from(len));
    if len == 0 {
        return;
    }
    let dense_bits = |out: &mut Vec<u8>, blocks: &[u64]| {
        out.push(ROW_DENSE);
        // In-memory rows may omit trailing all-zero words; the file always
        // carries `row_words` of them.
        for w in 0..row_words {
            let word = blocks.get(w).copied().unwrap_or(0);
            out.extend_from_slice(&word.to_le_bytes());
        }
    };
    match repr {
        RowRepr::Sparse { payload, .. } if payload.len() <= threshold => {
            out.push(ROW_SPARSE);
            push_varint(out, payload.len() as u64);
            out.extend_from_slice(payload);
        }
        RowRepr::Sparse { .. } => {
            let mut blocks = vec![0u64; row_words];
            for id in row_ids(repr) {
                blocks[id as usize / 64] |= 1 << (id % 64);
            }
            dense_bits(out, &blocks);
        }
        RowRepr::Dense { blocks, len } => {
            // Every id costs at least one payload byte, so a count past
            // the threshold can never round-trip to sparse.
            let payload = (len as usize <= threshold).then(|| sparse_payload(&row_ids(repr)));
            match payload.filter(|p| p.len() <= threshold) {
                Some(p) => {
                    out.push(ROW_SPARSE);
                    push_varint(out, p.len() as u64);
                    out.extend_from_slice(&p);
                }
                None => dense_bits(out, blocks),
            }
        }
    }
}

/// Byte length [`encode_row`] would append for this row, without
/// materializing the encoding — how [`save_quotient`] prices the v1 layout
/// it is *not* writing.
fn encoded_row_len(repr: RowRepr<'_>, threshold: usize, row_words: usize) -> usize {
    let (RowRepr::Sparse { len, .. } | RowRepr::Dense { len, .. }) = repr;
    let head = varint_len(u64::from(len));
    if len == 0 {
        return head;
    }
    let payload_len = match repr {
        RowRepr::Sparse { payload, .. } => Some(payload.len()),
        RowRepr::Dense { .. } if len as usize <= threshold => {
            let mut total = 0usize;
            let mut prev = 0u32;
            for (n, id) in row_ids(repr).into_iter().enumerate() {
                total += varint_len(u64::from(if n == 0 { id } else { id - prev }));
                prev = id;
            }
            Some(total)
        }
        RowRepr::Dense { .. } => None,
    };
    match payload_len.filter(|&p| p <= threshold) {
        Some(p) => head + 1 + varint_len(p as u64) + p,
        None => head + 1 + row_words * 8,
    }
}

/// Assembles a complete store file — header (checksum patched in place)
/// followed by the four sections.
#[allow(clippy::too_many_arguments)] // one argument per fixed header field
fn assemble_file(
    version: u32,
    fp: u64,
    param: u64,
    flags: u32,
    states: u64,
    pairs: u64,
    outcomes: u64,
    sections: [&[u8]; 4],
) -> Vec<u8> {
    let body_len: usize = sections.iter().map(|s| s.len()).sum();
    let mut file = Vec::with_capacity(HEADER_LEN + body_len);
    file.extend_from_slice(&MAGIC);
    file.extend_from_slice(&ENDIAN_MARKER.to_le_bytes());
    file.extend_from_slice(&version.to_le_bytes());
    file.extend_from_slice(&fp.to_le_bytes());
    file.extend_from_slice(&param.to_le_bytes());
    file.extend_from_slice(&flags.to_le_bytes());
    file.extend_from_slice(&0u32.to_le_bytes()); // reserved
    file.extend_from_slice(&states.to_le_bytes());
    file.extend_from_slice(&pairs.to_le_bytes());
    file.extend_from_slice(&outcomes.to_le_bytes());
    let mut off = HEADER_LEN as u64;
    for sec in sections {
        file.extend_from_slice(&off.to_le_bytes());
        file.extend_from_slice(&(sec.len() as u64).to_le_bytes());
        off += sec.len() as u64;
    }
    file.extend_from_slice(&[0u8; 8]); // checksum, patched below
    debug_assert_eq!(file.len(), HEADER_LEN);
    for sec in sections {
        file.extend_from_slice(sec);
    }
    // The placeholder is zero, so hashing the buffer as-is matches the
    // zeroed-field convention the verifier uses.
    let checksum = checksum64(&file);
    file[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&checksum.to_le_bytes());
    file
}

/// Atomically writes `bytes` to `path`: a temp file in the target
/// directory is fully written and then renamed over `path`, so a crash
/// leaves either the previous store or none.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let stem = path.file_name().and_then(|n| n.to_str()).unwrap_or("store");
    let tmp = dir.join(format!(
        ".{stem}.{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::write(&tmp, bytes)?;
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(StoreError::Io(e));
    }
    Ok(())
}

/// Serializes `table` for `protocol` into `path` (the v1 layout: every row
/// expanded).
///
/// The write is atomic (temp file + rename), so a crash leaves either
/// the previous store or none. `P::State: Display` supplies the state
/// codec; [`load`] inverts it through `FromStr`.
///
/// Returns the metadata of the written file.
///
/// # Errors
///
/// [`StoreError::Io`] when the temp file cannot be written or renamed.
pub fn save<P>(
    table: &TransitionTable<P>,
    protocol: &P,
    path: &Path,
) -> Result<StoreMeta, StoreError>
where
    P: Protocol,
    P::State: Display,
{
    // One immutable view of the whole segment chain; single-segment tables
    // (the common case: a store is usually saved right after one discovery
    // pass or one load) expose their rows zero-copy, multi-segment tables
    // consolidate into the canonical flat representation first.
    let snap = table.snapshot();
    let rows = snap.flat_rows();
    let slots = snap.len();

    let name = protocol.name().as_bytes().to_vec();

    let mut states_sec = Vec::new();
    snap.for_each_state(|_, state| {
        let text = state.to_string();
        push_varint(&mut states_sec, text.len() as u64);
        states_sec.extend_from_slice(text.as_bytes());
    });

    // Rows in the canonical per-row encoding (see [`encode_row`]): sparse
    // delta-varints or a blocked bitset, re-decided from final contents so
    // equal tables produce byte-identical files regardless of the order
    // discovery filled them in.
    let row_words = slots.div_ceil(64);
    let threshold = slots / 8 + 8;
    let mut rows_sec = Vec::with_capacity(rows.bytes() + 2 * slots);
    for i in 0..slots {
        encode_row(&mut rows_sec, rows.row_repr(i), threshold, row_words);
    }

    // Outcomes sorted by key pair, so the encoding is canonical: equal
    // tables produce byte-identical files.
    let outcome_list = snap.sorted_outcomes();
    let mut outcomes_sec = Vec::with_capacity(outcome_list.len() * 4);
    for ((i, j), (a, b)) in &outcome_list {
        for v in [i, j, a, b] {
            push_varint(&mut outcomes_sec, u64::from(*v));
        }
    }

    let symmetric = protocol.is_symmetric();
    let fp = fingerprint(protocol);
    let param = protocol.fingerprint_param();
    let pairs = rows.pairs() as u64;
    let n_outcomes = outcome_list.len() as u64;

    let file = assemble_file(
        FORMAT_V1,
        fp,
        param,
        if symmetric { FLAG_SYMMETRIC } else { 0 },
        slots as u64,
        pairs,
        n_outcomes,
        [&name, &states_sec, &rows_sec, &outcomes_sec].map(Vec::as_slice),
    );
    write_atomic(path, &file)?;

    Ok(StoreMeta {
        protocol: protocol.name().to_string(),
        version: FORMAT_V1,
        fingerprint: fp,
        param,
        symmetric,
        states: slots as u64,
        pairs,
        outcomes: n_outcomes,
        file_bytes: file.len() as u64,
        checksum: read_u64(&file, CHECKSUM_OFFSET),
        quotient: None,
    })
}

/// Serializes `table` for `protocol` into `path` in the **v2 quotient
/// layout**: the rows section stores one row per canonical orbit
/// representative plus, per state, the `(representative, group element)`
/// pair that reconstructs its row mechanically — shrinking row storage by
/// roughly the group order (`~k×` for Circles, `~48×` at `k = 50`).
/// States and outcomes persist exactly as in v1; [`load`] re-expands the
/// rows with zero protocol calls.
///
/// Before writing, the table is checked to be *orbit-coherent*: every
/// state's canonical representative must be a stored state, and every row
/// must equal the group image of its representative's row. A table built
/// by any discovery path over an orbit-closed state set (e.g.
/// [`quotient_table`](crate::quotient_table), or a cold engine primed with
/// the full enumeration) passes; a table over a partial, non-closed state
/// set is rejected rather than silently mis-expanded on load.
///
/// # Errors
///
/// [`StoreError::Quotient`] when the protocol exposes no
/// [color quotient](Protocol::color_quotient) or the coherence check
/// fails; [`StoreError::Io`] as for [`save`].
pub fn save_quotient<P>(
    table: &TransitionTable<P>,
    protocol: &P,
    path: &Path,
) -> Result<StoreMeta, StoreError>
where
    P: Protocol,
    P::State: Display,
{
    let quotient = protocol.color_quotient().ok_or_else(|| {
        StoreError::Quotient(
            "protocol exposes no color quotient (write the v1 format instead)".into(),
        )
    })?;
    let snap = table.snapshot();
    let rows = snap.flat_rows();
    let slots = snap.len();

    let mut index: HashMap<&P::State, u32, FxBuildHasher> =
        HashMap::with_capacity_and_hasher(slots, FxBuildHasher::default());
    for t in 0..slots as u32 {
        index.insert(snap.state(t), t);
    }

    // Orbit decomposition over the table's own state order.
    let mut rep_of: Vec<(u32, u32)> = Vec::with_capacity(slots);
    for t in 0..slots as u32 {
        let s = snap.state(t);
        let (canon, g) = quotient.canonical_state(s);
        let Some(&rep) = index.get(&canon) else {
            return Err(StoreError::Quotient(format!(
                "state {t} canonicalizes outside the stored state set — the table is not \
                 orbit-closed; rebuild from the full state enumeration"
            )));
        };
        if &quotient.apply(g, &canon) != s {
            return Err(StoreError::Quotient(format!(
                "apply(g, canonical) does not recover state {t} — the quotient violates its \
                 contract"
            )));
        }
        rep_of.push((rep, g));
    }
    let mut rep_tids: Vec<u32> = rep_of.iter().map(|&(r, _)| r).collect();
    rep_tids.sort_unstable();
    rep_tids.dedup();
    let rep_pos: HashMap<u32, u32, FxBuildHasher> = rep_tids
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, i as u32))
        .collect();

    let threshold = slots / 8 + 8;
    let row_words = slots.div_ceil(64);
    let rep_ids: Vec<Vec<u32>> = rep_tids
        .iter()
        .map(|&r| row_ids(rows.row_repr(r as usize)))
        .collect();

    // Coherence check — every row must be the group image of its
    // representative's row — folded together with the v1 byte accounting
    // (the price of the expanded layout this save is avoiding).
    let mut perms: HashMap<u32, Vec<u32>, FxBuildHasher> =
        HashMap::with_hasher(FxBuildHasher::default());
    let mut v1_rows_len = 0usize;
    let mut scratch: Vec<u32> = Vec::new();
    for (t, &(rep, g)) in rep_of.iter().enumerate() {
        v1_rows_len += encoded_row_len(rows.row_repr(t), threshold, row_words);
        if t as u32 == rep {
            continue;
        }
        if let Entry::Vacant(e) = perms.entry(g) {
            let mut perm = Vec::with_capacity(slots);
            for u in 0..slots as u32 {
                let image = quotient.apply(g, snap.state(u));
                let Some(&m) = index.get(&image) else {
                    return Err(StoreError::Quotient(format!(
                        "group element {g} maps state {u} outside the stored state set"
                    )));
                };
                perm.push(m);
            }
            e.insert(perm);
        }
        let perm = &perms[&g];
        scratch.clear();
        scratch.extend(
            rep_ids[rep_pos[&rep] as usize]
                .iter()
                .map(|&u| perm[u as usize]),
        );
        scratch.sort_unstable();
        if row_ids(rows.row_repr(t)) != scratch {
            return Err(StoreError::Quotient(format!(
                "row {t} is not the orbit image of its representative {rep} — the table was \
                 not built orbit-coherently"
            )));
        }
    }

    let name = protocol.name().as_bytes().to_vec();
    let mut states_sec = Vec::new();
    snap.for_each_state(|_, state| {
        let text = state.to_string();
        push_varint(&mut states_sec, text.len() as u64);
        states_sec.extend_from_slice(text.as_bytes());
    });
    let outcome_list = snap.sorted_outcomes();
    let mut outcomes_sec = Vec::with_capacity(outcome_list.len() * 4);
    for ((i, j), (a, b)) in &outcome_list {
        for v in [i, j, a, b] {
            push_varint(&mut outcomes_sec, u64::from(*v));
        }
    }

    let v1_bytes =
        (HEADER_LEN + name.len() + states_sec.len() + v1_rows_len + outcomes_sec.len()) as u64;

    // v2 rows section: group order, representative count, v1 byte price,
    // the ascending representative tid list (delta-varint), per-state
    // (representative index, group element) pairs, then the
    // representatives' rows in their canonical v1 encodings.
    let mut rows_sec = Vec::new();
    push_varint(&mut rows_sec, u64::from(quotient.group_order()));
    push_varint(&mut rows_sec, rep_tids.len() as u64);
    push_varint(&mut rows_sec, v1_bytes);
    let mut prev = 0u32;
    for (n, &r) in rep_tids.iter().enumerate() {
        push_varint(&mut rows_sec, u64::from(if n == 0 { r } else { r - prev }));
        prev = r;
    }
    for &(rep, g) in &rep_of {
        push_varint(&mut rows_sec, u64::from(rep_pos[&rep]));
        push_varint(&mut rows_sec, u64::from(g));
    }
    for &r in &rep_tids {
        encode_row(
            &mut rows_sec,
            rows.row_repr(r as usize),
            threshold,
            row_words,
        );
    }

    let symmetric = protocol.is_symmetric();
    let fp = fingerprint(protocol);
    let param = protocol.fingerprint_param();
    let pairs = rows.pairs() as u64;
    let n_outcomes = outcome_list.len() as u64;
    let file = assemble_file(
        FORMAT_V2,
        fp,
        param,
        (if symmetric { FLAG_SYMMETRIC } else { 0 }) | FLAG_QUOTIENT,
        slots as u64,
        pairs,
        n_outcomes,
        [&name, &states_sec, &rows_sec, &outcomes_sec].map(Vec::as_slice),
    );
    write_atomic(path, &file)?;

    Ok(StoreMeta {
        protocol: protocol.name().to_string(),
        version: FORMAT_V2,
        fingerprint: fp,
        param,
        symmetric,
        states: slots as u64,
        pairs,
        outcomes: n_outcomes,
        file_bytes: file.len() as u64,
        checksum: read_u64(&file, CHECKSUM_OFFSET),
        quotient: Some(QuotientStats {
            reps: rep_tids.len() as u64,
            group_order: quotient.group_order(),
            v1_bytes,
        }),
    })
}

/// Validates one sparse row payload — `count` ascending in-range ids in
/// delta-varint form, each varint at most 5 bytes (so the `u32` row walker
/// decodes it exactly), the slice fully consumed — and returns the last id.
fn validate_sparse_row(
    i: usize,
    payload: &[u8],
    count: u64,
    slots: usize,
) -> Result<u32, StoreError> {
    let mut cur = Cursor::new("rows", payload);
    let mut last = 0u64;
    for n in 0..count {
        let start = cur.pos;
        let v = cur.varint()?;
        if cur.pos - start > 5 {
            return Err(StoreError::Corrupt(format!(
                "row {i}: overlong responder varint"
            )));
        }
        let j = if n == 0 {
            v
        } else {
            if v == 0 {
                return Err(StoreError::Corrupt(format!(
                    "row {i}: zero gap (responder ids must strictly ascend)"
                )));
            }
            last.checked_add(v)
                .ok_or_else(|| StoreError::Corrupt(format!("row {i}: responder id overflows")))?
        };
        if j >= slots as u64 {
            return Err(StoreError::Corrupt(format!(
                "row {i}: responder id {j} out of range ({slots} states)"
            )));
        }
        last = j;
    }
    if cur.finish().is_err() {
        return Err(StoreError::Corrupt(format!(
            "row {i}: payload longer than its declared ids"
        )));
    }
    Ok(last as u32)
}

/// One row decoded from a rows section, still in its wire representation.
enum DecodedRow<'a> {
    Empty,
    Sparse {
        count: u32,
        last: u32,
        payload: &'a [u8],
    },
    Dense {
        blocks: Vec<u64>,
        count: u32,
    },
}

/// Decodes and structurally validates one row encoding at the cursor.
fn decode_one_row<'a>(
    cur: &mut Cursor<'a>,
    i: usize,
    slots: usize,
    row_words: usize,
) -> Result<DecodedRow<'a>, StoreError> {
    let count = cur.varint()?;
    if count == 0 {
        return Ok(DecodedRow::Empty);
    }
    if count > slots as u64 {
        return Err(StoreError::Corrupt(format!(
            "row {i} declares {count} responder(s), more than {slots} states"
        )));
    }
    match cur.take(1)?[0] {
        ROW_SPARSE => {
            let byte_len = cur.varint()?;
            let byte_len = usize::try_from(byte_len).map_err(|_| {
                StoreError::Corrupt(format!("row {i} declares an absurd payload length"))
            })?;
            let payload = cur.take(byte_len)?;
            let last = validate_sparse_row(i, payload, count, slots)?;
            Ok(DecodedRow::Sparse {
                count: count as u32,
                last,
                payload,
            })
        }
        ROW_DENSE => {
            let body = cur.take(row_words * 8)?;
            let mut blocks = vec![0u64; row_words];
            let mut ones = 0u64;
            for (block, chunk) in blocks.iter_mut().zip(body.chunks_exact(8)) {
                let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                ones += u64::from(word.count_ones());
                *block = word;
            }
            let tail_bits = slots - (row_words - 1) * 64;
            if tail_bits < 64 && blocks[row_words - 1] >> tail_bits != 0 {
                return Err(StoreError::Corrupt(format!(
                    "row {i}: bitset sets a responder beyond {slots} states"
                )));
            }
            if ones != count {
                return Err(StoreError::Corrupt(format!(
                    "row {i}: bitset popcount {ones} disagrees with declared count {count}"
                )));
            }
            Ok(DecodedRow::Dense {
                blocks,
                count: count as u32,
            })
        }
        other => Err(StoreError::Corrupt(format!(
            "row {i}: unknown row encoding {other:#04x}"
        ))),
    }
}

/// Decodes a v1 rows section into [`AdjRows`].
fn decode_v1_rows(sec: &[u8], slots: usize) -> Result<AdjRows, StoreError> {
    let mut cur = Cursor::new("rows", sec);
    let mut rows = AdjRows::new();
    for _ in 0..slots {
        rows.push_slot();
    }
    let row_words = slots.div_ceil(64);
    for i in 0..slots {
        match decode_one_row(&mut cur, i, slots, row_words)? {
            DecodedRow::Empty => {}
            DecodedRow::Sparse {
                count,
                last,
                payload,
            } => {
                // The validated payload is exactly the delta-varint
                // encoding the in-memory rows use, so adopt it wholesale
                // instead of re-encoding pair by pair.
                rows.set_row_varint(i, count, last, payload);
            }
            DecodedRow::Dense { blocks, count } => rows.set_row_dense(i, blocks, count),
        }
    }
    cur.finish()?;
    Ok(rows)
}

/// Decodes a v2 rows section and re-expands it through the protocol's
/// quotient into the full [`AdjRows`]. Zero protocol transition calls —
/// the group action (and the per-state `apply(g, rep) == state` check that
/// pins the expansion metadata to the protocol) is the only computation.
fn decode_v2_rows<S>(
    quotient: &dyn StateQuotient<S>,
    sec: &[u8],
    states: &[S],
) -> Result<AdjRows, StoreError>
where
    S: Clone + Eq + std::hash::Hash + fmt::Debug,
{
    let slots = states.len();
    let mut cur = Cursor::new("rows", sec);
    let group_order = cur.varint()?;
    if group_order != u64::from(quotient.group_order()) {
        return Err(StoreError::Quotient(format!(
            "store records group order {group_order}, the protocol's quotient has {}",
            quotient.group_order()
        )));
    }
    let n_reps = cur.varint()?;
    if n_reps > slots as u64 || (n_reps == 0 && slots > 0) {
        return Err(StoreError::Corrupt(format!(
            "store declares {n_reps} representative(s) for {slots} state(s)"
        )));
    }
    let n_reps = n_reps as usize;
    let _v1_bytes = cur.varint()?;
    let mut rep_tids: Vec<u32> = Vec::with_capacity(n_reps);
    let mut prev = 0u64;
    for n in 0..n_reps {
        let v = cur.varint()?;
        let r = if n == 0 {
            v
        } else {
            if v == 0 {
                return Err(StoreError::Corrupt(
                    "representative tids must strictly ascend".into(),
                ));
            }
            prev + v
        };
        if r >= slots as u64 {
            return Err(StoreError::Corrupt(format!(
                "representative tid {r} out of range ({slots} states)"
            )));
        }
        rep_tids.push(r as u32);
        prev = r;
    }
    let mut rep_of: Vec<(u32, u32)> = Vec::with_capacity(slots);
    for t in 0..slots {
        let ri = cur.varint()?;
        if ri >= n_reps as u64 {
            return Err(StoreError::Corrupt(format!(
                "state {t} names representative index {ri}, out of {n_reps}"
            )));
        }
        let g = cur.varint()?;
        if g >= group_order {
            return Err(StoreError::Corrupt(format!(
                "state {t} names group element {g}, out of {group_order}"
            )));
        }
        rep_of.push((rep_tids[ri as usize], g as u32));
    }
    let row_words = slots.div_ceil(64);
    let mut rep_rows: Vec<Vec<u32>> = Vec::with_capacity(n_reps);
    for &r in &rep_tids {
        let ids = match decode_one_row(&mut cur, r as usize, slots, row_words)? {
            DecodedRow::Empty => Vec::new(),
            DecodedRow::Sparse {
                count,
                last,
                payload,
            } => row_ids(RowRepr::Sparse {
                payload,
                last,
                len: count,
            }),
            DecodedRow::Dense { blocks, count } => row_ids(RowRepr::Dense {
                blocks: &blocks,
                len: count,
            }),
        };
        rep_rows.push(ids);
    }
    cur.finish()?;

    // The expansion metadata must actually recover every state from its
    // representative, or the expanded rows would be coherent nonsense.
    for (t, &(rep, g)) in rep_of.iter().enumerate() {
        if quotient.apply(g, &states[rep as usize]) != states[t] {
            return Err(StoreError::Quotient(format!(
                "apply(g) of representative {rep} does not recover state {t} — the store \
                 disagrees with the protocol's quotient"
            )));
        }
    }
    let mut index: HashMap<&S, u32, FxBuildHasher> =
        HashMap::with_capacity_and_hasher(slots, FxBuildHasher::default());
    for (t, s) in states.iter().enumerate() {
        index.insert(s, t as u32);
    }
    let rep_index: HashMap<u32, u32, FxBuildHasher> = rep_tids
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, i as u32))
        .collect();
    expand_orbit_rows(quotient, states, &index, &rep_of, &rep_index, &rep_rows)
        .map_err(StoreError::Quotient)
}

/// Reads `path` and reconstructs the [`TransitionTable`] it stores, with
/// **zero protocol calls**: the protocol value is consulted only for its
/// identity ([`fingerprint`]) and the states' `FromStr` codec. A v2
/// (quotient) store is re-expanded through the protocol's
/// [color quotient](Protocol::color_quotient) — group applications, never
/// transitions.
///
/// # Errors
///
/// Every corruption is a typed [`StoreError`]: [`Io`](StoreError::Io) when
/// the file cannot be read (a missing file surfaces the inner
/// [`NotFound`](std::io::ErrorKind::NotFound)),
/// [`BadMagic`](StoreError::BadMagic) /
/// [`EndianMismatch`](StoreError::EndianMismatch) /
/// [`UnsupportedVersion`](StoreError::UnsupportedVersion) for foreign or
/// future files, [`Truncated`](StoreError::Truncated) when the header is
/// cut short, [`ChecksumMismatch`](StoreError::ChecksumMismatch) for any
/// bit damage past the header (including truncation into the sections),
/// [`IdentityMismatch`](StoreError::IdentityMismatch) when the store was
/// built for a different protocol parameterization, and
/// [`Corrupt`](StoreError::Corrupt) when a section fails structural
/// validation.
pub fn load<P>(protocol: &P, path: &Path) -> Result<TransitionTable<P>, StoreError>
where
    P: Protocol,
    P::State: FromStr,
    <P::State as FromStr>::Err: Display,
{
    let mut bytes = fs::read(path)?;
    let raw = parse_and_verify(&mut bytes)?;

    let expected = fingerprint(protocol);
    if raw.fingerprint != expected {
        return Err(StoreError::IdentityMismatch {
            stored: raw.fingerprint,
            expected,
        });
    }
    if raw.name != protocol.name().as_bytes() {
        return Err(StoreError::Corrupt(
            "protocol name disagrees with a matching fingerprint".into(),
        ));
    }
    let symmetric = raw.flags & FLAG_SYMMETRIC != 0;
    if symmetric != protocol.is_symmetric() {
        return Err(StoreError::Corrupt(
            "symmetry flag disagrees with a matching fingerprint".into(),
        ));
    }

    if raw.states > u64::from(u32::MAX) {
        return Err(StoreError::Corrupt(format!(
            "state count {} exceeds the u32 id space",
            raw.states
        )));
    }
    // Cheap lower bounds (each state costs >= 1 byte, each row >= 1 byte,
    // each outcome >= 4 bytes) so declared counts cannot force absurd
    // allocations before decoding catches the lie.
    if raw.states > raw.states_sec.len() as u64 || raw.states > raw.rows_sec.len() as u64 {
        return Err(StoreError::Corrupt(format!(
            "header declares {} state(s), more than the sections can hold",
            raw.states
        )));
    }
    if raw.outcomes.saturating_mul(4) > raw.outcomes_sec.len() as u64 {
        return Err(StoreError::Corrupt(format!(
            "header declares {} outcome(s), more than the section can hold",
            raw.outcomes
        )));
    }
    let slots = raw.states as usize;

    let mut cur = Cursor::new("states", raw.states_sec);
    let mut states: Vec<P::State> = Vec::with_capacity(slots);
    let mut index: HashMap<P::State, u32, FxBuildHasher> =
        HashMap::with_capacity_and_hasher(slots, FxBuildHasher::default());
    for id in 0..slots {
        let len = cur.varint()?;
        let len = usize::try_from(len)
            .map_err(|_| StoreError::Corrupt(format!("state {id} declares an absurd length")))?;
        let text = std::str::from_utf8(cur.take(len)?)
            .map_err(|_| StoreError::Corrupt(format!("state {id} is not valid utf-8")))?;
        let state: P::State = text
            .parse()
            .map_err(|e| StoreError::Corrupt(format!("state {id} ({text:?}): {e}")))?;
        if index.insert(state.clone(), id as u32).is_some() {
            return Err(StoreError::Corrupt(format!(
                "state {id} ({text:?}) duplicates an earlier state"
            )));
        }
        states.push(state);
    }
    cur.finish()?;

    let rows = if raw.version == FORMAT_V2 {
        let quotient = protocol.color_quotient().ok_or_else(|| {
            StoreError::Quotient(
                "store is v2 (quotient) but the protocol exposes no color quotient".into(),
            )
        })?;
        decode_v2_rows(quotient, raw.rows_sec, &states)?
    } else {
        decode_v1_rows(raw.rows_sec, slots)?
    };
    if rows.pairs() as u64 != raw.pairs {
        return Err(StoreError::Corrupt(format!(
            "header declares {} active pair(s), rows decode to {}",
            raw.pairs,
            rows.pairs()
        )));
    }

    let mut cur = Cursor::new("outcomes", raw.outcomes_sec);
    let mut outcomes: HashMap<(u32, u32), (u32, u32), FxBuildHasher> =
        HashMap::with_capacity_and_hasher(raw.outcomes as usize, FxBuildHasher::default());
    let mut prev: Option<(u32, u32)> = None;
    for _ in 0..raw.outcomes {
        let mut ids = [0u32; 4];
        for slot in &mut ids {
            let v = cur.varint()?;
            if v >= slots as u64 {
                return Err(StoreError::Corrupt(format!(
                    "outcome id {v} out of range ({slots} states)"
                )));
            }
            *slot = v as u32;
        }
        let key = (ids[0], ids[1]);
        if prev.is_some_and(|p| p >= key) {
            return Err(StoreError::Corrupt(format!(
                "outcome keys not strictly ascending at ({}, {})",
                key.0, key.1
            )));
        }
        prev = Some(key);
        if !rows.contains(key.0 as usize, key.1 as usize) {
            return Err(StoreError::Corrupt(format!(
                "outcome recorded for null pair ({}, {})",
                key.0, key.1
            )));
        }
        outcomes.insert(key, (ids[2], ids[3]));
    }
    cur.finish()?;

    Ok(TransitionTable::from_parts(
        states, rows, outcomes, symmetric,
    ))
}

/// Reads and verifies only the header (plus the name section and, for v2,
/// the fixed quotient-stats prefix of the rows section) of a store file.
/// No states are decoded and no protocol value is needed, so any store can
/// be inspected — this is what the `table_store inspect` CLI subcommand
/// prints.
///
/// # Errors
///
/// The same header-level errors as [`load`]; section contents beyond the
/// name and the quotient prefix are covered by the checksum but not
/// structurally decoded.
pub fn inspect(path: &Path) -> Result<StoreMeta, StoreError> {
    let mut bytes = fs::read(path)?;
    let file_bytes = bytes.len() as u64;
    let raw = parse_and_verify(&mut bytes)?;
    let protocol = std::str::from_utf8(raw.name)
        .map_err(|_| StoreError::Corrupt("protocol name is not valid utf-8".into()))?
        .to_string();
    let quotient = if raw.version == FORMAT_V2 {
        let mut cur = Cursor::new("rows", raw.rows_sec);
        let group_order = cur.varint()?;
        let reps = cur.varint()?;
        let v1_bytes = cur.varint()?;
        let group_order = u32::try_from(group_order).map_err(|_| {
            StoreError::Corrupt(format!(
                "store declares an absurd group order {group_order}"
            ))
        })?;
        Some(QuotientStats {
            reps,
            group_order,
            v1_bytes,
        })
    } else {
        None
    };
    Ok(StoreMeta {
        protocol,
        version: raw.version,
        fingerprint: raw.fingerprint,
        param: raw.param,
        symmetric: raw.flags & FLAG_SYMMETRIC != 0,
        states: raw.states,
        pairs: raw.pairs,
        outcomes: raw.outcomes,
        file_bytes,
        checksum: raw.checksum,
        quotient,
    })
}

/// Statistics of a successful [`audit`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditReport {
    /// States in the audited table.
    pub states: usize,
    /// Ordered pairs re-classified through the protocol.
    pub pairs_checked: u64,
    /// Memoized outcomes re-derived through the protocol.
    pub outcomes_checked: u64,
}

/// Re-derives up to `max_pairs` pair classifications and outcomes of
/// `table` through the protocol's own transition function — the semantic
/// check [`load`] deliberately never performs (its contract is zero
/// protocol calls). The `table_store verify` CLI subcommand runs this
/// against a freshly loaded store.
///
/// # Errors
///
/// [`StoreError::AuditMismatch`] naming the first disagreeing pair or
/// outcome.
pub fn audit<P: Protocol>(
    protocol: &P,
    table: &TransitionTable<P>,
    max_pairs: u64,
) -> Result<AuditReport, StoreError> {
    let snap = table.snapshot();
    let n = snap.len();
    let mut pairs_checked = 0u64;
    'pairs: for i in 0..n as u32 {
        for j in 0..n as u32 {
            if pairs_checked >= max_pairs {
                break 'pairs;
            }
            let (si, sj) = (snap.state(i), snap.state(j));
            let active = !protocol.is_null_interaction(si, sj);
            if snap.contains(i, j) != active {
                return Err(StoreError::AuditMismatch(format!(
                    "pair ({si:?}, {sj:?}) stored as {} but the protocol says {}",
                    if active { "null" } else { "active" },
                    if active { "active" } else { "null" },
                )));
            }
            pairs_checked += 1;
        }
    }
    let mut outcomes_checked = 0u64;
    for ((i, j), (a, b)) in snap.sorted_outcomes() {
        if outcomes_checked >= max_pairs {
            break;
        }
        let (ta, tb) = protocol.transition(snap.state(i), snap.state(j));
        if &ta != snap.state(a) || &tb != snap.state(b) {
            return Err(StoreError::AuditMismatch(format!(
                "outcome of pair ({i}, {j}) disagrees with the protocol"
            )));
        }
        outcomes_checked += 1;
    }
    Ok(AuditReport {
        states: n,
        pairs_checked,
        outcomes_checked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        sym: bool,
        param: u64,
    }

    impl Protocol for Toy {
        type State = u8;
        type Input = u8;
        type Output = u8;

        fn name(&self) -> &str {
            "toy"
        }

        fn input(&self, i: &u8) -> u8 {
            *i
        }

        fn output(&self, s: &u8) -> u8 {
            *s
        }

        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            let m = *a.max(b);
            (m, m)
        }

        fn is_symmetric(&self) -> bool {
            self.sym
        }

        fn fingerprint_param(&self) -> u64 {
            self.param
        }
    }

    #[test]
    fn fingerprint_separates_param_and_symmetry() {
        let base = fingerprint(&Toy {
            sym: true,
            param: 3,
        });
        assert_ne!(
            base,
            fingerprint(&Toy {
                sym: true,
                param: 4
            })
        );
        assert_ne!(
            base,
            fingerprint(&Toy {
                sym: false,
                param: 3
            })
        );
        assert_eq!(
            base,
            fingerprint(&Toy {
                sym: true,
                param: 3
            })
        );
    }

    #[test]
    fn varint_round_trips() {
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            push_varint(&mut buf, v);
        }
        let mut cur = Cursor::new("test", &buf);
        for &v in &values {
            assert_eq!(cur.varint().unwrap(), v);
        }
        cur.finish().unwrap();
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // 10 continuation bytes push past 64 bits.
        let over = [0xFFu8; 10];
        assert!(matches!(
            Cursor::new("test", &over).varint(),
            Err(StoreError::Corrupt(_))
        ));
        let cut = [0x80u8];
        assert!(matches!(
            Cursor::new("test", &cut).varint(),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            StoreError::Io(std::io::Error::other("boom")),
            StoreError::BadMagic,
            StoreError::EndianMismatch,
            StoreError::UnsupportedVersion {
                found: 9,
                supported: FORMAT_VERSION,
            },
            StoreError::Truncated {
                needed: 136,
                len: 8,
            },
            StoreError::ChecksumMismatch {
                stored: 1,
                computed: 2,
            },
            StoreError::IdentityMismatch {
                stored: 1,
                expected: 2,
            },
            StoreError::Corrupt("bad".into()),
            StoreError::Quotient("bad".into()),
            StoreError::AuditMismatch("bad".into()),
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }
}
