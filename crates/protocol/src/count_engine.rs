//! The batched count-based simulation engine.
//!
//! Agents with equal states are interchangeable, so under count-level
//! scheduling an execution is a Markov chain over anonymous configurations
//! (the [`CountConfig`] multisets of Definition 1.1). [`CountEngine`]
//! maintains per-state counts instead of an indexed agent vector and asks a
//! [`CountScheduler`] for interactions as *state pairs*; with the default
//! [`UniformCountScheduler`] it advances between change-points in a single
//! geometric draw, so a silent-heavy run costs one cheap update per
//! state-*changing* interaction instead of one per interaction. Empirically
//! the Circles protocol performs `Θ(n)` state changes but super-linearly many
//! interactions, which is what makes populations of `10^6`–`10^9`+ agents
//! tractable here and hopeless for the indexed engine.
//!
//! # Activity bookkeeping
//!
//! Which slot pairs are *active* (state-changing), how much sampling weight
//! they carry and how a conditional change-pair is drawn is delegated to an
//! [`Activity`] index — [`SparseActivity`] by default (per-slot adjacency
//! lists, dirty-row settlement, Fenwick-tree sampling: `O(deg + log slots)`
//! per change-point), with [`DenseActivity`] (the previous dense pair-matrix
//! bookkeeping, `O(slots)` scans) kept as the reference baseline; see
//! [`activity`](crate::activity) for the cost model. All pair-weight
//! arithmetic is `u128`, so populations up to `2^63 − 1` agents are
//! supported — far past the former `u32::MAX` cap.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

use crate::hashing::FxBuildHasher;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::activity::{Activity, AdjRows, CompactActivity, DenseActivity, SparseActivity};
use crate::config::CountConfig;
use crate::count_trace::CountTrace;
use crate::error::FrameworkError;
use crate::protocol::Protocol;
use crate::quotient::QuotientMemo;
use crate::run_checkpoint::{CheckpointError, ResumableRng, RunCheckpoint};
use crate::scheduler::{CountScheduler, CountView, UniformCountScheduler};
use crate::simulation::{RunReport, SimStats};
use crate::transition_table::{Segment, TableSnapshot, TransitionTable};

/// Count-based, change-point-batched simulation engine.
///
/// Exposes the same [`RunReport`]/[`SimStats`] measurement surface as the
/// indexed [`Simulation`](crate::Simulation); driven by any
/// [`CountScheduler`] (the uniform-random one by default) over any
/// [`Activity`] index (the sparse one by default). Equivalence with the
/// indexed engine is covered by replay proptests and distributional tests in
/// `tests/engine_equivalence.rs`.
///
/// The engine discovers one slot per *distinct state ever observed* and
/// queries the protocol's transition once per ordered slot pair, so it suits
/// protocols with a bounded state space (for Circles, at most `k³` states
/// regardless of `n`). Populations are limited to `2^63 − 1` agents so that
/// pair-weight arithmetic (`≤ n(n−1)`) fits `u128` with signed deltas.
///
/// # Example
///
/// ```
/// # use pp_protocol::{CountEngine, Protocol};
/// # struct Max;
/// # impl Protocol for Max {
/// #     type State = u8; type Input = u8; type Output = u8;
/// #     fn name(&self) -> &str { "max" }
/// #     fn input(&self, i: &u8) -> u8 { *i }
/// #     fn output(&self, s: &u8) -> u8 { *s }
/// #     fn transition(&self, a: &u8, b: &u8) -> (u8, u8) { let m = *a.max(b); (m, m) }
/// # }
/// let inputs: Vec<u8> = (0..1_000_000).map(|i| (i % 7) as u8).collect();
/// let mut engine = CountEngine::from_inputs(&Max, &inputs, 42);
/// let report = engine.run_until_silent(u64::MAX)?;
/// assert_eq!(report.consensus, Some(6));
/// # Ok::<(), pp_protocol::FrameworkError>(())
/// ```
pub struct CountEngine<'p, P: Protocol, CS = UniformCountScheduler, A = SparseActivity, R = StdRng>
{
    protocol: &'p P,
    scheduler: CS,
    rng: R,
    /// Dense slot arrays; slots are append-only so ids stay stable.
    states: Vec<P::State>,
    outs: Vec<P::Output>,
    counts: Vec<u64>,
    index: HashMap<P::State, usize, FxBuildHasher>,
    n: u64,
    activity: A,
    stats: SimStats,
    output_counts: BTreeMap<P::Output, usize>,
    last_disagreement: Option<u64>,
    /// When recording, the state pairs of every applied change-point.
    trace: Option<Vec<(P::State, P::State)>>,
    /// Whether the protocol declared itself symmetric — halves discovery
    /// (one transition call per unordered pair) and lets symmetric-aware
    /// activity indexes share row storage.
    symmetric: bool,
    /// Memoized transition outcomes of applied active pairs,
    /// `(i, j) → (target_i, target_j)` by slot id. Populated lazily; seeded
    /// from a [`TransitionTable`] on warm starts.
    outcomes: HashMap<(u32, u32), (u32, u32), FxBuildHasher>,
    /// Outcomes memoized by *this* engine from protocol calls (not from a
    /// warm snapshot), so exports back to the source table merge `O(new)`
    /// entries instead of re-proposing the whole memo.
    new_outcomes: Vec<((u32, u32), (u32, u32))>,
    /// The canonical-pair memo backing quotient discovery, present exactly
    /// when the protocol exposes a
    /// [`color_quotient`](Protocol::color_quotient). Classifications and
    /// outcome resolutions route through it — one protocol transition call
    /// per orbit — but slot numbering, memo bookkeeping and trajectories
    /// are bit-identical to the memo-only path (the answers are equal by
    /// equivariance; only who computes them changes).
    quotient: Option<QuotientMemo<'p, P::State>>,
    /// The warm-start oracle: a snapshot of a [`TransitionTable`] plus the
    /// engine↔table id maps, present only on warm engines. Slot numbering
    /// never depends on it — it only replaces protocol calls with lookups,
    /// which is what keeps warm trajectories bit-identical to cold ones.
    warm: Option<WarmState<P::State>>,
}

/// The warm-start lookup state of a [`CountEngine`]: the shared epoch
/// snapshot handle and the lazily grown engine-slot ↔ table-id
/// correspondence.
struct WarmState<S> {
    snap: Arc<TableSnapshot<S>>,
    /// Engine slot → table id; [`NO_ID`] for states the table never saw.
    tids: Vec<u32>,
    /// Table id → engine slot; [`NO_ID`] while unmaterialized.
    slot_of_tid: Vec<u32>,
    /// Engine slots whose state the snapshot does not know — the (rare)
    /// cross-classification partners that still need protocol calls.
    novel: Vec<u32>,
    /// Scratch: candidate responder/initiator slots of the slot being
    /// materialized, sorted ascending before ingestion.
    out_buf: Vec<u32>,
    in_buf: Vec<u32>,
}

/// Sentinel for "no corresponding id" in [`WarmState`] maps.
const NO_ID: u32 = u32::MAX;

impl<S> WarmState<S> {
    fn new(snap: Arc<TableSnapshot<S>>) -> Self {
        let len = snap.len();
        WarmState {
            snap,
            tids: Vec::new(),
            slot_of_tid: vec![NO_ID; len],
            novel: Vec::new(),
            out_buf: Vec::new(),
            in_buf: Vec::new(),
        }
    }
}

/// The count engine over the [`DenseActivity`] baseline index — the previous
/// engine's `O(slots)`-per-change-point bookkeeping, kept for equivalence
/// tests and the `backend` benchmark's sparse-vs-dense comparison.
pub type DenseCountEngine<'p, P, CS = UniformCountScheduler, R = StdRng> =
    CountEngine<'p, P, CS, DenseActivity, R>;

/// The count engine over the [`CompactActivity`] index — compressed
/// adjacency rows for slot tables too large for the flat 8-bytes-per-pair
/// layout (full-discovery Circles toward `k = 40`).
pub type CompactCountEngine<'p, P, CS = UniformCountScheduler, R = StdRng> =
    CountEngine<'p, P, CS, CompactActivity, R>;

/// Upper bound on memoized transition outcomes per engine (~4M entries,
/// tens of MB with hash-map overhead). Long runs over very dense activity
/// could otherwise grow the memo toward the full active-pair set; past the
/// cap, applications recompute through the protocol — slower, never wrong.
const OUTCOME_MEMO_CAP: usize = 1 << 22;

/// Builds the scheduler-facing view from engine fields. A macro rather than
/// a method so the scheduler and RNG fields stay independently borrowable.
macro_rules! view {
    ($self:ident) => {
        CountView {
            states: &$self.states,
            counts: &$self.counts,
            n: $self.n,
            row_mass: $self.activity.row_mass(),
            mass: $self.activity.mass(),
            sampler: &$self.activity,
        }
    };
}

impl<'p, P: Protocol> CountEngine<'p, P, UniformCountScheduler, SparseActivity> {
    /// Creates a uniform-random engine from input symbols.
    ///
    /// # Panics
    ///
    /// Panics when more than `2^63 − 1` agents are supplied (see the
    /// [type-level docs](CountEngine)).
    pub fn from_inputs(protocol: &'p P, inputs: &[P::Input], seed: u64) -> Self {
        let config: CountConfig<P::State> = inputs.iter().map(|i| protocol.input(i)).collect();
        Self::from_config(protocol, config, seed)
    }

    /// Creates a uniform-random engine from an anonymous configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration holds more than `2^63 − 1` agents.
    pub fn from_config(protocol: &'p P, config: CountConfig<P::State>, seed: u64) -> Self {
        Self::with_scheduler(protocol, config, UniformCountScheduler::new(), seed)
    }
}

impl<'p, P, CS> CountEngine<'p, P, CS, SparseActivity>
where
    P: Protocol,
    CS: CountScheduler<P::State>,
{
    /// Creates an engine over `config`, driven by `scheduler` and the RNG
    /// seeded with `seed`, on the default sparse activity index.
    ///
    /// # Panics
    ///
    /// Panics when the configuration holds more than `2^63 − 1` agents.
    pub fn with_scheduler(
        protocol: &'p P,
        config: CountConfig<P::State>,
        scheduler: CS,
        seed: u64,
    ) -> Self {
        Self::with_parts(protocol, config, scheduler, seed)
    }

    /// Creates a warm-started engine on the default sparse activity index —
    /// see [`with_table_parts`](Self::with_table_parts) for the semantics
    /// (and for selecting another activity index).
    ///
    /// # Panics
    ///
    /// Panics when the configuration holds more than `2^63 − 1` agents.
    pub fn with_table(
        protocol: &'p P,
        config: CountConfig<P::State>,
        scheduler: CS,
        seed: u64,
        table: &TransitionTable<P>,
    ) -> Self {
        Self::with_table_parts(protocol, config, scheduler, seed, table)
    }
}

impl<'p, P, CS, A> CountEngine<'p, P, CS, A>
where
    P: Protocol,
    CS: CountScheduler<P::State>,
    A: Activity,
{
    /// Creates an engine over `config` with an explicit activity index —
    /// `CountEngine::<_, _, DenseActivity>::with_parts(..)` selects the
    /// dense baseline (or use the [`DenseCountEngine`] alias).
    ///
    /// # Panics
    ///
    /// Panics when the configuration holds more than `2^63 − 1` agents —
    /// pair weights (`≤ n(n−1)`) and their signed deltas must fit `u128`.
    pub fn with_parts(
        protocol: &'p P,
        config: CountConfig<P::State>,
        scheduler: CS,
        seed: u64,
    ) -> Self {
        Self::with_rng(protocol, config, scheduler, StdRng::seed_from_u64(seed))
    }

    /// Like [`with_parts`](Self::with_parts), but warm-started from `table`,
    /// used as a *lookup oracle*: states the table knows materialize their
    /// activity rows and transition outcomes from a snapshot of it — zero
    /// protocol calls — while unknown states pay ordinary per-pair
    /// discovery.
    ///
    /// **Canonical slot order.** The table never influences slot numbering:
    /// slots are created exactly when (and in the order that) a cold run of
    /// the same seed would create them, and lookups return exactly what the
    /// protocol would. A warm run is therefore **bit-identical** to the
    /// cold run of the same seed — same trajectory, same `RunReport`, same
    /// RNG stream — regardless of the table's id order, how many states it
    /// holds, or which other engines are exporting into it concurrently.
    ///
    /// # Panics
    ///
    /// Panics when the configuration holds more than `2^63 − 1` agents.
    pub fn with_table_parts(
        protocol: &'p P,
        config: CountConfig<P::State>,
        scheduler: CS,
        seed: u64,
        table: &TransitionTable<P>,
    ) -> Self {
        Self::with_table_rng(
            protocol,
            config,
            scheduler,
            StdRng::seed_from_u64(seed),
            table,
        )
    }
}

impl<'p, P, CS, A, R> CountEngine<'p, P, CS, A, R>
where
    P: Protocol,
    CS: CountScheduler<P::State>,
    A: Activity,
    R: RngCore,
{
    /// Like [`with_parts`](Self::with_parts) with an explicitly constructed
    /// generator — the entry point for counter-based trial streams
    /// ([`Philox4x32::stream`](rand::rngs::Philox4x32::stream)) whose
    /// identity is richer than one `u64`.
    ///
    /// # Panics
    ///
    /// Panics when the configuration holds more than `2^63 − 1` agents.
    pub fn with_rng(protocol: &'p P, config: CountConfig<P::State>, scheduler: CS, rng: R) -> Self {
        let mut engine = Self::empty(protocol, scheduler, rng, config.distinct());
        engine.seed_config(config);
        engine
    }

    /// [`with_table_parts`](Self::with_table_parts) with an explicitly
    /// constructed generator; see there for the canonical-order contract.
    ///
    /// # Panics
    ///
    /// Panics when the configuration holds more than `2^63 − 1` agents.
    pub fn with_table_rng(
        protocol: &'p P,
        config: CountConfig<P::State>,
        scheduler: CS,
        rng: R,
        table: &TransitionTable<P>,
    ) -> Self {
        Self::with_snapshot_rng(protocol, config, scheduler, rng, table.snapshot())
    }

    /// Like [`with_table_rng`](Self::with_table_rng), but against an
    /// already-captured [`TableSnapshot`] handle: construction is an `Arc`
    /// refcount bump, so a sweep captures one snapshot per epoch
    /// ([`TransitionTable::snapshot`]) and shares it across every trial of
    /// the epoch. The canonical-order contract of
    /// [`with_table_parts`](Self::with_table_parts) holds unchanged —
    /// snapshots are lookup oracles, so which epoch's snapshot a trial got
    /// never affects its trajectory.
    ///
    /// # Panics
    ///
    /// Panics when the configuration holds more than `2^63 − 1` agents.
    pub fn with_snapshot_rng(
        protocol: &'p P,
        config: CountConfig<P::State>,
        scheduler: CS,
        rng: R,
        snapshot: Arc<TableSnapshot<P::State>>,
    ) -> Self {
        let mut engine = Self::empty(protocol, scheduler, rng, config.distinct());
        if !snapshot.is_empty() {
            debug_assert_eq!(
                snapshot.symmetric(),
                engine.symmetric,
                "snapshot and engine disagree on adjacency symmetry"
            );
            engine.warm = Some(WarmState::new(snapshot));
        }
        engine.seed_config(config);
        engine
    }

    /// An engine with no slots and no agents yet.
    fn empty(protocol: &'p P, scheduler: CS, rng: R, distinct: usize) -> Self {
        let symmetric = protocol.is_symmetric();
        let mut activity = A::default();
        if symmetric {
            activity.declare_symmetric();
        }
        CountEngine {
            protocol,
            scheduler,
            rng,
            states: Vec::with_capacity(distinct),
            outs: Vec::with_capacity(distinct),
            counts: Vec::with_capacity(distinct),
            index: HashMap::with_capacity_and_hasher(distinct, FxBuildHasher::default()),
            n: 0,
            activity,
            stats: SimStats::default(),
            output_counts: BTreeMap::new(),
            last_disagreement: None,
            trace: None,
            symmetric,
            outcomes: HashMap::with_hasher(FxBuildHasher::default()),
            new_outcomes: Vec::new(),
            quotient: protocol.color_quotient().map(QuotientMemo::new),
            warm: None,
        }
    }

    /// Registers `config`'s states as slots (discovering any the engine does
    /// not already know) and applies its counts.
    fn seed_config(&mut self, config: CountConfig<P::State>) {
        assert!(
            (config.n() as u128) < (1u128 << 63),
            "CountEngine supports at most 2^63 - 1 agents, got {}",
            config.n()
        );
        self.n = config.n() as u64;
        for (s, _) in config.iter() {
            self.ensure_slot(s.clone());
        }
        for (s, c) in config.iter() {
            let slot = self.index[s];
            self.counts[slot] = c as u64;
            self.activity.count_changed(slot, c as i64);
            *self
                .output_counts
                .entry(self.outs[slot].clone())
                .or_insert(0) += c;
        }
        self.activity.settle(&self.counts);
        if self.output_counts.len() > 1 {
            self.last_disagreement = Some(0);
        }
    }

    /// Number of agents.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Number of slots: distinct states ever observed, including states
    /// whose count has since returned to zero.
    pub fn slots(&self) -> usize {
        self.states.len()
    }

    /// Every state ever observed, by slot id — useful for
    /// [priming](Self::prime_states) another engine with the same state set.
    pub fn known_states(&self) -> &[P::State] {
        &self.states
    }

    /// Total sampling weight of active (state-changing) ordered agent pairs;
    /// zero exactly when the configuration is silent.
    pub fn mass(&self) -> u128 {
        self.activity.mass()
    }

    /// Interactions executed so far.
    pub fn steps(&self) -> u64 {
        self.stats.steps
    }

    /// Current counters, on the same [`SimStats`] surface as the indexed
    /// engine.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// The protocol driving this engine.
    pub fn protocol(&self) -> &P {
        self.protocol
    }

    /// Histogram of current outputs.
    pub fn output_counts(&self) -> &BTreeMap<P::Output, usize> {
        &self.output_counts
    }

    /// Pre-registers states as slots (with zero agents), forcing their
    /// pairwise transition discovery now instead of lazily mid-run.
    ///
    /// Slot ids — and therefore the engine's sampling order and exact RNG
    /// stream — depend on registration order, so priming two engines with
    /// the same sequence makes their runs comparable draw-for-draw. The
    /// `backend` bench uses this to measure steady-state per-change-point
    /// cost without the one-time discovery mixed in.
    pub fn prime_states(&mut self, states: impl IntoIterator<Item = P::State>) {
        for s in states {
            self.ensure_slot(s);
        }
    }

    /// Starts recording the state pairs of applied change-points; see
    /// [`take_trace`](Self::take_trace).
    pub fn record_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Stops recording and returns the change-point schedule recorded since
    /// [`record_trace`](Self::record_trace), if any — the count-level trace
    /// replayed by a
    /// [`ReplayCountScheduler`](crate::ReplayCountScheduler) (null
    /// interactions are not recorded; see [`CountTrace`]).
    pub fn take_trace(&mut self) -> Option<CountTrace<P::State>> {
        self.trace
            .take()
            .map(|pairs| CountTrace::new(self.n, pairs))
    }

    /// The current anonymous configuration.
    pub fn config(&self) -> CountConfig<P::State> {
        let mut config = CountConfig::new();
        for (s, &c) in self.states.iter().zip(&self.counts) {
            if c > 0 {
                config.insert(s.clone(), c as usize);
            }
        }
        config
    }

    /// Whether the configuration is silent. Exact and `O(1)`: the engine
    /// maintains the total weight of state-changing pairs.
    pub fn is_silent(&self) -> bool {
        self.activity.mass() == 0
    }

    /// A [`RunReport`] snapshot of the execution so far.
    pub fn report(&self) -> RunReport<P::Output> {
        let consensus = if self.output_counts.len() == 1 {
            self.output_counts.keys().next().cloned()
        } else {
            None
        };
        RunReport {
            steps: self.stats.steps,
            steps_to_silence: self.stats.last_change_step,
            steps_to_consensus: self.last_disagreement.map_or(0, |t| t + 1),
            state_changes: self.stats.state_changes,
            consensus,
        }
    }

    /// Executes one scheduled interaction. Returns whether any state
    /// changed.
    ///
    /// This is the unbatched path — useful for scripted schedulers and
    /// lock-step comparisons; [`run_until_silent`](Self::run_until_silent)
    /// uses the batched path instead.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::PopulationTooSmall`] for populations with
    /// fewer than two agents.
    pub fn step(&mut self) -> Result<bool, FrameworkError> {
        if self.n < 2 {
            return Err(FrameworkError::PopulationTooSmall { n: self.n as usize });
        }
        let view = view!(self);
        let (i, j) = self.scheduler.next_slot_pair(&view, &mut self.rng);
        debug_assert!(
            self.counts[i] >= 1 && self.counts[j] > u64::from(i == j),
            "scheduler drew an unrealizable slot pair"
        );
        self.stats.steps += 1;
        let changed = self.activity.is_active(i, j);
        if changed {
            self.stats.state_changes += 1;
            self.stats.last_change_step = self.stats.steps;
            self.apply(i, j);
        }
        if self.output_counts.len() > 1 {
            self.last_disagreement = Some(self.stats.steps);
        }
        Ok(changed)
    }

    /// Runs until the configuration is silent, jumping between change-points
    /// in batched draws. Silence detection is exact (no check interval is
    /// needed): the run stops at the precise step after which no pair can
    /// change state.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::MaxStepsExceeded`] when the budget is
    /// exhausted before silence.
    pub fn run_until_silent(
        &mut self,
        max_steps: u64,
    ) -> Result<RunReport<P::Output>, FrameworkError> {
        loop {
            if self.is_silent() {
                return Ok(self.report());
            }
            let remaining = max_steps.saturating_sub(self.stats.steps);
            if remaining == 0 {
                return Err(FrameworkError::MaxStepsExceeded { max_steps });
            }
            self.advance_one_change(remaining);
        }
    }

    /// Runs exactly until `target_steps` total interactions have elapsed (or
    /// silence makes the remainder provably null, in which case the step
    /// counter jumps to `target_steps` directly). Useful for sampling
    /// trajectories on a parallel-time grid.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::PopulationTooSmall`] for populations with
    /// fewer than two agents (which cannot interact at all).
    pub fn advance_to(&mut self, target_steps: u64) -> Result<(), FrameworkError> {
        if self.n < 2 {
            if target_steps > self.stats.steps {
                return Err(FrameworkError::PopulationTooSmall { n: self.n as usize });
            }
            return Ok(());
        }
        while self.stats.steps < target_steps {
            if self.is_silent() {
                // Every remaining interaction is null.
                self.stats.steps = target_steps;
                return Ok(());
            }
            self.advance_one_change(target_steps - self.stats.steps);
        }
        Ok(())
    }

    /// [`run_until_silent`](Self::run_until_silent) with a periodic
    /// checkpoint hook: after every `every_changes` state changes the hook
    /// observes the engine at a change-point boundary — the natural place to
    /// call [`checkpoint`](Self::checkpoint) and persist it. A hook
    /// returning [`ControlFlow::Break`](std::ops::ControlFlow::Break) pauses
    /// the run (supervisors use this for deadlines and graceful shutdown);
    /// `every_changes == 0` disables the hook entirely.
    ///
    /// The hook runs strictly *between* change-points and never touches the
    /// engine's RNG, so a hooked run — paused or not — follows the exact
    /// trajectory of the unhooked run of the same seed.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::MaxStepsExceeded`] when the budget is
    /// exhausted before silence, and [`FrameworkError::Interrupted`] when
    /// the hook breaks — the engine then sits at a change-point, resumable
    /// from its latest checkpoint (or in place).
    pub fn run_until_silent_checkpointed<F>(
        &mut self,
        max_steps: u64,
        every_changes: u64,
        mut hook: F,
    ) -> Result<RunReport<P::Output>, FrameworkError>
    where
        F: FnMut(&Self) -> std::ops::ControlFlow<()>,
    {
        let mut last_hook_changes = self.stats.state_changes;
        loop {
            if self.is_silent() {
                return Ok(self.report());
            }
            let remaining = max_steps.saturating_sub(self.stats.steps);
            if remaining == 0 {
                return Err(FrameworkError::MaxStepsExceeded { max_steps });
            }
            self.advance_one_change(remaining);
            if every_changes > 0 && self.stats.state_changes - last_hook_changes >= every_changes {
                last_hook_changes = self.stats.state_changes;
                if hook(self).is_break() {
                    return Err(FrameworkError::Interrupted {
                        steps: self.stats.steps,
                    });
                }
            }
        }
    }

    /// [`advance_to`](Self::advance_to) with the periodic checkpoint hook of
    /// [`run_until_silent_checkpointed`](Self::run_until_silent_checkpointed)
    /// — same cadence, same trajectory-neutrality contract.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::PopulationTooSmall`] for populations with
    /// fewer than two agents, and [`FrameworkError::Interrupted`] when the
    /// hook breaks.
    pub fn advance_to_checkpointed<F>(
        &mut self,
        target_steps: u64,
        every_changes: u64,
        mut hook: F,
    ) -> Result<(), FrameworkError>
    where
        F: FnMut(&Self) -> std::ops::ControlFlow<()>,
    {
        if self.n < 2 {
            if target_steps > self.stats.steps {
                return Err(FrameworkError::PopulationTooSmall { n: self.n as usize });
            }
            return Ok(());
        }
        let mut last_hook_changes = self.stats.state_changes;
        while self.stats.steps < target_steps {
            if self.is_silent() {
                // Every remaining interaction is null.
                self.stats.steps = target_steps;
                return Ok(());
            }
            self.advance_one_change(target_steps - self.stats.steps);
            if every_changes > 0 && self.stats.state_changes - last_hook_changes >= every_changes {
                last_hook_changes = self.stats.state_changes;
                if hook(self).is_break() {
                    return Err(FrameworkError::Interrupted {
                        steps: self.stats.steps,
                    });
                }
            }
        }
        Ok(())
    }

    /// Consumes up to `budget` interactions: the skipped nulls plus (when the
    /// budget allows) the next state-changing one.
    pub(crate) fn advance_one_change(&mut self, budget: u64) {
        let view = view!(self);
        let draw = self.scheduler.next_change(&view, budget, &mut self.rng);
        let disagreeing = self.output_counts.len() > 1;
        self.stats.steps += draw.skipped;
        if disagreeing && draw.skipped > 0 {
            // Outputs cannot change during null interactions, so the
            // disagreement persisted through every skipped step.
            self.last_disagreement = Some(self.stats.steps);
        }
        if let Some((i, j)) = draw.pair {
            self.stats.steps += 1;
            self.stats.state_changes += 1;
            self.stats.last_change_step = self.stats.steps;
            self.apply(i, j);
            if self.output_counts.len() > 1 {
                self.last_disagreement = Some(self.stats.steps);
            }
        }
    }

    /// Applies the transition of active pair `(i, j)` to the counts, output
    /// histogram and activity index. First applications resolve the
    /// transition through the warm snapshot's outcome memo when both states
    /// are table-known, else through the protocol (discovering target slots
    /// as needed), and memoize the slot-level outcome; repeats replay the
    /// memo. All three sources agree state-for-state, so which one answers
    /// never affects the trajectory. The memo is bounded by
    /// [`OUTCOME_MEMO_CAP`]: past that, misses simply recompute
    /// (correctness never depends on a hit).
    fn apply(&mut self, i: usize, j: usize) {
        let key = (i as u32, j as u32);
        let (ai, bi) = if let Some(&(a, b)) = self.outcomes.get(&key) {
            (a as usize, b as usize)
        } else if let Some((a, b)) = self.warm_outcome(i, j) {
            let ai = self.ensure_slot(a);
            let bi = self.ensure_slot(b);
            if self.outcomes.len() < OUTCOME_MEMO_CAP {
                // Not pushed to `new_outcomes`: the snapshot's source
                // segments already publish this entry, so exporting it
                // again would only be deduplicated away.
                self.outcomes.insert(key, (ai as u32, bi as u32));
            }
            (ai, bi)
        } else {
            // Quotient-resolved outcomes are recorded exactly like direct
            // protocol discoveries (memo + `new_outcomes`), so exported
            // tables are bit-identical to memo-only discovery.
            let protocol = self.protocol;
            let (a, b) = match &mut self.quotient {
                Some(q) => q.resolve(
                    |x, y| protocol.transition(x, y),
                    &self.states[i],
                    &self.states[j],
                ),
                None => protocol.transition(&self.states[i], &self.states[j]),
            };
            debug_assert!(
                a != self.states[i] || b != self.states[j],
                "apply called on a null pair"
            );
            let ai = self.ensure_slot(a);
            let bi = self.ensure_slot(b);
            if self.outcomes.len() < OUTCOME_MEMO_CAP {
                self.outcomes.insert(key, (ai as u32, bi as u32));
                self.new_outcomes.push((key, (ai as u32, bi as u32)));
            }
            (ai, bi)
        };
        if let Some(trace) = &mut self.trace {
            trace.push((self.states[i].clone(), self.states[j].clone()));
        }
        // Output histogram: the two participating agents leave their old
        // output classes and join the new ones.
        self.shift_output(i, ai);
        self.shift_output(j, bi);
        // Coalesced count deltas (slots may repeat, e.g. a diagonal pair).
        let mut deltas: [(usize, i64); 4] = [(i, -1), (j, -1), (ai, 1), (bi, 1)];
        for idx in 0..4 {
            for prev in 0..idx {
                if deltas[prev].0 == deltas[idx].0 {
                    deltas[prev].1 += deltas[idx].1;
                    deltas[idx].1 = 0;
                    break;
                }
            }
        }
        for &(t, d) in &deltas {
            if d == 0 {
                continue;
            }
            self.counts[t] = self.counts[t]
                .checked_add_signed(d)
                .expect("state count underflow");
            self.activity.count_changed(t, d);
        }
        self.activity.settle(&self.counts);
    }

    /// Resolves the transition of engine-slot pair `(i, j)` from the warm
    /// snapshot's outcome memo, returning the target *states* (so the caller
    /// materializes their slots in canonical order). `None` when the engine
    /// is cold, either state is not table-known, or the table never applied
    /// this pair.
    fn warm_outcome(&self, i: usize, j: usize) -> Option<(P::State, P::State)> {
        let warm = self.warm.as_ref()?;
        let (ti, tj) = (warm.tids[i], warm.tids[j]);
        if ti == NO_ID || tj == NO_ID {
            return None;
        }
        let (ta, tb) = warm.snap.outcome((ti, tj))?;
        Some((warm.snap.state(ta).clone(), warm.snap.state(tb).clone()))
    }

    /// Moves one agent from output class `outs[from]` to `outs[to]`.
    fn shift_output(&mut self, from: usize, to: usize) {
        self.shift_output_mass(from, to, 1);
    }

    /// Returns the slot of `state`, creating it when unseen — in exactly the
    /// order a cold run would, which is what makes slot numbering canonical.
    /// Warm engines ingest the activity of table-known states from the
    /// snapshot in `O(deg)` (zero protocol calls); unknown states — and all
    /// states on cold engines — discover against every existing slot through
    /// the protocol, where symmetric protocols pay one transition call per
    /// unordered pair instead of two.
    fn ensure_slot(&mut self, state: P::State) -> usize {
        if let Some(&idx) = self.index.get(&state) {
            return idx;
        }
        let idx = self.states.len();
        self.index.insert(state.clone(), idx);
        self.outs.push(self.protocol.output(&state));
        self.states.push(state);
        self.counts.push(0);
        if let Some(warm) = &mut self.warm {
            let tid = warm.snap.id_of(&self.states[idx]);
            if let Some(tid) = tid {
                warm.tids.push(tid);
                warm.slot_of_tid[tid as usize] = idx as u32;
                // Candidate responders/initiators: materialized table
                // states from the snapshot rows, plus novel slots
                // classified through the protocol. Sorted ascending so the
                // activity index receives them in canonical slot order.
                let protocol = self.protocol;
                let states = &self.states;
                let quotient = &mut self.quotient;
                let mut is_null = |x: &P::State, y: &P::State| match quotient.as_mut() {
                    Some(q) => q.is_null(|a, b| protocol.transition(a, b), x, y),
                    None => protocol.is_null_interaction(x, y),
                };
                let slot_of_tid = &warm.slot_of_tid;
                warm.out_buf.clear();
                warm.in_buf.clear();
                {
                    let out_buf = &mut warm.out_buf;
                    warm.snap.walk_out(tid, |jt| {
                        let e = slot_of_tid[jt];
                        if e != NO_ID && e != idx as u32 {
                            out_buf.push(e);
                        }
                        true
                    });
                }
                if self.symmetric {
                    warm.in_buf.extend_from_slice(&warm.out_buf);
                } else {
                    let in_buf = &mut warm.in_buf;
                    warm.snap.walk_in(tid, |it| {
                        let e = slot_of_tid[it];
                        if e != NO_ID && e != idx as u32 {
                            in_buf.push(e);
                        }
                        true
                    });
                }
                for &e in &warm.novel {
                    let (s_new, s_old) = (&states[idx], &states[e as usize]);
                    if !is_null(s_new, s_old) {
                        warm.out_buf.push(e);
                    }
                    let mirrored = if self.symmetric {
                        warm.out_buf.last() == Some(&e)
                    } else {
                        !is_null(s_old, s_new)
                    };
                    if mirrored {
                        warm.in_buf.push(e);
                    }
                }
                let diag = warm.snap.contains(tid, tid);
                warm.out_buf.sort_unstable();
                warm.in_buf.sort_unstable();
                self.activity
                    .add_slot_from_lists(&self.counts, &warm.out_buf, &warm.in_buf, diag);
                return idx;
            }
            warm.tids.push(NO_ID);
            warm.novel.push(idx as u32);
        }
        let protocol = self.protocol;
        let states = &self.states;
        let quotient = &mut self.quotient;
        // With a quotient, each query resolves through the canonical-pair
        // memo: the protocol's transition runs once per orbit instead of
        // once per (unordered) pair. The classification — and therefore
        // the activity index and every downstream trajectory — is
        // unchanged.
        let active = |r: usize, c: usize| match quotient.as_mut() {
            Some(q) => !q.is_null(|x, y| protocol.transition(x, y), &states[r], &states[c]),
            None => !protocol.is_null_interaction(&states[r], &states[c]),
        };
        if self.symmetric {
            self.activity.add_slot_symmetric(&self.counts, active);
        } else {
            self.activity.add_slot(&self.counts, active);
        }
        idx
    }

    /// Per-slot agent counts, aligned with [`known_states`](Self::known_states)
    /// — `counts()[s]` agents currently hold `known_states()[s]`. Slots whose
    /// count returned to zero stay listed (slot ids are append-only).
    ///
    /// Hazard layers use this to sample a *victim slot* weighted by count,
    /// which is exactly a uniformly random agent under anonymity.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Moves `amount` agents' worth of mass from state `from` to state `to`,
    /// outside the protocol's transition relation — the count-level analogue
    /// of overwriting `amount` agents' memory (crash-and-restart, transient
    /// corruption). Counts, the output histogram and the activity index are
    /// updated exactly as a transition would update them, so pair masses are
    /// re-derived for every touched slot and silence re-arms: a silent engine
    /// perturbed into an active configuration resumes running.
    ///
    /// Out-of-model by design: `steps`/`state_changes` are **not** advanced
    /// (a hazard is not an interaction) and the change-point trace does not
    /// record it, so a recorded trace of a hazardous run is not replayable.
    /// `to` may be a state the engine has never seen; its slot is discovered
    /// in the ordinary canonical order.
    ///
    /// # Panics
    ///
    /// Panics when `from` is unknown to the engine or holds fewer than
    /// `amount` agents.
    pub fn perturb_transfer(&mut self, from: &P::State, to: P::State, amount: u64) {
        if amount == 0 {
            return;
        }
        let from_slot = *self
            .index
            .get(from)
            .expect("perturb_transfer from a state the engine has never seen");
        assert!(
            self.counts[from_slot] >= amount,
            "perturb_transfer: state holds {} agents, asked to move {amount}",
            self.counts[from_slot]
        );
        let to_slot = self.ensure_slot(to);
        if to_slot == from_slot {
            return;
        }
        self.shift_output_mass(from_slot, to_slot, amount as usize);
        self.counts[from_slot] -= amount;
        self.activity.count_changed(from_slot, -(amount as i64));
        self.counts[to_slot] += amount;
        self.activity.count_changed(to_slot, amount as i64);
        self.activity.settle(&self.counts);
        self.note_disagreement();
    }

    /// Adds `amount` fresh agents in `state` — the arrival half of churn.
    /// `n` grows; the activity index and output histogram follow. See
    /// [`perturb_transfer`](Self::perturb_transfer) for the out-of-model
    /// bookkeeping contract.
    ///
    /// # Panics
    ///
    /// Panics when the grown population would exceed `2^63 − 1` agents.
    pub fn perturb_add(&mut self, state: P::State, amount: u64) {
        if amount == 0 {
            return;
        }
        let n = self
            .n
            .checked_add(amount)
            .filter(|&n| n < 1 << 63)
            .expect("perturb_add would exceed the 2^63 - 1 agent cap");
        self.n = n;
        let slot = self.ensure_slot(state);
        *self
            .output_counts
            .entry(self.outs[slot].clone())
            .or_insert(0) += amount as usize;
        self.counts[slot] += amount;
        self.activity.count_changed(slot, amount as i64);
        self.activity.settle(&self.counts);
        self.note_disagreement();
    }

    /// Removes `amount` agents holding `state` from the population — the
    /// departure half of churn, and the quarantine primitive for stuck
    /// agents (the caller keeps the removed mass in its own ledger). `n`
    /// shrinks. See [`perturb_transfer`](Self::perturb_transfer) for the
    /// out-of-model bookkeeping contract.
    ///
    /// # Panics
    ///
    /// Panics when `state` is unknown or holds fewer than `amount` agents.
    pub fn perturb_remove(&mut self, state: &P::State, amount: u64) {
        if amount == 0 {
            return;
        }
        let slot = *self
            .index
            .get(state)
            .expect("perturb_remove of a state the engine has never seen");
        assert!(
            self.counts[slot] >= amount,
            "perturb_remove: state holds {} agents, asked to remove {amount}",
            self.counts[slot]
        );
        self.n -= amount;
        let out = self
            .output_counts
            .get_mut(&self.outs[slot])
            .expect("output histogram out of sync");
        *out -= amount as usize;
        if *out == 0 {
            let key = self.outs[slot].clone();
            self.output_counts.remove(&key);
        }
        self.counts[slot] -= amount;
        self.activity.count_changed(slot, -(amount as i64));
        self.activity.settle(&self.counts);
        self.note_disagreement();
    }

    /// Moves `amount` agents from output class `outs[from]` to `outs[to]`.
    fn shift_output_mass(&mut self, from: usize, to: usize, amount: usize) {
        let old = &self.outs[from];
        let new = &self.outs[to];
        if old == new {
            return;
        }
        let slot = self
            .output_counts
            .get_mut(old)
            .expect("output histogram out of sync");
        *slot -= amount;
        if *slot == 0 {
            let key = old.clone();
            self.output_counts.remove(&key);
        }
        *self.output_counts.entry(new.clone()).or_insert(0) += amount;
    }

    /// Records an output disagreement at the current step, keeping
    /// `steps_to_consensus` honest after a perturbation re-splits outputs.
    fn note_disagreement(&mut self) {
        if self.output_counts.len() > 1 {
            self.last_disagreement = Some(self.stats.steps);
        }
    }

    /// Number of states the warm-start snapshot can materialize without
    /// protocol calls — the table's size at construction; `0` for cold
    /// engines. (Slots themselves are created lazily, in canonical
    /// trajectory order; see [`slots`](Self::slots) for how many actually
    /// materialized.)
    pub fn warm_slots(&self) -> usize {
        self.warm.as_ref().map_or(0, |w| w.snap.len())
    }

    /// Active ordered slot pairs currently indexed.
    pub fn active_pairs(&self) -> usize {
        self.activity.active_pairs()
    }

    /// Heap bytes the activity index devotes to pair adjacency — the
    /// footprint the compact index minimizes (see
    /// [`CompactActivity`]).
    pub fn adjacency_bytes(&self) -> usize {
        self.activity.adjacency_bytes()
    }

    /// Builds a fresh [`TransitionTable`] holding everything this engine has
    /// discovered — states (in slot order), pair activity and applied
    /// transition outcomes. Equivalent to exporting into an empty table.
    pub fn warm_table(&self) -> TransitionTable<P> {
        let table = TransitionTable::new();
        self.export_to(&table);
        table
    }

    /// Publishes this engine's discovered structure — novel states, pair
    /// activity, applied transition outcomes — into `table`, so later
    /// engines can [warm-start](Self::with_table_parts) from it.
    ///
    /// Publication is lock-free: the engine captures the table's current
    /// tip, builds one immutable segment extending it (novel states in
    /// canonical slot order; states the table holds that this engine never
    /// materialized are classified against the novel ones with direct
    /// protocol calls, keeping the table complete over all its states), and
    /// appends it with a compare-and-swap-style install. Losing a race to
    /// another publisher costs a rebuild against the new tip — typically
    /// cheaper, because the winner's segment resolves most states by hash
    /// lookup. A fully-known engine with no new outcomes publishes nothing.
    /// Exports never affect any engine's trajectory — tables are lookup
    /// oracles, not slot orderings — so racing exports from a
    /// multi-threaded sweep stay safe.
    pub fn export_to(&self, table: &TransitionTable<P>) {
        loop {
            let tip = table.capture();
            let Some(seg) = self.build_segment(&tip) else {
                return;
            };
            if table.try_install(tip.segment_count(), seg) {
                return;
            }
        }
    }

    /// Builds the segment extending `tip` with everything this engine knows
    /// that `tip` does not; `None` when there is nothing to publish.
    fn build_segment(&self, tip: &TableSnapshot<P::State>) -> Option<Segment<P::State>> {
        let slots = self.slots();
        let base = tip.len() as u32;
        // `engine_of[gid]` is the engine slot of table state `gid`, if the
        // engine knows it; `tid_of[slot]` maps every engine slot to its
        // global id (existing, or freshly assigned past `base`).
        let mut engine_of: Vec<u32> = vec![NO_ID; base as usize];
        let mut tid_of: Vec<u32> = vec![NO_ID; slots];
        tip.for_each_state(|gid, s| {
            if let Some(&slot) = self.index.get(s) {
                engine_of[gid as usize] = slot as u32;
                tid_of[slot] = gid;
            }
        });
        let novel: Vec<u32> = (0..slots as u32)
            .filter(|&s| tid_of[s as usize] == NO_ID)
            .collect();
        for (r, &s) in novel.iter().enumerate() {
            tid_of[s as usize] = base + r as u32;
        }
        // Protocol-discovered outcomes the tip does not already publish.
        let mut outcomes = HashMap::with_hasher(FxBuildHasher::default());
        for &((i, j), (a, b)) in &self.new_outcomes {
            let key = (tid_of[i as usize], tid_of[j as usize]);
            if tip.outcome(key).is_none() {
                outcomes
                    .entry(key)
                    .or_insert((tid_of[a as usize], tid_of[b as usize]));
            }
        }
        if novel.is_empty() && outcomes.is_empty() {
            return None;
        }
        let mut rows = AdjRows::new();
        for _ in 0..novel.len() {
            rows.push_slot();
        }
        let mut ext = AdjRows::new();
        if !novel.is_empty() {
            for _ in 0..base {
                ext.push_slot();
            }
        }
        // Tip states this engine never materialized (raced in by other
        // publishers): their pairs against the novel states are classified
        // through the protocol directly, keeping the table complete.
        let unknown: Vec<u32> = (0..base)
            .filter(|&g| engine_of[g as usize] == NO_ID)
            .collect();
        let mut out_buf: Vec<u32> = Vec::new();
        let mut in_buf: Vec<u32> = Vec::new();
        // Publication runs with `&self`, so quotient resolution here reads
        // the memo without recording; misses classify the canonical
        // representative through the protocol directly.
        let protocol = self.protocol;
        let is_null = |x: &P::State, y: &P::State| match &self.quotient {
            Some(q) => q.is_null_readonly(|a, b| protocol.transition(a, b), x, y),
            None => protocol.is_null_interaction(x, y),
        };
        for (r, &slot) in novel.iter().enumerate() {
            let u = slot as usize;
            out_buf.clear();
            in_buf.clear();
            self.activity.walk_out(u, &mut |e| out_buf.push(tid_of[e]));
            self.activity.walk_in(u, &mut |e| in_buf.push(tid_of[e]));
            let su = &self.states[u];
            for &g in &unknown {
                let sv = tip.state(g);
                if !is_null(su, sv) {
                    out_buf.push(g);
                }
                let mirrored = if self.symmetric {
                    out_buf.last() == Some(&g)
                } else {
                    !is_null(sv, su)
                };
                if mirrored {
                    in_buf.push(g);
                }
            }
            // Engine-slot order is not global-id order, so the mapped ids
            // need one sort before the ascending row appends.
            out_buf.sort_unstable();
            in_buf.sort_unstable();
            for &j in &out_buf {
                rows.push(r, j as usize);
            }
            for &i in &in_buf {
                // In-edges from novel initiators live in those initiators'
                // own out-rows; only earlier ids extend `ext`.
                if i < base {
                    ext.push(i as usize, base as usize + r);
                }
            }
        }
        let states = novel
            .iter()
            .map(|&s| self.states[s as usize].clone())
            .collect();
        Some(Segment::new(
            base,
            states,
            rows,
            ext,
            outcomes,
            self.symmetric,
        ))
    }
}

impl<'p, P, CS, A, R> CountEngine<'p, P, CS, A, R>
where
    P: Protocol,
    CS: CountScheduler<P::State>,
    A: Activity,
    R: ResumableRng,
{
    /// Captures this engine's resumable state as a [`RunCheckpoint`] —
    /// `O(slots)` of data: the canonical slot→state list, per-slot counts,
    /// the step/stats counters, the RNG stream position and the recorded
    /// change-point trace (when recording). Everything else — the activity
    /// index, the output histogram, the transition memo — is derivable and
    /// deliberately not captured; [`resume`](Self::resume) rebuilds it.
    ///
    /// The capture happens at whatever point the engine currently sits;
    /// call it from a
    /// [`run_until_silent_checkpointed`](Self::run_until_silent_checkpointed)
    /// hook to guarantee a change-point boundary. Layers above the engine
    /// (hazard drivers, supervisors) attach their own state through
    /// [`RunCheckpoint::set_aux`].
    pub fn checkpoint(&self) -> RunCheckpoint<P::State> {
        let trace = self.trace.as_ref().map(|pairs| {
            pairs
                .iter()
                .map(|(a, b)| (self.index[a] as u32, self.index[b] as u32))
                .collect()
        });
        RunCheckpoint {
            protocol: self.protocol.name().to_string(),
            fingerprint: crate::transition_store::fingerprint(self.protocol),
            param: self.protocol.fingerprint_param(),
            symmetric: self.symmetric,
            n: self.n,
            stats: self.stats,
            last_disagreement: self.last_disagreement,
            states: self.states.clone(),
            counts: self.counts.clone(),
            rng_kind: R::RNG_KIND,
            rng_words: self.rng.save_words(),
            trace,
            aux: Vec::new(),
        }
    }

    /// Reconstructs an engine from `checkpoint`, cold (no warm snapshot).
    /// See [`resume_with_snapshot`](Self::resume_with_snapshot) for the
    /// resume contract.
    ///
    /// # Errors
    ///
    /// See [`resume_with_snapshot`](Self::resume_with_snapshot).
    pub fn resume(
        protocol: &'p P,
        scheduler: CS,
        checkpoint: &RunCheckpoint<P::State>,
    ) -> Result<Self, CheckpointError> {
        Self::resume_inner(protocol, scheduler, checkpoint, None)
    }

    /// Reconstructs an engine from `checkpoint`, warm-started from
    /// `snapshot` (used as a lookup oracle, exactly as in
    /// [`with_snapshot_rng`](Self::with_snapshot_rng)).
    ///
    /// **Resume contract.** The resumed engine continues the checkpointed
    /// run bit-identically: slots are re-registered in their canonical
    /// (checkpointed) order, the activity index and output histogram are
    /// rebuilt deterministically from the counts, and the RNG resumes at
    /// its exact saved stream position — so the remainder of the run
    /// (trajectory, `RunReport`, recorded trace, RNG draws) matches the
    /// uninterrupted run regardless of which snapshot (or none) the resumed
    /// engine is warmed from. The transition memo restarts empty; misses
    /// recompute through the snapshot or the protocol, which never affects
    /// the trajectory. The scheduler must be stateless (as
    /// [`UniformCountScheduler`] is) — a scheduler with history of its own
    /// is not captured by checkpoints.
    ///
    /// # Errors
    ///
    /// - [`CheckpointError::IdentityMismatch`] when the checkpoint was taken
    ///   for a different protocol parameterization.
    /// - [`CheckpointError::RngMismatch`] when it was taken under a
    ///   different generator family than `R`.
    /// - [`CheckpointError::Corrupt`] when the checkpoint is internally
    ///   inconsistent (name/symmetry disagreement, duplicate states,
    ///   undecodable RNG words, counts not summing to `n`).
    pub fn resume_with_snapshot(
        protocol: &'p P,
        scheduler: CS,
        checkpoint: &RunCheckpoint<P::State>,
        snapshot: Arc<TableSnapshot<P::State>>,
    ) -> Result<Self, CheckpointError> {
        Self::resume_inner(protocol, scheduler, checkpoint, Some(snapshot))
    }

    fn resume_inner(
        protocol: &'p P,
        scheduler: CS,
        checkpoint: &RunCheckpoint<P::State>,
        snapshot: Option<Arc<TableSnapshot<P::State>>>,
    ) -> Result<Self, CheckpointError> {
        checkpoint.validate()?;
        let expected = crate::transition_store::fingerprint(protocol);
        if checkpoint.fingerprint != expected {
            return Err(CheckpointError::IdentityMismatch {
                stored: checkpoint.fingerprint,
                expected,
            });
        }
        if checkpoint.protocol != protocol.name() {
            return Err(CheckpointError::Corrupt(format!(
                "checkpoint names protocol {:?}, expected {:?}",
                checkpoint.protocol,
                protocol.name()
            )));
        }
        if checkpoint.symmetric != protocol.is_symmetric() {
            return Err(CheckpointError::Corrupt(format!(
                "checkpoint symmetry flag {} disagrees with the protocol",
                checkpoint.symmetric
            )));
        }
        if checkpoint.rng_kind != R::RNG_KIND {
            return Err(CheckpointError::RngMismatch {
                stored: checkpoint.rng_kind,
                expected: R::RNG_KIND,
            });
        }
        let rng = R::load_words(&checkpoint.rng_words).ok_or_else(|| {
            CheckpointError::Corrupt("rng state words do not decode to a generator state".into())
        })?;

        let mut engine = Self::empty(protocol, scheduler, rng, checkpoint.states.len());
        if let Some(snap) = snapshot {
            if !snap.is_empty() {
                debug_assert_eq!(
                    snap.symmetric(),
                    engine.symmetric,
                    "snapshot and engine disagree on adjacency symmetry"
                );
                engine.warm = Some(WarmState::new(snap));
            }
        }
        // Re-register every slot in checkpointed (canonical) order —
        // discovery, warm-ingestion and activity rows all rebuild here.
        for (i, s) in checkpoint.states.iter().enumerate() {
            let slot = engine.ensure_slot(s.clone());
            if slot != i {
                return Err(CheckpointError::Corrupt(format!(
                    "state {i} duplicates slot {slot}"
                )));
            }
        }
        engine.n = checkpoint.n;
        for (slot, &c) in checkpoint.counts.iter().enumerate() {
            if c == 0 {
                // Zero-count slots stay registered but must not enter the
                // output histogram — a spurious entry would mask consensus.
                continue;
            }
            engine.counts[slot] = c;
            engine.activity.count_changed(slot, c as i64);
            *engine
                .output_counts
                .entry(engine.outs[slot].clone())
                .or_insert(0) += c as usize;
        }
        engine.activity.settle(&engine.counts);
        engine.stats = checkpoint.stats;
        engine.last_disagreement = checkpoint.last_disagreement;
        if let Some(pairs) = &checkpoint.trace {
            // Slot ids were validated `< slots` by `validate()`.
            engine.trace = Some(
                pairs
                    .iter()
                    .map(|&(a, b)| {
                        (
                            engine.states[a as usize].clone(),
                            engine.states[b as usize].clone(),
                        )
                    })
                    .collect(),
            );
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Max;

    impl Protocol for Max {
        type State = u8;
        type Input = u8;
        type Output = u8;

        fn name(&self) -> &str {
            "max"
        }

        fn input(&self, i: &u8) -> u8 {
            *i
        }

        fn output(&self, s: &u8) -> u8 {
            *s
        }

        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            let m = *a.max(b);
            (m, m)
        }
    }

    fn mass_by_bruteforce<A: Activity>(
        engine: &CountEngine<'_, Max, UniformCountScheduler, A>,
    ) -> u128 {
        let config = engine.config();
        let mut mass = 0u128;
        for (a, ca) in config.iter() {
            for (b, cb) in config.iter() {
                if Max.is_null_interaction(a, b) {
                    continue;
                }
                let exclude = usize::from(a == b);
                mass += (ca as u128) * (cb.saturating_sub(exclude) as u128);
            }
        }
        mass
    }

    #[test]
    fn converges_to_max_on_large_population() {
        let inputs: Vec<u8> = (0..1_000_000).map(|i| (i % 11) as u8).collect();
        let mut engine = CountEngine::from_inputs(&Max, &inputs, 9);
        let report = engine.run_until_silent(u64::MAX).unwrap();
        assert_eq!(report.consensus, Some(10));
        assert!(engine.is_silent());
        assert_eq!(report.steps, report.steps_to_silence);
    }

    #[test]
    fn batched_and_stepped_bookkeeping_agree() {
        let inputs: Vec<u8> = (0..60).map(|i| (i % 6) as u8).collect();
        let mut engine = CountEngine::from_inputs(&Max, &inputs, 3);
        for _ in 0..2_000 {
            let _ = engine.step().unwrap();
            assert_eq!(engine.mass(), mass_by_bruteforce(&engine));
            let total: u64 = engine.counts.iter().sum();
            assert_eq!(total, 60);
            let out_total: usize = engine.output_counts.values().sum();
            assert_eq!(out_total, 60);
            if engine.is_silent() {
                break;
            }
        }
        assert!(engine.is_silent(), "max protocol silences 60 agents fast");
    }

    #[test]
    fn mass_invariant_holds_across_batched_run() {
        let inputs: Vec<u8> = (0..5_000).map(|i| (i % 13) as u8).collect();
        let mut engine = CountEngine::from_inputs(&Max, &inputs, 5);
        while !engine.is_silent() {
            engine.advance_one_change(u64::MAX);
            assert_eq!(engine.mass(), mass_by_bruteforce(&engine));
        }
        assert_eq!(engine.config().n(), 5_000);
        assert_eq!(engine.report().consensus, Some(12));
    }

    #[test]
    fn dense_engine_mass_invariant_holds_too() {
        let inputs: Vec<u8> = (0..1_000).map(|i| (i % 9) as u8).collect();
        let config: CountConfig<u8> = inputs.iter().copied().collect();
        let mut engine =
            DenseCountEngine::with_parts(&Max, config, UniformCountScheduler::new(), 5);
        while !engine.is_silent() {
            engine.advance_one_change(u64::MAX);
            assert_eq!(engine.mass(), mass_by_bruteforce(&engine));
        }
        assert_eq!(engine.report().consensus, Some(8));
    }

    #[test]
    fn silent_configuration_detected_immediately() {
        let mut engine = CountEngine::from_inputs(&Max, &[4, 4, 4], 1);
        let report = engine.run_until_silent(100).unwrap();
        assert_eq!(report.steps, 0);
        assert_eq!(report.consensus, Some(4));
    }

    #[test]
    fn tiny_population_errors_on_step() {
        let mut engine = CountEngine::from_inputs(&Max, &[4], 1);
        assert!(matches!(
            engine.step(),
            Err(FrameworkError::PopulationTooSmall { n: 1 })
        ));
        // ... but is vacuously silent for the batched runner.
        assert!(engine.run_until_silent(10).is_ok());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let inputs: Vec<u8> = (0..64).map(|i| (i % 8) as u8).collect();
        let mut engine = CountEngine::from_inputs(&Max, &inputs, 2);
        let err = engine.run_until_silent(1).unwrap_err();
        assert_eq!(err, FrameworkError::MaxStepsExceeded { max_steps: 1 });
        assert_eq!(engine.steps(), 1);
    }

    #[test]
    fn advance_to_runs_exactly_that_many_interactions() {
        let inputs: Vec<u8> = (0..40).map(|i| (i % 5) as u8).collect();
        let mut engine = CountEngine::from_inputs(&Max, &inputs, 7);
        engine.advance_to(123).unwrap();
        assert_eq!(engine.steps(), 123);
        // Past silence the counter still advances (all-null tail).
        engine.advance_to(1_000_000_000).unwrap();
        assert_eq!(engine.steps(), 1_000_000_000);
        assert!(engine.is_silent());
    }

    #[test]
    fn config_round_trips() {
        let inputs = [1u8, 1, 2, 3];
        let engine = CountEngine::from_inputs(&Max, &inputs, 1);
        let config = engine.config();
        assert_eq!(config.n(), 4);
        assert_eq!(config.count(&1), 2);
    }

    #[test]
    fn slot_growth_preserves_activity() {
        // Start with many distinct states so growth paths are exercised.
        let inputs: Vec<u8> = (0..200).map(|i| (i % 97) as u8).collect();
        let mut engine = CountEngine::from_inputs(&Max, &inputs, 5);
        let report = engine.run_until_silent(u64::MAX).unwrap();
        assert_eq!(report.consensus, Some(96));
        assert_eq!(engine.config().n(), 200);
    }

    #[test]
    fn report_before_running_reflects_initial_configuration() {
        let engine = CountEngine::from_inputs(&Max, &[1, 2], 1);
        let report = engine.report();
        assert_eq!(report.steps, 0);
        assert_eq!(report.consensus, None);
        assert_eq!(report.steps_to_consensus, 1);
    }

    #[test]
    fn priming_registers_zero_count_slots() {
        let mut engine = CountEngine::from_inputs(&Max, &[1, 2], 1);
        assert_eq!(engine.slots(), 2);
        engine.prime_states([9u8, 7, 1]);
        assert_eq!(engine.slots(), 4, "known states are not re-registered");
        assert_eq!(engine.config().n(), 2, "priming adds no agents");
        let report = engine.run_until_silent(u64::MAX).unwrap();
        assert_eq!(report.consensus, Some(2), "primed states stay inert");
    }

    /// Symmetric toy: both agents adopt the maximum (same rule as [`Max`]
    /// but declared symmetric, exercising the halved discovery path).
    struct SymMax;

    impl Protocol for SymMax {
        type State = u8;
        type Input = u8;
        type Output = u8;

        fn name(&self) -> &str {
            "sym-max"
        }

        fn input(&self, i: &u8) -> u8 {
            *i
        }

        fn output(&self, s: &u8) -> u8 {
            *s
        }

        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            let m = *a.max(b);
            (m, m)
        }

        fn is_symmetric(&self) -> bool {
            true
        }
    }

    #[test]
    fn warm_restart_replays_cold_run_bit_identically_under_uniform() {
        // Slot numbering is canonical (trajectory order), so a warm restart
        // consumes the identical RNG stream whatever the table's id order:
        // reports must be bit-equal, not just statistically equal.
        let inputs: Vec<u8> = (0..500).map(|i| (i % 23) as u8).collect();
        let mut cold = CountEngine::from_inputs(&SymMax, &inputs, 77);
        let cold_report = cold.run_until_silent(u64::MAX).unwrap();
        let table = cold.warm_table();
        assert_eq!(table.len(), cold.slots());
        assert_eq!(table.active_pairs(), cold.active_pairs());

        let config: CountConfig<u8> = inputs.iter().copied().collect();
        let mut warm =
            CountEngine::with_table(&SymMax, config, UniformCountScheduler::new(), 77, &table);
        assert_eq!(warm.warm_slots(), table.len());
        let warm_report = warm.run_until_silent(u64::MAX).unwrap();
        assert_eq!(warm_report, cold_report);
        assert_eq!(warm.config(), cold.config());
    }

    #[test]
    fn warm_start_from_empty_table_equals_cold_start() {
        let inputs: Vec<u8> = (0..200).map(|i| (i % 9) as u8).collect();
        let table = TransitionTable::new();
        let config: CountConfig<u8> = inputs.iter().copied().collect();
        let mut warm =
            CountEngine::with_table(&Max, config, UniformCountScheduler::new(), 5, &table);
        assert_eq!(warm.warm_slots(), 0);
        let warm_report = warm.run_until_silent(u64::MAX).unwrap();
        let mut cold = CountEngine::from_inputs(&Max, &inputs, 5);
        assert_eq!(cold.run_until_silent(u64::MAX).unwrap(), warm_report);
    }

    #[test]
    fn export_merges_racing_engines_into_a_complete_table() {
        // Engines over disjoint-ish state sets export into one table; the
        // slow merge path must classify every cross pair via the protocol.
        let table = TransitionTable::new();
        let mut a = CountEngine::from_inputs(&Max, &[1, 2, 3], 1);
        a.run_until_silent(u64::MAX).unwrap();
        a.export_to(&table);
        // Engine `b` never saw the table: its export takes the slow path.
        let mut b = CountEngine::from_inputs(&Max, &[5, 6, 2], 2);
        b.run_until_silent(u64::MAX).unwrap();
        b.export_to(&table);

        let dump = table.dump();
        assert_eq!(dump.states.len(), 5, "1,2,3 from a; 5,6 from b");
        // Every ordered pair over the merged states must match brute force.
        for (i, si) in dump.states.iter().enumerate() {
            for (j, sj) in dump.states.iter().enumerate() {
                let expected = !Max.is_null_interaction(si, sj);
                assert_eq!(
                    dump.rows[i].binary_search(&(j as u32)).is_ok(),
                    expected,
                    "pair ({si}, {sj})"
                );
            }
        }
        // A warm engine over the union of states makes no protocol calls for
        // table-known pairs; slots materialize lazily, so only the states
        // the trajectory actually visits get one (state 3 stays virtual).
        let config: CountConfig<u8> = [1u8, 2, 5, 6].iter().copied().collect();
        let mut warm =
            CountEngine::with_table(&Max, config, UniformCountScheduler::new(), 3, &table);
        assert_eq!(warm.warm_slots(), 5);
        assert_eq!(warm.slots(), 4, "only the config states materialized");
        let report = warm.run_until_silent(u64::MAX).unwrap();
        assert_eq!(report.consensus, Some(6));
        assert_eq!(warm.slots(), 4, "max targets are existing states");
        // Re-exporting adds nothing.
        let before = table.dump();
        warm.export_to(&table);
        assert_eq!(table.dump().states, before.states);
        assert_eq!(table.dump().rows, before.rows);
    }

    #[test]
    fn export_into_an_unrelated_same_size_table_takes_the_merge_path() {
        // A warm engine exporting into a table unrelated to its snapshot
        // must never take the append fast path (it would write rows under
        // mismatched ids) — the general merge keeps B complete.
        let mut a = CountEngine::from_inputs(&Max, &[1, 2], 1);
        a.run_until_silent(u64::MAX).unwrap();
        let table_a = a.warm_table();
        let mut b = CountEngine::from_inputs(&Max, &[5, 6], 1);
        b.run_until_silent(u64::MAX).unwrap();
        let table_b = b.warm_table();
        assert_eq!(table_a.len(), table_b.len(), "lengths must coincide");

        let config: CountConfig<u8> = [1u8, 2].iter().copied().collect();
        let warm = CountEngine::with_table(&Max, config, UniformCountScheduler::new(), 3, &table_a);
        warm.export_to(&table_b);
        let dump = table_b.dump();
        assert_eq!(dump.states.len(), 4, "5,6 from b; 1,2 merged in");
        for (i, si) in dump.states.iter().enumerate() {
            for (j, sj) in dump.states.iter().enumerate() {
                assert_eq!(
                    dump.rows[i].binary_search(&(j as u32)).is_ok(),
                    !Max.is_null_interaction(si, sj),
                    "pair ({si}, {sj})"
                );
            }
        }
    }

    #[test]
    fn warm_engine_discovers_novel_states_beyond_the_table() {
        let mut scout = CountEngine::from_inputs(&Max, &[1, 2], 1);
        scout.run_until_silent(u64::MAX).unwrap();
        let table = scout.warm_table();
        assert_eq!(table.len(), 2);
        // The warm engine's config introduces state 9, unknown to the table.
        let config: CountConfig<u8> = [1u8, 2, 9].iter().copied().collect();
        let mut warm =
            CountEngine::with_table(&Max, config, UniformCountScheduler::new(), 4, &table);
        assert_eq!(warm.warm_slots(), 2);
        assert_eq!(warm.slots(), 3, "state 9 discovered past the warm prefix");
        let report = warm.run_until_silent(u64::MAX).unwrap();
        assert_eq!(report.consensus, Some(9));
        warm.export_to(&table);
        assert_eq!(table.len(), 3);
        assert!(table.outcome_count() > 0, "applied outcomes are exported");
    }

    #[test]
    fn perturbation_rearms_silence_and_keeps_histograms_consistent() {
        // Reach silence, then knock one agent out of consensus: mass must
        // re-arm, the run must resume, and all bookkeeping must stay exact.
        let inputs: Vec<u8> = (0..100).map(|i| (i % 5) as u8).collect();
        let mut engine = CountEngine::from_inputs(&Max, &inputs, 11);
        engine.run_until_silent(u64::MAX).unwrap();
        assert!(engine.is_silent());
        assert_eq!(engine.report().consensus, Some(4));

        engine.perturb_transfer(&4u8, 0u8, 3);
        assert!(!engine.is_silent(), "perturbation re-armed activity");
        assert_eq!(engine.mass(), mass_by_bruteforce(&engine));
        assert_eq!(engine.config().n(), 100, "transfer conserves agents");
        assert_eq!(engine.output_counts().len(), 2);
        let steps_before = engine.steps();
        let report = engine.run_until_silent(u64::MAX).unwrap();
        assert_eq!(report.consensus, Some(4), "max protocol re-heals");
        assert!(engine.steps() > steps_before);
        // Consensus was re-broken at the perturbation step, so the consensus
        // time reflects the *recovery*, not the first convergence.
        assert!(report.steps_to_consensus > steps_before);
    }

    #[test]
    fn churn_perturbations_track_population_size() {
        let mut engine = CountEngine::from_inputs(&Max, &[1u8, 2, 3], 5);
        engine.perturb_add(9, 4);
        assert_eq!(engine.n(), 7);
        assert_eq!(engine.config().n(), 7);
        assert_eq!(engine.mass(), mass_by_bruteforce(&engine));
        engine.perturb_remove(&9u8, 3);
        assert_eq!(engine.n(), 4);
        assert_eq!(engine.mass(), mass_by_bruteforce(&engine));
        let out_total: usize = engine.output_counts().values().sum();
        assert_eq!(out_total, 4);
        let report = engine.run_until_silent(u64::MAX).unwrap();
        assert_eq!(report.consensus, Some(9), "the surviving 9 still wins");
    }

    #[test]
    fn perturb_to_unknown_state_discovers_its_slot() {
        let mut engine = CountEngine::from_inputs(&Max, &[1u8, 2], 3);
        assert_eq!(engine.slots(), 2);
        engine.perturb_transfer(&1u8, 7u8, 1);
        assert_eq!(engine.slots(), 3, "target slot discovered");
        assert_eq!(engine.mass(), mass_by_bruteforce(&engine));
        let report = engine.run_until_silent(u64::MAX).unwrap();
        assert_eq!(report.consensus, Some(7));
    }

    #[test]
    fn zero_amount_perturbations_are_no_ops() {
        let mut engine = CountEngine::from_inputs(&Max, &[1u8, 2], 3);
        let mass = engine.mass();
        engine.perturb_transfer(&1u8, 2u8, 0);
        engine.perturb_add(9, 0);
        engine.perturb_remove(&1u8, 0);
        assert_eq!(engine.mass(), mass);
        assert_eq!(engine.slots(), 2, "no slot discovered for amount 0");
        assert_eq!(engine.n(), 2);
    }

    #[test]
    #[should_panic(expected = "asked to move")]
    fn perturb_transfer_checks_available_mass() {
        let mut engine = CountEngine::from_inputs(&Max, &[1u8, 2], 3);
        engine.perturb_transfer(&1u8, 2u8, 5);
    }

    #[test]
    fn checkpoint_resume_mid_run_is_bit_identical() {
        use rand::rngs::Philox4x32;
        use std::ops::ControlFlow;

        let inputs: Vec<u8> = (0..2_000).map(|i| (i % 17) as u8).collect();
        let config: CountConfig<u8> = inputs.iter().copied().collect();
        let mut reference = CountEngine::<_, _, SparseActivity, _>::with_rng(
            &Max,
            config.clone(),
            UniformCountScheduler::new(),
            Philox4x32::stream(7, 1),
        );
        reference.record_trace();
        let ref_report = reference.run_until_silent(u64::MAX).unwrap();
        let ref_trace = reference.take_trace().unwrap();

        let mut engine = CountEngine::<_, _, SparseActivity, _>::with_rng(
            &Max,
            config,
            UniformCountScheduler::new(),
            Philox4x32::stream(7, 1),
        );
        engine.record_trace();
        let mut saved = None;
        let err = engine
            .run_until_silent_checkpointed(u64::MAX, 100, |e| {
                saved = Some(e.checkpoint());
                ControlFlow::Break(())
            })
            .unwrap_err();
        assert!(matches!(err, FrameworkError::Interrupted { .. }));
        let ck = saved.expect("hook fired before silence");
        assert!(ck.stats.steps > 0 && !ck.counts.is_empty());

        let mut resumed = CountEngine::<_, _, SparseActivity, Philox4x32>::resume(
            &Max,
            UniformCountScheduler::new(),
            &ck,
        )
        .unwrap();
        let report = resumed.run_until_silent(u64::MAX).unwrap();
        assert_eq!(report, ref_report);
        assert_eq!(resumed.take_trace().unwrap(), ref_trace);
        assert_eq!(resumed.config(), reference.config());
    }

    #[test]
    fn interrupted_engine_continues_in_place_identically() {
        use rand::rngs::Philox4x32;
        use std::ops::ControlFlow;

        let inputs: Vec<u8> = (0..500).map(|i| (i % 13) as u8).collect();
        let config: CountConfig<u8> = inputs.iter().copied().collect();
        let mut reference = CountEngine::<_, _, SparseActivity, _>::with_rng(
            &Max,
            config.clone(),
            UniformCountScheduler::new(),
            Philox4x32::stream(3, 2),
        );
        let ref_report = reference.run_until_silent(u64::MAX).unwrap();

        // Pause every 50 changes, continuing in place each time — the hook
        // must be trajectory-neutral.
        let mut engine = CountEngine::<_, _, SparseActivity, _>::with_rng(
            &Max,
            config,
            UniformCountScheduler::new(),
            Philox4x32::stream(3, 2),
        );
        let report = loop {
            match engine.run_until_silent_checkpointed(u64::MAX, 50, |_| ControlFlow::Break(())) {
                Ok(report) => break report,
                Err(FrameworkError::Interrupted { steps }) => {
                    assert_eq!(steps, engine.steps());
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert_eq!(report, ref_report);
    }

    #[test]
    fn resume_rejects_mismatched_identity_and_rng() {
        use crate::run_checkpoint::CheckpointError;
        use rand::rngs::Philox4x32;

        let engine = CountEngine::<_, _, SparseActivity, _>::with_rng(
            &Max,
            [1u8, 2, 3].iter().copied().collect(),
            UniformCountScheduler::new(),
            Philox4x32::stream(0, 0),
        );
        let ck = engine.checkpoint();
        // Wrong protocol parameterization (SymMax fingerprints differently).
        assert!(matches!(
            CountEngine::<_, _, SparseActivity, Philox4x32>::resume(
                &SymMax,
                UniformCountScheduler::new(),
                &ck
            ),
            Err(CheckpointError::IdentityMismatch { .. })
        ));
        // Wrong generator family.
        assert!(matches!(
            CountEngine::<_, _, SparseActivity, StdRng>::resume(
                &Max,
                UniformCountScheduler::new(),
                &ck
            ),
            Err(CheckpointError::RngMismatch {
                stored: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn recorded_trace_replays_to_the_same_configuration() {
        let inputs: Vec<u8> = (0..30).map(|i| (i % 4) as u8).collect();
        let mut engine = CountEngine::from_inputs(&Max, &inputs, 13);
        engine.record_trace();
        engine.run_until_silent(u64::MAX).unwrap();
        let trace = engine.take_trace().expect("recording was on");
        assert_eq!(trace.len() as u64, engine.stats().state_changes);

        let config: CountConfig<u8> = inputs.iter().copied().collect();
        let mut replayed = CountEngine::with_scheduler(
            &Max,
            config,
            trace.clone().into_scheduler(),
            0, // RNG is irrelevant under replay
        );
        for _ in 0..trace.len() {
            assert!(replayed.step().unwrap(), "every traced pair is active");
        }
        assert_eq!(replayed.config(), engine.config());
        assert!(replayed.is_silent());
    }
}
