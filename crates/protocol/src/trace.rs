//! Recording and replaying interaction schedules.
//!
//! A trace pins down the scheduler half of an execution; together with the
//! input assignment it makes a run fully reproducible, which is how failing
//! stochastic tests are turned into deterministic regression tests.

use std::fmt;
use std::str::FromStr;

use crate::error::FrameworkError;

/// A finite prefix of an interaction schedule: ordered `(initiator,
/// responder)` pairs over a population of known size.
///
/// # Example
///
/// ```
/// use pp_protocol::InteractionTrace;
///
/// let mut trace = InteractionTrace::new(3);
/// trace.push(0, 1);
/// trace.push(2, 0);
/// let text = trace.to_string();
/// let parsed: InteractionTrace = text.parse()?;
/// assert_eq!(parsed, trace);
/// # Ok::<(), pp_protocol::FrameworkError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InteractionTrace {
    n: usize,
    pairs: Vec<(usize, usize)>,
}

impl InteractionTrace {
    /// Creates an empty trace over a population of `n` agents.
    pub fn new(n: usize) -> Self {
        InteractionTrace {
            n,
            pairs: Vec::new(),
        }
    }

    /// Creates a trace from recorded pairs.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::AgentOutOfBounds`] or
    /// [`FrameworkError::ReflexivePair`] if a pair is invalid for a
    /// population of `n`.
    pub fn from_pairs(n: usize, pairs: Vec<(usize, usize)>) -> Result<Self, FrameworkError> {
        for &(i, j) in &pairs {
            if i == j {
                return Err(FrameworkError::ReflexivePair { index: i });
            }
            if i >= n {
                return Err(FrameworkError::AgentOutOfBounds { index: i, n });
            }
            if j >= n {
                return Err(FrameworkError::AgentOutOfBounds { index: j, n });
            }
        }
        Ok(InteractionTrace { n, pairs })
    }

    /// Population size this trace is valid for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The recorded pairs, in schedule order.
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Number of recorded interactions.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no interactions are recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Appends an interaction.
    pub fn push(&mut self, initiator: usize, responder: usize) {
        self.pairs.push((initiator, responder));
    }

    /// Largest gap (in steps) between consecutive occurrences of any
    /// unordered agent pair, also counting the distance from the start to a
    /// pair's first occurrence and from its last occurrence to the end.
    /// Small maximum gaps witness weak fairness on the recorded prefix.
    ///
    /// Returns `None` when some unordered pair never occurs at all.
    pub fn max_pair_gap(&self) -> Option<usize> {
        let n = self.n;
        if n < 2 {
            return Some(0);
        }
        let idx = |i: usize, j: usize| {
            let (a, b) = if i < j { (i, j) } else { (j, i) };
            a * n + b
        };
        let mut last_seen: Vec<Option<usize>> = vec![None; n * n];
        let mut max_gap = 0usize;
        for (t, &(i, j)) in self.pairs.iter().enumerate() {
            let key = idx(i, j);
            let gap = match last_seen[key] {
                Some(prev) => t - prev,
                None => t + 1,
            };
            max_gap = max_gap.max(gap);
            last_seen[key] = Some(t);
        }
        for i in 0..n {
            for j in (i + 1)..n {
                match last_seen[idx(i, j)] {
                    None => return None,
                    Some(prev) => max_gap = max_gap.max(self.pairs.len() - prev),
                }
            }
        }
        Some(max_gap)
    }
}

impl fmt::Display for InteractionTrace {
    /// Serializes as a line-oriented text format: first line `n`, then one
    /// `initiator responder` pair per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.n)?;
        for (i, j) in &self.pairs {
            writeln!(f, "{i} {j}")?;
        }
        Ok(())
    }
}

impl FromStr for InteractionTrace {
    type Err = FrameworkError;

    fn from_str(s: &str) -> Result<Self, FrameworkError> {
        let mut lines = s.lines().filter(|l| !l.trim().is_empty());
        let n: usize = lines
            .next()
            .ok_or_else(|| FrameworkError::TraceParse("missing population size".into()))?
            .trim()
            .parse()
            .map_err(|e| FrameworkError::TraceParse(format!("bad population size: {e}")))?;
        let mut pairs = Vec::new();
        for line in lines {
            let mut parts = line.split_whitespace();
            let i: usize = parts
                .next()
                .ok_or_else(|| FrameworkError::TraceParse(format!("empty pair line: {line:?}")))?
                .parse()
                .map_err(|e| FrameworkError::TraceParse(format!("bad initiator: {e}")))?;
            let j: usize = parts
                .next()
                .ok_or_else(|| FrameworkError::TraceParse(format!("missing responder: {line:?}")))?
                .parse()
                .map_err(|e| FrameworkError::TraceParse(format!("bad responder: {e}")))?;
            if parts.next().is_some() {
                return Err(FrameworkError::TraceParse(format!(
                    "trailing tokens on line: {line:?}"
                )));
            }
            pairs.push((i, j));
        }
        InteractionTrace::from_pairs(n, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_text_format() {
        let trace = InteractionTrace::from_pairs(4, vec![(0, 1), (2, 3), (3, 0)]).unwrap();
        let parsed: InteractionTrace = trace.to_string().parse().unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn from_pairs_validates() {
        assert!(matches!(
            InteractionTrace::from_pairs(2, vec![(0, 0)]),
            Err(FrameworkError::ReflexivePair { index: 0 })
        ));
        assert!(matches!(
            InteractionTrace::from_pairs(2, vec![(0, 5)]),
            Err(FrameworkError::AgentOutOfBounds { index: 5, n: 2 })
        ));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<InteractionTrace>().is_err());
        assert!("3\n0".parse::<InteractionTrace>().is_err());
        assert!("3\n0 1 2".parse::<InteractionTrace>().is_err());
        assert!("x\n0 1".parse::<InteractionTrace>().is_err());
    }

    #[test]
    fn max_gap_none_when_pair_missing() {
        let trace = InteractionTrace::from_pairs(3, vec![(0, 1), (1, 0)]).unwrap();
        assert_eq!(trace.max_pair_gap(), None);
    }

    #[test]
    fn max_gap_counts_boundaries() {
        // Pairs (0,1),(0,2),(1,2) each once over 3 steps: the last pair to
        // appear first has initial gap 3; final gaps: (0,1) last at t=0 so
        // gap to end = 3.
        let trace = InteractionTrace::from_pairs(3, vec![(0, 1), (0, 2), (1, 2)]).unwrap();
        assert_eq!(trace.max_pair_gap(), Some(3));
    }

    #[test]
    fn max_gap_handles_unordered_identification() {
        // (0,1) and (1,0) are the same unordered pair.
        let trace = InteractionTrace::from_pairs(2, vec![(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(trace.max_pair_gap(), Some(1));
    }
}
