//! Versioned on-disk run checkpoints (`.pprc`) — the crash-tolerance
//! substrate for long [`CountEngine`](crate::CountEngine) runs.
//!
//! A checkpoint captures everything a count-engine run needs to resume
//! bit-identically: the canonical slot → state list, per-slot counts, the
//! step/stats counters, the RNG stream position (via [`ResumableRng`]), the
//! optional recorded change-point trace, and named auxiliary sections for
//! layers above the engine (the hazard driver persists its pending plan tail
//! and hazard-RNG position there). Everything *derivable* from those — the
//! activity index, the output histogram, transition memos — is deliberately
//! **not** stored: the engine rebuilds them deterministically on resume, so
//! checkpoints stay `O(slots)` bytes, not `O(pairs)`.
//!
//! The file format is a sibling of the `.ppts` transition-table store
//! ([`transition_store`](crate::transition_store)) and follows the same
//! discipline: little-endian fixed header with magic, endianness marker,
//! format version, protocol identity fingerprint and section table; a
//! word-folded FNV checksum over the whole file (checksum field zeroed);
//! atomic tmp + rename writes; and a typed error ([`CheckpointError`]) for
//! every corruption path — a load never silently yields a wrong resume.
//! The byte-level layout is specified in `docs/run-checkpoint-format.md`.

use std::fmt::{self, Display};
use std::fs;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::{Philox4x32, StdRng};
use rand::RngCore;

use crate::protocol::Protocol;
use crate::simulation::SimStats;
use crate::transition_store::{checksum64, fingerprint, push_varint, read_u32, read_u64};

/// Format version written by this build; loads accept exactly this version.
pub const FORMAT_VERSION: u32 = 1;

/// Canonical file extension of run checkpoints.
pub const CHECKPOINT_EXT: &str = "pprc";

const MAGIC: [u8; 8] = *b"PPRUNCK\0";
const ENDIAN_MARKER: u32 = 0x1A2B_3C4D;
/// Five sections follow the fixed fields: name, states, run, trace, aux.
const SECTION_COUNT: usize = 5;
const SECTION_TABLE_OFFSET: usize = 0x40;
const CHECKSUM_OFFSET: usize = SECTION_TABLE_OFFSET + SECTION_COUNT * 16;
const HEADER_LEN: usize = CHECKSUM_OFFSET + 8;
const FLAG_SYMMETRIC: u32 = 1;
/// Set when the engine was recording its change-point trace — distinguishes
/// "tracing with zero pairs so far" from "not tracing".
const FLAG_TRACING: u32 = 2;

/// Generators a checkpoint can name; [`ResumableRng::RNG_KIND`] values.
const RNG_KIND_PHILOX4X32: u32 = 1;
const RNG_KIND_STDRNG: u32 = 2;

/// Upper bound on serialized RNG state words — far above any generator in
/// the workspace (Philox: 7, xoshiro: 8), low enough that a corrupt word
/// count cannot drive an absurd allocation.
const MAX_RNG_WORDS: u64 = 64;

/// A seedable generator whose exact stream position can be serialized into a
/// checkpoint and restored bit-identically.
///
/// Implementations must guarantee the round-trip contract: a generator
/// restored via [`load_words`](Self::load_words) from
/// [`save_words`](Self::save_words) produces exactly the output sequence the
/// original would have produced from that point on — including mid-block
/// positions for block generators.
pub trait ResumableRng: RngCore + Sized {
    /// Stable format tag distinguishing this generator family in the
    /// checkpoint header. Never reuse a retired value.
    const RNG_KIND: u32;

    /// The generator's position, as 32-bit words.
    fn save_words(&self) -> Vec<u32>;

    /// Reconstructs a generator from [`save_words`](Self::save_words)
    /// output; `None` when the words are not a reachable generator state
    /// (corrupt checkpoints must fail loudly, not index out of bounds
    /// later).
    fn load_words(words: &[u32]) -> Option<Self>;
}

impl ResumableRng for Philox4x32 {
    const RNG_KIND: u32 = RNG_KIND_PHILOX4X32;

    fn save_words(&self) -> Vec<u32> {
        self.state_words().to_vec()
    }

    fn load_words(words: &[u32]) -> Option<Self> {
        let words: [u32; 7] = words.try_into().ok()?;
        Philox4x32::from_state_words(words)
    }
}

impl ResumableRng for StdRng {
    const RNG_KIND: u32 = RNG_KIND_STDRNG;

    fn save_words(&self) -> Vec<u32> {
        self.state_words()
            .iter()
            .flat_map(|&w| [w as u32, (w >> 32) as u32])
            .collect()
    }

    fn load_words(words: &[u32]) -> Option<Self> {
        let words: [u32; 8] = words.try_into().ok()?;
        let mut s = [0u64; 4];
        for (i, pair) in words.chunks_exact(2).enumerate() {
            s[i] = u64::from(pair[0]) | (u64::from(pair[1]) << 32);
        }
        Some(StdRng::from_state_words(s))
    }
}

/// Typed failures of the on-disk checkpoint. Mirrors
/// [`StoreError`](crate::StoreError)'s variant set — every corruption path
/// maps to a distinct variant, so supervisors can report precisely and fall
/// back to an earlier checkpoint (or a fresh run) instead of trusting a
/// damaged file.
#[derive(Debug)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The file does not start with the checkpoint magic — not a checkpoint.
    BadMagic,
    /// The endianness marker does not decode; the file was produced by an
    /// incompatible writer.
    EndianMismatch,
    /// The header declares a format version this build does not read.
    UnsupportedVersion {
        /// Version recorded in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The file is shorter than its header or section table requires.
    Truncated {
        /// Bytes the header/sections require.
        needed: u64,
        /// Bytes actually present.
        len: u64,
    },
    /// The whole-file checksum does not match the stored one.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum recomputed over the file.
        computed: u64,
    },
    /// The checkpoint was taken for a different protocol parameterization.
    IdentityMismatch {
        /// Fingerprint recorded in the header.
        stored: u64,
        /// Fingerprint of the protocol supplied to [`load`].
        expected: u64,
    },
    /// The checkpoint was taken under a different generator family than the
    /// engine resuming it.
    RngMismatch {
        /// RNG kind recorded in the header.
        stored: u32,
        /// RNG kind of the resuming engine.
        expected: u32,
    },
    /// A section failed structural validation (bad varint, malformed state,
    /// out-of-range slot id, counts disagreeing with the header).
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a run checkpoint (bad magic)"),
            CheckpointError::EndianMismatch => write!(f, "checkpoint endianness marker mismatch"),
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "checkpoint format version {found} unsupported (this build reads version {supported})"
            ),
            CheckpointError::Truncated { needed, len } => write!(
                f,
                "checkpoint truncated: {len} byte(s) present, {needed} required"
            ),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: header records {stored:#018x}, file hashes to {computed:#018x}"
            ),
            CheckpointError::IdentityMismatch { stored, expected } => write!(
                f,
                "checkpoint fingerprint {stored:#018x} does not match protocol fingerprint {expected:#018x}"
            ),
            CheckpointError::RngMismatch { stored, expected } => write!(
                f,
                "checkpoint rng kind {stored} does not match the resuming engine's kind {expected}"
            ),
            CheckpointError::Corrupt(msg) => write!(f, "checkpoint corrupt: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Header-level metadata of a checkpoint file, as returned by [`inspect`]
/// and [`save`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Protocol name recorded in the checkpoint.
    pub protocol: String,
    /// Format version of the file.
    pub version: u32,
    /// Protocol identity fingerprint
    /// (see [`fingerprint`]).
    pub fingerprint: u64,
    /// Protocol family parameter (`k` for Circles, `0` by default).
    pub param: u64,
    /// Whether the protocol declared itself symmetric at checkpoint time.
    pub symmetric: bool,
    /// Whether the engine was recording its change-point trace.
    pub tracing: bool,
    /// RNG family tag ([`ResumableRng::RNG_KIND`]).
    pub rng_kind: u32,
    /// Population size at checkpoint time.
    pub n: u64,
    /// Interactions executed at checkpoint time.
    pub steps: u64,
    /// Number of canonical slots.
    pub slots: u64,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Whole-file checksum recorded in (and verified against) the header.
    pub checksum: u64,
}

/// The in-memory form of a run checkpoint: a
/// [`CountEngine`](crate::CountEngine)'s resumable state.
///
/// Produced by [`CountEngine::checkpoint`](crate::CountEngine::checkpoint),
/// consumed by [`CountEngine::resume`](crate::CountEngine::resume);
/// serialized by [`save`]/[`load`]. `O(slots)` in memory and on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunCheckpoint<S> {
    /// Protocol name, cross-checked on resume.
    pub protocol: String,
    /// Protocol identity fingerprint — the same value that keys `.ppts`
    /// cache files, so a checkpoint names the table store it can be warmed
    /// from.
    pub fingerprint: u64,
    /// Protocol family parameter.
    pub param: u64,
    /// Whether the protocol declared itself symmetric.
    pub symmetric: bool,
    /// Population size.
    pub n: u64,
    /// Step/state-change counters at checkpoint time.
    pub stats: SimStats,
    /// Latest step at which outputs were not unanimous (not derivable from
    /// counts — it is history).
    pub last_disagreement: Option<u64>,
    /// Every state ever observed, in canonical slot order.
    pub states: Vec<S>,
    /// Per-slot agent counts, aligned with `states`.
    pub counts: Vec<u64>,
    /// RNG family tag ([`ResumableRng::RNG_KIND`]).
    pub rng_kind: u32,
    /// RNG stream position ([`ResumableRng::save_words`]).
    pub rng_words: Vec<u32>,
    /// Recorded change-point trace as slot-id pairs, `Some` exactly when
    /// the engine was recording.
    pub trace: Option<Vec<(u32, u32)>>,
    /// Named auxiliary sections for layers above the engine (hazard plan
    /// tails, supervisor bookkeeping), sorted by name. The engine itself
    /// never reads these.
    pub aux: Vec<(String, Vec<u8>)>,
}

impl<S> RunCheckpoint<S> {
    /// The payload of auxiliary section `name`, if present.
    pub fn aux(&self, name: &str) -> Option<&[u8]> {
        self.aux
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.aux[i].1.as_slice())
    }

    /// Inserts or replaces auxiliary section `name`, keeping the list
    /// sorted (the canonical encoding order).
    pub fn set_aux(&mut self, name: &str, payload: Vec<u8>) {
        match self.aux.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
            Ok(i) => self.aux[i].1 = payload,
            Err(i) => self.aux.insert(i, (name.to_string(), payload)),
        }
    }

    /// Structural validity of the in-memory checkpoint — the invariants
    /// [`save`] requires and [`load`] guarantees.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] naming the violated invariant.
    pub fn validate(&self) -> Result<(), CheckpointError> {
        if self.states.len() != self.counts.len() {
            return Err(CheckpointError::Corrupt(format!(
                "{} state(s) but {} count(s)",
                self.states.len(),
                self.counts.len()
            )));
        }
        let mut total: u64 = 0;
        for &c in &self.counts {
            total = total
                .checked_add(c)
                .ok_or_else(|| CheckpointError::Corrupt("slot counts overflow u64".to_string()))?;
        }
        if total != self.n {
            return Err(CheckpointError::Corrupt(format!(
                "slot counts sum to {total}, header records n = {}",
                self.n
            )));
        }
        if self.n >= 1 << 63 {
            return Err(CheckpointError::Corrupt(format!(
                "population {} exceeds the 2^63 - 1 agent cap",
                self.n
            )));
        }
        if self.stats.last_change_step > self.stats.steps {
            return Err(CheckpointError::Corrupt(format!(
                "last change at step {} postdates the step counter {}",
                self.stats.last_change_step, self.stats.steps
            )));
        }
        if self.stats.state_changes > self.stats.steps {
            return Err(CheckpointError::Corrupt(format!(
                "{} state changes exceed {} steps",
                self.stats.state_changes, self.stats.steps
            )));
        }
        if let Some(t) = self.last_disagreement {
            if t > self.stats.steps {
                return Err(CheckpointError::Corrupt(format!(
                    "disagreement at step {t} postdates the step counter {}",
                    self.stats.steps
                )));
            }
        }
        if self.rng_words.len() as u64 > MAX_RNG_WORDS {
            return Err(CheckpointError::Corrupt(format!(
                "{} rng state words exceed the {MAX_RNG_WORDS}-word cap",
                self.rng_words.len()
            )));
        }
        let slots = self.states.len() as u32;
        if let Some(pairs) = &self.trace {
            for &(i, j) in pairs {
                if i >= slots || j >= slots {
                    return Err(CheckpointError::Corrupt(format!(
                        "trace pair ({i}, {j}) references a slot >= {slots}"
                    )));
                }
            }
        }
        if !self.aux.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(CheckpointError::Corrupt(
                "auxiliary sections are not strictly sorted by name".to_string(),
            ));
        }
        Ok(())
    }
}

/// Serializes `checkpoint` into `path`.
///
/// The write is atomic: a temp file in the target directory is fully
/// written, checksummed and then renamed over `path`, so a crash leaves
/// either the previous checkpoint or none — never a torn file. `S: Display`
/// supplies the state codec; [`load`] inverts it through `FromStr`.
///
/// # Errors
///
/// [`CheckpointError::Io`] when the temp file cannot be written or renamed;
/// [`CheckpointError::Corrupt`] when the in-memory checkpoint violates its
/// own invariants ([`RunCheckpoint::validate`]).
pub fn save<S: Display>(
    checkpoint: &RunCheckpoint<S>,
    path: &Path,
) -> Result<CheckpointMeta, CheckpointError> {
    checkpoint.validate()?;

    let name = checkpoint.protocol.as_bytes().to_vec();

    let mut states_sec = Vec::new();
    for (state, &count) in checkpoint.states.iter().zip(&checkpoint.counts) {
        let text = state.to_string();
        push_varint(&mut states_sec, text.len() as u64);
        states_sec.extend_from_slice(text.as_bytes());
        push_varint(&mut states_sec, count);
    }

    let mut run_sec = Vec::new();
    push_varint(&mut run_sec, checkpoint.stats.state_changes);
    push_varint(&mut run_sec, checkpoint.stats.last_change_step);
    match checkpoint.last_disagreement {
        Some(t) => {
            run_sec.push(1);
            push_varint(&mut run_sec, t);
        }
        None => run_sec.push(0),
    }
    push_varint(&mut run_sec, checkpoint.rng_words.len() as u64);
    for &w in &checkpoint.rng_words {
        run_sec.extend_from_slice(&w.to_le_bytes());
    }

    let mut trace_sec = Vec::new();
    if let Some(pairs) = &checkpoint.trace {
        push_varint(&mut trace_sec, pairs.len() as u64);
        for &(i, j) in pairs {
            push_varint(&mut trace_sec, u64::from(i));
            push_varint(&mut trace_sec, u64::from(j));
        }
    }

    let mut aux_sec = Vec::new();
    push_varint(&mut aux_sec, checkpoint.aux.len() as u64);
    for (key, payload) in &checkpoint.aux {
        push_varint(&mut aux_sec, key.len() as u64);
        aux_sec.extend_from_slice(key.as_bytes());
        push_varint(&mut aux_sec, payload.len() as u64);
        aux_sec.extend_from_slice(payload);
    }

    let mut flags = 0u32;
    if checkpoint.symmetric {
        flags |= FLAG_SYMMETRIC;
    }
    if checkpoint.trace.is_some() {
        flags |= FLAG_TRACING;
    }

    let body_len = name.len() + states_sec.len() + run_sec.len() + trace_sec.len() + aux_sec.len();
    let mut file = Vec::with_capacity(HEADER_LEN + body_len);
    file.extend_from_slice(&MAGIC);
    file.extend_from_slice(&ENDIAN_MARKER.to_le_bytes());
    file.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    file.extend_from_slice(&checkpoint.fingerprint.to_le_bytes());
    file.extend_from_slice(&checkpoint.param.to_le_bytes());
    file.extend_from_slice(&flags.to_le_bytes());
    file.extend_from_slice(&checkpoint.rng_kind.to_le_bytes());
    file.extend_from_slice(&checkpoint.n.to_le_bytes());
    file.extend_from_slice(&checkpoint.stats.steps.to_le_bytes());
    file.extend_from_slice(&(checkpoint.states.len() as u64).to_le_bytes());
    debug_assert_eq!(file.len(), SECTION_TABLE_OFFSET);
    let mut off = HEADER_LEN as u64;
    for sec in [&name, &states_sec, &run_sec, &trace_sec, &aux_sec] {
        file.extend_from_slice(&off.to_le_bytes());
        file.extend_from_slice(&(sec.len() as u64).to_le_bytes());
        off += sec.len() as u64;
    }
    file.extend_from_slice(&[0u8; 8]); // checksum, patched below
    debug_assert_eq!(file.len(), HEADER_LEN);
    file.extend_from_slice(&name);
    file.extend_from_slice(&states_sec);
    file.extend_from_slice(&run_sec);
    file.extend_from_slice(&trace_sec);
    file.extend_from_slice(&aux_sec);
    // The placeholder is zero, so hashing the buffer as-is matches the
    // zeroed-field convention the verifier uses.
    let checksum = checksum64(&file);
    file[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&checksum.to_le_bytes());

    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let stem = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("checkpoint");
    let tmp = dir.join(format!(
        ".{stem}.{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::write(&tmp, &file)?;
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(CheckpointError::Io(e));
    }

    Ok(CheckpointMeta {
        protocol: checkpoint.protocol.clone(),
        version: FORMAT_VERSION,
        fingerprint: checkpoint.fingerprint,
        param: checkpoint.param,
        symmetric: checkpoint.symmetric,
        tracing: checkpoint.trace.is_some(),
        rng_kind: checkpoint.rng_kind,
        n: checkpoint.n,
        steps: checkpoint.stats.steps,
        slots: checkpoint.states.len() as u64,
        file_bytes: file.len() as u64,
        checksum,
    })
}

/// Bounds-checked reader over one section, with varint decoding — the
/// `.pprc` twin of the store's cursor, erroring as [`CheckpointError`].
struct Cursor<'a> {
    section: &'static str,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(section: &'static str, buf: &'a [u8]) -> Self {
        Cursor {
            section,
            buf,
            pos: 0,
        }
    }

    fn varint(&mut self) -> Result<u64, CheckpointError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let &b = self.buf.get(self.pos).ok_or_else(|| {
                CheckpointError::Corrupt(format!("{} section ends inside a varint", self.section))
            })?;
            self.pos += 1;
            if shift >= 64 || (shift == 63 && b & 0x7F > 1) {
                return Err(CheckpointError::Corrupt(format!(
                    "oversized varint in {} section",
                    self.section
                )));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn byte(&mut self) -> Result<u8, CheckpointError> {
        let &b = self.buf.get(self.pos).ok_or_else(|| {
            CheckpointError::Corrupt(format!("{} section shorter than declared", self.section))
        })?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                CheckpointError::Corrupt(format!("{} section shorter than declared", self.section))
            })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn finish(self) -> Result<(), CheckpointError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt(format!(
                "{} section has {} trailing byte(s)",
                self.section,
                self.buf.len() - self.pos
            )))
        }
    }
}

/// A verified header plus borrowed section slices — magic, endianness,
/// version, section bounds and whole-file checksum already checked.
struct RawCheckpoint<'a> {
    fingerprint: u64,
    param: u64,
    flags: u32,
    rng_kind: u32,
    n: u64,
    steps: u64,
    slots: u64,
    checksum: u64,
    sections: [&'a [u8]; SECTION_COUNT],
    file_len: u64,
}

fn parse_and_verify(bytes: &mut [u8]) -> Result<RawCheckpoint<'_>, CheckpointError> {
    let magic_len = bytes.len().min(MAGIC.len());
    if bytes[..magic_len] != MAGIC[..magic_len] {
        return Err(CheckpointError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(CheckpointError::Truncated {
            needed: HEADER_LEN as u64,
            len: bytes.len() as u64,
        });
    }
    if read_u32(bytes, 0x08) != ENDIAN_MARKER {
        return Err(CheckpointError::EndianMismatch);
    }
    let version = read_u32(bytes, 0x0C);
    if version != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let stored = read_u64(bytes, CHECKSUM_OFFSET);
    bytes[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].fill(0);
    let computed = checksum64(bytes);
    if stored != computed {
        return Err(CheckpointError::ChecksumMismatch { stored, computed });
    }
    let file_len = bytes.len() as u64;
    let mut sections = [&bytes[0..0]; SECTION_COUNT];
    for (s, section) in sections.iter_mut().enumerate() {
        let off = read_u64(bytes, SECTION_TABLE_OFFSET + 16 * s);
        let len = read_u64(bytes, SECTION_TABLE_OFFSET + 16 * s + 8);
        let end = off.checked_add(len).filter(|&e| e <= file_len);
        let (Some(end), true) = (end, off >= HEADER_LEN as u64) else {
            return Err(CheckpointError::Truncated {
                needed: off.saturating_add(len),
                len: file_len,
            });
        };
        *section = &bytes[off as usize..end as usize];
    }
    Ok(RawCheckpoint {
        fingerprint: read_u64(bytes, 0x10),
        param: read_u64(bytes, 0x18),
        flags: read_u32(bytes, 0x20),
        rng_kind: read_u32(bytes, 0x24),
        n: read_u64(bytes, 0x28),
        steps: read_u64(bytes, 0x30),
        slots: read_u64(bytes, 0x38),
        checksum: stored,
        sections,
        file_len,
    })
}

/// Reads the header of the checkpoint at `path` — magic, version, identity,
/// counters, checksum (verified against the whole file) — without decoding
/// the body. The `table_store`-style triage entry point.
///
/// # Errors
///
/// Any [`CheckpointError`] a full [`load`] would report for the header and
/// checksum; body corruption is only detected by [`load`].
pub fn inspect(path: &Path) -> Result<CheckpointMeta, CheckpointError> {
    let mut bytes = fs::read(path)?;
    let raw = parse_and_verify(&mut bytes)?;
    let protocol = String::from_utf8(raw.sections[0].to_vec())
        .map_err(|_| CheckpointError::Corrupt("protocol name is not UTF-8".to_string()))?;
    Ok(CheckpointMeta {
        protocol,
        version: FORMAT_VERSION,
        fingerprint: raw.fingerprint,
        param: raw.param,
        symmetric: raw.flags & FLAG_SYMMETRIC != 0,
        tracing: raw.flags & FLAG_TRACING != 0,
        rng_kind: raw.rng_kind,
        n: raw.n,
        steps: raw.steps,
        slots: raw.slots,
        file_bytes: raw.file_len,
        checksum: raw.checksum,
    })
}

/// Loads and fully validates the checkpoint at `path` for `protocol`,
/// checking the identity fingerprint, name and symmetry flag against the
/// supplied protocol and every section against the header counters. The
/// returned checkpoint satisfies [`RunCheckpoint::validate`].
///
/// # Errors
///
/// Every corruption path maps to a distinct [`CheckpointError`] variant; a
/// load never silently yields a checkpoint that would resume wrongly.
pub fn load<P>(protocol: &P, path: &Path) -> Result<RunCheckpoint<P::State>, CheckpointError>
where
    P: Protocol,
    P::State: FromStr,
    <P::State as FromStr>::Err: Display,
{
    let mut bytes = fs::read(path)?;
    let raw = parse_and_verify(&mut bytes)?;

    let expected = fingerprint(protocol);
    if raw.fingerprint != expected {
        return Err(CheckpointError::IdentityMismatch {
            stored: raw.fingerprint,
            expected,
        });
    }
    let name = std::str::from_utf8(raw.sections[0])
        .map_err(|_| CheckpointError::Corrupt("protocol name is not UTF-8".to_string()))?;
    if name != protocol.name() {
        return Err(CheckpointError::Corrupt(format!(
            "checkpoint names protocol {name:?}, expected {:?}",
            protocol.name()
        )));
    }
    let symmetric = raw.flags & FLAG_SYMMETRIC != 0;
    if symmetric != protocol.is_symmetric() {
        return Err(CheckpointError::Corrupt(format!(
            "checkpoint symmetry flag {symmetric} disagrees with the protocol"
        )));
    }

    let slots = usize::try_from(raw.slots)
        .ok()
        // Each slot costs at least two bytes (text length + count), so the
        // header cannot demand an absurd allocation the body lacks room for.
        .filter(|&s| s.checked_mul(2).is_some_and(|b| b <= raw.sections[1].len()))
        .ok_or_else(|| {
            CheckpointError::Corrupt(format!(
                "header declares {} slot(s), states section holds {} byte(s)",
                raw.slots,
                raw.sections[1].len()
            ))
        })?;
    let mut states = Vec::with_capacity(slots);
    let mut counts = Vec::with_capacity(slots);
    let mut cur = Cursor::new("states", raw.sections[1]);
    for i in 0..slots {
        let len = cur.varint()? as usize;
        let text = std::str::from_utf8(cur.take(len)?)
            .map_err(|_| CheckpointError::Corrupt(format!("state {i} is not UTF-8")))?;
        let state = text.parse::<P::State>().map_err(|e| {
            CheckpointError::Corrupt(format!("state {i} ({text:?}) does not parse: {e}"))
        })?;
        states.push(state);
        counts.push(cur.varint()?);
    }
    cur.finish()?;
    for i in 1..states.len() {
        if states[..i].contains(&states[i]) {
            return Err(CheckpointError::Corrupt(format!(
                "state {i} duplicates an earlier slot"
            )));
        }
    }

    let mut cur = Cursor::new("run", raw.sections[2]);
    let state_changes = cur.varint()?;
    let last_change_step = cur.varint()?;
    let last_disagreement = match cur.byte()? {
        0 => None,
        1 => Some(cur.varint()?),
        b => {
            return Err(CheckpointError::Corrupt(format!(
                "disagreement flag byte is {b}, not 0 or 1"
            )))
        }
    };
    let rng_len = cur.varint()?;
    if rng_len > MAX_RNG_WORDS {
        return Err(CheckpointError::Corrupt(format!(
            "{rng_len} rng state words exceed the {MAX_RNG_WORDS}-word cap"
        )));
    }
    let mut rng_words = Vec::with_capacity(rng_len as usize);
    for _ in 0..rng_len {
        let w = cur.take(4)?;
        rng_words.push(u32::from_le_bytes(w.try_into().expect("4-byte slice")));
    }
    cur.finish()?;

    let tracing = raw.flags & FLAG_TRACING != 0;
    let trace = if tracing {
        let mut cur = Cursor::new("trace", raw.sections[3]);
        let pairs = cur.varint()?;
        // Two varints of at least one byte each per pair.
        if pairs
            .checked_mul(2)
            .is_none_or(|b| b > raw.sections[3].len() as u64)
        {
            return Err(CheckpointError::Corrupt(format!(
                "trace declares {pairs} pair(s), section holds {} byte(s)",
                raw.sections[3].len()
            )));
        }
        let mut list = Vec::with_capacity(pairs as usize);
        for p in 0..pairs {
            let i = cur.varint()?;
            let j = cur.varint()?;
            if i >= raw.slots || j >= raw.slots {
                return Err(CheckpointError::Corrupt(format!(
                    "trace pair {p} ({i}, {j}) references a slot >= {}",
                    raw.slots
                )));
            }
            list.push((i as u32, j as u32));
        }
        cur.finish()?;
        Some(list)
    } else {
        if !raw.sections[3].is_empty() {
            return Err(CheckpointError::Corrupt(format!(
                "untraced checkpoint carries {} trace byte(s)",
                raw.sections[3].len()
            )));
        }
        None
    };

    let mut cur = Cursor::new("aux", raw.sections[4]);
    let aux_count = cur.varint()?;
    // Each entry needs at least two length varints.
    if aux_count
        .checked_mul(2)
        .is_none_or(|b| b > raw.sections[4].len() as u64)
    {
        return Err(CheckpointError::Corrupt(format!(
            "aux declares {aux_count} section(s), holds {} byte(s)",
            raw.sections[4].len()
        )));
    }
    let mut aux = Vec::with_capacity(aux_count as usize);
    for a in 0..aux_count {
        let key_len = cur.varint()? as usize;
        let key = std::str::from_utf8(cur.take(key_len)?)
            .map_err(|_| CheckpointError::Corrupt(format!("aux key {a} is not UTF-8")))?
            .to_string();
        if let Some((prev, _)) = aux.last() {
            if *prev >= key {
                return Err(CheckpointError::Corrupt(format!(
                    "aux key {key:?} out of order after {prev:?}"
                )));
            }
        }
        let payload_len = cur.varint()? as usize;
        let payload = cur.take(payload_len)?.to_vec();
        aux.push((key, payload));
    }
    cur.finish()?;

    let checkpoint = RunCheckpoint {
        protocol: name.to_string(),
        fingerprint: raw.fingerprint,
        param: raw.param,
        symmetric,
        n: raw.n,
        stats: SimStats {
            steps: raw.steps,
            state_changes,
            last_change_step,
        },
        last_disagreement,
        states,
        counts,
        rng_kind: raw.rng_kind,
        rng_words,
        trace,
        aux,
    };
    checkpoint.validate()?;
    Ok(checkpoint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn philox_resumable_round_trip_mid_block() {
        let mut rng = Philox4x32::stream(3, 9);
        rng.next_u64(); // used = 2, mid-block
        let words = ResumableRng::save_words(&rng);
        assert_eq!(words.len(), 7);
        let mut restored: Philox4x32 = ResumableRng::load_words(&words).unwrap();
        for _ in 0..16 {
            assert_eq!(restored.next_u64(), rng.next_u64());
        }
        assert!(<Philox4x32 as ResumableRng>::load_words(&words[..6]).is_none());
    }

    #[test]
    fn stdrng_resumable_round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        rng.next_u64();
        let words = ResumableRng::save_words(&rng);
        assert_eq!(words.len(), 8);
        let mut restored: StdRng = ResumableRng::load_words(&words).unwrap();
        for _ in 0..16 {
            assert_eq!(restored.next_u64(), rng.next_u64());
        }
        assert!(<StdRng as ResumableRng>::load_words(&words[..7]).is_none());
    }

    #[test]
    fn aux_sections_stay_sorted() {
        let mut ck: RunCheckpoint<u8> = RunCheckpoint {
            protocol: "t".into(),
            fingerprint: 0,
            param: 0,
            symmetric: false,
            n: 0,
            stats: SimStats::default(),
            last_disagreement: None,
            states: Vec::new(),
            counts: Vec::new(),
            rng_kind: 1,
            rng_words: Vec::new(),
            trace: None,
            aux: Vec::new(),
        };
        ck.set_aux("zeta", vec![1]);
        ck.set_aux("alpha", vec![2]);
        ck.set_aux("zeta", vec![3]);
        assert_eq!(ck.aux("alpha"), Some(&[2u8][..]));
        assert_eq!(ck.aux("zeta"), Some(&[3u8][..]));
        assert_eq!(ck.aux("missing"), None);
        assert!(ck.validate().is_ok());
    }

    #[test]
    fn validate_rejects_inconsistent_counts() {
        let ck: RunCheckpoint<u8> = RunCheckpoint {
            protocol: "t".into(),
            fingerprint: 0,
            param: 0,
            symmetric: false,
            n: 5,
            stats: SimStats::default(),
            last_disagreement: None,
            states: vec![1, 2],
            counts: vec![2, 2],
            rng_kind: 1,
            rng_words: Vec::new(),
            trace: None,
            aux: Vec::new(),
        };
        assert!(matches!(ck.validate(), Err(CheckpointError::Corrupt(_))));
    }
}
