//! Anonymous configurations: multisets of states (Definition 1.1 of the
//! paper).

use std::collections::BTreeMap;

use crate::protocol::Protocol;

/// The multiset of states of a population — a *configuration* in the sense of
/// Definition 1.1: "as agents with the same state are identical, we define a
/// configuration as the multiset that contains all the states of the
/// population".
///
/// Stored as an ordered map so that equal multisets compare equal and hash
/// identically; this is the canonical form used by the model checker.
///
/// # Example
///
/// ```
/// use pp_protocol::CountConfig;
///
/// let config: CountConfig<u8> = [1, 1, 2].into_iter().collect();
/// assert_eq!(config.n(), 3);
/// assert_eq!(config.count(&1), 2);
/// assert_eq!(config.distinct(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CountConfig<S: Ord> {
    counts: BTreeMap<S, usize>,
    n: usize,
}

impl<S: Clone + Ord> CountConfig<S> {
    /// Creates an empty configuration.
    pub fn new() -> Self {
        CountConfig {
            counts: BTreeMap::new(),
            n: 0,
        }
    }

    /// Total number of agents.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether the configuration contains no agents.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of distinct states present.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Multiplicity of `state`.
    pub fn count(&self, state: &S) -> usize {
        self.counts.get(state).copied().unwrap_or(0)
    }

    /// Adds `count` agents in `state`.
    pub fn insert(&mut self, state: S, count: usize) {
        if count == 0 {
            return;
        }
        *self.counts.entry(state).or_insert(0) += count;
        self.n += count;
    }

    /// Removes `count` agents in `state`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `count` agents are in `state` — removing agents
    /// that do not exist indicates a bug in the caller.
    pub fn remove(&mut self, state: &S, count: usize) {
        if count == 0 {
            return;
        }
        let c = self
            .counts
            .get_mut(state)
            .unwrap_or_else(|| panic!("removing {count} agents from an absent state"));
        assert!(*c >= count, "removing {count} agents but only {c} present");
        *c -= count;
        if *c == 0 {
            self.counts.remove(state);
        }
        self.n -= count;
    }

    /// Moves one agent from `from` to `to` (no-op when `from == to`).
    ///
    /// # Panics
    ///
    /// Panics if no agent is in state `from`.
    pub fn transfer(&mut self, from: &S, to: S) {
        if *from == to {
            return;
        }
        self.remove(from, 1);
        self.insert(to, 1);
    }

    /// Iterates over `(state, count)` pairs in state order.
    pub fn iter(&self) -> impl Iterator<Item = (&S, usize)> {
        self.counts.iter().map(|(s, c)| (s, *c))
    }

    /// The distinct states present, in order.
    pub fn states(&self) -> impl Iterator<Item = &S> {
        self.counts.keys()
    }

    /// Expands the multiset into a vector of states (in canonical order).
    pub fn to_state_vec(&self) -> Vec<S> {
        let mut out = Vec::with_capacity(self.n);
        for (s, c) in self.iter() {
            for _ in 0..c {
                out.push(s.clone());
            }
        }
        out
    }

    /// Iterates over all *interacting ordered state pairs*: pairs `(s1, s2)`
    /// such that two distinct agents, the initiator in `s1` and the responder
    /// in `s2`, exist in this configuration. A state interacts with itself
    /// only when its multiplicity is at least 2.
    pub fn ordered_state_pairs(&self) -> impl Iterator<Item = (&S, &S)> {
        self.counts.iter().flat_map(move |(s1, c1)| {
            self.counts.keys().filter_map(move |s2| {
                if s1 == s2 && *c1 < 2 {
                    None
                } else {
                    Some((s1, s2))
                }
            })
        })
    }

    /// Whether the configuration is *silent*: no interacting pair of agents
    /// would change state.
    pub fn is_silent<P>(&self, protocol: &P) -> bool
    where
        P: Protocol<State = S>,
        S: std::hash::Hash + std::fmt::Debug,
    {
        self.ordered_state_pairs()
            .all(|(a, b)| protocol.is_null_interaction(a, b))
    }

    /// Histogram of outputs over all agents.
    pub fn output_counts<P>(&self, protocol: &P) -> BTreeMap<P::Output, usize>
    where
        P: Protocol<State = S>,
        S: std::hash::Hash + std::fmt::Debug,
    {
        let mut out = BTreeMap::new();
        for (s, c) in self.iter() {
            *out.entry(protocol.output(s)).or_insert(0) += c;
        }
        out
    }

    /// Returns `Some(o)` when every agent outputs `o`.
    pub fn output_consensus<P>(&self, protocol: &P) -> Option<P::Output>
    where
        P: Protocol<State = S>,
        S: std::hash::Hash + std::fmt::Debug,
    {
        let counts = self.output_counts(protocol);
        if counts.len() == 1 {
            counts.into_keys().next()
        } else {
            None
        }
    }
}

impl<S: Clone + Ord> FromIterator<S> for CountConfig<S> {
    fn from_iter<T: IntoIterator<Item = S>>(iter: T) -> Self {
        let mut config = CountConfig::new();
        for s in iter {
            config.insert(s, 1);
        }
        config
    }
}

impl<S: Clone + Ord> Extend<S> for CountConfig<S> {
    fn extend<T: IntoIterator<Item = S>>(&mut self, iter: T) {
        for s in iter {
            self.insert(s, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_track_n() {
        let mut c = CountConfig::new();
        c.insert(1u8, 3);
        c.insert(2u8, 1);
        assert_eq!(c.n(), 4);
        c.remove(&1, 2);
        assert_eq!(c.n(), 2);
        assert_eq!(c.count(&1), 1);
        c.remove(&1, 1);
        assert_eq!(c.distinct(), 1);
    }

    #[test]
    #[should_panic(expected = "only")]
    fn remove_too_many_panics() {
        let mut c: CountConfig<u8> = [1].into_iter().collect();
        c.remove(&1, 2);
    }

    #[test]
    fn transfer_moves_one_agent() {
        let mut c: CountConfig<u8> = [1, 1].into_iter().collect();
        c.transfer(&1, 2);
        assert_eq!(c.count(&1), 1);
        assert_eq!(c.count(&2), 1);
        assert_eq!(c.n(), 2);
    }

    #[test]
    fn transfer_to_same_state_is_noop() {
        let mut c: CountConfig<u8> = [1].into_iter().collect();
        c.transfer(&1, 1);
        assert_eq!(c.count(&1), 1);
    }

    #[test]
    fn ordered_pairs_respect_multiplicity() {
        let c: CountConfig<u8> = [1, 2].into_iter().collect();
        let pairs: Vec<(u8, u8)> = c.ordered_state_pairs().map(|(a, b)| (*a, *b)).collect();
        // (1,1) and (2,2) excluded: multiplicity 1.
        assert_eq!(pairs, vec![(1, 2), (2, 1)]);

        let c2: CountConfig<u8> = [1, 1].into_iter().collect();
        let pairs2: Vec<(u8, u8)> = c2.ordered_state_pairs().map(|(a, b)| (*a, *b)).collect();
        assert_eq!(pairs2, vec![(1, 1)]);
    }

    #[test]
    fn canonical_equality() {
        let a: CountConfig<u8> = [3, 1, 2].into_iter().collect();
        let b: CountConfig<u8> = [2, 3, 1].into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn to_state_vec_is_sorted_expansion() {
        let c: CountConfig<u8> = [2, 1, 2].into_iter().collect();
        assert_eq!(c.to_state_vec(), vec![1, 2, 2]);
    }
}
