//! The indexed simulation engine.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::error::FrameworkError;
use crate::population::Population;
use crate::protocol::Protocol;
use crate::scheduler::Scheduler;
use crate::trace::InteractionTrace;

/// Counters maintained by a running simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Interactions executed so far.
    pub steps: u64,
    /// Interactions in which at least one agent changed state.
    pub state_changes: u64,
    /// The step index (1-based) of the most recent state change; 0 when no
    /// change has happened yet.
    pub last_change_step: u64,
}

/// What happened in a single interaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepReport<S> {
    /// 1-based index of this interaction.
    pub step: u64,
    /// `(initiator, responder)` agent indices.
    pub pair: (usize, usize),
    /// States before the interaction, `(initiator, responder)`.
    pub before: (S, S),
    /// States after the interaction, `(initiator, responder)`.
    pub after: (S, S),
}

impl<S: PartialEq> StepReport<S> {
    /// Whether the interaction changed either agent.
    pub fn changed(&self) -> bool {
        self.before != self.after
    }
}

/// Result of driving a simulation to silence (or to its step budget).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport<O> {
    /// Total interactions executed.
    pub steps: u64,
    /// Step of the last state change — for a silent run, the moment the
    /// configuration stopped evolving.
    pub steps_to_silence: u64,
    /// The smallest `t` such that outputs were unanimous after every prefix
    /// of `>= t` interactions (exact, because runs end silent). `0` when the
    /// initial configuration was already unanimous and never diverged.
    pub steps_to_consensus: u64,
    /// Number of state-changing interactions.
    pub state_changes: u64,
    /// The unanimous output at the end of the run, if outputs agree.
    pub consensus: Option<O>,
}

/// An indexed simulation: a protocol, a population, a scheduler and a seeded
/// RNG.
///
/// The engine tracks output agreement incrementally (O(1) per interaction),
/// so [`RunReport::steps_to_consensus`] is exact. Silence is detected by a
/// periodic scan over the distinct-state pairs of the anonymous
/// configuration; [`RunReport::steps_to_silence`] is nevertheless exact
/// because the engine records the last step at which any state changed.
///
/// # Example
///
/// See the [crate-level example](crate).
pub struct Simulation<'p, P: Protocol, Sch, R = StdRng> {
    protocol: &'p P,
    population: Population<P::State>,
    scheduler: Sch,
    rng: R,
    stats: SimStats,
    output_counts: BTreeMap<P::Output, usize>,
    /// `Some(t)`: outputs were not unanimous after `t` interactions (t = 0 is
    /// the initial configuration); tracks the latest such `t`.
    last_disagreement: Option<u64>,
    trace: Option<InteractionTrace>,
}

impl<'p, P, Sch> Simulation<'p, P, Sch>
where
    P: Protocol,
    Sch: Scheduler<P::State>,
{
    /// Creates a simulation over `population`, driven by `scheduler` and the
    /// RNG seeded with `seed`.
    pub fn new(
        protocol: &'p P,
        population: Population<P::State>,
        scheduler: Sch,
        seed: u64,
    ) -> Self {
        Self::with_rng(protocol, population, scheduler, StdRng::seed_from_u64(seed))
    }
}

impl<'p, P, Sch, R> Simulation<'p, P, Sch, R>
where
    P: Protocol,
    Sch: Scheduler<P::State>,
    R: RngCore,
{
    /// Like [`new`](Self::new) with an explicitly constructed generator —
    /// the entry point for counter-based trial streams
    /// ([`Philox4x32::stream`](rand::rngs::Philox4x32::stream)) whose
    /// identity is richer than one `u64`.
    pub fn with_rng(
        protocol: &'p P,
        population: Population<P::State>,
        scheduler: Sch,
        rng: R,
    ) -> Self {
        let output_counts = population.output_counts(protocol);
        let initially_unanimous = output_counts.len() <= 1;
        Simulation {
            protocol,
            population,
            scheduler,
            rng,
            stats: SimStats::default(),
            output_counts,
            last_disagreement: if initially_unanimous { None } else { Some(0) },
            trace: None,
        }
    }

    /// Starts recording the interaction schedule for later replay.
    pub fn record_trace(&mut self) {
        self.trace = Some(InteractionTrace::new(self.population.len()));
    }

    /// Takes the recorded trace, if recording was enabled.
    pub fn take_trace(&mut self) -> Option<InteractionTrace> {
        self.trace.take()
    }

    /// The protocol driving this simulation.
    pub fn protocol(&self) -> &P {
        self.protocol
    }

    /// Read access to the current population.
    pub fn population(&self) -> &Population<P::State> {
        &self.population
    }

    /// Current counters.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Histogram of current outputs.
    pub fn output_counts(&self) -> &BTreeMap<P::Output, usize> {
        &self.output_counts
    }

    fn outputs_unanimous(&self) -> bool {
        self.output_counts.len() <= 1
    }

    /// Executes one interaction and reports it.
    ///
    /// # Errors
    ///
    /// Propagates scheduler misbehaviour ([`FrameworkError::ReflexivePair`],
    /// [`FrameworkError::AgentOutOfBounds`]) and rejects populations with
    /// fewer than two agents.
    pub fn step(&mut self) -> Result<StepReport<P::State>, FrameworkError> {
        let n = self.population.len();
        if n < 2 {
            return Err(FrameworkError::PopulationTooSmall { n });
        }
        let (i, j) = self.scheduler.next_pair(&self.population, &mut self.rng);
        if let Some(trace) = &mut self.trace {
            trace.push(i, j);
        }
        let before = (self.population[i].clone(), self.population[j].clone());
        let changed = self.population.interact(self.protocol, i, j)?;
        let after = (self.population[i].clone(), self.population[j].clone());
        self.stats.steps += 1;
        if changed {
            self.stats.state_changes += 1;
            self.stats.last_change_step = self.stats.steps;
            self.update_output_counts(&before, &after);
        }
        if !self.outputs_unanimous() {
            self.last_disagreement = Some(self.stats.steps);
        }
        Ok(StepReport {
            step: self.stats.steps,
            pair: (i, j),
            before,
            after,
        })
    }

    fn update_output_counts(
        &mut self,
        before: &(P::State, P::State),
        after: &(P::State, P::State),
    ) {
        for (b, a) in [(&before.0, &after.0), (&before.1, &after.1)] {
            let ob = self.protocol.output(b);
            let oa = self.protocol.output(a);
            if ob != oa {
                let slot = self
                    .output_counts
                    .get_mut(&ob)
                    .expect("output histogram out of sync");
                *slot -= 1;
                if *slot == 0 {
                    self.output_counts.remove(&ob);
                }
                *self.output_counts.entry(oa).or_insert(0) += 1;
            }
        }
    }

    /// Runs until the configuration is silent (no pair of agents can change
    /// state), checking for silence every `check_interval` state changes and
    /// whenever `max_steps` elapses.
    ///
    /// Protocols that are not silent (e.g. ones whose outputs oscillate
    /// forever) exhaust the budget instead.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::MaxStepsExceeded`] when the budget is
    /// exhausted before silence, and propagates any scheduler error.
    pub fn run_until_silent(
        &mut self,
        max_steps: u64,
        check_interval: u64,
    ) -> Result<RunReport<P::Output>, FrameworkError> {
        let interval = check_interval.max(1);
        let mut next_check = self.stats.steps + interval;
        // A population of one agent is vacuously silent.
        if self.population.len() < 2 {
            return Ok(self.report());
        }
        if self.population.is_silent(self.protocol) {
            return Ok(self.report());
        }
        while self.stats.steps < max_steps {
            self.step()?;
            if self.stats.steps >= next_check {
                next_check = self.stats.steps + interval;
                if self.population.is_silent(self.protocol) {
                    return Ok(self.report());
                }
            }
        }
        if self.population.is_silent(self.protocol) {
            return Ok(self.report());
        }
        Err(FrameworkError::MaxStepsExceeded { max_steps })
    }

    /// Runs until `condition` holds on the population (checked after every
    /// interaction), returning the number of interactions executed in this
    /// call. Useful for user-defined convergence notions — e.g. "90% of
    /// outputs agree" — that are cheaper than full silence.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::MaxStepsExceeded`] when the condition does
    /// not hold within `max_steps` total interactions, and propagates any
    /// scheduler error.
    pub fn run_until<F>(&mut self, max_steps: u64, mut condition: F) -> Result<u64, FrameworkError>
    where
        F: FnMut(&Population<P::State>) -> bool,
    {
        let start = self.stats.steps;
        if condition(&self.population) {
            return Ok(0);
        }
        while self.stats.steps < max_steps {
            self.step()?;
            if condition(&self.population) {
                return Ok(self.stats.steps - start);
            }
        }
        Err(FrameworkError::MaxStepsExceeded { max_steps })
    }

    /// Runs exactly `steps` interactions (or stops early on error), invoking
    /// `observer` after each one. Useful for protocol-specific accounting
    /// such as counting ket exchanges.
    ///
    /// # Errors
    ///
    /// Propagates scheduler errors.
    pub fn run_observed<F>(&mut self, steps: u64, mut observer: F) -> Result<(), FrameworkError>
    where
        F: FnMut(&StepReport<P::State>),
    {
        for _ in 0..steps {
            let report = self.step()?;
            observer(&report);
        }
        Ok(())
    }

    /// Runs until silent like [`run_until_silent`](Self::run_until_silent),
    /// invoking `observer` after each interaction.
    ///
    /// # Errors
    ///
    /// Same as [`run_until_silent`](Self::run_until_silent).
    pub fn run_until_silent_observed<F>(
        &mut self,
        max_steps: u64,
        check_interval: u64,
        mut observer: F,
    ) -> Result<RunReport<P::Output>, FrameworkError>
    where
        F: FnMut(&StepReport<P::State>),
    {
        let interval = check_interval.max(1);
        let mut next_check = self.stats.steps + interval;
        if self.population.len() < 2 || self.population.is_silent(self.protocol) {
            return Ok(self.report());
        }
        while self.stats.steps < max_steps {
            let report = self.step()?;
            observer(&report);
            if self.stats.steps >= next_check {
                next_check = self.stats.steps + interval;
                if self.population.is_silent(self.protocol) {
                    return Ok(self.report());
                }
            }
        }
        if self.population.is_silent(self.protocol) {
            return Ok(self.report());
        }
        Err(FrameworkError::MaxStepsExceeded { max_steps })
    }

    /// A [`RunReport`] snapshot of the execution so far. (Runs that end via
    /// [`run_until_silent`](Self::run_until_silent) return the same value.)
    pub fn report(&self) -> RunReport<P::Output> {
        RunReport {
            steps: self.stats.steps,
            steps_to_silence: self.stats.last_change_step,
            steps_to_consensus: self.last_disagreement.map_or(0, |t| t + 1),
            state_changes: self.stats.state_changes,
            consensus: self.population.output_consensus(self.protocol),
        }
    }

    /// Overwrites the state of agent `index` out-of-band (fault injection:
    /// crash-and-restart, adversarial corruption). Keeps the output
    /// histogram and disagreement tracking consistent.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::AgentOutOfBounds`] for an invalid index.
    pub fn inject_state(&mut self, index: usize, state: P::State) -> Result<(), FrameworkError> {
        if index >= self.population.len() {
            return Err(FrameworkError::AgentOutOfBounds {
                index,
                n: self.population.len(),
            });
        }
        let before = self.population[index].clone();
        if before == state {
            return Ok(());
        }
        let after = state.clone();
        self.population.set_state(index, state)?;
        self.stats.state_changes += 1;
        self.stats.last_change_step = self.stats.steps;
        // Reuse the pairwise updater; the second slot is a no-op pair.
        self.update_output_counts(&(before, after.clone()), &(after.clone(), after));
        if !self.outputs_unanimous() {
            self.last_disagreement = Some(self.stats.steps);
        }
        Ok(())
    }

    /// Consumes the simulation and returns the final population.
    pub fn into_population(self) -> Population<P::State> {
        self.population
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::UniformPairScheduler;

    struct Max;

    impl Protocol for Max {
        type State = u8;
        type Input = u8;
        type Output = u8;

        fn name(&self) -> &str {
            "max"
        }

        fn input(&self, i: &u8) -> u8 {
            *i
        }

        fn output(&self, s: &u8) -> u8 {
            *s
        }

        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            let m = *a.max(b);
            (m, m)
        }

        fn is_symmetric(&self) -> bool {
            true
        }
    }

    fn sim(inputs: &[u8], seed: u64) -> Simulation<'static, Max, UniformPairScheduler> {
        let population = Population::from_inputs(&Max, inputs);
        Simulation::new(&Max, population, UniformPairScheduler::new(), seed)
    }

    #[test]
    fn max_epidemic_converges_to_max() {
        let mut s = sim(&[3, 1, 4, 1, 5, 9, 2, 6], 11);
        let report = s.run_until_silent(100_000, 8).unwrap();
        assert_eq!(report.consensus, Some(9));
        assert!(report.steps_to_silence > 0);
        assert!(report.steps_to_consensus <= report.steps_to_silence);
    }

    #[test]
    fn silent_start_returns_immediately() {
        let mut s = sim(&[5, 5, 5], 1);
        let report = s.run_until_silent(10, 1).unwrap();
        assert_eq!(report.steps, 0);
        assert_eq!(report.steps_to_silence, 0);
        assert_eq!(report.steps_to_consensus, 0);
        assert_eq!(report.consensus, Some(5));
    }

    #[test]
    fn single_agent_population_is_silent() {
        let mut s = sim(&[7], 1);
        let report = s.run_until_silent(10, 1).unwrap();
        assert_eq!(report.consensus, Some(7));
    }

    #[test]
    fn step_on_tiny_population_errors() {
        let mut s = sim(&[7], 1);
        assert_eq!(
            s.step().unwrap_err(),
            FrameworkError::PopulationTooSmall { n: 1 }
        );
    }

    #[test]
    fn output_histogram_stays_consistent() {
        let mut s = sim(&[1, 2, 3, 4], 5);
        for _ in 0..50 {
            let _ = s.step().unwrap();
            let fresh = s.population().output_counts(&Max);
            assert_eq!(&fresh, s.output_counts());
        }
    }

    #[test]
    fn consensus_step_matches_bruteforce_replay() {
        // Replay the same run and find the true last-disagreement step.
        let inputs = [3u8, 1, 4, 1, 5];
        let mut s = sim(&inputs, 99);
        s.record_trace();
        let report = s.run_until_silent(100_000, 4).unwrap();
        let trace = s.take_trace().unwrap();

        let mut population = Population::from_inputs(&Max, &inputs);
        let mut last_disagreement = None;
        if population.output_consensus(&Max).is_none() {
            last_disagreement = Some(0u64);
        }
        for (step, (i, j)) in trace.pairs().iter().enumerate() {
            population.interact(&Max, *i, *j).unwrap();
            if population.output_consensus(&Max).is_none() {
                last_disagreement = Some(step as u64 + 1);
            }
        }
        assert_eq!(
            report.steps_to_consensus,
            last_disagreement.map_or(0, |t| t + 1)
        );
    }

    #[test]
    fn observer_sees_every_step() {
        let mut s = sim(&[1, 2, 3], 7);
        let mut seen = 0u64;
        s.run_observed(25, |_| seen += 1).unwrap();
        assert_eq!(seen, 25);
        assert_eq!(s.stats().steps, 25);
    }

    #[test]
    fn run_until_custom_condition() {
        let mut s = sim(&[1, 2, 3, 4, 9], 5);
        // Stop when a majority outputs 9 — earlier than full silence.
        let steps = s
            .run_until(100_000, |pop| {
                pop.iter().filter(|&&x| x == 9).count() * 2 > pop.len()
            })
            .unwrap();
        assert!(steps > 0);
        let nines = s.population().iter().filter(|&&x| x == 9).count();
        assert!(nines * 2 > 5);
        // Condition already true: zero steps.
        let zero = s.run_until(100_000, |_| true).unwrap();
        assert_eq!(zero, 0);
    }

    #[test]
    fn run_until_budget_exhaustion() {
        let mut s = sim(&[1, 2], 5);
        assert_eq!(
            s.run_until(3, |_| false).unwrap_err(),
            FrameworkError::MaxStepsExceeded { max_steps: 3 }
        );
    }

    #[test]
    fn inject_state_keeps_histogram_consistent() {
        let mut s = sim(&[1, 2, 3], 9);
        for _ in 0..10 {
            let _ = s.step().unwrap();
        }
        s.inject_state(0, 7).unwrap();
        let fresh = s.population().output_counts(&Max);
        assert_eq!(&fresh, s.output_counts());
        assert!(s.inject_state(9, 1).is_err());
        // Injecting the same state is a no-op.
        let changes = s.stats().state_changes;
        s.inject_state(0, 7).unwrap();
        assert_eq!(s.stats().state_changes, changes);
    }

    #[test]
    fn max_steps_exceeded_when_budget_too_small() {
        let mut s = sim(&[1, 2, 3, 4, 5, 6, 7, 8], 3);
        let err = s.run_until_silent(1, 1000).unwrap_err();
        assert_eq!(err, FrameworkError::MaxStepsExceeded { max_steps: 1 });
    }
}
