//! Activity bookkeeping strategies for the count engine.
//!
//! The count engine must know, at every change-point, the total sampling
//! weight of *active* (state-changing) ordered slot pairs — `mass` — plus
//! enough structure to draw one active pair with probability proportional to
//! its weight `c_i · (c_j − [i = j])`. This module isolates that bookkeeping
//! behind the [`Activity`] trait with three implementations:
//!
//! - [`SparseActivity`] (the default): per-slot adjacency lists of active
//!   out-/in-neighbors stored as plain sorted `u32` vectors ([`VecAdj`]),
//!   discovered lazily as states appear. A count change at slot `t` touches
//!   only the rows active into `t` (`O(deg)` instead of `O(slots)`), changed
//!   rows are collected in a dirty set and settled once per change-point,
//!   and conditional pair draws go through a [`Fenwick`] tree over
//!   `row_mass` in `O(log slots + deg)`.
//! - [`CompactActivity`]: the same incremental index over a compressed row
//!   store ([`CompactAdj`]) — blocked bitsets for dense rows,
//!   delta-compressed LEB128 lists for sparse rows, chosen per row by
//!   occupancy, with a single shared row set when the protocol is
//!   [symmetric](crate::Protocol::is_symmetric). At `slots ≥ 10^4` it cuts
//!   the bytes per active pair by well over 4× versus [`VecAdj`]'s flat
//!   8 bytes, which is what keeps full-discovery runs feasible toward
//!   `k = 40` Circles.
//! - [`DenseActivity`]: the original engine's bookkeeping — a dense
//!   `slots × slots` pair matrix scanned per count change, a full
//!   `row_mass` refresh per change-point and linear-scan sampling. Kept as
//!   the reference baseline: replaying the same schedule through all three
//!   indexes must produce bit-identical runs, and the `backend` bench
//!   measures the per-change-point gap.
//!
//! Discovery itself is also bookkeeping the trait can halve: for symmetric
//! protocols [`Activity::add_slot_symmetric`] derives each mirrored ordered
//! query from its twin, so a new slot costs one protocol call per unordered
//! pair instead of two. [`Activity::add_slot_from_lists`] ingests a slot
//! whose activity is already classified (a warm engine materializing a
//! table-known state; see [`TransitionTable`](crate::TransitionTable))
//! without any protocol calls at all.
//!
//! All pair-weight arithmetic is `u128`, so populations are no longer capped
//! at `u32::MAX` agents (the engine accepts up to `2^63 − 1`).

use crate::fenwick::Fenwick;

/// Read-only sampling interface over an activity index, used by
/// [`CountView`](crate::CountView) to answer scheduler queries without
/// exposing the index representation.
pub trait PairSampling {
    /// Whether the ordered slot pair `(i, j)` changes state when it
    /// interacts.
    fn is_active(&self, i: usize, j: usize) -> bool;

    /// Maps the `r`-th unit of active weight to its ordered slot pair:
    /// active pairs are ordered by initiator slot, then responder slot, and
    /// pair `(i, j)` spans `c_i · (c_j − [i = j])` units. Requires
    /// `r < mass`.
    fn sample_change(&self, r: u128, counts: &[u64]) -> (usize, usize);
}

/// Incrementally maintained activity index over the count engine's slots.
///
/// The engine drives implementations through a strict protocol:
/// [`add_slot`](Activity::add_slot) once per newly observed state (counts
/// already extended with a zero entry), [`count_changed`](Activity::count_changed)
/// once per count delta (counts already updated), and
/// [`settle`](Activity::settle) once per change-point after all deltas, which
/// must leave [`mass`](Activity::mass) and [`row_mass`](Activity::row_mass)
/// exact.
pub trait Activity: PairSampling + Default {
    /// Registers the slot `counts.len() - 1` (which must hold zero agents)
    /// and discovers its activity against all existing slots by querying
    /// `active(i, j)` for every ordered pair involving the new slot.
    fn add_slot(&mut self, counts: &[u64], active: impl FnMut(usize, usize) -> bool);

    /// [`add_slot`](Activity::add_slot) for protocols whose activity is
    /// mirror-invariant (`active(i, j) == active(j, i)`, guaranteed by
    /// [`Protocol::is_symmetric`](crate::Protocol::is_symmetric)):
    /// implementations may answer each mirrored ordered query from its twin
    /// instead of calling `active` twice.
    ///
    /// The default wraps `active` in a last-query memo keyed on the
    /// unordered pair. [`add_slot`](Activity::add_slot) implementations
    /// query the two orientations of each pair back-to-back, so the memo
    /// halves the underlying protocol-transition calls without any storage.
    fn add_slot_symmetric(&mut self, counts: &[u64], mut active: impl FnMut(usize, usize) -> bool) {
        let mut memo: Option<((usize, usize), bool)> = None;
        self.add_slot(counts, move |i, j| {
            let key = if i >= j { (i, j) } else { (j, i) };
            if let Some((k, v)) = memo {
                if k == key {
                    return v;
                }
            }
            let v = active(key.0, key.1);
            memo = Some((key, v));
            v
        });
    }

    /// Declares, before any slot exists, that every pair this index will
    /// ever see is mirror-invariant, letting implementations share storage
    /// between out- and in-rows. Sound only for symmetric protocols; the
    /// default does nothing.
    fn declare_symmetric(&mut self) {}

    /// Registers the slot `counts.len() - 1` (which must hold zero agents)
    /// with its activity *already classified*: `out` lists the existing
    /// slots `j` with `(new, j)` active, `ins` the slots `i` with
    /// `(i, new)` active — both strictly ascending, both excluding the
    /// diagonal, which `diag` covers. The warm engine's lazy
    /// materialization uses this to ingest a table-known slot in
    /// `O(deg)` instead of `O(slots)` activity queries.
    ///
    /// The default replays the lists through [`add_slot`](Activity::add_slot)
    /// with a binary-search membership closure — correct for any
    /// implementation; the bundled indexes override it with direct
    /// `O(deg)` appends.
    fn add_slot_from_lists(&mut self, counts: &[u64], out: &[u32], ins: &[u32], diag: bool) {
        let id = counts.len() - 1;
        self.add_slot(counts, |r, c| {
            if r == c {
                diag
            } else if r == id {
                out.binary_search(&(c as u32)).is_ok()
            } else {
                debug_assert_eq!(c, id, "add_slot queries only pairs involving the new slot");
                ins.binary_search(&(r as u32)).is_ok()
            }
        });
    }

    /// Absorbs a count change of `delta` agents at `slot` (already applied
    /// to `counts`) into the incremental structures, deferring row-mass
    /// settlement to [`settle`](Activity::settle).
    fn count_changed(&mut self, slot: usize, delta: i64);

    /// Recomputes the row masses of every row dirtied since the last call
    /// and restores the `mass`/`row_mass`/sampling invariants.
    fn settle(&mut self, counts: &[u64]);

    /// Total weight of active ordered pairs; zero iff the configuration is
    /// silent.
    fn mass(&self) -> u128;

    /// Per-initiator-slot active weight
    /// `row_mass[i] = c_i · col_in[i] − [active(i, i)] · c_i`.
    fn row_mass(&self) -> &[u128];

    /// Visits the active out-neighbors of slot `i` in ascending order —
    /// the row-export hook used to hand a discovered adjacency to a
    /// [`TransitionTable`](crate::TransitionTable).
    fn walk_out(&self, i: usize, f: &mut dyn FnMut(usize));

    /// Visits the active in-neighbors of slot `j` (initiators `i` with
    /// `(i, j)` active) in ascending order — the column-export hook
    /// segment publication uses to build in-row extensions without a
    /// transpose pass.
    fn walk_in(&self, j: usize, f: &mut dyn FnMut(usize));

    /// Number of active ordered pairs currently stored.
    fn active_pairs(&self) -> usize;

    /// Heap bytes devoted to pair adjacency — the quantity the compact row
    /// store minimizes. Excludes the per-slot scalar arrays (`col_in`,
    /// `row_mass`, …), which are `O(slots)` for every index.
    fn adjacency_bytes(&self) -> usize;
}

/// Recomputes one row's mass from its count and in-column sum.
#[inline]
fn row_mass_of(count: u64, col_in: u64, diag_active: bool) -> u128 {
    let c = u128::from(count);
    c * u128::from(col_in) - if diag_active { c } else { 0 }
}

/// Row-storage strategy behind an [`AdjActivity`] index: which slots are
/// active against which, in both orientations, with rows kept in ascending
/// responder order.
///
/// Pairs arrive through [`add_pair`](AdjStore::add_pair) during discovery —
/// always involving the newest slot, with the other endpoint ascending per
/// direction — a pattern that lets implementations append to rows without
/// ever inserting mid-row.
pub trait AdjStore: Default + std::fmt::Debug {
    /// Registers the next slot (id `slots()`), with no active pairs yet.
    fn push_slot(&mut self);

    /// Number of registered slots.
    fn slots(&self) -> usize;

    /// Declares (before any slot exists) that the adjacency is symmetric;
    /// implementations may then serve in-row queries from the out-rows.
    fn declare_symmetric(&mut self);

    /// Marks the ordered pair `(i, j)` active. The endpoint equal to the
    /// newest slot anchors the append; the other endpoint must arrive in
    /// ascending order across calls, as [`Activity::add_slot`] discovery
    /// produces.
    fn add_pair(&mut self, i: usize, j: usize);

    /// Whether the ordered pair `(i, j)` is active.
    fn contains(&self, i: usize, j: usize) -> bool;

    /// Visits the out-neighbors of `i` ascending while `f` returns `true`.
    fn walk_out(&self, i: usize, f: impl FnMut(usize) -> bool);

    /// Visits the in-neighbors of `j` (rows `r` with `(r, j)` active)
    /// ascending while `f` returns `true`.
    fn walk_in(&self, j: usize, f: impl FnMut(usize) -> bool);

    /// Active ordered pairs stored.
    fn pairs(&self) -> usize;

    /// Heap bytes of adjacency payload.
    fn bytes(&self) -> usize;
}

/// Plain sorted-`Vec<u32>` row store — one out-row and one in-row per slot,
/// 8 bytes per active pair. The PR-3 representation, kept as the default
/// and as the footprint baseline the compact store is measured against.
#[derive(Debug, Default)]
pub struct VecAdj {
    /// `out[i]`: slots `j` (ascending) with `(i, j)` active.
    out: Vec<Vec<u32>>,
    /// `ins[j]`: slots `i` (ascending) with `(i, j)` active.
    ins: Vec<Vec<u32>>,
    pairs: usize,
}

impl AdjStore for VecAdj {
    fn push_slot(&mut self) {
        self.out.push(Vec::new());
        self.ins.push(Vec::new());
    }

    fn slots(&self) -> usize {
        self.out.len()
    }

    fn declare_symmetric(&mut self) {
        // Keeps both orientations: the flat layout is the measured baseline
        // and stays byte-identical to PR 3 regardless of protocol symmetry.
    }

    fn add_pair(&mut self, i: usize, j: usize) {
        debug_assert!(self.out[i].last().is_none_or(|&l| (l as usize) < j));
        debug_assert!(self.ins[j].last().is_none_or(|&l| (l as usize) < i));
        self.out[i].push(j as u32);
        self.ins[j].push(i as u32);
        self.pairs += 1;
    }

    fn contains(&self, i: usize, j: usize) -> bool {
        self.out[i].binary_search(&(j as u32)).is_ok()
    }

    fn walk_out(&self, i: usize, mut f: impl FnMut(usize) -> bool) {
        for &j in &self.out[i] {
            if !f(j as usize) {
                return;
            }
        }
    }

    fn walk_in(&self, j: usize, mut f: impl FnMut(usize) -> bool) {
        for &i in &self.ins[j] {
            if !f(i as usize) {
                return;
            }
        }
    }

    fn pairs(&self) -> usize {
        self.pairs
    }

    fn bytes(&self) -> usize {
        let payload = |rows: &[Vec<u32>]| -> usize { rows.iter().map(|r| r.capacity() * 4).sum() };
        payload(&self.out) + payload(&self.ins)
    }
}

/// One compressed adjacency row: delta-LEB128 while sparse, a blocked
/// bitset once the varint payload would outgrow one. Both representations
/// iterate in ascending id order, so draws agree bit-for-bit with the flat
/// rows.
#[derive(Debug, Clone)]
enum CompactRow {
    /// Ascending ids as LEB128 varints: the first id absolute, then gaps.
    Sparse { bytes: Vec<u8>, last: u32, len: u32 },
    /// Bitset blocked into `u64` words, indexed by id.
    Dense { blocks: Vec<u64>, len: u32 },
}

/// Appends one LEB128 varint.
fn push_varint(buf: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

impl CompactRow {
    fn new() -> Self {
        CompactRow::Sparse {
            bytes: Vec::new(),
            last: 0,
            len: 0,
        }
    }

    /// Appends `id` (strictly greater than every stored id) and converts to
    /// a bitset when the varint payload would exceed one over `slots`
    /// columns.
    fn push(&mut self, id: u32, slots: usize) {
        match self {
            CompactRow::Sparse { bytes, last, len } => {
                debug_assert!(*len == 0 || id > *last, "row ids must ascend");
                let gap = if *len == 0 { id } else { id - *last };
                push_varint(bytes, gap);
                *last = id;
                *len += 1;
                // Bitset payload is slots/8 bytes; the +8 slack keeps tiny
                // rows from flip-flopping representations. Ids may exceed
                // `slots` (segment extension rows address columns past their
                // own row count), so the block count covers the largest
                // stored id too.
                if bytes.len() > slots / 8 + 8 {
                    let blocks_len = slots.div_ceil(64).max(id as usize / 64 + 1);
                    let mut blocks = vec![0u64; blocks_len];
                    let count = *len;
                    self.walk(|j| {
                        blocks[j as usize / 64] |= 1 << (j % 64);
                        true
                    });
                    *self = CompactRow::Dense { blocks, len: count };
                }
            }
            CompactRow::Dense { blocks, len } => {
                let block = id as usize / 64;
                if block >= blocks.len() {
                    blocks.resize(block + 1, 0);
                }
                debug_assert_eq!(blocks[block] >> (id % 64) & 1, 0, "duplicate id");
                blocks[block] |= 1 << (id % 64);
                *len += 1;
            }
        }
    }

    /// Visits stored ids ascending while `f` returns `true`.
    fn walk(&self, mut f: impl FnMut(u32) -> bool) {
        match self {
            CompactRow::Sparse { bytes, len, .. } => {
                let mut iter = bytes.iter();
                let mut cur = 0u32;
                for k in 0..*len {
                    let mut v = 0u32;
                    let mut shift = 0;
                    loop {
                        let byte = *iter.next().expect("varint row truncated");
                        v |= u32::from(byte & 0x7f) << shift;
                        if byte & 0x80 == 0 {
                            break;
                        }
                        shift += 7;
                    }
                    cur = if k == 0 { v } else { cur + v };
                    if !f(cur) {
                        return;
                    }
                }
            }
            CompactRow::Dense { blocks, .. } => {
                for (b, &word) in blocks.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let j = (b as u32) * 64 + bits.trailing_zeros();
                        if !f(j) {
                            return;
                        }
                        bits &= bits - 1;
                    }
                }
            }
        }
    }

    fn contains(&self, id: u32) -> bool {
        match self {
            CompactRow::Sparse { .. } => {
                let mut found = false;
                self.walk(|j| {
                    if j >= id {
                        found = j == id;
                        return false;
                    }
                    true
                });
                found
            }
            CompactRow::Dense { blocks, .. } => blocks
                .get(id as usize / 64)
                .is_some_and(|word| word >> (id % 64) & 1 == 1),
        }
    }

    fn bytes(&self) -> usize {
        match self {
            CompactRow::Sparse { bytes, .. } => bytes.capacity(),
            CompactRow::Dense { blocks, .. } => blocks.capacity() * 8,
        }
    }

    /// Releases append slack — bulk loads call this once per row so the
    /// reported footprint is tight.
    fn shrink(&mut self) {
        match self {
            CompactRow::Sparse { bytes, .. } => bytes.shrink_to_fit(),
            CompactRow::Dense { blocks, .. } => blocks.shrink_to_fit(),
        }
    }
}

/// A borrowed view of one [`AdjRows`] row in its stored representation,
/// as returned by [`AdjRows::row_repr`] — what the on-disk transition
/// store persists verbatim.
#[derive(Debug, Clone, Copy)]
pub enum RowRepr<'a> {
    /// Delta-LEB128 payload: `len` ascending ids, the first absolute, the
    /// rest strictly positive gaps; `last` is the largest id.
    Sparse {
        /// The raw varint payload.
        payload: &'a [u8],
        /// Largest id in the row (`0` when empty).
        last: u32,
        /// Number of ids encoded.
        len: u32,
    },
    /// Blocked bitset: bit `j` of `blocks[j / 64]` set iff `j` is stored.
    Dense {
        /// The bitset words; trailing all-zero words may be absent.
        blocks: &'a [u64],
        /// Number of bits set.
        len: u32,
    },
}

/// An owned, compressed set of adjacency out-rows — the interchange format
/// between a [`TransitionTable`](crate::TransitionTable) and the activity
/// indexes. Rows use the same per-row representation as [`CompactAdj`]
/// (delta-varint or blocked bitset), so loading a compact index from a
/// table clones ~bytes instead of re-encoding tens of millions of pairs.
#[derive(Debug, Clone, Default)]
pub struct AdjRows {
    rows: Vec<CompactRow>,
    pairs: usize,
}

impl AdjRows {
    /// An empty row set.
    pub fn new() -> Self {
        AdjRows::default()
    }

    /// Number of rows (slots).
    pub fn slots(&self) -> usize {
        self.rows.len()
    }

    /// Total active ordered pairs stored.
    pub fn pairs(&self) -> usize {
        self.pairs
    }

    /// Appends an empty row.
    pub fn push_slot(&mut self) {
        self.rows.push(CompactRow::new());
    }

    /// Appends `j` to row `i`; `j` must exceed every id already in the row.
    pub fn push(&mut self, i: usize, j: usize) {
        let slots = self.rows.len();
        self.rows[i].push(j as u32, slots);
        self.pairs += 1;
    }

    /// Visits row `i` ascending while `f` returns `true`.
    pub fn walk(&self, i: usize, mut f: impl FnMut(usize) -> bool) {
        self.rows[i].walk(|j| f(j as usize));
    }

    /// Adopts row `i` wholesale from its delta-LEB128 payload: `count`
    /// ascending ids, the first absolute, the rest strictly positive gaps,
    /// the largest being `last` — exactly the per-row encoding the on-disk
    /// transition store persists. The densification policy matches
    /// incremental [`push`](Self::push)es (the choice depends only on the
    /// final payload length, which grows monotonically), so bulk loads
    /// build representation-identical rows while skipping the per-id
    /// re-encode — the store loader's fast path.
    ///
    /// The caller is responsible for the payload invariants (the store
    /// loader validates them during its decode pass); each varint must
    /// span at most 5 bytes so ids stay within `u32`. A malformed payload
    /// corrupts this row's iteration, never memory safety. The row must
    /// still be empty.
    pub fn set_row_varint(&mut self, i: usize, count: u32, last: u32, payload: &[u8]) {
        let slots = self.rows.len();
        debug_assert_eq!(self.rows[i].bytes(), 0, "row {i} must be empty");
        self.pairs += count as usize;
        let row = CompactRow::Sparse {
            bytes: payload.to_vec(),
            last,
            len: count,
        };
        self.rows[i] = if count > 0 && payload.len() > slots / 8 + 8 {
            let mut blocks = vec![0u64; slots.div_ceil(64)];
            row.walk(|j| {
                blocks[j as usize / 64] |= 1 << (j % 64);
                true
            });
            CompactRow::Dense { blocks, len: count }
        } else {
            row
        };
    }

    /// Adopts row `i` wholesale as a blocked bitset: bit `j` of
    /// `blocks[j / 64]` set iff pair `(i, j)` is active, `len` bits set in
    /// total. This is the store loader's fast path for dense rows — a
    /// straight word copy instead of tens of thousands of varint decodes.
    /// The caller validates the bits (none at or beyond
    /// [`slots`](Self::slots), popcount equal to `len`); the row must still
    /// be empty.
    pub fn set_row_dense(&mut self, i: usize, blocks: Vec<u64>, len: u32) {
        debug_assert_eq!(self.rows[i].bytes(), 0, "row {i} must be empty");
        debug_assert_eq!(
            blocks.iter().map(|w| w.count_ones()).sum::<u32>(),
            len,
            "row {i}: popcount disagrees with len"
        );
        self.pairs += len as usize;
        self.rows[i] = CompactRow::Dense { blocks, len };
    }

    /// Borrows row `i`'s stored representation — the zero-copy view
    /// [`save`](crate::transition_store::save) persists. Which variant a
    /// row uses is a pure function of its contents (see
    /// [`set_row_varint`](Self::set_row_varint)), so equal row sets expose
    /// equal representations.
    pub fn row_repr(&self, i: usize) -> RowRepr<'_> {
        match &self.rows[i] {
            CompactRow::Sparse { bytes, last, len } => RowRepr::Sparse {
                payload: bytes,
                last: *last,
                len: *len,
            },
            CompactRow::Dense { blocks, len } => RowRepr::Dense { blocks, len: *len },
        }
    }

    /// Whether row `i` contains `j`.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.rows[i].contains(j as u32)
    }

    /// Builds rows from a generator: `f(i, push)` must call `push(j)` for
    /// every active `(i, j)` in ascending `j`.
    pub fn from_fn(slots: usize, f: impl Fn(usize, &mut dyn FnMut(usize))) -> Self {
        let mut rows = AdjRows::new();
        for _ in 0..slots {
            rows.push_slot();
        }
        for i in 0..slots {
            f(i, &mut |j| rows.push(i, j));
        }
        rows
    }

    /// Expands to plain sorted id vectors (tests and table dumps).
    pub fn to_vecs(&self) -> Vec<Vec<u32>> {
        self.rows
            .iter()
            .map(|row| {
                let mut v = Vec::new();
                row.walk(|j| {
                    v.push(j);
                    true
                });
                v
            })
            .collect()
    }

    /// Heap bytes of row payload.
    pub fn bytes(&self) -> usize {
        self.rows.iter().map(CompactRow::bytes).sum()
    }

    /// The transposed row set: row `j` of the result holds every `i` with
    /// `(i, j)` stored here. One decode pass; rows of the result are built
    /// in ascending order because the outer walk ascends.
    pub fn transpose(&self) -> AdjRows {
        let slots = self.slots();
        let mut out = AdjRows::new();
        for _ in 0..slots {
            out.push_slot();
        }
        for i in 0..slots {
            self.walk(i, |j| {
                out.push(j, i);
                true
            });
        }
        for row in &mut out.rows {
            row.shrink();
        }
        out
    }
}

/// Compressed per-row adjacency store: delta-LEB128 lists for sparse rows,
/// blocked bitsets for dense rows (chosen per row by payload size), and a
/// single shared row set when the adjacency is
/// [declared symmetric](AdjStore::declare_symmetric) — in-rows then *are*
/// the out-rows, since a symmetric activity matrix equals its transpose.
#[derive(Debug)]
pub struct CompactAdj {
    out: Vec<CompactRow>,
    /// `None` once declared symmetric: in-queries are served from `out`.
    ins: Option<Vec<CompactRow>>,
    pairs: usize,
}

impl Default for CompactAdj {
    fn default() -> Self {
        CompactAdj {
            out: Vec::new(),
            ins: Some(Vec::new()),
            pairs: 0,
        }
    }
}

impl AdjStore for CompactAdj {
    fn push_slot(&mut self) {
        self.out.push(CompactRow::new());
        if let Some(ins) = &mut self.ins {
            ins.push(CompactRow::new());
        }
    }

    fn slots(&self) -> usize {
        self.out.len()
    }

    fn declare_symmetric(&mut self) {
        assert!(
            self.out.is_empty(),
            "symmetry must be declared before any slot exists"
        );
        self.ins = None;
    }

    fn add_pair(&mut self, i: usize, j: usize) {
        let slots = self.out.len();
        self.out[i].push(j as u32, slots);
        if let Some(ins) = &mut self.ins {
            ins[j].push(i as u32, slots);
        }
        self.pairs += 1;
    }

    fn contains(&self, i: usize, j: usize) -> bool {
        self.out[i].contains(j as u32)
    }

    fn walk_out(&self, i: usize, mut f: impl FnMut(usize) -> bool) {
        self.out[i].walk(|j| f(j as usize));
    }

    fn walk_in(&self, j: usize, mut f: impl FnMut(usize) -> bool) {
        // Symmetric adjacency: row j of the transpose is row j itself.
        let rows = self.ins.as_ref().unwrap_or(&self.out);
        rows[j].walk(|i| f(i as usize));
    }

    fn pairs(&self) -> usize {
        self.pairs
    }

    fn bytes(&self) -> usize {
        let payload = |rows: &[CompactRow]| -> usize { rows.iter().map(CompactRow::bytes).sum() };
        payload(&self.out) + self.ins.as_deref().map_or(0, payload)
    }
}

/// Slot count below which conditional sampling scans `row_mass` linearly
/// instead of maintaining the Fenwick tree — at a handful of slots the
/// sequential scan is faster than tree upkeep, and keeping the small-k
/// path lean is what lets the sparse index replace the dense one
/// everywhere.
const FENWICK_MIN_SLOTS: usize = 64;

/// Adjacency-list activity index generic over its row storage — see the
/// [module docs](self). [`SparseActivity`] and [`CompactActivity`] are the
/// two instantiations.
#[derive(Debug)]
pub struct AdjActivity<R: AdjStore> {
    adj: R,
    /// Whether the diagonal pair `(i, i)` is active.
    diag: Vec<bool>,
    /// `col_in[i] = Σ_j active(i, j) · c_j`.
    col_in: Vec<u64>,
    row_mass: Vec<u128>,
    fenwick: Fenwick,
    mass: u128,
    /// Rows whose mass is stale, awaiting [`Activity::settle`].
    dirty: Vec<u32>,
    /// `stamp[r] == epoch` iff row `r` is already queued in `dirty`.
    stamp: Vec<u64>,
    epoch: u64,
    /// Whether the Fenwick tree is live. Below
    /// [`FENWICK_MIN_SLOTS`] a linear row scan beats the tree's
    /// maintenance cost, so the tree stays empty until the slot count
    /// crosses the threshold (it never goes back).
    use_fenwick: bool,
}

/// Sparse per-slot adjacency activity index over plain sorted vectors —
/// the default; see the [module docs](self).
pub type SparseActivity = AdjActivity<VecAdj>;

/// The adjacency activity index over the compressed row store — the
/// memory-lean choice for large slot tables; see the [module docs](self).
pub type CompactActivity = AdjActivity<CompactAdj>;

impl<R: AdjStore> Default for AdjActivity<R> {
    fn default() -> Self {
        AdjActivity {
            adj: R::default(),
            diag: Vec::new(),
            col_in: Vec::new(),
            row_mass: Vec::new(),
            fenwick: Fenwick::new(),
            mass: 0,
            dirty: Vec::new(),
            stamp: Vec::new(),
            // Stamps start at zero, so the live epoch must not: a fresh row
            // would otherwise read as already-queued and never get dirtied.
            epoch: 1,
            use_fenwick: false,
        }
    }
}

impl<R: AdjStore> PairSampling for AdjActivity<R> {
    fn is_active(&self, i: usize, j: usize) -> bool {
        self.adj.contains(i, j)
    }

    fn sample_change(&self, r: u128, counts: &[u64]) -> (usize, usize) {
        debug_assert!(self.dirty.is_empty(), "sampling from an unsettled index");
        let (i, mut rem) = if self.use_fenwick {
            self.fenwick.find(r)
        } else {
            // Few slots: a sequential scan is cheaper than the tree. Same
            // row order as the tree search, so draws agree bit-for-bit.
            let mut rem = r;
            let mut row = usize::MAX;
            for (i, &m) in self.row_mass.iter().enumerate() {
                if rem < m {
                    row = i;
                    break;
                }
                rem -= m;
            }
            assert!(row != usize::MAX, "sampling walked past the total mass");
            (row, rem)
        };
        let ci = u128::from(counts[i]);
        let mut found = usize::MAX;
        self.adj.walk_out(i, |j| {
            let w = ci * u128::from(counts[j].saturating_sub(u64::from(i == j)));
            if rem < w {
                found = j;
                return false;
            }
            rem -= w;
            true
        });
        assert!(
            found != usize::MAX,
            "row mass out of sync with pair weights"
        );
        (i, found)
    }
}

impl<R: AdjStore> Activity for AdjActivity<R> {
    fn add_slot(&mut self, counts: &[u64], mut active: impl FnMut(usize, usize) -> bool) {
        let id = self.adj.slots();
        debug_assert_eq!(counts.len(), id + 1, "counts not extended for new slot");
        debug_assert_eq!(counts[id], 0, "new slot must hold zero agents");
        assert!(id < u32::MAX as usize, "slot ids exceed u32");
        self.adj.push_slot();
        self.diag.push(false);
        self.col_in.push(0);
        self.row_mass.push(0);
        self.stamp.push(0);
        if self.use_fenwick {
            self.fenwick.push(0);
        } else if self.row_mass.len() >= FENWICK_MIN_SLOTS {
            self.use_fenwick = true;
            self.fenwick.rebuild(&self.row_mass);
        }
        for j in 0..id {
            if active(id, j) {
                self.adj.add_pair(id, j);
            }
            if active(j, id) {
                self.adj.add_pair(j, id);
            }
        }
        if active(id, id) {
            self.adj.add_pair(id, id);
            self.diag[id] = true;
        }
        // The new slot holds no agents, so no existing col_in or row_mass
        // changes; only the new row's col_in must be summed once.
        let mut col_in = 0u64;
        self.adj.walk_out(id, |j| {
            col_in += counts[j];
            true
        });
        self.col_in[id] = col_in;
    }

    fn declare_symmetric(&mut self) {
        self.adj.declare_symmetric();
    }

    fn add_slot_from_lists(&mut self, counts: &[u64], out: &[u32], ins: &[u32], diag: bool) {
        let id = self.adj.slots();
        debug_assert_eq!(counts.len(), id + 1, "counts not extended for new slot");
        debug_assert_eq!(counts[id], 0, "new slot must hold zero agents");
        assert!(id < u32::MAX as usize, "slot ids exceed u32");
        self.adj.push_slot();
        self.diag.push(diag);
        self.col_in.push(0);
        self.row_mass.push(0);
        self.stamp.push(0);
        if self.use_fenwick {
            self.fenwick.push(0);
        } else if self.row_mass.len() >= FENWICK_MIN_SLOTS {
            self.use_fenwick = true;
            self.fenwick.rebuild(&self.row_mass);
        }
        // Out-row first (responders ascending), then the in-column
        // (initiators ascending), then the diagonal — every row receives
        // its appends in ascending id order, as add_pair requires.
        for &j in out {
            debug_assert!((j as usize) < id);
            self.adj.add_pair(id, j as usize);
        }
        for &i in ins {
            debug_assert!((i as usize) < id);
            self.adj.add_pair(i as usize, id);
        }
        if diag {
            self.adj.add_pair(id, id);
        }
        // The new slot holds no agents, so existing col_in and row_mass are
        // untouched; the new row's col_in sums its responder counts (the
        // diagonal contributes the slot's own zero count).
        self.col_in[id] = out.iter().map(|&j| counts[j as usize]).sum();
    }

    fn count_changed(&mut self, slot: usize, delta: i64) {
        let epoch = self.epoch;
        {
            let col_in = &mut self.col_in;
            let stamp = &mut self.stamp;
            let dirty = &mut self.dirty;
            self.adj.walk_in(slot, |r| {
                col_in[r] = col_in[r]
                    .checked_add_signed(delta)
                    .expect("col_in underflow");
                if stamp[r] != epoch {
                    stamp[r] = epoch;
                    dirty.push(r as u32);
                }
                true
            });
        }
        // The slot's own row mass scales with its count even when no active
        // pair points into it.
        if self.stamp[slot] != epoch {
            self.stamp[slot] = epoch;
            self.dirty.push(slot as u32);
        }
    }

    fn settle(&mut self, counts: &[u64]) {
        self.epoch += 1;
        if self.dirty.is_empty() {
            return;
        }
        let slots = self.row_mass.len();
        // Point updates cost O(log slots) each; past this threshold one
        // sequential rebuild of the whole tree is cheaper. Below the
        // Fenwick threshold there is no tree to maintain at all.
        let log2 = usize::BITS - slots.leading_zeros();
        let rebuild = self.use_fenwick && self.dirty.len() * (log2 as usize) >= slots;
        let point_update = self.use_fenwick && !rebuild;
        for &r32 in &self.dirty {
            let r = r32 as usize;
            let new = row_mass_of(counts[r], self.col_in[r], self.diag[r]);
            let old = self.row_mass[r];
            self.row_mass[r] = new;
            if new >= old {
                self.mass += new - old;
            } else {
                self.mass -= old - new;
            }
            if point_update {
                self.fenwick.add(r, new as i128 - old as i128);
            }
        }
        if rebuild {
            self.fenwick.rebuild(&self.row_mass);
        }
        self.dirty.clear();
    }

    fn mass(&self) -> u128 {
        self.mass
    }

    fn row_mass(&self) -> &[u128] {
        &self.row_mass
    }

    fn walk_out(&self, i: usize, f: &mut dyn FnMut(usize)) {
        self.adj.walk_out(i, |j| {
            f(j);
            true
        });
    }

    fn walk_in(&self, j: usize, f: &mut dyn FnMut(usize)) {
        self.adj.walk_in(j, |i| {
            f(i);
            true
        });
    }

    fn active_pairs(&self) -> usize {
        self.adj.pairs()
    }

    fn adjacency_bytes(&self) -> usize {
        self.adj.bytes()
    }
}

/// Dense pair-matrix activity index — the original engine's bookkeeping,
/// kept as the comparison baseline; see the [module docs](self).
#[derive(Debug)]
pub struct DenseActivity {
    /// `null[i * stride + j]`: the ordered pair `(i, j)` leaves both states
    /// unchanged. Row stride grows by doubling so slot ids stay stable.
    null: Vec<bool>,
    stride: usize,
    slots: usize,
    col_in: Vec<u64>,
    row_mass: Vec<u128>,
    mass: u128,
    pairs: usize,
}

impl Default for DenseActivity {
    fn default() -> Self {
        DenseActivity {
            null: vec![true; 16],
            stride: 4,
            slots: 0,
            col_in: Vec::new(),
            row_mass: Vec::new(),
            mass: 0,
            pairs: 0,
        }
    }
}

impl DenseActivity {
    /// Doubles the pair-matrix stride, remapping existing entries.
    fn grow(&mut self) {
        let old = self.stride;
        let stride = old * 2;
        let mut null = vec![true; stride * stride];
        for i in 0..self.slots {
            null[i * stride..i * stride + self.slots]
                .copy_from_slice(&self.null[i * old..i * old + self.slots]);
        }
        self.stride = stride;
        self.null = null;
    }
}

impl PairSampling for DenseActivity {
    fn is_active(&self, i: usize, j: usize) -> bool {
        !self.null[i * self.stride + j]
    }

    fn sample_change(&self, r: u128, counts: &[u64]) -> (usize, usize) {
        let mut r = r;
        for (i, &row) in self.row_mass.iter().enumerate() {
            if r >= row {
                r -= row;
                continue;
            }
            let ci = u128::from(counts[i]);
            for (j, &cj) in counts.iter().enumerate().take(self.slots) {
                if self.null[i * self.stride + j] {
                    continue;
                }
                let w = ci * u128::from(cj.saturating_sub(u64::from(i == j)));
                if r < w {
                    return (i, j);
                }
                r -= w;
            }
            unreachable!("row mass out of sync with pair weights");
        }
        unreachable!("total mass out of sync with row masses");
    }
}

impl Activity for DenseActivity {
    fn add_slot(&mut self, counts: &[u64], mut active: impl FnMut(usize, usize) -> bool) {
        let id = self.slots;
        debug_assert_eq!(counts.len(), id + 1, "counts not extended for new slot");
        if id >= self.stride {
            self.grow();
        }
        self.slots += 1;
        self.col_in.push(0);
        self.row_mass.push(0);
        for j in 0..=id {
            let out_active = active(id, j);
            self.null[id * self.stride + j] = !out_active;
            self.pairs += usize::from(out_active);
            if j < id {
                let in_active = active(j, id);
                self.null[j * self.stride + id] = !in_active;
                self.pairs += usize::from(in_active);
            }
        }
        self.col_in[id] = (0..=id)
            .filter(|&j| !self.null[id * self.stride + j])
            .map(|j| counts[j])
            .sum();
    }

    fn add_slot_from_lists(&mut self, counts: &[u64], out: &[u32], ins: &[u32], diag: bool) {
        let id = self.slots;
        debug_assert_eq!(counts.len(), id + 1, "counts not extended for new slot");
        if id >= self.stride {
            self.grow();
        }
        self.slots += 1;
        self.col_in.push(0);
        self.row_mass.push(0);
        for &j in out {
            self.null[id * self.stride + j as usize] = false;
            self.pairs += 1;
        }
        for &i in ins {
            self.null[(i as usize) * self.stride + id] = false;
            self.pairs += 1;
        }
        if diag {
            self.null[id * self.stride + id] = false;
            self.pairs += 1;
        }
        self.col_in[id] = out.iter().map(|&j| counts[j as usize]).sum();
    }

    fn count_changed(&mut self, slot: usize, delta: i64) {
        // Every slot with an active pair into column `slot` absorbs the
        // count change linearly — the dense O(slots) scan.
        for r in 0..self.slots {
            if !self.null[r * self.stride + slot] {
                self.col_in[r] = self.col_in[r]
                    .checked_add_signed(delta)
                    .expect("col_in underflow");
            }
        }
    }

    fn settle(&mut self, counts: &[u64]) {
        // Full refresh, once per change-point — the dense O(slots) rescan.
        let mut mass = 0u128;
        for (r, &c) in counts.iter().enumerate().take(self.slots) {
            let m = row_mass_of(c, self.col_in[r], !self.null[r * self.stride + r]);
            self.row_mass[r] = m;
            mass += m;
        }
        self.mass = mass;
    }

    fn mass(&self) -> u128 {
        self.mass
    }

    fn row_mass(&self) -> &[u128] {
        &self.row_mass
    }

    fn walk_out(&self, i: usize, f: &mut dyn FnMut(usize)) {
        for j in 0..self.slots {
            if !self.null[i * self.stride + j] {
                f(j);
            }
        }
    }

    fn walk_in(&self, j: usize, f: &mut dyn FnMut(usize)) {
        for i in 0..self.slots {
            if !self.null[i * self.stride + j] {
                f(i);
            }
        }
    }

    fn active_pairs(&self) -> usize {
        self.pairs
    }

    fn adjacency_bytes(&self) -> usize {
        // One byte per matrix cell, active or not — the dense cost model.
        self.null.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Drives all indexes through an identical random schedule and checks
    /// them against a brute-force reference at every step.
    #[test]
    fn all_indexes_agree_with_bruteforce() {
        // Activity rule: (i, j) is active iff (i * 7 + j * 3) % 4 == 0,
        // arbitrary but deterministic and ~25% dense.
        let active = |i: usize, j: usize| (i * 7 + j * 3).is_multiple_of(4);
        let mut rng = StdRng::seed_from_u64(11);
        let mut sparse = SparseActivity::default();
        let mut compact = CompactActivity::default();
        let mut dense = DenseActivity::default();
        let mut counts: Vec<u64> = Vec::new();

        for round in 0..200 {
            if counts.len() < 12 && round % 8 == 0 {
                counts.push(0);
                sparse.add_slot(&counts, active);
                compact.add_slot(&counts, active);
                dense.add_slot(&counts, active);
            }
            let slot = rng.random_range(0..counts.len());
            let delta: i64 = if counts[slot] == 0 {
                3
            } else {
                [-1i64, 1, 2][rng.random_range(0..3usize)]
            };
            counts[slot] = counts[slot].checked_add_signed(delta).unwrap();
            sparse.count_changed(slot, delta);
            compact.count_changed(slot, delta);
            dense.count_changed(slot, delta);
            sparse.settle(&counts);
            compact.settle(&counts);
            dense.settle(&counts);

            let mut expected = 0u128;
            for i in 0..counts.len() {
                let mut row = 0u128;
                for j in 0..counts.len() {
                    if active(i, j) {
                        row += u128::from(counts[i])
                            * u128::from(counts[j].saturating_sub(u64::from(i == j)));
                    }
                }
                assert_eq!(sparse.row_mass()[i], row, "sparse row {i} round {round}");
                assert_eq!(compact.row_mass()[i], row, "compact row {i} round {round}");
                assert_eq!(dense.row_mass()[i], row, "dense row {i} round {round}");
                expected += row;
            }
            assert_eq!(sparse.mass(), expected, "sparse mass round {round}");
            assert_eq!(compact.mass(), expected, "compact mass round {round}");
            assert_eq!(dense.mass(), expected, "dense mass round {round}");

            // Sampling must agree between the indexes for every r.
            if expected > 0 {
                for _ in 0..8 {
                    let r = rng.random_range(0..expected);
                    let drawn = sparse.sample_change(r, &counts);
                    assert_eq!(drawn, compact.sample_change(r, &counts), "r = {r}");
                    assert_eq!(drawn, dense.sample_change(r, &counts), "r = {r}");
                }
            }
            for i in 0..counts.len() {
                for j in 0..counts.len() {
                    assert_eq!(sparse.is_active(i, j), active(i, j));
                    assert_eq!(compact.is_active(i, j), active(i, j));
                    assert_eq!(dense.is_active(i, j), active(i, j));
                }
            }
        }
        assert_eq!(sparse.active_pairs(), compact.active_pairs());
        assert_eq!(sparse.active_pairs(), dense.active_pairs());
    }

    /// Crossing [`FENWICK_MIN_SLOTS`] mid-run must hand over from the
    /// linear sampler to the tree without changing a single draw.
    #[test]
    fn fenwick_threshold_crossing_preserves_sampling() {
        let active = |i: usize, j: usize| (i + 2 * j).is_multiple_of(3);
        let mut rng = StdRng::seed_from_u64(21);
        let mut sparse = SparseActivity::default();
        let mut dense = DenseActivity::default();
        let mut counts: Vec<u64> = Vec::new();
        while counts.len() < FENWICK_MIN_SLOTS + 20 {
            counts.push(0);
            sparse.add_slot(&counts, active);
            dense.add_slot(&counts, active);
            let slot = rng.random_range(0..counts.len());
            counts[slot] += 2;
            sparse.count_changed(slot, 2);
            dense.count_changed(slot, 2);
            sparse.settle(&counts);
            dense.settle(&counts);
            assert_eq!(sparse.mass(), dense.mass(), "at {} slots", counts.len());
            if sparse.mass() > 0 {
                for _ in 0..4 {
                    let r = rng.random_range(0..sparse.mass());
                    assert_eq!(
                        sparse.sample_change(r, &counts),
                        dense.sample_change(r, &counts),
                        "r = {r} at {} slots",
                        counts.len()
                    );
                }
            }
        }
        assert!(counts.len() > FENWICK_MIN_SLOTS, "threshold was crossed");
    }

    #[test]
    fn u128_masses_survive_counts_past_u32() {
        // Two slots with ~2^32 agents each: the cross-pair weight alone
        // (~2^64) overflows u64 — the arithmetic must stay exact in u128.
        let active = |i: usize, j: usize| i != j;
        let big = u64::from(u32::MAX) + 7;
        let mut sparse = SparseActivity::default();
        let mut counts = Vec::new();
        for _ in 0..2 {
            counts.push(0);
            sparse.add_slot(&counts, active);
        }
        for (slot, c) in counts.iter_mut().enumerate() {
            *c = big;
            sparse.count_changed(slot, big as i64);
        }
        sparse.settle(&counts);
        let expected = 2 * u128::from(big) * u128::from(big);
        assert!(expected > u128::from(u64::MAX));
        assert_eq!(sparse.mass(), expected);
        assert_eq!(sparse.sample_change(0, &counts), (0, 1));
        assert_eq!(sparse.sample_change(expected - 1, &counts), (1, 0));
    }

    /// The symmetric discovery path must produce the exact structure of the
    /// all-ordered-pairs path while querying each unordered pair once.
    #[test]
    fn symmetric_add_slot_halves_queries_and_matches() {
        // A symmetric rule (depends only on the unordered pair).
        let rule = |i: usize, j: usize| (i.max(j) * 5 + i.min(j)).is_multiple_of(3);
        let slots = 40usize;
        let mut counts = Vec::new();
        let mut plain = SparseActivity::default();
        let mut plain_queries = 0u64;
        let mut sym = SparseActivity::default();
        let mut sym_queries = 0u64;
        for s in 0..slots {
            counts.push(0);
            plain.add_slot(&counts, |i, j| {
                plain_queries += 1;
                rule(i, j)
            });
            sym.add_slot_symmetric(&counts, |i, j| {
                sym_queries += 1;
                rule(i, j)
            });
            // Both see the same adjacency after every slot.
            for i in 0..=s {
                for j in 0..=s {
                    assert_eq!(sym.is_active(i, j), plain.is_active(i, j), "({i},{j})");
                }
            }
        }
        assert_eq!(plain.active_pairs(), sym.active_pairs());
        // Plain: 2s+1 queries per slot; symmetric: s+1.
        assert_eq!(plain_queries, (0..slots as u64).map(|s| 2 * s + 1).sum());
        assert_eq!(sym_queries, (0..slots as u64).map(|s| s + 1).sum());
    }

    /// A symmetric-declared compact store serves in-queries from the shared
    /// out-rows and stays bit-compatible with the unshared stores.
    #[test]
    fn symmetric_compact_store_matches_unshared() {
        let rule = |i: usize, j: usize| (i.max(j) + 2 * i.min(j)).is_multiple_of(3);
        let mut rng = StdRng::seed_from_u64(31);
        let mut shared = CompactActivity::default();
        shared.declare_symmetric();
        let mut sparse = SparseActivity::default();
        let mut counts: Vec<u64> = Vec::new();
        for _ in 0..30 {
            counts.push(0);
            shared.add_slot_symmetric(&counts, rule);
            sparse.add_slot(&counts, rule);
            let slot = rng.random_range(0..counts.len());
            let delta = 1 + (slot as i64 % 3);
            counts[slot] += delta as u64;
            shared.count_changed(slot, delta);
            sparse.count_changed(slot, delta);
            shared.settle(&counts);
            sparse.settle(&counts);
            assert_eq!(shared.mass(), sparse.mass());
            if shared.mass() > 0 {
                for _ in 0..6 {
                    let r = rng.random_range(0..shared.mass());
                    assert_eq!(
                        shared.sample_change(r, &counts),
                        sparse.sample_change(r, &counts)
                    );
                }
            }
        }
        assert_eq!(shared.active_pairs(), sparse.active_pairs());
        assert!(
            shared.adjacency_bytes() * 2 < sparse.adjacency_bytes(),
            "shared rows must be under half the flat footprint: {} vs {}",
            shared.adjacency_bytes(),
            sparse.adjacency_bytes()
        );
    }

    /// Ingesting pre-classified slots through `add_slot_from_lists` (the
    /// warm engine's lazy materialization hook) must equal per-pair
    /// discovery through `add_slot`, for every index, and change nothing
    /// about subsequent updates.
    #[test]
    fn from_lists_matches_incremental_discovery() {
        let active = |i: usize, j: usize| (3 * i + 5 * j).is_multiple_of(4);
        let slots = 80usize;
        let mut counts = vec![0u64; 0];
        let mut inc_sparse = SparseActivity::default();
        let mut inc_compact = CompactActivity::default();
        for _ in 0..slots {
            counts.push(0);
            inc_sparse.add_slot(&counts, active);
            inc_compact.add_slot(&counts, active);
        }
        let mut loaded_sparse = SparseActivity::default();
        let mut loaded_compact = CompactActivity::default();
        let mut loaded_dense = DenseActivity::default();
        counts.clear();
        for id in 0..slots {
            counts.push(0);
            let out: Vec<u32> = (0..id)
                .filter(|&j| active(id, j))
                .map(|j| j as u32)
                .collect();
            let ins: Vec<u32> = (0..id)
                .filter(|&i| active(i, id))
                .map(|i| i as u32)
                .collect();
            let diag = active(id, id);
            loaded_sparse.add_slot_from_lists(&counts, &out, &ins, diag);
            loaded_compact.add_slot_from_lists(&counts, &out, &ins, diag);
            loaded_dense.add_slot_from_lists(&counts, &out, &ins, diag);
        }

        let mut rng = StdRng::seed_from_u64(41);
        macro_rules! each {
            ($name:ident => $body:expr) => {{
                {
                    let $name = &mut inc_sparse;
                    $body;
                }
                {
                    let $name = &mut inc_compact;
                    $body;
                }
                {
                    let $name = &mut loaded_sparse;
                    $body;
                }
                {
                    let $name = &mut loaded_compact;
                    $body;
                }
                {
                    let $name = &mut loaded_dense;
                    $body;
                }
            }};
        }
        for _ in 0..100 {
            let slot = rng.random_range(0..slots);
            counts[slot] += 2;
            each!(idx => {
                idx.count_changed(slot, 2);
                idx.settle(&counts);
            });
            let mass = inc_sparse.mass();
            each!(idx => assert_eq!(idx.mass(), mass));
            if mass > 0 {
                let r = rng.random_range(0..mass);
                let expected = inc_sparse.sample_change(r, &counts);
                each!(idx => assert_eq!(idx.sample_change(r, &counts), expected));
            }
        }
    }

    /// High-occupancy rows must convert to bitsets (and sample identically
    /// before and after the conversion).
    #[test]
    fn dense_rows_densify_and_sample_identically() {
        let slots = 400usize;
        // Row 0 is fully active (densifies); the rest nearly empty.
        let active = |i: usize, j: usize| i == 0 || (i + j).is_multiple_of(97);
        let mut compact = CompactActivity::default();
        let mut sparse = SparseActivity::default();
        let mut counts: Vec<u64> = Vec::new();
        for _ in 0..slots {
            counts.push(0);
            compact.add_slot(&counts, active);
            sparse.add_slot(&counts, active);
        }
        for (s, c) in counts.iter_mut().enumerate() {
            *c = 1 + (s as u64 % 5);
            compact.count_changed(s, *c as i64);
            sparse.count_changed(s, *c as i64);
        }
        compact.settle(&counts);
        sparse.settle(&counts);
        assert_eq!(compact.mass(), sparse.mass());
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..200 {
            let r = rng.random_range(0..compact.mass());
            assert_eq!(
                compact.sample_change(r, &counts),
                sparse.sample_change(r, &counts),
                "r = {r}"
            );
        }
        // The full row plus the sparse tail must still be well under the
        // flat 8-bytes-per-pair layout, even without shared symmetric rows
        // (the ≥ 4× cut is asserted on the real symmetric workload in the
        // `discovery` bench).
        assert!(
            compact.adjacency_bytes() * 2 < sparse.adjacency_bytes(),
            "compact {} bytes vs flat {} bytes",
            compact.adjacency_bytes(),
            sparse.adjacency_bytes()
        );
        // walk_out must agree across representations.
        for i in [0usize, 1, 97] {
            let mut a = Vec::new();
            Activity::walk_out(&compact, i, &mut |j| a.push(j));
            let mut b = Vec::new();
            Activity::walk_out(&sparse, i, &mut |j| b.push(j));
            assert_eq!(a, b, "row {i}");
        }
    }

    /// Varint rows survive ids needing multi-byte encodings.
    #[test]
    fn varint_rows_roundtrip_large_gaps() {
        let mut row = CompactRow::new();
        let ids = [0u32, 1, 127, 128, 16_383, 16_384, 2_000_000, 2_000_001];
        for &id in &ids {
            row.push(id, 10_000_000);
        }
        let mut seen = Vec::new();
        row.walk(|j| {
            seen.push(j);
            true
        });
        assert_eq!(seen, ids);
        for &id in &ids {
            assert!(row.contains(id));
        }
        assert!(!row.contains(2));
        assert!(!row.contains(3_000_000));
    }
}
