//! Activity bookkeeping strategies for the count engine.
//!
//! The count engine must know, at every change-point, the total sampling
//! weight of *active* (state-changing) ordered slot pairs — `mass` — plus
//! enough structure to draw one active pair with probability proportional to
//! its weight `c_i · (c_j − [i = j])`. This module isolates that bookkeeping
//! behind the [`Activity`] trait with two implementations:
//!
//! - [`SparseActivity`] (the default): per-slot adjacency lists of active
//!   out-/in-neighbors, discovered lazily as states appear. A count change
//!   at slot `t` touches only the rows active into `t` (`O(deg)` instead of
//!   `O(slots)`), changed rows are collected in a dirty set and settled once
//!   per change-point, and conditional pair draws go through a
//!   [`Fenwick`] tree over `row_mass` in `O(log slots + deg)`. Row updates
//!   switch adaptively between per-row Fenwick point updates (sparse dirty
//!   sets) and a linear-time rebuild (dense dirty sets), so the maintenance
//!   cost never exceeds one sequential pass over the rows.
//! - [`DenseActivity`]: the previous engine's bookkeeping — a dense
//!   `slots × slots` pair matrix scanned per count change, a full
//!   `row_mass` refresh per change-point and linear-scan sampling. Kept as
//!   the reference baseline: replaying the same schedule through both
//!   indexes must produce bit-identical runs, and the `backend` bench
//!   measures the per-change-point gap between the two.
//!
//! All pair-weight arithmetic is `u128`, so populations are no longer capped
//! at `u32::MAX` agents (the engine accepts up to `2^63 − 1`).

use crate::fenwick::Fenwick;

/// Read-only sampling interface over an activity index, used by
/// [`CountView`](crate::CountView) to answer scheduler queries without
/// exposing the index representation.
pub trait PairSampling {
    /// Whether the ordered slot pair `(i, j)` changes state when it
    /// interacts.
    fn is_active(&self, i: usize, j: usize) -> bool;

    /// Maps the `r`-th unit of active weight to its ordered slot pair:
    /// active pairs are ordered by initiator slot, then responder slot, and
    /// pair `(i, j)` spans `c_i · (c_j − [i = j])` units. Requires
    /// `r < mass`.
    fn sample_change(&self, r: u128, counts: &[u64]) -> (usize, usize);
}

/// Incrementally maintained activity index over the count engine's slots.
///
/// The engine drives implementations through a strict protocol:
/// [`add_slot`](Activity::add_slot) once per newly observed state (counts
/// already extended with a zero entry), [`count_changed`](Activity::count_changed)
/// once per count delta (counts already updated), and
/// [`settle`](Activity::settle) once per change-point after all deltas, which
/// must leave [`mass`](Activity::mass) and [`row_mass`](Activity::row_mass)
/// exact.
pub trait Activity: PairSampling + Default {
    /// Registers the slot `counts.len() - 1` (which must hold zero agents)
    /// and discovers its activity against all existing slots by querying
    /// `active(i, j)` for every ordered pair involving the new slot.
    fn add_slot(&mut self, counts: &[u64], active: impl FnMut(usize, usize) -> bool);

    /// Absorbs a count change of `delta` agents at `slot` (already applied
    /// to `counts`) into the incremental structures, deferring row-mass
    /// settlement to [`settle`](Activity::settle).
    fn count_changed(&mut self, slot: usize, delta: i64);

    /// Recomputes the row masses of every row dirtied since the last call
    /// and restores the `mass`/`row_mass`/sampling invariants.
    fn settle(&mut self, counts: &[u64]);

    /// Total weight of active ordered pairs; zero iff the configuration is
    /// silent.
    fn mass(&self) -> u128;

    /// Per-initiator-slot active weight
    /// `row_mass[i] = c_i · col_in[i] − [active(i, i)] · c_i`.
    fn row_mass(&self) -> &[u128];
}

/// Recomputes one row's mass from its count and in-column sum.
#[inline]
fn row_mass_of(count: u64, col_in: u64, diag_active: bool) -> u128 {
    let c = u128::from(count);
    c * u128::from(col_in) - if diag_active { c } else { 0 }
}

/// Sparse per-slot adjacency activity index — see the [module docs](self).
#[derive(Debug)]
pub struct SparseActivity {
    /// `out[i]`: slots `j` (ascending) with `(i, j)` active.
    out: Vec<Vec<u32>>,
    /// `ins[j]`: slots `i` (ascending) with `(i, j)` active.
    ins: Vec<Vec<u32>>,
    /// Whether the diagonal pair `(i, i)` is active.
    diag: Vec<bool>,
    /// `col_in[i] = Σ_j active(i, j) · c_j`.
    col_in: Vec<u64>,
    row_mass: Vec<u128>,
    fenwick: Fenwick,
    mass: u128,
    /// Rows whose mass is stale, awaiting [`Activity::settle`].
    dirty: Vec<u32>,
    /// `stamp[r] == epoch` iff row `r` is already queued in `dirty`.
    stamp: Vec<u64>,
    epoch: u64,
    /// Whether the Fenwick tree is live. Below
    /// [`FENWICK_MIN_SLOTS`] a linear row scan beats the tree's
    /// maintenance cost, so the tree stays empty until the slot count
    /// crosses the threshold (it never goes back).
    use_fenwick: bool,
}

/// Slot count below which conditional sampling scans `row_mass` linearly
/// instead of maintaining the Fenwick tree — at a handful of slots the
/// sequential scan is faster than tree upkeep, and keeping the small-k
/// path lean is what lets the sparse index replace the dense one
/// everywhere.
const FENWICK_MIN_SLOTS: usize = 64;

impl Default for SparseActivity {
    fn default() -> Self {
        SparseActivity {
            out: Vec::new(),
            ins: Vec::new(),
            diag: Vec::new(),
            col_in: Vec::new(),
            row_mass: Vec::new(),
            fenwick: Fenwick::new(),
            mass: 0,
            dirty: Vec::new(),
            stamp: Vec::new(),
            // Stamps start at zero, so the live epoch must not: a fresh row
            // would otherwise read as already-queued and never get dirtied.
            epoch: 1,
            use_fenwick: false,
        }
    }
}

impl PairSampling for SparseActivity {
    fn is_active(&self, i: usize, j: usize) -> bool {
        self.out[i].binary_search(&(j as u32)).is_ok()
    }

    fn sample_change(&self, r: u128, counts: &[u64]) -> (usize, usize) {
        debug_assert!(self.dirty.is_empty(), "sampling from an unsettled index");
        let (i, mut rem) = if self.use_fenwick {
            self.fenwick.find(r)
        } else {
            // Few slots: a sequential scan is cheaper than the tree. Same
            // row order as the tree search, so draws agree bit-for-bit.
            let mut rem = r;
            let mut row = usize::MAX;
            for (i, &m) in self.row_mass.iter().enumerate() {
                if rem < m {
                    row = i;
                    break;
                }
                rem -= m;
            }
            assert!(row != usize::MAX, "sampling walked past the total mass");
            (row, rem)
        };
        let ci = u128::from(counts[i]);
        for &j32 in &self.out[i] {
            let j = j32 as usize;
            let w = ci * u128::from(counts[j].saturating_sub(u64::from(i == j)));
            if rem < w {
                return (i, j);
            }
            rem -= w;
        }
        unreachable!("row mass out of sync with pair weights");
    }
}

impl Activity for SparseActivity {
    fn add_slot(&mut self, counts: &[u64], mut active: impl FnMut(usize, usize) -> bool) {
        let id = self.out.len();
        debug_assert_eq!(counts.len(), id + 1, "counts not extended for new slot");
        debug_assert_eq!(counts[id], 0, "new slot must hold zero agents");
        assert!(id < u32::MAX as usize, "slot ids exceed u32");
        self.out.push(Vec::new());
        self.ins.push(Vec::new());
        self.diag.push(false);
        self.col_in.push(0);
        self.row_mass.push(0);
        self.stamp.push(0);
        if self.use_fenwick {
            self.fenwick.push(0);
        } else if self.row_mass.len() >= FENWICK_MIN_SLOTS {
            self.use_fenwick = true;
            self.fenwick.rebuild(&self.row_mass);
        }
        for j in 0..id {
            if active(id, j) {
                self.out[id].push(j as u32);
                self.ins[j].push(id as u32);
            }
            if active(j, id) {
                self.out[j].push(id as u32);
                self.ins[id].push(j as u32);
            }
        }
        if active(id, id) {
            self.out[id].push(id as u32);
            self.ins[id].push(id as u32);
            self.diag[id] = true;
        }
        // The new slot holds no agents, so no existing col_in or row_mass
        // changes; only the new row's col_in must be summed once.
        self.col_in[id] = self.out[id].iter().map(|&j| counts[j as usize]).sum();
    }

    fn count_changed(&mut self, slot: usize, delta: i64) {
        let epoch = self.epoch;
        {
            let ins_t: &[u32] = &self.ins[slot];
            let col_in = &mut self.col_in;
            let stamp = &mut self.stamp;
            let dirty = &mut self.dirty;
            for &r32 in ins_t {
                let r = r32 as usize;
                col_in[r] = col_in[r]
                    .checked_add_signed(delta)
                    .expect("col_in underflow");
                if stamp[r] != epoch {
                    stamp[r] = epoch;
                    dirty.push(r32);
                }
            }
        }
        // The slot's own row mass scales with its count even when no active
        // pair points into it.
        if self.stamp[slot] != epoch {
            self.stamp[slot] = epoch;
            self.dirty.push(slot as u32);
        }
    }

    fn settle(&mut self, counts: &[u64]) {
        self.epoch += 1;
        if self.dirty.is_empty() {
            return;
        }
        let slots = self.row_mass.len();
        // Point updates cost O(log slots) each; past this threshold one
        // sequential rebuild of the whole tree is cheaper. Below the
        // Fenwick threshold there is no tree to maintain at all.
        let log2 = usize::BITS - slots.leading_zeros();
        let rebuild = self.use_fenwick && self.dirty.len() * (log2 as usize) >= slots;
        let point_update = self.use_fenwick && !rebuild;
        for &r32 in &self.dirty {
            let r = r32 as usize;
            let new = row_mass_of(counts[r], self.col_in[r], self.diag[r]);
            let old = self.row_mass[r];
            self.row_mass[r] = new;
            if new >= old {
                self.mass += new - old;
            } else {
                self.mass -= old - new;
            }
            if point_update {
                self.fenwick.add(r, new as i128 - old as i128);
            }
        }
        if rebuild {
            self.fenwick.rebuild(&self.row_mass);
        }
        self.dirty.clear();
    }

    fn mass(&self) -> u128 {
        self.mass
    }

    fn row_mass(&self) -> &[u128] {
        &self.row_mass
    }
}

/// Dense pair-matrix activity index — the previous engine's bookkeeping,
/// kept as the comparison baseline; see the [module docs](self).
#[derive(Debug)]
pub struct DenseActivity {
    /// `null[i * stride + j]`: the ordered pair `(i, j)` leaves both states
    /// unchanged. Row stride grows by doubling so slot ids stay stable.
    null: Vec<bool>,
    stride: usize,
    slots: usize,
    col_in: Vec<u64>,
    row_mass: Vec<u128>,
    mass: u128,
}

impl Default for DenseActivity {
    fn default() -> Self {
        DenseActivity {
            null: vec![true; 16],
            stride: 4,
            slots: 0,
            col_in: Vec::new(),
            row_mass: Vec::new(),
            mass: 0,
        }
    }
}

impl DenseActivity {
    /// Doubles the pair-matrix stride, remapping existing entries.
    fn grow(&mut self) {
        let old = self.stride;
        let stride = old * 2;
        let mut null = vec![true; stride * stride];
        for i in 0..self.slots {
            null[i * stride..i * stride + self.slots]
                .copy_from_slice(&self.null[i * old..i * old + self.slots]);
        }
        self.stride = stride;
        self.null = null;
    }
}

impl PairSampling for DenseActivity {
    fn is_active(&self, i: usize, j: usize) -> bool {
        !self.null[i * self.stride + j]
    }

    fn sample_change(&self, r: u128, counts: &[u64]) -> (usize, usize) {
        let mut r = r;
        for (i, &row) in self.row_mass.iter().enumerate() {
            if r >= row {
                r -= row;
                continue;
            }
            let ci = u128::from(counts[i]);
            for (j, &cj) in counts.iter().enumerate().take(self.slots) {
                if self.null[i * self.stride + j] {
                    continue;
                }
                let w = ci * u128::from(cj.saturating_sub(u64::from(i == j)));
                if r < w {
                    return (i, j);
                }
                r -= w;
            }
            unreachable!("row mass out of sync with pair weights");
        }
        unreachable!("total mass out of sync with row masses");
    }
}

impl Activity for DenseActivity {
    fn add_slot(&mut self, counts: &[u64], mut active: impl FnMut(usize, usize) -> bool) {
        let id = self.slots;
        debug_assert_eq!(counts.len(), id + 1, "counts not extended for new slot");
        if id >= self.stride {
            self.grow();
        }
        self.slots += 1;
        self.col_in.push(0);
        self.row_mass.push(0);
        for j in 0..=id {
            self.null[id * self.stride + j] = !active(id, j);
            if j < id {
                self.null[j * self.stride + id] = !active(j, id);
            }
        }
        self.col_in[id] = (0..=id)
            .filter(|&j| !self.null[id * self.stride + j])
            .map(|j| counts[j])
            .sum();
    }

    fn count_changed(&mut self, slot: usize, delta: i64) {
        // Every slot with an active pair into column `slot` absorbs the
        // count change linearly — the dense O(slots) scan.
        for r in 0..self.slots {
            if !self.null[r * self.stride + slot] {
                self.col_in[r] = self.col_in[r]
                    .checked_add_signed(delta)
                    .expect("col_in underflow");
            }
        }
    }

    fn settle(&mut self, counts: &[u64]) {
        // Full refresh, once per change-point — the dense O(slots) rescan.
        let mut mass = 0u128;
        for (r, &c) in counts.iter().enumerate().take(self.slots) {
            let m = row_mass_of(c, self.col_in[r], !self.null[r * self.stride + r]);
            self.row_mass[r] = m;
            mass += m;
        }
        self.mass = mass;
    }

    fn mass(&self) -> u128 {
        self.mass
    }

    fn row_mass(&self) -> &[u128] {
        &self.row_mass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Drives both indexes through an identical random schedule and checks
    /// them against a brute-force reference at every step.
    #[test]
    fn sparse_and_dense_agree_with_bruteforce() {
        // Activity rule: (i, j) is active iff (i * 7 + j * 3) % 4 == 0,
        // arbitrary but deterministic and ~25% dense.
        let active = |i: usize, j: usize| (i * 7 + j * 3).is_multiple_of(4);
        let mut rng = StdRng::seed_from_u64(11);
        let mut sparse = SparseActivity::default();
        let mut dense = DenseActivity::default();
        let mut counts: Vec<u64> = Vec::new();

        for round in 0..200 {
            if counts.len() < 12 && round % 8 == 0 {
                counts.push(0);
                sparse.add_slot(&counts, active);
                dense.add_slot(&counts, active);
            }
            let slot = rng.random_range(0..counts.len());
            let delta: i64 = if counts[slot] == 0 {
                3
            } else {
                [-1i64, 1, 2][rng.random_range(0..3usize)]
            };
            counts[slot] = counts[slot].checked_add_signed(delta).unwrap();
            sparse.count_changed(slot, delta);
            dense.count_changed(slot, delta);
            sparse.settle(&counts);
            dense.settle(&counts);

            let mut expected = 0u128;
            for i in 0..counts.len() {
                let mut row = 0u128;
                for j in 0..counts.len() {
                    if active(i, j) {
                        row += u128::from(counts[i])
                            * u128::from(counts[j].saturating_sub(u64::from(i == j)));
                    }
                }
                assert_eq!(sparse.row_mass()[i], row, "sparse row {i} round {round}");
                assert_eq!(dense.row_mass()[i], row, "dense row {i} round {round}");
                expected += row;
            }
            assert_eq!(sparse.mass(), expected, "sparse mass round {round}");
            assert_eq!(dense.mass(), expected, "dense mass round {round}");

            // Sampling must agree between the two indexes for every r.
            if expected > 0 {
                for _ in 0..8 {
                    let r = rng.random_range(0..expected);
                    assert_eq!(
                        sparse.sample_change(r, &counts),
                        dense.sample_change(r, &counts),
                        "r = {r} round {round}"
                    );
                }
            }
            for i in 0..counts.len() {
                for j in 0..counts.len() {
                    assert_eq!(sparse.is_active(i, j), active(i, j));
                    assert_eq!(dense.is_active(i, j), active(i, j));
                }
            }
        }
    }

    /// Crossing [`FENWICK_MIN_SLOTS`] mid-run must hand over from the
    /// linear sampler to the tree without changing a single draw.
    #[test]
    fn fenwick_threshold_crossing_preserves_sampling() {
        let active = |i: usize, j: usize| (i + 2 * j).is_multiple_of(3);
        let mut rng = StdRng::seed_from_u64(21);
        let mut sparse = SparseActivity::default();
        let mut dense = DenseActivity::default();
        let mut counts: Vec<u64> = Vec::new();
        while counts.len() < FENWICK_MIN_SLOTS + 20 {
            counts.push(0);
            sparse.add_slot(&counts, active);
            dense.add_slot(&counts, active);
            let slot = rng.random_range(0..counts.len());
            counts[slot] += 2;
            sparse.count_changed(slot, 2);
            dense.count_changed(slot, 2);
            sparse.settle(&counts);
            dense.settle(&counts);
            assert_eq!(sparse.mass(), dense.mass(), "at {} slots", counts.len());
            if sparse.mass() > 0 {
                for _ in 0..4 {
                    let r = rng.random_range(0..sparse.mass());
                    assert_eq!(
                        sparse.sample_change(r, &counts),
                        dense.sample_change(r, &counts),
                        "r = {r} at {} slots",
                        counts.len()
                    );
                }
            }
        }
        assert!(counts.len() > FENWICK_MIN_SLOTS, "threshold was crossed");
    }

    #[test]
    fn u128_masses_survive_counts_past_u32() {
        // Two slots with ~2^32 agents each: the cross-pair weight alone
        // (~2^64) overflows u64 — the arithmetic must stay exact in u128.
        let active = |i: usize, j: usize| i != j;
        let big = u64::from(u32::MAX) + 7;
        let mut sparse = SparseActivity::default();
        let mut counts = Vec::new();
        for _ in 0..2 {
            counts.push(0);
            sparse.add_slot(&counts, active);
        }
        for (slot, c) in counts.iter_mut().enumerate() {
            *c = big;
            sparse.count_changed(slot, big as i64);
        }
        sparse.settle(&counts);
        let expected = 2 * u128::from(big) * u128::from(big);
        assert!(expected > u128::from(u64::MAX));
        assert_eq!(sparse.mass(), expected);
        assert_eq!(sparse.sample_change(0, &counts), (0, 1));
        assert_eq!(sparse.sample_change(expected - 1, &counts), (1, 0));
    }
}
