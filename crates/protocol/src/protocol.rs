//! The [`Protocol`] trait: the formal object defined in Section 1 of the
//! Circles paper (states, input function, output function, transition
//! function).

use std::fmt::Debug;
use std::hash::Hash;

use crate::quotient::StateQuotient;

/// A population protocol.
///
/// A protocol is a quadruple of a state set, an input function, an output
/// function and a transition function. Agents are anonymous: after an
/// interaction an agent's new state depends only on its previous state and on
/// the state of the agent it interacted with.
///
/// Interactions are *ordered*: the first argument of
/// [`transition`](Protocol::transition) is the initiator and the second the
/// responder. Symmetric protocols (such as Circles) simply ignore the order;
/// asymmetric protocols (such as leader election in the unordered-setting
/// extension) rely on it.
///
/// # Example
///
/// See the [crate-level example](crate) for a minimal implementation.
pub trait Protocol {
    /// Per-agent state. Required to be `Ord + Hash` so configurations can be
    /// canonicalized (for multiset configurations and model checking).
    type State: Clone + Eq + Ord + Hash + Debug;
    /// Input symbol handed to each agent before the execution starts.
    type Input: Clone + Debug;
    /// Output symbol an agent reports when queried.
    type Output: Clone + Eq + Ord + Debug;

    /// Human-readable protocol name used in reports and benchmarks.
    fn name(&self) -> &str;

    /// Converts an input symbol into the agent's initial state.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `input` is outside the protocol's input
    /// alphabet (for instance a color `>= k`); constructors of concrete
    /// protocols document their alphabet.
    fn input(&self, input: &Self::Input) -> Self::State;

    /// Maps a state to the output the agent currently reports.
    fn output(&self, state: &Self::State) -> Self::Output;

    /// The joint transition: `(initiator, responder)` states before the
    /// interaction, to their states after.
    fn transition(
        &self,
        initiator: &Self::State,
        responder: &Self::State,
    ) -> (Self::State, Self::State);

    /// Whether the transition function is symmetric, i.e.
    /// `transition(a, b) == swap(transition(b, a))` for all states.
    ///
    /// Defaults to `false`; symmetric protocols can override to let engines
    /// and checkers halve the number of ordered pairs they must consider.
    fn is_symmetric(&self) -> bool {
        false
    }

    /// Returns `true` when the interaction between `initiator` and
    /// `responder` would leave both states unchanged.
    fn is_null_interaction(&self, initiator: &Self::State, responder: &Self::State) -> bool {
        let (a, b) = self.transition(initiator, responder);
        a == *initiator && b == *responder
    }

    /// A symmetry quotient of the state space under which the transition
    /// function is equivariant (see [`StateQuotient`] for the exact
    /// contract), or `None` when the protocol has no usable quotient.
    ///
    /// Protocols that return one let discovery classify a single canonical
    /// representative per orbit of state pairs and expand the rest
    /// mechanically — for Circles (invariant under rotations of its `k`
    /// colors) this cuts full-table discovery from `O(k⁶)` to `O(k⁵)`
    /// transition calls. The engine's `add_slot_symmetric` memo remains
    /// the fallback for protocols without one.
    ///
    /// Defaults to `None`. The flag `color_quotient().is_some()` is folded
    /// into the identity fingerprint of persisted stores alongside
    /// [`is_symmetric`](Protocol::is_symmetric).
    fn color_quotient(&self) -> Option<&dyn StateQuotient<Self::State>> {
        None
    }

    /// A numeric parameter distinguishing instances of the same named
    /// protocol family — for Circles, the color count `k`. Folded together
    /// with [`name`](Protocol::name) and
    /// [`is_symmetric`](Protocol::is_symmetric) into the identity
    /// fingerprint of persisted transition-table stores (see
    /// [`transition_store`](crate::transition_store)), so a store built for
    /// one parameterization can never be loaded for another.
    ///
    /// Defaults to `0` for unparameterized protocols.
    fn fingerprint_param(&self) -> u64 {
        0
    }
}

/// A protocol whose complete state space can be enumerated.
///
/// Used to account state complexity (experiment E1) and to let the model
/// checker validate that every reachable state belongs to the declared state
/// set.
pub trait EnumerableProtocol: Protocol {
    /// Every state an agent can ever be in, without duplicates.
    ///
    /// The length of this vector is the protocol's *state complexity* — the
    /// quantity the Circles paper minimizes (`k³` for Circles, versus the
    /// prior `O(k⁷)` upper bound and the `Ω(k²)` lower bound).
    fn states(&self) -> Vec<Self::State>;

    /// The protocol's state complexity: the size of the state space.
    fn state_complexity(&self) -> usize {
        self.states().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy asymmetric protocol: the responder copies the initiator.
    struct CopyProtocol;

    impl Protocol for CopyProtocol {
        type State = u8;
        type Input = u8;
        type Output = u8;

        fn name(&self) -> &str {
            "copy"
        }

        fn input(&self, input: &u8) -> u8 {
            *input
        }

        fn output(&self, state: &u8) -> u8 {
            *state
        }

        fn transition(&self, initiator: &u8, _responder: &u8) -> (u8, u8) {
            (*initiator, *initiator)
        }
    }

    impl EnumerableProtocol for CopyProtocol {
        fn states(&self) -> Vec<u8> {
            (0..=u8::MAX).collect()
        }
    }

    #[test]
    fn null_interaction_detected() {
        let p = CopyProtocol;
        assert!(p.is_null_interaction(&7, &7));
        assert!(!p.is_null_interaction(&7, &3));
    }

    #[test]
    fn default_symmetry_is_false() {
        assert!(!CopyProtocol.is_symmetric());
    }

    #[test]
    fn state_complexity_counts_states() {
        assert_eq!(CopyProtocol.state_complexity(), 256);
    }
}
