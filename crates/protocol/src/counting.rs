//! A count-based simulation engine for the uniform-random scheduler.
//!
//! Agents with equal states are interchangeable, so under the uniform-random
//! scheduler the execution is a Markov chain over anonymous configurations.
//! This engine maintains per-state counts instead of an indexed vector,
//! making each interaction `O(d)` where `d` is the number of *distinct*
//! states present (for Circles, `d <= k³` regardless of `n`), so populations
//! of millions of agents are cheap.

use std::collections::BTreeMap;
use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::config::CountConfig;
use crate::error::FrameworkError;
use crate::protocol::Protocol;
use crate::simulation::RunReport;

/// Count-based simulation under the uniform-random scheduler.
///
/// Statistically equivalent to driving [`crate::Simulation`] with
/// [`crate::UniformPairScheduler`]: each step picks an ordered pair of
/// distinct agents uniformly. The equivalence is covered by integration
/// tests comparing convergence-time distributions of the two engines.
///
/// # Example
///
/// ```
/// # use pp_protocol::{CountingSimulation, Protocol};
/// # struct Max;
/// # impl Protocol for Max {
/// #     type State = u8; type Input = u8; type Output = u8;
/// #     fn name(&self) -> &str { "max" }
/// #     fn input(&self, i: &u8) -> u8 { *i }
/// #     fn output(&self, s: &u8) -> u8 { *s }
/// #     fn transition(&self, a: &u8, b: &u8) -> (u8, u8) { let m = *a.max(b); (m, m) }
/// # }
/// let inputs: Vec<u8> = (0..100).map(|i| (i % 7) as u8).collect();
/// let mut sim = CountingSimulation::from_inputs(&Max, &inputs, 42);
/// let report = sim.run_until_silent(1_000_000, 128)?;
/// assert_eq!(report.consensus, Some(6));
/// # Ok::<(), pp_protocol::FrameworkError>(())
/// ```
pub struct CountingSimulation<'p, P: Protocol> {
    protocol: &'p P,
    /// Dense view: distinct states and their counts, for O(d) sampling.
    states: Vec<P::State>,
    counts: Vec<usize>,
    index: HashMap<P::State, usize>,
    n: usize,
    rng: StdRng,
    steps: u64,
    state_changes: u64,
    last_change_step: u64,
    output_counts: BTreeMap<P::Output, usize>,
    last_disagreement: Option<u64>,
}

impl<'p, P: Protocol> CountingSimulation<'p, P> {
    /// Creates an engine from input symbols.
    pub fn from_inputs(protocol: &'p P, inputs: &[P::Input], seed: u64) -> Self {
        let config: CountConfig<P::State> = inputs.iter().map(|i| protocol.input(i)).collect();
        Self::from_config(protocol, config, seed)
    }

    /// Creates an engine from an existing anonymous configuration.
    pub fn from_config(protocol: &'p P, config: CountConfig<P::State>, seed: u64) -> Self {
        let mut states = Vec::with_capacity(config.distinct());
        let mut counts = Vec::with_capacity(config.distinct());
        let mut index = HashMap::with_capacity(config.distinct());
        let mut output_counts = BTreeMap::new();
        for (s, c) in config.iter() {
            index.insert(s.clone(), states.len());
            states.push(s.clone());
            counts.push(c);
            *output_counts.entry(protocol.output(s)).or_insert(0) += c;
        }
        let n = config.n();
        let initially_unanimous = output_counts.len() <= 1;
        CountingSimulation {
            protocol,
            states,
            counts,
            index,
            n,
            rng: StdRng::seed_from_u64(seed),
            steps: 0,
            state_changes: 0,
            last_change_step: 0,
            output_counts,
            last_disagreement: if initially_unanimous { None } else { Some(0) },
        }
    }

    /// Number of agents.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Interactions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The current anonymous configuration.
    pub fn config(&self) -> CountConfig<P::State> {
        let mut config = CountConfig::new();
        for (s, c) in self.states.iter().zip(&self.counts) {
            if *c > 0 {
                config.insert(s.clone(), *c);
            }
        }
        config
    }

    /// Histogram of current outputs.
    pub fn output_counts(&self) -> &BTreeMap<P::Output, usize> {
        &self.output_counts
    }

    /// Samples the index (into the dense arrays) of one agent uniformly,
    /// after `excluded` copies of state `exclude_idx` have been set aside.
    fn sample_state(&mut self, exclude_idx: usize, excluded: usize) -> usize {
        let total = self.n - excluded;
        debug_assert!(total > 0);
        let mut r = self.rng.random_range(0..total);
        for (idx, &c) in self.counts.iter().enumerate() {
            let c = if idx == exclude_idx { c - excluded } else { c };
            if r < c {
                return idx;
            }
            r -= c;
        }
        unreachable!("sampling walked past total population");
    }

    fn slot_for(&mut self, state: P::State) -> usize {
        if let Some(&idx) = self.index.get(&state) {
            return idx;
        }
        let idx = self.states.len();
        self.index.insert(state.clone(), idx);
        self.states.push(state);
        self.counts.push(0);
        idx
    }

    /// Executes one uniform-random interaction. Returns whether any state
    /// changed.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::PopulationTooSmall`] for populations with
    /// fewer than two agents.
    pub fn step(&mut self) -> Result<bool, FrameworkError> {
        if self.n < 2 {
            return Err(FrameworkError::PopulationTooSmall { n: self.n });
        }
        let i_idx = self.sample_state(usize::MAX, 0);
        let j_idx = self.sample_state(i_idx, 1);
        let (a, b) = {
            let si = &self.states[i_idx];
            let sj = &self.states[j_idx];
            self.protocol.transition(si, sj)
        };
        self.steps += 1;
        let changed = a != self.states[i_idx] || b != self.states[j_idx];
        if changed {
            self.state_changes += 1;
            self.last_change_step = self.steps;
            // Outputs first (uses pre-transition states).
            for (old_idx, new_state) in [(i_idx, &a), (j_idx, &b)] {
                let old_out = self.protocol.output(&self.states[old_idx]);
                let new_out = self.protocol.output(new_state);
                if old_out != new_out {
                    let slot = self
                        .output_counts
                        .get_mut(&old_out)
                        .expect("output histogram out of sync");
                    *slot -= 1;
                    if *slot == 0 {
                        self.output_counts.remove(&old_out);
                    }
                    *self.output_counts.entry(new_out).or_insert(0) += 1;
                }
            }
            self.counts[i_idx] -= 1;
            self.counts[j_idx] -= 1;
            let a_idx = self.slot_for(a);
            self.counts[a_idx] += 1;
            let b_idx = self.slot_for(b);
            self.counts[b_idx] += 1;
            self.compact_if_needed();
        }
        if self.output_counts.len() > 1 {
            self.last_disagreement = Some(self.steps);
        }
        Ok(changed)
    }

    /// Drops zero-count slots when they dominate the dense arrays, keeping
    /// sampling O(present states).
    fn compact_if_needed(&mut self) {
        let zeros = self.counts.iter().filter(|&&c| c == 0).count();
        if zeros <= self.counts.len() / 2 || zeros < 8 {
            return;
        }
        let mut states = Vec::with_capacity(self.counts.len() - zeros);
        let mut counts = Vec::with_capacity(self.counts.len() - zeros);
        let mut index = HashMap::with_capacity(self.counts.len() - zeros);
        for (s, &c) in self.states.iter().zip(&self.counts) {
            if c > 0 {
                index.insert(s.clone(), states.len());
                states.push(s.clone());
                counts.push(c);
            }
        }
        self.states = states;
        self.counts = counts;
        self.index = index;
    }

    /// Whether the current configuration is silent.
    pub fn is_silent(&self) -> bool {
        self.config().is_silent(self.protocol)
    }

    /// Runs until silence, checking every `check_interval` interactions.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::MaxStepsExceeded`] when the budget is
    /// exhausted before silence.
    pub fn run_until_silent(
        &mut self,
        max_steps: u64,
        check_interval: u64,
    ) -> Result<RunReport<P::Output>, FrameworkError> {
        let interval = check_interval.max(1);
        if self.n < 2 || self.is_silent() {
            return Ok(self.report());
        }
        let mut next_check = self.steps + interval;
        while self.steps < max_steps {
            self.step()?;
            if self.steps >= next_check {
                next_check = self.steps + interval;
                if self.is_silent() {
                    return Ok(self.report());
                }
            }
        }
        if self.is_silent() {
            return Ok(self.report());
        }
        Err(FrameworkError::MaxStepsExceeded { max_steps })
    }

    fn report(&self) -> RunReport<P::Output> {
        let consensus = if self.output_counts.len() == 1 {
            self.output_counts.keys().next().cloned()
        } else {
            None
        };
        RunReport {
            steps: self.steps,
            steps_to_silence: self.last_change_step,
            steps_to_consensus: self.last_disagreement.map_or(0, |t| t + 1),
            state_changes: self.state_changes,
            consensus,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Max;

    impl Protocol for Max {
        type State = u8;
        type Input = u8;
        type Output = u8;

        fn name(&self) -> &str {
            "max"
        }

        fn input(&self, i: &u8) -> u8 {
            *i
        }

        fn output(&self, s: &u8) -> u8 {
            *s
        }

        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            let m = *a.max(b);
            (m, m)
        }
    }

    #[test]
    fn converges_to_max_on_large_population() {
        let inputs: Vec<u8> = (0..10_000).map(|i| (i % 11) as u8).collect();
        let mut sim = CountingSimulation::from_inputs(&Max, &inputs, 9);
        let report = sim.run_until_silent(10_000_000, 1024).unwrap();
        assert_eq!(report.consensus, Some(10));
    }

    #[test]
    fn counts_stay_consistent() {
        let inputs: Vec<u8> = (0..50).map(|i| (i % 5) as u8).collect();
        let mut sim = CountingSimulation::from_inputs(&Max, &inputs, 3);
        for _ in 0..500 {
            let _ = sim.step().unwrap();
            let total: usize = sim.counts.iter().sum();
            assert_eq!(total, 50);
            let out_total: usize = sim.output_counts.values().sum();
            assert_eq!(out_total, 50);
        }
    }

    #[test]
    fn silent_configuration_detected_immediately() {
        let mut sim = CountingSimulation::from_inputs(&Max, &[4, 4, 4], 1);
        let report = sim.run_until_silent(100, 1).unwrap();
        assert_eq!(report.steps, 0);
        assert_eq!(report.consensus, Some(4));
    }

    #[test]
    fn tiny_population_errors_on_step() {
        let mut sim = CountingSimulation::from_inputs(&Max, &[4], 1);
        assert!(matches!(
            sim.step(),
            Err(FrameworkError::PopulationTooSmall { n: 1 })
        ));
    }

    #[test]
    fn config_round_trips() {
        let inputs = [1u8, 1, 2, 3];
        let sim = CountingSimulation::from_inputs(&Max, &inputs, 1);
        let config = sim.config();
        assert_eq!(config.n(), 4);
        assert_eq!(config.count(&1), 2);
    }

    #[test]
    fn compaction_preserves_population() {
        // Drive enough merging that many states empty out.
        let inputs: Vec<u8> = (0..200).map(|i| (i % 97) as u8).collect();
        let mut sim = CountingSimulation::from_inputs(&Max, &inputs, 5);
        for _ in 0..20_000 {
            let _ = sim.step().unwrap();
        }
        assert_eq!(sim.config().n(), 200);
    }
}
