//! Shared, append-only protocol-structure cache for warm-started runs.
//!
//! Discovering a protocol's slot structure — which states exist and which
//! ordered state pairs change state — costs `O(slots²)` protocol-transition
//! calls, repeated identically by every engine over the same protocol. A
//! [`TransitionTable`] hoists that structure out of the engine: it is an
//! append-only map from states to canonical ids, from ordered id pairs to
//! their null/active classification, and from applied active pairs to their
//! transition outcomes. A finished engine [exports](crate::CountEngine::export_to)
//! everything it discovered; a fresh engine
//! [warm-starts](crate::CountEngine::with_table) by bulk-loading the table
//! (`O(slots + pairs)`, zero protocol calls) and only pays discovery for
//! states the table has never seen.
//!
//! # Lock-free segments and epoch snapshots
//!
//! The table is a chain of immutable, `Arc`-shared **segments**. Each
//! segment owns a band of state ids `[base, end)` together with every pair
//! classification and outcome first discovered alongside those states, and
//! is frozen at publication: readers never observe a segment changing.
//! Publication ([`CountEngine::export_to`](crate::CountEngine::export_to))
//! builds a candidate segment against the observed tip and installs it with
//! a single compare-and-swap-like append on the chain's tail (a `OnceLock`
//! next-pointer); losing a race costs a rebuild against the new tip, never
//! a lock. Readers — [`len`](TransitionTable::len),
//! [`dump`](TransitionTable::dump), snapshots — walk the chain without
//! blocking writers and vice versa.
//!
//! A [`TableSnapshot`] is therefore a *handle*: a vector of segment `Arc`s
//! plus their id boundaries. [`TransitionTable::snapshot`] memoizes the
//! latest handle, so capturing the snapshot for a new warm trial is a
//! refcount bump, not a deep copy — `TrialRunner` in `pp_analysis` captures
//! one snapshot per sweep epoch and shares it across every trial of the
//! epoch. The pre-segment deep-copy path is kept as
//! [`TransitionTable::snapshot_deep`], the measured baseline of the
//! `warm_sweep` bench gate.
//!
//! # Example
//!
//! ```
//! # use pp_protocol::{CountEngine, Protocol, TransitionTable, UniformCountScheduler};
//! # struct Max;
//! # impl Protocol for Max {
//! #     type State = u8; type Input = u8; type Output = u8;
//! #     fn name(&self) -> &str { "max" }
//! #     fn input(&self, i: &u8) -> u8 { *i }
//! #     fn output(&self, s: &u8) -> u8 { *s }
//! #     fn transition(&self, a: &u8, b: &u8) -> (u8, u8) { let m = *a.max(b); (m, m) }
//! #     fn is_symmetric(&self) -> bool { true }
//! # }
//! let inputs: Vec<u8> = (0..1000).map(|i| (i % 7) as u8).collect();
//! let table = TransitionTable::new();
//!
//! // Seed 1 discovers; later seeds load the discovered structure.
//! for seed in 0..4 {
//!     let config = inputs.iter().map(|i| Max.input(i)).collect();
//!     let mut engine =
//!         CountEngine::with_table(&Max, config, UniformCountScheduler::new(), seed, &table);
//!     engine.run_until_silent(u64::MAX)?;
//!     engine.export_to(&table);
//! }
//! assert_eq!(table.len(), 7);
//! # Ok::<(), pp_protocol::FrameworkError>(())
//! ```

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::activity::AdjRows;
use crate::hashing::FxBuildHasher;
use crate::protocol::Protocol;

/// One immutable band of a [`TransitionTable`]: the states with ids
/// `[base, base + states.len())`, every pair classification involving at
/// least one of them, and the outcomes first published alongside them.
/// Frozen at construction — concurrency safety rests on segments never
/// mutating after they enter the chain.
#[derive(Debug)]
pub(crate) struct Segment<S> {
    /// First id owned by this segment.
    base: u32,
    /// States in id order; `states[r]` has id `base + r`.
    states: Vec<S>,
    /// State → *global* id, for this segment's states only.
    index: HashMap<S, u32, FxBuildHasher>,
    /// Out-rows of the new states: row `r` holds every id `j < end` with
    /// `(base + r, j)` active, ascending.
    rows: AdjRows,
    /// Out-row *extensions* of earlier states: row `v < base` holds every
    /// id `j ∈ [base, end)` with `(v, j)` active, ascending. Empty (zero
    /// rows) when the segment publishes no states.
    ext: AdjRows,
    /// In-rows of the new states (initiators `i < end` of `(i, base + r)`),
    /// `None` when the adjacency is symmetric (in-rows equal out-rows).
    ins: Option<AdjRows>,
    /// In-row extensions of earlier states: row `v < base` holds every
    /// initiator `i ∈ [base, end)` of `(i, v)`. `None` when symmetric.
    ins_ext: Option<AdjRows>,
    /// Outcomes first published by this segment, keyed by global id pair;
    /// deduplicated against every earlier segment at build time.
    outcomes: HashMap<(u32, u32), (u32, u32), FxBuildHasher>,
    /// Whether the adjacency was declared symmetric by the publisher.
    symmetric: bool,
}

impl<S: Clone + Eq + Hash> Segment<S> {
    /// Builds a segment from its published pairs. `rows` must hold one row
    /// per state (ascending ids over `[0, end)`), `ext` one row per earlier
    /// id (ascending ids over `[base, end)`) — or zero rows when `states`
    /// is empty. The state index and (for asymmetric adjacencies) both
    /// in-row sets are derived here, once, so every reader gets `O(row)`
    /// in-neighbor queries for free.
    pub(crate) fn new(
        base: u32,
        states: Vec<S>,
        rows: AdjRows,
        ext: AdjRows,
        outcomes: HashMap<(u32, u32), (u32, u32), FxBuildHasher>,
        symmetric: bool,
    ) -> Self {
        let mut index = HashMap::with_capacity_and_hasher(states.len(), FxBuildHasher::default());
        for (r, s) in states.iter().enumerate() {
            index.insert(s.clone(), base + r as u32);
        }
        let (ins, ins_ext) = if symmetric || states.is_empty() {
            (None, None)
        } else {
            let b = base as usize;
            let mut ins = AdjRows::new();
            for _ in 0..states.len() {
                ins.push_slot();
            }
            let mut ins_ext = AdjRows::new();
            for _ in 0..b {
                ins_ext.push_slot();
            }
            // Old → new edges land first (initiator ids < base), then new →
            // new edges in ascending initiator order, so every in-row is
            // built ascending.
            for v in 0..b {
                ext.walk(v, |j| {
                    ins.push(j - b, v);
                    true
                });
            }
            for r in 0..states.len() {
                rows.walk(r, |j| {
                    if j >= b {
                        ins.push(j - b, b + r);
                    } else {
                        ins_ext.push(j, b + r);
                    }
                    true
                });
            }
            (Some(ins), Some(ins_ext))
        };
        Segment {
            base,
            states,
            index,
            rows,
            ext,
            ins,
            ins_ext,
            outcomes,
            symmetric,
        }
    }
}

impl<S> Segment<S> {
    /// One past the last id owned by this segment.
    fn end(&self) -> u32 {
        self.base + self.states.len() as u32
    }
}

/// An owned, comparable copy of a table's contents — states in canonical
/// order, activity rows, and outcomes sorted by pair. Used by tests to
/// assert that two discovery paths produced bit-identical structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDump<S> {
    /// States in canonical id order.
    pub states: Vec<S>,
    /// Active responder ids (ascending) per initiator id.
    pub rows: Vec<Vec<u32>>,
    /// Memoized outcomes as `((from_i, from_j), (to_i, to_j))`, sorted.
    pub outcomes: Vec<((u32, u32), (u32, u32))>,
}

/// One link of the lock-free segment chain. The `next` pointer is a
/// `OnceLock`: set-once semantics give publication its atomic append (a
/// failed `set` means another publisher won the race) without any unsafe
/// code, and `get` is a lock-free read after initialization.
#[derive(Debug)]
struct SegNode<S> {
    seg: Arc<Segment<S>>,
    next: OnceLock<Arc<SegNode<S>>>,
}

/// Append-only, lock-free cache of a protocol's discovered structure; see
/// the [module docs](self).
pub struct TransitionTable<P: Protocol> {
    /// First chain link; empty tables have none.
    head: OnceLock<Arc<SegNode<P::State>>>,
    /// Number of installed segments (monotone; may briefly lag the chain).
    segs: AtomicUsize,
    /// Latest snapshot handle, reused while the chain has not grown — this
    /// is what makes per-trial snapshot capture a refcount bump.
    cache: Mutex<Option<Arc<TableSnapshot<P::State>>>>,
}

impl<P: Protocol> Default for TransitionTable<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Protocol> TransitionTable<P> {
    /// An empty table.
    pub fn new() -> Self {
        TransitionTable {
            head: OnceLock::new(),
            segs: AtomicUsize::new(0),
            cache: Mutex::new(None),
        }
    }

    /// Visits every installed segment in chain order.
    fn for_each_segment(&self, mut f: impl FnMut(&Segment<P::State>)) {
        let mut node = self.head.get();
        while let Some(n) = node {
            f(&n.seg);
            node = n.next.get();
        }
    }

    /// Number of states the table knows.
    pub fn len(&self) -> usize {
        let mut len = 0;
        self.for_each_segment(|seg| len += seg.states.len());
        len
    }

    /// Whether the table knows no states yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of active ordered pairs the table has classified.
    pub fn active_pairs(&self) -> usize {
        let mut pairs = 0;
        self.for_each_segment(|seg| pairs += seg.rows.pairs() + seg.ext.pairs());
        pairs
    }

    /// Heap bytes the table devotes to (forward) pair adjacency.
    pub fn adjacency_bytes(&self) -> usize {
        let mut bytes = 0;
        self.for_each_segment(|seg| bytes += seg.rows.bytes() + seg.ext.bytes());
        bytes
    }

    /// Number of memoized transition outcomes. Exact: publication
    /// deduplicates a segment's outcomes against the chain it extends.
    pub fn outcome_count(&self) -> usize {
        let mut count = 0;
        self.for_each_segment(|seg| count += seg.outcomes.len());
        count
    }

    /// An owned copy of the full contents, for equality assertions.
    pub fn dump(&self) -> TableDump<P::State> {
        let snap = self.capture();
        let mut states = Vec::with_capacity(snap.len());
        snap.for_each_state(|_, s| states.push(s.clone()));
        let rows = (0..snap.len() as u32)
            .map(|i| {
                let mut row = Vec::new();
                snap.walk_out(i, |j| {
                    row.push(j as u32);
                    true
                });
                row
            })
            .collect();
        TableDump {
            states,
            rows,
            outcomes: snap.sorted_outcomes(),
        }
    }

    /// Collects the current chain into a fresh snapshot handle — `Arc`
    /// clones only, no contents are copied. Readers of the result observe
    /// the chain as of this call, forever.
    pub(crate) fn capture(&self) -> TableSnapshot<P::State> {
        let mut segments = Vec::new();
        let mut bounds = Vec::new();
        let mut node = self.head.get();
        while let Some(n) = node {
            segments.push(Arc::clone(&n.seg));
            bounds.push(n.seg.end());
            node = n.next.get();
        }
        TableSnapshot { segments, bounds }
    }

    /// Atomically appends `seg` to the chain, provided the chain still has
    /// exactly `expected` segments — the tip the caller built `seg`
    /// against. Returns `false` (and publishes nothing) when another
    /// publisher raced in first; the caller rebuilds against the new tip.
    pub(crate) fn try_install(&self, expected: usize, seg: Segment<P::State>) -> bool {
        let node = Arc::new(SegNode {
            seg: Arc::new(seg),
            next: OnceLock::new(),
        });
        let installed = if expected == 0 {
            self.head.set(node).is_ok()
        } else {
            let Some(mut cur) = self.head.get() else {
                return false;
            };
            for _ in 1..expected {
                match cur.next.get() {
                    Some(n) => cur = n,
                    None => return false,
                }
            }
            cur.next.set(node).is_ok()
        };
        if installed {
            self.segs.fetch_add(1, Ordering::Release);
        }
        installed
    }

    /// The shared epoch snapshot: a cheap `Arc` handle over the current
    /// segment chain, memoized so repeated captures while the table is
    /// quiescent cost a refcount bump. The returned snapshot is immutable
    /// and always covers at least the chain as of this call (a memoized
    /// handle may be slightly fresher — snapshots are lookup oracles, so
    /// extra known states only save discovery work; see the canonical-order
    /// contract on [`CountEngine::with_table`](crate::CountEngine::with_table)).
    pub fn snapshot(&self) -> Arc<TableSnapshot<P::State>> {
        let live = self.segs.load(Ordering::Acquire);
        let mut cache = self.cache.lock().expect("snapshot cache poisoned");
        if let Some(snap) = &*cache {
            if snap.segments.len() >= live {
                return Arc::clone(snap);
            }
        }
        let snap = Arc::new(self.capture());
        *cache = Some(Arc::clone(&snap));
        snap
    }

    /// Rebuilds the contents as one freshly allocated, fully materialized
    /// segment — the deep-copy work (states, index, rows, transpose for
    /// asymmetric adjacencies, outcomes) that every warm trial paid per
    /// construction before epoch snapshots. Kept as the measured baseline
    /// of the `warm_sweep` snapshot-cost gate, and for callers that want a
    /// snapshot sharing no storage with the table.
    pub fn snapshot_deep(&self) -> TableSnapshot<P::State> {
        let snap = self.capture();
        let mut states = Vec::with_capacity(snap.len());
        snap.for_each_state(|_, s| states.push(s.clone()));
        let rows = match snap.flat_rows() {
            FlatRows::Borrowed(rows) => rows.clone(),
            FlatRows::Owned(rows) => rows,
        };
        let mut outcomes = HashMap::with_hasher(FxBuildHasher::default());
        for seg in &snap.segments {
            for (&k, &v) in &seg.outcomes {
                outcomes.insert(k, v);
            }
        }
        let symmetric = snap.segments.first().is_none_or(|s| s.symmetric);
        let end = states.len() as u32;
        let seg = Segment::new(0, states, rows, AdjRows::new(), outcomes, symmetric);
        TableSnapshot {
            segments: vec![Arc::new(seg)],
            bounds: vec![end],
        }
    }

    /// Wraps already-validated flat contents as a single base-0 segment,
    /// for the on-disk store loader (see
    /// [`transition_store`](crate::transition_store)). The transpose of an
    /// asymmetric adjacency is materialized here, once per load, instead of
    /// once per warm trial.
    pub(crate) fn from_parts(
        states: Vec<P::State>,
        rows: AdjRows,
        outcomes: HashMap<(u32, u32), (u32, u32), FxBuildHasher>,
        symmetric: bool,
    ) -> Self {
        let table = TransitionTable::new();
        if !states.is_empty() || !outcomes.is_empty() {
            let seg = Segment::new(0, states, rows, AdjRows::new(), outcomes, symmetric);
            let installed = table.try_install(0, seg);
            debug_assert!(installed, "fresh table cannot lose an install race");
        }
        table
    }
}

/// A borrowed-or-consolidated view of a snapshot's flat out-rows; see
/// [`TableSnapshot::flat_rows`].
pub(crate) enum FlatRows<'a> {
    /// The single segment's rows, zero-copy (the common, store-load case).
    Borrowed(&'a AdjRows),
    /// Rows consolidated across segments into one canonical row set.
    Owned(AdjRows),
}

impl std::ops::Deref for FlatRows<'_> {
    type Target = AdjRows;

    fn deref(&self) -> &AdjRows {
        match self {
            FlatRows::Borrowed(rows) => rows,
            FlatRows::Owned(rows) => rows,
        }
    }
}

/// An immutable view of a [`TransitionTable`] at capture time: the shared
/// segment chain behind `Arc`s plus the id boundary of each segment.
/// Cloning the `Arc<TableSnapshot>` returned by
/// [`TransitionTable::snapshot`] is the per-trial cost of a warm start.
///
/// Warm engines use snapshots as *lookup oracles*: activity and outcome
/// queries are answered from the snapshot instead of the protocol, without
/// ever influencing slot numbering (see
/// [`CountEngine::with_table`](crate::CountEngine::with_table)). Because
/// segments are immutable and the chain is captured by value, a snapshot
/// never changes underneath its reader, no matter how many publishers race
/// into the source table afterwards.
#[derive(Debug)]
pub struct TableSnapshot<S> {
    /// The captured chain, oldest first.
    segments: Vec<Arc<Segment<S>>>,
    /// `bounds[k]` is `segments[k].end()` — the first id *not* covered by
    /// segment `k`. Monotone (non-strictly: outcome-only segments repeat
    /// the previous bound), so the owner of an id is a partition point.
    bounds: Vec<u32>,
}

impl<S> TableSnapshot<S> {
    /// Number of states the snapshot knows.
    pub fn len(&self) -> usize {
        self.bounds.last().map_or(0, |&b| b as usize)
    }

    /// Whether the snapshot knows no states.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of segments captured.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The segment owning `tid`.
    fn owner(&self, tid: u32) -> &Segment<S> {
        let k = self.bounds.partition_point(|&b| b <= tid);
        &self.segments[k]
    }

    /// The state with id `tid`.
    ///
    /// # Panics
    ///
    /// Panics when `tid >= len()`.
    pub fn state(&self, tid: u32) -> &S {
        let seg = self.owner(tid);
        &seg.states[(tid - seg.base) as usize]
    }

    /// The id of `state`, if the snapshot knows it.
    pub fn id_of(&self, state: &S) -> Option<u32>
    where
        S: Eq + Hash,
    {
        self.segments
            .iter()
            .find_map(|seg| seg.index.get(state).copied())
    }

    /// The memoized outcome of applied pair `key`, if any.
    pub fn outcome(&self, key: (u32, u32)) -> Option<(u32, u32)> {
        self.segments
            .iter()
            .find_map(|seg| seg.outcomes.get(&key).copied())
    }

    /// Whether the ordered pair `(i, j)` is classified active.
    ///
    /// # Panics
    ///
    /// Panics when either id is `>= len()`.
    pub fn contains(&self, i: u32, j: u32) -> bool {
        let owner = self.owner(i);
        if j < owner.end() {
            owner.rows.contains((i - owner.base) as usize, j as usize)
        } else {
            self.owner(j).ext.contains(i as usize, j as usize)
        }
    }

    /// Visits the ids active as responders to `tid` (row `tid`), ascending,
    /// while `f` returns `true`.
    ///
    /// # Panics
    ///
    /// Panics when `tid >= len()`.
    pub fn walk_out(&self, tid: u32, mut f: impl FnMut(usize) -> bool) {
        let k = self.bounds.partition_point(|&b| b <= tid);
        let owner = &self.segments[k];
        let mut go = true;
        owner.rows.walk((tid - owner.base) as usize, |j| {
            go = f(j);
            go
        });
        if !go {
            return;
        }
        // Later segments extend the row over their own id bands, which are
        // strictly ascending — so the concatenation stays ascending.
        for seg in &self.segments[k + 1..] {
            if seg.states.is_empty() {
                continue;
            }
            seg.ext.walk(tid as usize, |j| {
                go = f(j);
                go
            });
            if !go {
                return;
            }
        }
    }

    /// Visits the ids active as initiators into `tid` (column `tid`),
    /// ascending, while `f` returns `true`. Symmetric adjacencies serve the
    /// column from the row; asymmetric ones from the per-segment in-rows.
    ///
    /// # Panics
    ///
    /// Panics when `tid >= len()`.
    pub fn walk_in(&self, tid: u32, mut f: impl FnMut(usize) -> bool) {
        let k = self.bounds.partition_point(|&b| b <= tid);
        let owner = &self.segments[k];
        let Some(ins) = &owner.ins else {
            // Symmetric: the column equals the row.
            self.walk_out(tid, f);
            return;
        };
        let mut go = true;
        ins.walk((tid - owner.base) as usize, |i| {
            go = f(i);
            go
        });
        if !go {
            return;
        }
        for seg in &self.segments[k + 1..] {
            let Some(ins_ext) = &seg.ins_ext else {
                continue;
            };
            ins_ext.walk(tid as usize, |i| {
                go = f(i);
                go
            });
            if !go {
                return;
            }
        }
    }

    /// Visits every `(id, state)` in id order.
    pub(crate) fn for_each_state(&self, mut f: impl FnMut(u32, &S)) {
        for seg in &self.segments {
            for (r, s) in seg.states.iter().enumerate() {
                f(seg.base + r as u32, s);
            }
        }
    }

    /// Whether the captured adjacency was declared symmetric.
    pub(crate) fn symmetric(&self) -> bool {
        self.segments.first().is_none_or(|s| s.symmetric)
    }

    /// The flat out-rows over all ids — borrowed zero-copy from a
    /// single-segment snapshot (the store-load and cold-export common
    /// case), consolidated otherwise. Consolidation rebuilds rows under the
    /// final slot count, so the representation of equal contents is
    /// canonical either way (see
    /// [`AdjRows::set_row_varint`](crate::activity::AdjRows::set_row_varint)).
    pub(crate) fn flat_rows(&self) -> FlatRows<'_> {
        if self.segments.len() == 1 && self.segments[0].base == 0 {
            return FlatRows::Borrowed(&self.segments[0].rows);
        }
        let n = self.len();
        let mut rows = AdjRows::new();
        for _ in 0..n {
            rows.push_slot();
        }
        for i in 0..n as u32 {
            self.walk_out(i, |j| {
                rows.push(i as usize, j);
                true
            });
        }
        FlatRows::Owned(rows)
    }

    /// All memoized outcomes, sorted by pair.
    pub(crate) fn sorted_outcomes(&self) -> Vec<((u32, u32), (u32, u32))> {
        let mut outcomes: Vec<_> = self
            .segments
            .iter()
            .flat_map(|seg| seg.outcomes.iter().map(|(&k, &v)| (k, v)))
            .collect();
        outcomes.sort_unstable();
        outcomes
    }
}

impl<P: Protocol> std::fmt::Debug for TransitionTable<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransitionTable")
            .field("states", &self.len())
            .field("pairs", &self.active_pairs())
            .field("outcomes", &self.outcome_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Noop;

    impl Protocol for Noop {
        type State = u8;
        type Input = u8;
        type Output = u8;

        fn name(&self) -> &str {
            "noop"
        }

        fn input(&self, i: &u8) -> u8 {
            *i
        }

        fn output(&self, s: &u8) -> u8 {
            *s
        }

        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            (*a, *b)
        }
    }

    #[test]
    fn fresh_table_is_empty() {
        let table: TransitionTable<Noop> = TransitionTable::new();
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
        assert_eq!(table.active_pairs(), 0);
        assert_eq!(table.outcome_count(), 0);
        let dump = table.dump();
        assert!(dump.states.is_empty() && dump.rows.is_empty() && dump.outcomes.is_empty());
        assert_eq!(
            format!("{table:?}"),
            "TransitionTable { states: 0, pairs: 0, outcomes: 0 }"
        );
        let snap = table.snapshot();
        assert!(snap.is_empty() && snap.segment_count() == 0);
    }

    #[test]
    fn install_race_fails_the_stale_publisher() {
        let table: TransitionTable<Noop> = TransitionTable::new();
        let seg = |states: Vec<u8>, base: u32| {
            let mut rows = AdjRows::new();
            for _ in 0..states.len() {
                rows.push_slot();
            }
            let mut ext = AdjRows::new();
            for _ in 0..if states.is_empty() { 0 } else { base } {
                ext.push_slot();
            }
            Segment::new(
                base,
                states,
                rows,
                ext,
                HashMap::with_hasher(FxBuildHasher::default()),
                true,
            )
        };
        assert!(table.try_install(0, seg(vec![1, 2], 0)));
        // Built against the empty tip: stale, must be rejected.
        assert!(!table.try_install(0, seg(vec![3], 0)));
        assert_eq!(table.len(), 2);
        // Built against the current tip: accepted.
        assert!(table.try_install(1, seg(vec![3], 2)));
        assert_eq!(table.len(), 3);
        assert_eq!(table.snapshot().segment_count(), 2);
    }

    #[test]
    fn snapshot_handle_is_memoized_until_the_chain_grows() {
        let table: TransitionTable<Noop> = TransitionTable::new();
        let mut rows = AdjRows::new();
        rows.push_slot();
        assert!(table.try_install(
            0,
            Segment::new(
                0,
                vec![7u8],
                rows,
                AdjRows::new(),
                HashMap::with_hasher(FxBuildHasher::default()),
                true,
            ),
        ));
        let a = table.snapshot();
        let b = table.snapshot();
        assert!(Arc::ptr_eq(&a, &b), "quiescent snapshots share one handle");
        let mut rows = AdjRows::new();
        rows.push_slot();
        assert!(table.try_install(
            1,
            Segment::new(
                1,
                vec![9u8],
                rows,
                {
                    let mut ext = AdjRows::new();
                    ext.push_slot();
                    ext
                },
                HashMap::with_hasher(FxBuildHasher::default()),
                true,
            ),
        ));
        let c = table.snapshot();
        assert!(!Arc::ptr_eq(&a, &c), "growth invalidates the memo");
        assert_eq!(a.len(), 1, "the old handle still reads its capture");
        assert_eq!(c.len(), 2);
    }
}
