//! Shared, append-only protocol-structure cache for warm-started runs.
//!
//! Discovering a protocol's slot structure — which states exist and which
//! ordered state pairs change state — costs `O(slots²)` protocol-transition
//! calls, repeated identically by every engine over the same protocol. A
//! [`TransitionTable`] hoists that structure out of the engine: it is an
//! append-only map from states to canonical ids, from ordered id pairs to
//! their null/active classification, and from applied active pairs to their
//! transition outcomes. A finished engine [exports](crate::CountEngine::export_to)
//! everything it discovered; a fresh engine
//! [warm-starts](crate::CountEngine::with_table) by bulk-loading the table
//! (`O(slots + pairs)`, zero protocol calls) and only pays discovery for
//! states the table has never seen.
//!
//! The table is `Sync` (interior `RwLock`) and designed to be shared —
//! behind an `Arc` or plain reference — across the threads of a multi-seed
//! sweep: `TrialRunner` in `pp_analysis` threads one table through all
//! trials, so seeds `2..N` pay near-zero discovery.
//!
//! # Example
//!
//! ```
//! # use pp_protocol::{CountEngine, Protocol, TransitionTable, UniformCountScheduler};
//! # struct Max;
//! # impl Protocol for Max {
//! #     type State = u8; type Input = u8; type Output = u8;
//! #     fn name(&self) -> &str { "max" }
//! #     fn input(&self, i: &u8) -> u8 { *i }
//! #     fn output(&self, s: &u8) -> u8 { *s }
//! #     fn transition(&self, a: &u8, b: &u8) -> (u8, u8) { let m = *a.max(b); (m, m) }
//! #     fn is_symmetric(&self) -> bool { true }
//! # }
//! let inputs: Vec<u8> = (0..1000).map(|i| (i % 7) as u8).collect();
//! let table = TransitionTable::new();
//!
//! // Seed 1 discovers; later seeds load the discovered structure.
//! for seed in 0..4 {
//!     let config = inputs.iter().map(|i| Max.input(i)).collect();
//!     let mut engine =
//!         CountEngine::with_table(&Max, config, UniformCountScheduler::new(), seed, &table);
//!     engine.run_until_silent(u64::MAX)?;
//!     engine.export_to(&table);
//! }
//! assert_eq!(table.len(), 7);
//! # Ok::<(), pp_protocol::FrameworkError>(())
//! ```

use std::collections::HashMap;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::activity::AdjRows;
use crate::hashing::FxBuildHasher;
use crate::protocol::Protocol;

/// The interior of a [`TransitionTable`]: canonical states, activity rows
/// and memoized outcomes. Crate-visible so the engine can bulk-load and
/// merge under one lock acquisition.
#[derive(Debug)]
pub(crate) struct TableInner<S> {
    /// States in canonical (first-export) order; ids are indices here.
    pub(crate) states: Vec<S>,
    /// State → canonical id.
    pub(crate) index: HashMap<S, u32, FxBuildHasher>,
    /// Row `i`: ids `j` (ascending) with the ordered pair `(i, j)` active,
    /// in the compressed per-row representation (so compact warm loads are
    /// near-memcpy). Pairs absent from a row are null — the table always
    /// classifies *every* ordered pair over its states.
    pub(crate) rows: AdjRows,
    /// Applied transition outcomes: active id pair → resulting id pair.
    /// Populated lazily (only pairs that actually fired), so it stays far
    /// smaller than the full active set.
    pub(crate) outcomes: HashMap<(u32, u32), (u32, u32), FxBuildHasher>,
}

/// An owned, comparable copy of a table's contents — states in canonical
/// order, activity rows, and outcomes sorted by pair. Used by tests to
/// assert that two discovery paths produced bit-identical structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDump<S> {
    /// States in canonical id order.
    pub states: Vec<S>,
    /// Active responder ids (ascending) per initiator id.
    pub rows: Vec<Vec<u32>>,
    /// Memoized outcomes as `((from_i, from_j), (to_i, to_j))`, sorted.
    pub outcomes: Vec<((u32, u32), (u32, u32))>,
}

/// Append-only, `Sync` cache of a protocol's discovered structure; see the
/// [module docs](self).
pub struct TransitionTable<P: Protocol> {
    inner: RwLock<TableInner<P::State>>,
}

impl<P: Protocol> Default for TransitionTable<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Protocol> TransitionTable<P> {
    /// An empty table.
    pub fn new() -> Self {
        TransitionTable {
            inner: RwLock::new(TableInner {
                states: Vec::new(),
                index: HashMap::with_hasher(FxBuildHasher::default()),
                rows: AdjRows::new(),
                outcomes: HashMap::with_hasher(FxBuildHasher::default()),
            }),
        }
    }

    /// Number of states the table knows.
    pub fn len(&self) -> usize {
        self.read().states.len()
    }

    /// Whether the table knows no states yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of active ordered pairs the table has classified.
    pub fn active_pairs(&self) -> usize {
        self.read().rows.pairs()
    }

    /// Heap bytes the table devotes to pair adjacency.
    pub fn adjacency_bytes(&self) -> usize {
        self.read().rows.bytes()
    }

    /// Number of memoized transition outcomes.
    pub fn outcome_count(&self) -> usize {
        self.read().outcomes.len()
    }

    /// An owned copy of the full contents, for equality assertions.
    pub fn dump(&self) -> TableDump<P::State> {
        let inner = self.read();
        let mut outcomes: Vec<_> = inner.outcomes.iter().map(|(&k, &v)| (k, v)).collect();
        outcomes.sort_unstable();
        TableDump {
            states: inner.states.clone(),
            rows: inner.rows.to_vecs(),
            outcomes,
        }
    }

    pub(crate) fn read(&self) -> RwLockReadGuard<'_, TableInner<P::State>> {
        self.inner.read().expect("transition table lock poisoned")
    }

    /// Wraps already-validated contents, for the on-disk store loader
    /// (see [`transition_store`](crate::transition_store)).
    pub(crate) fn from_inner(inner: TableInner<P::State>) -> Self {
        TransitionTable {
            inner: RwLock::new(inner),
        }
    }

    pub(crate) fn write(&self) -> RwLockWriteGuard<'_, TableInner<P::State>> {
        self.inner.write().expect("transition table lock poisoned")
    }

    /// An immutable copy of the table's current contents, used by warm
    /// engines as a *lookup oracle*: activity and outcome queries are
    /// answered from the snapshot instead of the protocol, without ever
    /// influencing slot numbering (see
    /// [`CountEngine::with_table`](crate::CountEngine::with_table)).
    ///
    /// For asymmetric protocols the transpose rows are materialized once
    /// here, so in-neighbor queries stay `O(row)`; symmetric snapshots
    /// serve both orientations from the forward rows.
    pub(crate) fn snapshot(&self, symmetric: bool) -> TableSnapshot<P::State>
    where
        P::State: Clone,
    {
        let inner = self.read();
        let ins = if symmetric {
            None
        } else {
            Some(inner.rows.transpose())
        };
        TableSnapshot {
            states: inner.states.clone(),
            index: inner.index.clone(),
            rows: inner.rows.clone(),
            ins,
            outcomes: inner.outcomes.clone(),
        }
    }
}

/// A warm engine's immutable view of a [`TransitionTable`] at construction
/// time; see [`TransitionTable::snapshot`].
#[derive(Debug)]
pub(crate) struct TableSnapshot<S> {
    /// States in the snapshot's table-id order.
    pub(crate) states: Vec<S>,
    /// State → table id.
    pub(crate) index: HashMap<S, u32, FxBuildHasher>,
    /// Forward activity rows, by table id.
    pub(crate) rows: AdjRows,
    /// Transpose rows; `None` when the adjacency is symmetric.
    pub(crate) ins: Option<AdjRows>,
    /// Memoized transition outcomes, by table-id pair.
    pub(crate) outcomes: HashMap<(u32, u32), (u32, u32), FxBuildHasher>,
}

impl<S> TableSnapshot<S> {
    /// Number of states the snapshot knows.
    pub(crate) fn len(&self) -> usize {
        self.states.len()
    }

    /// Visits the table ids active as responders to `tid` (row `tid`).
    pub(crate) fn walk_out(&self, tid: u32, f: impl FnMut(usize) -> bool) {
        self.rows.walk(tid as usize, f);
    }

    /// Visits the table ids active as initiators into `tid` (column `tid`).
    pub(crate) fn walk_in(&self, tid: u32, f: impl FnMut(usize) -> bool) {
        match &self.ins {
            // Symmetric adjacency: the column equals the row.
            None => self.rows.walk(tid as usize, f),
            Some(ins) => ins.walk(tid as usize, f),
        }
    }
}

impl<P: Protocol> std::fmt::Debug for TransitionTable<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.read();
        f.debug_struct("TransitionTable")
            .field("states", &inner.states.len())
            .field("pairs", &inner.rows.pairs())
            .field("outcomes", &inner.outcomes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Noop;

    impl Protocol for Noop {
        type State = u8;
        type Input = u8;
        type Output = u8;

        fn name(&self) -> &str {
            "noop"
        }

        fn input(&self, i: &u8) -> u8 {
            *i
        }

        fn output(&self, s: &u8) -> u8 {
            *s
        }

        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            (*a, *b)
        }
    }

    #[test]
    fn fresh_table_is_empty() {
        let table: TransitionTable<Noop> = TransitionTable::new();
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
        assert_eq!(table.active_pairs(), 0);
        assert_eq!(table.outcome_count(), 0);
        let dump = table.dump();
        assert!(dump.states.is_empty() && dump.rows.is_empty() && dump.outcomes.is_empty());
        assert_eq!(
            format!("{table:?}"),
            "TransitionTable { states: 0, pairs: 0, outcomes: 0 }"
        );
    }
}
