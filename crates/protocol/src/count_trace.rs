//! Count-level traces: recording and replaying change-point schedules.
//!
//! An [`InteractionTrace`](crate::InteractionTrace) pins down an indexed
//! run by agent indices, which stops scaling the moment runs have `10^12`
//! interactions. At count level the only interactions that matter are the
//! state-*changing* ones — a Circles run at `n = 10^9` has `~Θ(n)` of them —
//! so a [`CountTrace`] records the `(initiator state, responder state)`
//! pair of every applied change-point. Replaying those pairs through a
//! [`ReplayCountScheduler`](crate::ReplayCountScheduler) reproduces the
//! exact configuration trajectory of the recorded run (null interactions
//! only advance the step counter, never the configuration), which makes
//! large-`n` failures reproducible; [`truncated`](CountTrace::truncated)
//! shrinks a failing schedule to a minimal prefix.
//!
//! The serialized form is JSON lines — one header object, then one object
//! per change-point — so traces stream, diff and shrink with line tools:
//!
//! ```text
//! {"n":1000000000,"changes":3}
//! {"a":"⟨0|0⟩→c0","b":"⟨1|1⟩→c1"}
//! {"a":"⟨0|1⟩→c0","b":"⟨1|0⟩→c1"}
//! {"a":"⟨0|0⟩→c0","b":"⟨0|1⟩→c1"}
//! ```

use std::fmt::Display;
use std::str::FromStr;

use crate::error::FrameworkError;
use crate::scheduler::ReplayCountScheduler;

/// A recorded change-point schedule over state pairs.
///
/// Produced by [`CountEngine::take_trace`](crate::CountEngine::take_trace)
/// or parsed from JSONL; consumed by a
/// [`ReplayCountScheduler`](crate::ReplayCountScheduler).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountTrace<S> {
    n: u64,
    pairs: Vec<(S, S)>,
}

impl<S> CountTrace<S> {
    /// Creates a trace over a population of `n` agents.
    pub fn new(n: u64, pairs: Vec<(S, S)>) -> Self {
        CountTrace { n, pairs }
    }

    /// Population size the trace was recorded over.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The recorded change-point state pairs, in schedule order.
    pub fn pairs(&self) -> &[(S, S)] {
        &self.pairs
    }

    /// Number of recorded change-points.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no change-points are recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The first `len` change-points — the shrinking primitive: a failing
    /// replay is bisected by replaying ever-shorter prefixes.
    pub fn truncated(mut self, len: usize) -> Self {
        self.pairs.truncate(len);
        self
    }
}

impl<S: Clone + Eq> CountTrace<S> {
    /// Converts the trace into a scheduler that replays it.
    pub fn into_scheduler(self) -> ReplayCountScheduler<S> {
        ReplayCountScheduler::new(self.pairs)
    }
}

/// JSON-escapes `raw` into `out` (the short escapes plus `\u` for other
/// control characters).
fn push_json_string(out: &mut String, raw: &str) {
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Extracts the JSON string value of `key` from a single-line JSON object.
/// A deliberately minimal parser: it supports exactly the objects this
/// module emits (string values with the escapes of [`push_json_string`]).
fn json_string_field(line: &str, key: &str) -> Result<String, FrameworkError> {
    let marker = format!("\"{key}\":");
    let start = line
        .find(&marker)
        .ok_or_else(|| FrameworkError::TraceParse(format!("missing {key:?} in line {line:?}")))?
        + marker.len();
    let rest = line[start..].trim_start();
    let mut chars = rest.chars();
    if chars.next() != Some('"') {
        return Err(FrameworkError::TraceParse(format!(
            "field {key:?} is not a string in line {line:?}"
        )));
    }
    let mut value = String::new();
    loop {
        match chars.next() {
            None => {
                return Err(FrameworkError::TraceParse(format!(
                    "unterminated string in line {line:?}"
                )))
            }
            Some('"') => return Ok(value),
            Some('\\') => match chars.next() {
                Some('"') => value.push('"'),
                Some('\\') => value.push('\\'),
                Some('n') => value.push('\n'),
                Some('r') => value.push('\r'),
                Some('t') => value.push('\t'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).map_err(|e| {
                        FrameworkError::TraceParse(format!("bad \\u escape {hex:?}: {e}"))
                    })?;
                    value.push(char::from_u32(code).ok_or_else(|| {
                        FrameworkError::TraceParse(format!("invalid codepoint {code:#x}"))
                    })?);
                }
                other => {
                    return Err(FrameworkError::TraceParse(format!(
                        "unsupported escape {other:?} in line {line:?}"
                    )))
                }
            },
            Some(c) => value.push(c),
        }
    }
}

/// Extracts the JSON integer value of `key` from a single-line JSON object.
fn json_u64_field(line: &str, key: &str) -> Result<u64, FrameworkError> {
    let marker = format!("\"{key}\":");
    let start = line
        .find(&marker)
        .ok_or_else(|| FrameworkError::TraceParse(format!("missing {key:?} in line {line:?}")))?
        + marker.len();
    let digits: String = line[start..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .map_err(|e| FrameworkError::TraceParse(format!("bad {key:?} value: {e}")))
}

impl<S> CountTrace<S> {
    /// Serializes the trace as JSON lines, encoding each state through
    /// `encode` (see [`to_jsonl`](Self::to_jsonl) for the `Display`-based
    /// convenience).
    pub fn to_jsonl_with(&self, mut encode: impl FnMut(&S) -> String) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"n\":{},\"changes\":{}}}\n",
            self.n,
            self.pairs.len()
        ));
        for (a, b) in &self.pairs {
            out.push_str("{\"a\":");
            push_json_string(&mut out, &encode(a));
            out.push_str(",\"b\":");
            push_json_string(&mut out, &encode(b));
            out.push_str("}\n");
        }
        out
    }

    /// Parses a JSONL trace, decoding each state through `decode`.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::TraceParse`] on malformed lines, a missing
    /// header, a change-count mismatch, or a state `decode` rejects.
    pub fn from_jsonl_with(
        text: &str,
        mut decode: impl FnMut(&str) -> Result<S, String>,
    ) -> Result<Self, FrameworkError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| FrameworkError::TraceParse("missing header line".into()))?;
        let n = json_u64_field(header, "n")?;
        let changes = json_u64_field(header, "changes")?;
        let mut pairs = Vec::new();
        for line in lines {
            let a = json_string_field(line, "a")?;
            let b = json_string_field(line, "b")?;
            let decode_state = |raw: &str, decode: &mut dyn FnMut(&str) -> Result<S, String>| {
                decode(raw)
                    .map_err(|e| FrameworkError::TraceParse(format!("bad state {raw:?}: {e}")))
            };
            pairs.push((
                decode_state(&a, &mut decode)?,
                decode_state(&b, &mut decode)?,
            ));
        }
        if pairs.len() as u64 != changes {
            return Err(FrameworkError::TraceParse(format!(
                "header declares {changes} changes but {} lines follow",
                pairs.len()
            )));
        }
        Ok(CountTrace { n, pairs })
    }
}

impl<S: Display> CountTrace<S> {
    /// Serializes the trace as JSON lines using each state's `Display` form.
    pub fn to_jsonl(&self) -> String {
        self.to_jsonl_with(|s| s.to_string())
    }
}

impl<S: FromStr<Err: Display>> CountTrace<S> {
    /// Parses a JSONL trace using each state's `FromStr` form.
    ///
    /// # Errors
    ///
    /// Returns [`FrameworkError::TraceParse`] on malformed input (see
    /// [`from_jsonl_with`](Self::from_jsonl_with)).
    pub fn from_jsonl(text: &str) -> Result<Self, FrameworkError> {
        Self::from_jsonl_with(text, |raw| raw.parse().map_err(|e: S::Err| e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_trips_with_display_and_fromstr() {
        let trace = CountTrace::new(5, vec![(3u32, 1u32), (1, 1), (4, 2)]);
        let text = trace.to_jsonl();
        assert!(text.starts_with("{\"n\":5,\"changes\":3}\n"));
        let parsed: CountTrace<u32> = CountTrace::from_jsonl(&text).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn jsonl_escapes_hostile_state_encodings() {
        let trace = CountTrace::new(2, vec![("a\"b\\c\nd".to_string(), "\u{1}".to_string())]);
        let text = trace.to_jsonl_with(|s| s.clone());
        let parsed =
            CountTrace::from_jsonl_with(&text, |raw| Ok::<_, String>(raw.to_string())).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn truncation_shrinks_the_schedule() {
        let trace = CountTrace::new(9, vec![(1u8, 2u8), (2, 1), (1, 1)]);
        let short = trace.clone().truncated(1);
        assert_eq!(short.pairs(), &[(1, 2)]);
        assert_eq!(short.n(), 9);
        assert_eq!(trace.clone().truncated(10).len(), 3);
    }

    #[test]
    fn parse_rejects_malformed_traces() {
        assert!(CountTrace::<u32>::from_jsonl("").is_err());
        assert!(CountTrace::<u32>::from_jsonl("{\"n\":2}\n").is_err());
        let missing = "{\"n\":2,\"changes\":2}\n{\"a\":\"1\",\"b\":\"2\"}\n";
        assert!(
            CountTrace::<u32>::from_jsonl(missing).is_err(),
            "count lies"
        );
        let bad_state = "{\"n\":2,\"changes\":1}\n{\"a\":\"x\",\"b\":\"2\"}\n";
        assert!(CountTrace::<u32>::from_jsonl(bad_state).is_err());
        let unterminated = "{\"n\":2,\"changes\":1}\n{\"a\":\"1,\"b\":\"2\"}\n";
        assert!(CountTrace::<u32>::from_jsonl(unterminated).is_err());
    }

    #[test]
    fn scheduler_conversion_preserves_order() {
        let trace = CountTrace::new(4, vec![(7u8, 9u8), (9, 7)]);
        let scheduler = trace.into_scheduler();
        assert_eq!(scheduler.remaining(), 2);
    }
}
