//! Error type shared by the framework.

use std::error::Error;
use std::fmt;

/// Errors produced by the simulation framework.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameworkError {
    /// A population with zero agents was supplied where interactions are
    /// required.
    EmptyPopulation,
    /// A population with a single agent cannot interact.
    PopulationTooSmall {
        /// Number of agents supplied.
        n: usize,
    },
    /// An agent index was outside the population.
    AgentOutOfBounds {
        /// Offending index.
        index: usize,
        /// Population size.
        n: usize,
    },
    /// A scheduler returned a reflexive pair `(i, i)`; agents cannot interact
    /// with themselves.
    ReflexivePair {
        /// The repeated index.
        index: usize,
    },
    /// A run exceeded its interaction budget before converging.
    MaxStepsExceeded {
        /// The budget that was exhausted.
        max_steps: u64,
    },
    /// An interaction trace could not be parsed.
    TraceParse(String),
    /// A checkpoint hook asked the run to pause
    /// ([`ControlFlow::Break`](std::ops::ControlFlow::Break)): the engine
    /// stopped at a change-point and can be resumed from its latest
    /// checkpoint. A pause is not a failure — supervisors match on this
    /// variant to schedule the resume.
    Interrupted {
        /// Interactions executed when the run paused.
        steps: u64,
    },
}

impl fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkError::EmptyPopulation => write!(f, "population is empty"),
            FrameworkError::PopulationTooSmall { n } => {
                write!(f, "population of {n} agent(s) cannot interact")
            }
            FrameworkError::AgentOutOfBounds { index, n } => {
                write!(f, "agent index {index} out of bounds for population of {n}")
            }
            FrameworkError::ReflexivePair { index } => {
                write!(f, "scheduler produced reflexive pair ({index}, {index})")
            }
            FrameworkError::MaxStepsExceeded { max_steps } => {
                write!(f, "run did not converge within {max_steps} interactions")
            }
            FrameworkError::TraceParse(msg) => write!(f, "invalid interaction trace: {msg}"),
            FrameworkError::Interrupted { steps } => {
                write!(
                    f,
                    "run paused by its checkpoint hook after {steps} interactions"
                )
            }
        }
    }
}

impl Error for FrameworkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            FrameworkError::EmptyPopulation,
            FrameworkError::PopulationTooSmall { n: 1 },
            FrameworkError::AgentOutOfBounds { index: 9, n: 3 },
            FrameworkError::ReflexivePair { index: 2 },
            FrameworkError::MaxStepsExceeded { max_steps: 10 },
            FrameworkError::TraceParse("bad line".into()),
            FrameworkError::Interrupted { steps: 5 },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrameworkError>();
    }
}
