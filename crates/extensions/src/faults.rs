//! Out-of-model fault injection: crash-and-restart agents and measure the
//! damage.
//!
//! The population-protocol model has no failures; Circles' correctness proof
//! leans on the global bra-ket invariant (Lemma 3.3), which a crashed agent
//! restarting as a fresh `⟨c|c⟩` self-loop *violates* (its old bra
//! disappears while its old ket may live on in another agent). This module
//! deliberately breaks the invariant to measure, empirically, how the
//! protocol degrades — the kind of robustness probe a practitioner would run
//! before deploying the protocol on real sensors.
//!
//! A [`FaultPlan`] resets chosen agents to their *input* states at chosen
//! steps during a run driven by [`run_with_faults`]; the report records
//! whether the run still stabilized, whether the final consensus is correct,
//! and whether conservation was violated along the way.

use circles_core::invariants::population_conserves;
use circles_core::{CirclesProtocol, Color};
use pp_protocol::Protocol;
use pp_protocol::{FrameworkError, Population, Scheduler, Simulation};

/// One scheduled fault: at interaction `at_step`, agent `agent` forgets
/// everything and restarts from its input color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Interaction index (1-based) *before* which the reset is applied.
    pub at_step: u64,
    /// The agent to reset.
    pub agent: usize,
}

/// A batch of faults to inject into one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        FaultPlan { faults: Vec::new() }
    }

    /// Adds a fault; keeps the plan sorted by step.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
        self.faults.sort_by_key(|f| f.at_step);
    }

    /// The planned faults in step order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }
}

/// Outcome of a faulty run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Whether the run reached a silent configuration within budget.
    pub stabilized: bool,
    /// The final unanimous output, if any.
    pub consensus: Option<Color>,
    /// Whether the final consensus equals the true plurality of the
    /// *original* inputs.
    pub correct: bool,
    /// Whether bra-ket conservation (Lemma 3.3) held at the end — restarts
    /// usually break it permanently.
    pub conserved_at_end: bool,
    /// Interactions executed.
    pub steps: u64,
}

/// Runs Circles under `scheduler` with faults injected per `plan`.
///
/// # Errors
///
/// Propagates framework errors; a run that fails to stabilize is reported
/// with `stabilized == false` rather than as an error.
pub fn run_with_faults<Sch>(
    inputs: &[Color],
    k: u16,
    scheduler: Sch,
    seed: u64,
    plan: &FaultPlan,
    max_steps: u64,
) -> Result<FaultReport, FrameworkError>
where
    Sch: Scheduler<circles_core::CirclesState>,
{
    let protocol = CirclesProtocol::new(k).expect("valid k");
    let population = Population::from_inputs(&protocol, inputs);
    let mut sim = Simulation::new(&protocol, population, scheduler, seed);

    let truth = circles_core::GreedyDecomposition::from_inputs(inputs, k)
        .expect("valid inputs")
        .winner();

    let mut next_fault = 0usize;
    let mut stabilized = false;
    while sim.stats().steps < max_steps {
        while next_fault < plan.faults().len()
            && plan.faults()[next_fault].at_step <= sim.stats().steps
        {
            let fault = plan.faults()[next_fault];
            let fresh = protocol.input(&inputs[fault.agent]);
            sim.inject_state(fault.agent, fresh)?;
            next_fault += 1;
        }
        let _ = sim.step()?;
        // Check silence only occasionally (it is O(d²)) and only after all
        // faults have fired — a "silent" state before the last fault is not
        // terminal.
        if next_fault == plan.faults().len()
            && sim.stats().steps % 64 == 0
            && sim.population().is_silent(&protocol)
        {
            stabilized = true;
            break;
        }
    }
    if !stabilized && sim.population().is_silent(&protocol) {
        stabilized = next_fault == plan.faults().len();
    }

    let consensus = sim.population().output_consensus(&protocol);
    let conserved_at_end = population_conserves(sim.population(), k);
    Ok(FaultReport {
        stabilized,
        correct: truth.is_some() && consensus == truth,
        consensus,
        conserved_at_end,
        steps: sim.stats().steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocol::UniformPairScheduler;

    fn colors(xs: &[u16]) -> Vec<Color> {
        xs.iter().map(|&x| Color(x)).collect()
    }

    #[test]
    fn fault_free_run_is_correct_and_conserved() {
        let inputs = colors(&[0, 0, 0, 1, 1, 2]);
        let report = run_with_faults(
            &inputs,
            3,
            UniformPairScheduler::new(),
            1,
            &FaultPlan::new(),
            1_000_000,
        )
        .unwrap();
        assert!(report.stabilized);
        assert!(report.correct);
        assert!(report.conserved_at_end);
    }

    #[test]
    fn early_fault_often_self_heals() {
        // A reset at step 1 is close to a fresh start; the run should
        // stabilize (possibly with broken conservation, since the old ket
        // survives elsewhere).
        let inputs = colors(&[0, 0, 0, 1, 1]);
        let mut plan = FaultPlan::new();
        plan.push(Fault {
            at_step: 1,
            agent: 0,
        });
        let report =
            run_with_faults(&inputs, 2, UniformPairScheduler::new(), 2, &plan, 1_000_000).unwrap();
        assert!(report.stabilized, "{report:?}");
    }

    #[test]
    fn plan_sorts_faults() {
        let mut plan = FaultPlan::new();
        plan.push(Fault {
            at_step: 50,
            agent: 1,
        });
        plan.push(Fault {
            at_step: 10,
            agent: 0,
        });
        assert_eq!(plan.faults()[0].at_step, 10);
    }
}
