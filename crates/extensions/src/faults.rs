//! Out-of-model fault injection: crash-and-restart agents and measure the
//! damage.
//!
//! The population-protocol model has no failures; Circles' correctness proof
//! leans on the global bra-ket invariant (Lemma 3.3), which a crashed agent
//! restarting as a fresh `⟨c|c⟩` self-loop *violates* (its old bra
//! disappears while its old ket may live on in another agent). This module
//! deliberately breaks the invariant to measure, empirically, how the
//! protocol degrades — the kind of robustness probe a practitioner would run
//! before deploying the protocol on real sensors.
//!
//! A [`FaultPlan`] resets chosen agents to their *input* states at chosen
//! steps during a run driven by [`run_with_faults`]; the report records
//! whether the run still stabilized, whether the final consensus is correct,
//! and whether conservation was violated along the way.

use circles_core::invariants::population_conserves;
use circles_core::{CirclesProtocol, Color};
use pp_protocol::Protocol;
use pp_protocol::{FrameworkError, Population, Scheduler, Simulation};

/// One scheduled fault: at interaction `at_step`, agent `agent` forgets
/// everything and restarts from its input color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Interaction index (1-based) *before* which the reset is applied.
    pub at_step: u64,
    /// The agent to reset.
    pub agent: usize,
}

/// A batch of faults to inject into one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        FaultPlan { faults: Vec::new() }
    }

    /// Adds a fault, inserting in position (`O(log len)` search plus the
    /// tail shift — no re-sort of the whole plan) so the plan stays ordered
    /// by `(at_step, agent)`.
    ///
    /// Duplicate policy: an exact `(at_step, agent)` duplicate is dropped.
    /// Resetting an agent is idempotent — a second reset of the same agent
    /// at the same step is the same reset — so keeping duplicates would
    /// only misreport the number of distinct faults a run suffered.
    /// (Contrast the anonymous [`HazardPlan`](crate::hazards::HazardPlan),
    /// where two hazards at one step are two distinct units of mass.)
    pub fn push(&mut self, fault: Fault) {
        let at = self
            .faults
            .partition_point(|f| (f.at_step, f.agent) <= (fault.at_step, fault.agent));
        if at > 0 && self.faults[at - 1] == fault {
            return;
        }
        self.faults.insert(at, fault);
    }

    /// The planned faults in step order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }
}

/// Outcome of a faulty run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Whether the run reached a silent configuration within budget.
    pub stabilized: bool,
    /// The final unanimous output, if any.
    pub consensus: Option<Color>,
    /// Whether the final consensus equals the true plurality of the
    /// *original* inputs.
    pub correct: bool,
    /// Whether bra-ket conservation (Lemma 3.3) held at the end — restarts
    /// usually break it permanently.
    pub conserved_at_end: bool,
    /// Interactions executed.
    pub steps: u64,
}

/// Runs Circles under `scheduler` with faults injected per `plan`.
///
/// The simulation RNG is seeded `StdRng::seed_from_u64(seed)`; use
/// [`run_with_faults_rng`] to drive the run from an explicit generator
/// (e.g. a counter-based Philox trial stream).
///
/// # Errors
///
/// Propagates framework errors; a run that fails to stabilize is reported
/// with `stabilized == false` rather than as an error.
pub fn run_with_faults<Sch>(
    inputs: &[Color],
    k: u16,
    scheduler: Sch,
    seed: u64,
    plan: &FaultPlan,
    max_steps: u64,
) -> Result<FaultReport, FrameworkError>
where
    Sch: Scheduler<circles_core::CirclesState>,
{
    use rand::SeedableRng;
    run_with_faults_rng(
        inputs,
        k,
        scheduler,
        rand::rngs::StdRng::seed_from_u64(seed),
        plan,
        max_steps,
    )
}

/// [`run_with_faults`] with an explicitly constructed simulation generator —
/// the entry point for counter-based trial streams.
///
/// # Errors
///
/// Propagates framework errors; a run that fails to stabilize is reported
/// with `stabilized == false` rather than as an error.
pub fn run_with_faults_rng<Sch, R>(
    inputs: &[Color],
    k: u16,
    scheduler: Sch,
    rng: R,
    plan: &FaultPlan,
    max_steps: u64,
) -> Result<FaultReport, FrameworkError>
where
    Sch: Scheduler<circles_core::CirclesState>,
    R: rand::RngCore,
{
    let protocol = CirclesProtocol::new(k).expect("valid k");
    let population = Population::from_inputs(&protocol, inputs);
    let mut sim = Simulation::with_rng(&protocol, population, scheduler, rng);

    let truth = circles_core::GreedyDecomposition::from_inputs(inputs, k)
        .expect("valid inputs")
        .winner();

    // Phase 1: march the run fault to fault. Silence before the last fault
    // is not terminal (the fault will perturb it), so no silence checks are
    // needed — or wanted, they are O(d²) — until the plan is exhausted.
    let mut fired = 0usize;
    for fault in plan.faults() {
        if fault.at_step > max_steps {
            break;
        }
        let steps = sim.stats().steps;
        if fault.at_step > steps {
            sim.run_observed(fault.at_step - steps, |_| {})?;
        }
        let fresh = protocol.input(&inputs[fault.agent]);
        sim.inject_state(fault.agent, fresh)?;
        fired += 1;
    }

    // Phase 2: hand the rest of the budget to the simulation's own silence
    // surface, which checks up front and then every `check_interval` steps.
    // A run that exhausts `max_steps` with faults still pending can never
    // report `stabilized == true`: either phase 1 broke out early (leaving
    // `fired < plan.faults().len()`), or the budget ran out here.
    let check_interval = (inputs.len() as u64).max(16);
    let stabilized = match sim.run_until_silent(max_steps, check_interval) {
        Ok(_) => fired == plan.faults().len(),
        Err(FrameworkError::MaxStepsExceeded { .. }) => false,
        Err(e) => return Err(e),
    };

    let consensus = sim.population().output_consensus(&protocol);
    let conserved_at_end = population_conserves(sim.population(), k);
    Ok(FaultReport {
        stabilized,
        correct: truth.is_some() && consensus == truth,
        consensus,
        conserved_at_end,
        steps: sim.stats().steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocol::UniformPairScheduler;

    fn colors(xs: &[u16]) -> Vec<Color> {
        xs.iter().map(|&x| Color(x)).collect()
    }

    #[test]
    fn fault_free_run_is_correct_and_conserved() {
        let inputs = colors(&[0, 0, 0, 1, 1, 2]);
        let report = run_with_faults(
            &inputs,
            3,
            UniformPairScheduler::new(),
            1,
            &FaultPlan::new(),
            1_000_000,
        )
        .unwrap();
        assert!(report.stabilized);
        assert!(report.correct);
        assert!(report.conserved_at_end);
    }

    #[test]
    fn early_fault_often_self_heals() {
        // A reset at step 1 is close to a fresh start; the run should
        // stabilize (possibly with broken conservation, since the old ket
        // survives elsewhere).
        let inputs = colors(&[0, 0, 0, 1, 1]);
        let mut plan = FaultPlan::new();
        plan.push(Fault {
            at_step: 1,
            agent: 0,
        });
        let report =
            run_with_faults(&inputs, 2, UniformPairScheduler::new(), 2, &plan, 1_000_000).unwrap();
        assert!(report.stabilized, "{report:?}");
    }

    #[test]
    fn plan_sorts_faults() {
        let mut plan = FaultPlan::new();
        plan.push(Fault {
            at_step: 50,
            agent: 1,
        });
        plan.push(Fault {
            at_step: 10,
            agent: 0,
        });
        assert_eq!(plan.faults()[0].at_step, 10);
    }

    #[test]
    fn plan_drops_exact_duplicates_and_orders_by_agent_within_a_step() {
        let mut plan = FaultPlan::new();
        plan.push(Fault {
            at_step: 10,
            agent: 2,
        });
        plan.push(Fault {
            at_step: 10,
            agent: 0,
        });
        // A second reset of the same agent at the same step is the same
        // reset: dropped.
        plan.push(Fault {
            at_step: 10,
            agent: 2,
        });
        assert_eq!(
            plan.faults(),
            &[
                Fault {
                    at_step: 10,
                    agent: 0
                },
                Fault {
                    at_step: 10,
                    agent: 2
                },
            ]
        );
    }

    #[test]
    fn pending_faults_at_budget_exhaustion_forbid_stabilized() {
        // The fault sits far beyond the step budget, so the run may well be
        // silent when the budget runs out — but it must not be reported as
        // stabilized while a fault is still pending.
        let inputs = colors(&[0, 0, 0, 1, 1]);
        let mut plan = FaultPlan::new();
        plan.push(Fault {
            at_step: 1_000_000,
            agent: 0,
        });
        let report =
            run_with_faults(&inputs, 2, UniformPairScheduler::new(), 3, &plan, 10_000).unwrap();
        assert!(!report.stabilized, "{report:?}");
        assert!(report.steps <= 10_000);
    }
}
