//! Circles for the *unordered* setting (paper §4): colors comparable only
//! for equality, `O(k⁴)` states.
//!
//! Circles needs numeric colors (the weight function is a cyclic distance),
//! so in the unordered setting agents first agree on a numbering via the
//! [ordering protocol](crate::ordering) and run Circles over *labels*. The
//! delicate part — the part the paper's sketch spends most of its words on —
//! is what happens when an agent's label changes after it has already traded
//! kets: resetting unilaterally would corrupt the global bra-ket invariant
//! (Lemma 3.3), after which Lemma 3.6's terminal prediction no longer holds.
//!
//! Following the sketch ("*we need to put agents into special states in
//! which they wait to undo changes they previously made to the population
//! until they are 'consistent' again and ready to be re-initialized*"), an
//! agent whose label must change enters an **Undoing** phase:
//!
//! - it stops participating in Circles exchanges;
//! - when it meets any bra-ket-holding agent whose *ket equals its own
//!   bra*, the two swap kets unconditionally — the undoing agent is now the
//!   self-consistent `⟨b|b⟩` and can retire its bra-ket without breaking
//!   conservation;
//! - it then re-initializes: a leader adopts label `(b+1) mod k` (its label
//!   collision target); a follower becomes **Unlabeled** and later adopts
//!   its color's current label from any labeled same-color agent.
//!
//! Per-label conservation (#bras = #kets among bra-ket holders) is preserved
//! by every rule — checked by [`UnorderedCircles::conservation_holds`] and property tests —
//! and Circles is self-stabilizing with respect to ket permutations (its
//! Lemma 3.6 induction only needs bra counts, which re-initialization makes
//! match the final labeling), so after the ordering layer stabilizes the
//! composition converges exactly like vanilla Circles.
//!
//! State count: `phase(4) × bra(k) × ket(k) × out(k)` per color plus
//! `k` unlabeled `out` states per color = `k(4k³ + k) = O(k⁴)` — matching
//! the paper's claim.

use circles_core::{BraKet, CirclesProtocol, Color};
use pp_protocol::{EnumerableProtocol, Population, Protocol};

use crate::ordering::Role;

/// Progress phase of an agent in the unordered composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnorderedPhase {
    /// Labeled and participating in Circles (bra == current label).
    Active(Role),
    /// Label became stale; waiting to recover the ket matching its bra.
    Undoing(Role),
    /// Reset complete, waiting to adopt its color's label (followers only).
    Unlabeled,
}

/// Full state of the unordered composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnorderedState {
    /// The agent's opaque input color (equality comparisons only).
    pub color: Color,
    /// Phase (active / undoing / unlabeled).
    pub phase: UnorderedPhase,
    /// Circles bra-ket over *labels*; meaningless when `Unlabeled`
    /// (normalized to `⟨0|0⟩` so equal logical states compare equal).
    pub braket: BraKet,
    /// Circles output register (a label).
    pub out: u16,
}

impl UnorderedState {
    /// The agent's current label: its bra while `Active`.
    pub fn label(&self) -> Option<u16> {
        match self.phase {
            UnorderedPhase::Active(_) => Some(self.braket.bra.0),
            _ => None,
        }
    }

    /// Whether the agent currently holds a bra-ket (participates in
    /// conservation).
    pub fn holds_braket(&self) -> bool {
        !matches!(self.phase, UnorderedPhase::Unlabeled)
    }

    fn role(&self) -> Option<Role> {
        match self.phase {
            UnorderedPhase::Active(r) | UnorderedPhase::Undoing(r) => Some(r),
            UnorderedPhase::Unlabeled => None,
        }
    }
}

/// Output of the unordered composition: what the agent would answer when
/// queried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnorderedOutput {
    /// The label the agent believes belongs to the winning color.
    pub winner_label: u16,
    /// Whether the agent believes its *own* color is the winner (its own
    /// label equals `winner_label`). `false` while unlabeled/undoing and the
    /// label is unknown.
    pub own_color_wins: bool,
}

/// The unordered-setting Circles composition. See the [module docs](self).
///
/// # Example
///
/// ```
/// use circles_core::Color;
/// use pp_extensions::UnorderedCircles;
/// use pp_protocol::{Population, Simulation, UniformPairScheduler};
///
/// // Opaque colors 77 / 5 / 900: color 5 has plurality 3 of 6.
/// let protocol = UnorderedCircles::new(3);
/// let inputs: Vec<Color> = [77, 5, 5, 900, 5, 77].map(Color).to_vec();
/// let population = Population::from_inputs(&protocol, &inputs);
/// let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 9);
/// let _ = sim.run_until_silent(10_000_000, 32)?;
/// assert_eq!(UnorderedCircles::consensus_winner(sim.population()), Some(Color(5)));
/// # Ok::<(), pp_protocol::FrameworkError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnorderedCircles {
    k: u16,
}

impl UnorderedCircles {
    /// Creates the composition with label space `[0, k-1]`; `k` must be at
    /// least the number of distinct colors in the population.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(k: u16) -> Self {
        assert!(k > 0, "k must be at least 1");
        UnorderedCircles { k }
    }

    /// The label-space size.
    pub fn k(&self) -> u16 {
        self.k
    }

    /// Per-label bra-ket conservation among bra-ket-holding agents — the
    /// composition's version of Lemma 3.3, which the undo machinery exists
    /// to protect.
    pub fn conservation_holds(population: &Population<UnorderedState>, k: u16) -> bool {
        let mut bras = vec![0i64; usize::from(k)];
        let mut kets = vec![0i64; usize::from(k)];
        for s in population.iter() {
            if s.holds_braket() {
                bras[s.braket.bra.index()] += 1;
                kets[s.braket.ket.index()] += 1;
            }
        }
        bras == kets
    }

    /// When the population has converged (all outputs agree and agents are
    /// active), returns the *color* that won: the color of the active agents
    /// whose label equals the consensus winner label.
    ///
    /// Returns `None` when outputs disagree, some agent is still
    /// unlabeled/undoing, or no agent holds the winning label.
    pub fn consensus_winner(population: &Population<UnorderedState>) -> Option<Color> {
        let protocol = UnorderedCircles {
            k: u16::MAX, // k is irrelevant for reading outputs
        };
        let mut winner_label: Option<u16> = None;
        for s in population.iter() {
            if !matches!(s.phase, UnorderedPhase::Active(_)) {
                return None;
            }
            let out = protocol.output(s).winner_label;
            match winner_label {
                None => winner_label = Some(out),
                Some(w) if w != out => return None,
                _ => {}
            }
        }
        let w = winner_label?;
        let mut winner_color: Option<Color> = None;
        for s in population.iter() {
            if s.label() == Some(w) {
                match winner_color {
                    None => winner_color = Some(s.color),
                    Some(c) if c != s.color => return None, // inconsistent labeling
                    _ => {}
                }
            }
        }
        winner_color
    }

    /// Completes an undo if the agent's bra-ket became self-consistent:
    /// leaders re-enter with the incremented label, followers drop to
    /// `Unlabeled`.
    fn try_complete_undo(&self, s: &mut UnorderedState) {
        if let UnorderedPhase::Undoing(role) = s.phase {
            if s.braket.is_self_loop() {
                match role {
                    Role::Leader => {
                        let next = (s.braket.bra.0 + 1) % self.k;
                        s.braket = BraKet::self_loop(Color(next));
                        s.out = next;
                        s.phase = UnorderedPhase::Active(Role::Leader);
                    }
                    Role::Follower => {
                        s.braket = BraKet::self_loop(Color(0));
                        s.phase = UnorderedPhase::Unlabeled;
                    }
                }
            }
        }
    }

    /// Puts an active agent into the undoing phase (immediately completing
    /// it when its bra-ket is already self-consistent).
    fn start_undo(&self, s: &mut UnorderedState) {
        if let UnorderedPhase::Active(role) = s.phase {
            s.phase = UnorderedPhase::Undoing(role);
            self.try_complete_undo(s);
        }
    }
}

impl Protocol for UnorderedCircles {
    type State = UnorderedState;
    type Input = Color;
    type Output = UnorderedOutput;

    fn name(&self) -> &str {
        "unordered-circles"
    }

    fn input(&self, input: &Color) -> UnorderedState {
        UnorderedState {
            color: *input,
            phase: UnorderedPhase::Active(Role::Leader),
            braket: BraKet::self_loop(Color(0)),
            out: 0,
        }
    }

    fn output(&self, state: &UnorderedState) -> UnorderedOutput {
        UnorderedOutput {
            winner_label: state.out,
            own_color_wins: state.label() == Some(state.out),
        }
    }

    fn transition(
        &self,
        initiator: &UnorderedState,
        responder: &UnorderedState,
    ) -> (UnorderedState, UnorderedState) {
        let mut u = *initiator;
        let mut v = *responder;

        // Rule 1 — leader merge (asymmetric): same color, both leaders.
        if u.color == v.color && u.role() == Some(Role::Leader) && v.role() == Some(Role::Leader) {
            match v.phase {
                UnorderedPhase::Active(_) => {
                    v.phase = UnorderedPhase::Active(Role::Follower);
                    // If the labels disagree the demoted leader is now a
                    // stale follower; it must undo and re-adopt.
                    if u.label().is_some() && v.label() != u.label() {
                        self.start_undo(&mut v);
                    }
                }
                UnorderedPhase::Undoing(_) => {
                    v.phase = UnorderedPhase::Undoing(Role::Follower);
                }
                UnorderedPhase::Unlabeled => unreachable!("unlabeled agents have no role"),
            }
            return (u, v);
        }

        // Rule 2 — label collision between active leaders of different
        // colors: the responder's chip moves forward (via undo).
        if let (UnorderedPhase::Active(Role::Leader), UnorderedPhase::Active(Role::Leader)) =
            (u.phase, v.phase)
        {
            if u.braket.bra == v.braket.bra {
                self.start_undo(&mut v);
                return (u, v);
            }
        }

        // Rule 3 — follower sync: an active follower learns its active
        // same-color leader carries a different label.
        {
            let follower_first = matches!(u.phase, UnorderedPhase::Active(Role::Follower))
                && matches!(v.phase, UnorderedPhase::Active(Role::Leader))
                && u.color == v.color
                && u.braket.bra != v.braket.bra;
            if follower_first {
                self.start_undo(&mut u);
                return (u, v);
            }
            let follower_second = matches!(v.phase, UnorderedPhase::Active(Role::Follower))
                && matches!(u.phase, UnorderedPhase::Active(Role::Leader))
                && u.color == v.color
                && u.braket.bra != v.braket.bra;
            if follower_second {
                self.start_undo(&mut v);
                return (u, v);
            }
        }

        // Rule 4 — unlabeled adoption: an unlabeled agent copies the label
        // of an active same-color agent and re-enters Circles as a fresh
        // self-loop (conservation: adds one bra and one ket of the label).
        {
            let adopt = |from: &UnorderedState, to: &mut UnorderedState| {
                let label = from.braket.bra;
                to.braket = BraKet::self_loop(label);
                to.out = label.0;
                to.phase = UnorderedPhase::Active(Role::Follower);
            };
            if matches!(u.phase, UnorderedPhase::Unlabeled)
                && matches!(v.phase, UnorderedPhase::Active(_))
                && u.color == v.color
            {
                adopt(&v, &mut u);
                return (u, v);
            }
            if matches!(v.phase, UnorderedPhase::Unlabeled)
                && matches!(u.phase, UnorderedPhase::Active(_))
                && u.color == v.color
            {
                adopt(&u, &mut v);
                return (u, v);
            }
        }

        // Rule 5 — undo swap: an undoing agent recovers the ket equal to
        // its bra from any bra-ket holder (unconditional ket swap).
        {
            let u_wants = matches!(u.phase, UnorderedPhase::Undoing(_))
                && v.holds_braket()
                && v.braket.ket == u.braket.bra;
            let v_wants = matches!(v.phase, UnorderedPhase::Undoing(_))
                && u.holds_braket()
                && u.braket.ket == v.braket.bra;
            if u_wants || v_wants {
                let (ku, kv) = (u.braket.ket, v.braket.ket);
                u.braket.ket = kv;
                v.braket.ket = ku;
                self.try_complete_undo(&mut u);
                self.try_complete_undo(&mut v);
                return (u, v);
            }
        }

        // Rule 6 — Circles over labels between two active agents.
        if matches!(u.phase, UnorderedPhase::Active(_))
            && matches!(v.phase, UnorderedPhase::Active(_))
        {
            let (cu, cv) = CirclesProtocol::transition_states(
                self.k,
                circles_core::CirclesState {
                    braket: u.braket,
                    out: Color(u.out),
                },
                circles_core::CirclesState {
                    braket: v.braket,
                    out: Color(v.out),
                },
            );
            u.braket = cu.braket;
            u.out = cu.out.0;
            v.braket = cv.braket;
            v.out = cv.out.0;
            return (u, v);
        }

        (u, v)
    }
}

impl EnumerableProtocol for UnorderedCircles {
    /// `O(k⁴)` states: `color × phase(4) × bra × ket × out` for bra-ket
    /// holders plus `color × out` for unlabeled agents.
    fn states(&self) -> Vec<UnorderedState> {
        let k = self.k;
        let mut out = Vec::new();
        for color in 0..k {
            for phase in [
                UnorderedPhase::Active(Role::Leader),
                UnorderedPhase::Active(Role::Follower),
                UnorderedPhase::Undoing(Role::Leader),
                UnorderedPhase::Undoing(Role::Follower),
            ] {
                for bra in 0..k {
                    for ket in 0..k {
                        for o in 0..k {
                            out.push(UnorderedState {
                                color: Color(color),
                                phase,
                                braket: BraKet::new(Color(bra), Color(ket)),
                                out: o,
                            });
                        }
                    }
                }
            }
            for o in 0..k {
                out.push(UnorderedState {
                    color: Color(color),
                    phase: UnorderedPhase::Unlabeled,
                    braket: BraKet::self_loop(Color(0)),
                    out: o,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocol::{Simulation, UniformPairScheduler};
    use pp_schedulers::ShuffledRoundsScheduler;

    fn converge(inputs: &[u16], k: u16, seed: u64) -> Population<UnorderedState> {
        let protocol = UnorderedCircles::new(k);
        let colors: Vec<Color> = inputs.iter().map(|&c| Color(c)).collect();
        let population = Population::from_inputs(&protocol, &colors);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        sim.run_until_silent(50_000_000, 64)
            .expect("unordered circles did not stabilize");
        sim.into_population()
    }

    #[test]
    fn single_color_trivially_wins() {
        let population = converge(&[9, 9, 9], 1, 1);
        assert_eq!(
            UnorderedCircles::consensus_winner(&population),
            Some(Color(9))
        );
    }

    #[test]
    fn two_opaque_colors_majority_wins() {
        let population = converge(&[100, 100, 100, 200, 200], 2, 2);
        assert_eq!(
            UnorderedCircles::consensus_winner(&population),
            Some(Color(100))
        );
        assert!(UnorderedCircles::conservation_holds(&population, 2));
    }

    #[test]
    fn three_opaque_colors_plurality_wins() {
        let population = converge(&[7, 3, 3, 11, 3, 11], 3, 3);
        assert_eq!(
            UnorderedCircles::consensus_winner(&population),
            Some(Color(3))
        );
    }

    #[test]
    fn conservation_holds_along_a_run() {
        let protocol = UnorderedCircles::new(3);
        let colors: Vec<Color> = [5, 5, 8, 8, 8, 13].map(Color).to_vec();
        let population = Population::from_inputs(&protocol, &colors);
        let mut sim = Simulation::new(&protocol, population, ShuffledRoundsScheduler::new(), 4);
        for _ in 0..3000 {
            let _ = sim.step().unwrap();
            assert!(
                UnorderedCircles::conservation_holds(sim.population(), 3),
                "conservation broken at step {}",
                sim.stats().steps
            );
        }
    }

    #[test]
    fn output_says_whether_own_color_wins() {
        let population = converge(&[100, 100, 100, 200, 200], 2, 5);
        let protocol = UnorderedCircles::new(2);
        for s in population.iter() {
            let out = protocol.output(s);
            assert_eq!(out.own_color_wins, s.color == Color(100));
        }
    }

    #[test]
    fn state_complexity_is_order_k_fourth() {
        let p = UnorderedCircles::new(3);
        // 3 colors × (4 phases × 27 brakets×outs ... ): color(3) × 4 × 3³ +
        // color(3) × 3 unlabeled outs.
        assert_eq!(p.state_complexity(), 3 * 4 * 27 + 3 * 3);
    }

    #[test]
    fn larger_label_space_than_colors_converges() {
        let population = converge(&[4, 4, 6], 4, 6);
        assert_eq!(
            UnorderedCircles::consensus_winner(&population),
            Some(Color(4))
        );
    }
}
