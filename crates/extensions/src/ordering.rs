//! The color-ordering protocol of paper §4: per-color leader election plus
//! collision-incremented numeric labels — `O(k²)` states.
//!
//! Quoting the paper: *"we perform leader-election between all agents of the
//! same color (using the asymmetry of interactions) and have the leaders
//! increment a numeric label every time they meet another leader with the
//! same label. The non-leaders simply copy the label of their leader."*
//!
//! # Termination (sketch, verified by model checking for small instances)
//!
//! Same-color leader pairs meet infinitely often under weak fairness, and
//! the first meeting demotes one — so after finitely many interactions at
//! most one leader per color remains: `m ≤ #colors ≤ k` leaders. View the
//! leaders' labels as chips on the cycle `Z_k`; a collision moves one chip
//! forward by one. A chip moving out of a slot leaves at least one chip
//! behind (collisions need two), so the number of empty slots never
//! increases; it is finite, hence eventually constant, and from then on no
//! chip ever enters an empty slot. The empty slots then cut the cycle into
//! fixed linear arcs, inside which chips only move rightward a bounded
//! distance — so collisions, which weak fairness keeps resolving while any
//! exist, run out. Terminal: all leader labels distinct.

use circles_core::Color;
use pp_protocol::{EnumerableProtocol, Population, Protocol};

/// Leader or follower, per color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// Still in the running for its color's leadership.
    Leader,
    /// Demoted; copies its leader's label.
    Follower,
}

/// State of the ordering protocol: opaque color, role, numeric label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OrderingState {
    /// The agent's input color. The protocol only ever compares colors for
    /// *equality* — this is the unordered setting.
    pub color: Color,
    /// Leader/follower.
    pub role: Role,
    /// Numeric label in `[0, k-1]`.
    pub label: u16,
}

/// The ordering protocol for at most `k` distinct colors. See the
/// [module docs](self).
///
/// # Example
///
/// ```
/// use circles_core::Color;
/// use pp_extensions::OrderingProtocol;
/// use pp_protocol::{Population, Simulation, UniformPairScheduler};
///
/// let protocol = OrderingProtocol::new(3);
/// let inputs: Vec<Color> = [7, 7, 42, 42, 9].map(Color).to_vec(); // 3 distinct colors
/// let population = Population::from_inputs(&protocol, &inputs);
/// let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 5);
/// let _ = sim.run_until_silent(1_000_000, 8)?;
/// assert!(OrderingProtocol::labeling_is_valid(sim.population()));
/// # Ok::<(), pp_protocol::FrameworkError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderingProtocol {
    k: u16,
}

impl OrderingProtocol {
    /// Creates the protocol with label space `[0, k-1]`.
    ///
    /// `k` must be at least the number of *distinct* colors in the input
    /// population, otherwise the label chips can never spread out and the
    /// protocol livelocks (labels are pigeonholed).
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(k: u16) -> Self {
        assert!(k > 0, "k must be at least 1");
        OrderingProtocol { k }
    }

    /// The label-space size.
    pub fn k(&self) -> u16 {
        self.k
    }

    /// Whether a population is correctly labeled: exactly one leader per
    /// color, leader labels pairwise distinct, and every follower carries
    /// its color's leader label.
    pub fn labeling_is_valid(population: &Population<OrderingState>) -> bool {
        use std::collections::HashMap;
        let mut leader_label: HashMap<Color, Vec<u16>> = HashMap::new();
        for s in population.iter() {
            if s.role == Role::Leader {
                leader_label.entry(s.color).or_default().push(s.label);
            }
        }
        // One leader per present color.
        if leader_label.values().any(|ls| ls.len() != 1) {
            return false;
        }
        let colors_present: std::collections::HashSet<Color> =
            population.iter().map(|s| s.color).collect();
        if leader_label.len() != colors_present.len() {
            return false;
        }
        // Distinct labels across leaders.
        let mut labels: Vec<u16> = leader_label.values().map(|ls| ls[0]).collect();
        labels.sort_unstable();
        labels.dedup();
        if labels.len() != leader_label.len() {
            return false;
        }
        // Followers synced.
        population.iter().all(|s| {
            s.role == Role::Leader || leader_label.get(&s.color).map(|ls| ls[0]) == Some(s.label)
        })
    }
}

impl Protocol for OrderingProtocol {
    type State = OrderingState;
    type Input = Color;
    type Output = u16;

    fn name(&self) -> &str {
        "ordering"
    }

    fn input(&self, input: &Color) -> OrderingState {
        OrderingState {
            color: *input,
            role: Role::Leader,
            label: 0,
        }
    }

    fn output(&self, state: &OrderingState) -> u16 {
        state.label
    }

    fn transition(
        &self,
        initiator: &OrderingState,
        responder: &OrderingState,
    ) -> (OrderingState, OrderingState) {
        let u = *initiator;
        let mut v = *responder;
        match (u.role, v.role) {
            // Same color, both leaders: asymmetry demotes the responder,
            // which adopts the surviving leader's label.
            (Role::Leader, Role::Leader) if u.color == v.color => {
                v.role = Role::Follower;
                v.label = u.label;
                (u, v)
            }
            // Distinct colors, both leaders, label collision: the responder
            // moves its chip forward.
            (Role::Leader, Role::Leader) if u.label == v.label => {
                v.label = (v.label + 1) % self.k;
                (u, v)
            }
            // Follower meets its color's leader: copy the label
            // (either direction).
            (Role::Leader, Role::Follower) if u.color == v.color => {
                v.label = u.label;
                (u, v)
            }
            (Role::Follower, Role::Leader) if u.color == v.color => {
                let mut u2 = u;
                u2.label = v.label;
                (u2, v)
            }
            _ => (u, v),
        }
    }
}

impl EnumerableProtocol for OrderingProtocol {
    /// `2k²` states per (opaque) color: role × label. Colors are an input
    /// alphabet, not protocol memory — the state space the paper counts is
    /// role × label relative to the agent's own color, so we enumerate over
    /// a canonical color set of size `k`.
    fn states(&self) -> Vec<OrderingState> {
        let mut out = Vec::with_capacity(2 * usize::from(self.k) * usize::from(self.k));
        for c in 0..self.k {
            for label in 0..self.k {
                for role in [Role::Leader, Role::Follower] {
                    out.push(OrderingState {
                        color: Color(c),
                        role,
                        label,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocol::{Simulation, UniformPairScheduler};
    use pp_schedulers::RoundRobinScheduler;

    fn run(inputs: &[u16], k: u16, seed: u64) -> Population<OrderingState> {
        let protocol = OrderingProtocol::new(k);
        let colors: Vec<Color> = inputs.iter().map(|&c| Color(c)).collect();
        let population = Population::from_inputs(&protocol, &colors);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        sim.run_until_silent(10_000_000, 16)
            .expect("ordering did not stabilize");
        sim.into_population()
    }

    #[test]
    fn single_color_elects_single_leader() {
        let population = run(&[3, 3, 3, 3], 1, 1);
        assert!(OrderingProtocol::labeling_is_valid(&population));
        let leaders = population.iter().filter(|s| s.role == Role::Leader).count();
        assert_eq!(leaders, 1);
    }

    #[test]
    fn three_colors_get_distinct_labels() {
        let population = run(&[10, 10, 20, 20, 30, 30, 30], 3, 2);
        assert!(OrderingProtocol::labeling_is_valid(&population));
        let mut labels: Vec<u16> = population
            .iter()
            .filter(|s| s.role == Role::Leader)
            .map(|s| s.label)
            .collect();
        labels.sort_unstable();
        assert_eq!(labels.len(), 3);
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn labels_stay_within_range() {
        let population = run(&[1, 2, 3, 4], 4, 3);
        assert!(population.iter().all(|s| s.label < 4));
    }

    #[test]
    fn works_under_round_robin() {
        let protocol = OrderingProtocol::new(2);
        let colors: Vec<Color> = [5, 5, 6, 6, 6].map(Color).to_vec();
        let population = Population::from_inputs(&protocol, &colors);
        let mut sim = Simulation::new(&protocol, population, RoundRobinScheduler::new(), 0);
        sim.run_until_silent(1_000_000, 20).unwrap();
        assert!(OrderingProtocol::labeling_is_valid(sim.population()));
    }

    #[test]
    fn spare_label_space_is_fine() {
        // k larger than the number of distinct colors.
        let population = run(&[1, 2], 5, 7);
        assert!(OrderingProtocol::labeling_is_valid(&population));
    }

    #[test]
    fn state_complexity_is_order_k_squared() {
        // color × label × role = k · k · 2.
        assert_eq!(OrderingProtocol::new(4).state_complexity(), 4 * 4 * 2);
    }

    #[test]
    fn validity_rejects_bad_labelings() {
        // Two leaders of the same color.
        let bad: Population<OrderingState> = [
            OrderingState {
                color: Color(1),
                role: Role::Leader,
                label: 0,
            },
            OrderingState {
                color: Color(1),
                role: Role::Leader,
                label: 1,
            },
        ]
        .into_iter()
        .collect();
        assert!(!OrderingProtocol::labeling_is_valid(&bad));

        // Colliding leader labels across colors.
        let bad2: Population<OrderingState> = [
            OrderingState {
                color: Color(1),
                role: Role::Leader,
                label: 0,
            },
            OrderingState {
                color: Color(2),
                role: Role::Leader,
                label: 0,
            },
        ]
        .into_iter()
        .collect();
        assert!(!OrderingProtocol::labeling_is_valid(&bad2));

        // Stale follower.
        let bad3: Population<OrderingState> = [
            OrderingState {
                color: Color(1),
                role: Role::Leader,
                label: 0,
            },
            OrderingState {
                color: Color(1),
                role: Role::Follower,
                label: 1,
            },
        ]
        .into_iter()
        .collect();
        assert!(!OrderingProtocol::labeling_is_valid(&bad3));

        // A color with no leader at all.
        let bad4: Population<OrderingState> = [OrderingState {
            color: Color(1),
            role: Role::Follower,
            label: 0,
        }]
        .into_iter()
        .collect();
        assert!(!OrderingProtocol::labeling_is_valid(&bad4));
    }
}
