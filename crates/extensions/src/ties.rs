//! Tie semantics (paper §4) — oracles and checkers.
//!
//! The paper names three ways a protocol could handle ties: **tie report**
//! (all agents enter a special "tie" state), **tie break** (all agents agree
//! on one winning color), and **tie share** (winners output their own color,
//! losers output any winning color) — and defers the constructions to the
//! full version.
//!
//! What the brief announcement's theory *does* pin down is how vanilla
//! Circles behaves under a tie: by Lemma 3.2's proof structure, a color `i`
//! has a singleton greedy set (and hence a terminal self-loop `⟨i|i⟩`,
//! Lemma 3.6) iff `i` strictly beats every other color. Under a tie **no
//! self-loop survives stabilization**, so output rule 2 eventually stops
//! firing and outputs freeze at historical, possibly non-winning values.
//! Experiment E7 measures that stall; [`TieAnalysis`] provides the ground
//! truth and [`TieSemantics::is_satisfied_by`] checks final outputs against
//! each semantics, so any future tie-handling layer can be validated against
//! the same oracle.

use circles_core::{CirclesError, Color, GreedyDecomposition};

/// The tie-handling semantics named in paper §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TieSemantics {
    /// Every agent must (eventually, forever) indicate "tie".
    Report,
    /// Every agent must output the same winning color.
    Break,
    /// Winners output their own color; losers output *some* winning color.
    Share,
}

/// Ground truth about an input multiset's winners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TieAnalysis {
    /// The colors attaining the maximum count.
    pub winners: Vec<Color>,
    /// The maximum count `q`.
    pub max_count: usize,
    /// Number of agents.
    pub n: usize,
}

impl TieAnalysis {
    /// Analyzes an input multiset.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`GreedyDecomposition`].
    pub fn of(inputs: &[Color], k: u16) -> Result<Self, CirclesError> {
        let greedy = GreedyDecomposition::from_inputs(inputs, k)?;
        Ok(TieAnalysis {
            winners: greedy.winners(),
            max_count: greedy.num_sets(),
            n: greedy.n(),
        })
    }

    /// Whether the input is tied.
    pub fn is_tie(&self) -> bool {
        self.winners.len() > 1
    }
}

/// An agent's answer in a tie-aware protocol: either a color or an explicit
/// tie report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TieAwareOutput {
    /// The agent names a color.
    Winner(Color),
    /// The agent reports a tie.
    Tie,
}

impl TieSemantics {
    /// Checks final per-agent outputs against this semantics, given each
    /// agent's input color and the ground-truth analysis.
    ///
    /// `outputs[i]` is agent `i`'s final answer; `inputs[i]` its input
    /// color. For non-tied inputs all three semantics coincide: everyone
    /// must name the unique winner.
    ///
    /// # Panics
    ///
    /// Panics when `outputs` and `inputs` have different lengths.
    pub fn is_satisfied_by(
        &self,
        inputs: &[Color],
        outputs: &[TieAwareOutput],
        analysis: &TieAnalysis,
    ) -> bool {
        assert_eq!(
            inputs.len(),
            outputs.len(),
            "inputs/outputs length mismatch"
        );
        if !analysis.is_tie() {
            let mu = analysis.winners[0];
            return outputs.iter().all(|o| *o == TieAwareOutput::Winner(mu));
        }
        match self {
            TieSemantics::Report => outputs.iter().all(|o| *o == TieAwareOutput::Tie),
            TieSemantics::Break => {
                let mut named = None;
                for o in outputs {
                    match o {
                        TieAwareOutput::Winner(c) if analysis.winners.contains(c) => match named {
                            None => named = Some(*c),
                            Some(w) if w != *c => return false,
                            _ => {}
                        },
                        _ => return false,
                    }
                }
                true
            }
            TieSemantics::Share => inputs.iter().zip(outputs).all(|(input, o)| {
                match o {
                    TieAwareOutput::Winner(c) => {
                        if analysis.winners.contains(input) {
                            // Winners must output their own color.
                            c == input
                        } else {
                            // Losers output any winning color.
                            analysis.winners.contains(c)
                        }
                    }
                    TieAwareOutput::Tie => false,
                }
            }),
        }
    }
}

/// The fraction of agents whose final Circles output is a winning color —
/// the dispersion measurement of experiment E7 (1.0 would mean the stalled
/// outputs happen to satisfy the *share* semantics' loser clause).
pub fn winning_output_fraction(outputs: &[Color], analysis: &TieAnalysis) -> f64 {
    if outputs.is_empty() {
        return 0.0;
    }
    let hits = outputs
        .iter()
        .filter(|c| analysis.winners.contains(c))
        .count();
    hits as f64 / outputs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn colors(xs: &[u16]) -> Vec<Color> {
        xs.iter().map(|&x| Color(x)).collect()
    }

    #[test]
    fn analysis_detects_ties() {
        let a = TieAnalysis::of(&colors(&[0, 0, 1, 1, 2]), 3).unwrap();
        assert!(a.is_tie());
        assert_eq!(a.winners, colors(&[0, 1]));
        assert_eq!(a.max_count, 2);

        let b = TieAnalysis::of(&colors(&[0, 0, 1]), 2).unwrap();
        assert!(!b.is_tie());
    }

    #[test]
    fn no_tie_all_semantics_require_unique_winner() {
        let inputs = colors(&[0, 0, 1]);
        let a = TieAnalysis::of(&inputs, 2).unwrap();
        let good = vec![TieAwareOutput::Winner(Color(0)); 3];
        let bad = vec![
            TieAwareOutput::Winner(Color(0)),
            TieAwareOutput::Winner(Color(1)),
            TieAwareOutput::Winner(Color(0)),
        ];
        for semantics in [
            TieSemantics::Report,
            TieSemantics::Break,
            TieSemantics::Share,
        ] {
            assert!(semantics.is_satisfied_by(&inputs, &good, &a));
            assert!(!semantics.is_satisfied_by(&inputs, &bad, &a));
        }
    }

    #[test]
    fn report_semantics() {
        let inputs = colors(&[0, 1]);
        let a = TieAnalysis::of(&inputs, 2).unwrap();
        let all_tie = vec![TieAwareOutput::Tie; 2];
        assert!(TieSemantics::Report.is_satisfied_by(&inputs, &all_tie, &a));
        let mixed = vec![TieAwareOutput::Tie, TieAwareOutput::Winner(Color(0))];
        assert!(!TieSemantics::Report.is_satisfied_by(&inputs, &mixed, &a));
    }

    #[test]
    fn break_semantics() {
        let inputs = colors(&[0, 0, 1, 1]);
        let a = TieAnalysis::of(&inputs, 2).unwrap();
        let all_zero = vec![TieAwareOutput::Winner(Color(0)); 4];
        assert!(TieSemantics::Break.is_satisfied_by(&inputs, &all_zero, &a));
        let split = vec![
            TieAwareOutput::Winner(Color(0)),
            TieAwareOutput::Winner(Color(0)),
            TieAwareOutput::Winner(Color(1)),
            TieAwareOutput::Winner(Color(1)),
        ];
        assert!(!TieSemantics::Break.is_satisfied_by(&inputs, &split, &a));
    }

    #[test]
    fn share_semantics() {
        // Colors 0 and 1 tie at count 2; color 2 loses with count 1.
        let inputs = colors(&[0, 0, 1, 1, 2]);
        let a = TieAnalysis::of(&inputs, 3).unwrap();
        assert_eq!(a.winners, colors(&[0, 1]));
        let good = vec![
            TieAwareOutput::Winner(Color(0)), // winner keeps own color
            TieAwareOutput::Winner(Color(0)),
            TieAwareOutput::Winner(Color(1)), // winner keeps own color
            TieAwareOutput::Winner(Color(1)),
            TieAwareOutput::Winner(Color(1)), // loser picks a winning color
        ];
        assert!(TieSemantics::Share.is_satisfied_by(&inputs, &good, &a));
        let bad_winner = vec![
            TieAwareOutput::Winner(Color(1)), // winner must not defect
            TieAwareOutput::Winner(Color(0)),
            TieAwareOutput::Winner(Color(1)),
            TieAwareOutput::Winner(Color(1)),
            TieAwareOutput::Winner(Color(0)),
        ];
        assert!(!TieSemantics::Share.is_satisfied_by(&inputs, &bad_winner, &a));
        let bad_loser = vec![
            TieAwareOutput::Winner(Color(0)),
            TieAwareOutput::Winner(Color(0)),
            TieAwareOutput::Winner(Color(1)),
            TieAwareOutput::Winner(Color(1)),
            TieAwareOutput::Winner(Color(2)), // loser naming a loser
        ];
        assert!(!TieSemantics::Share.is_satisfied_by(&inputs, &bad_loser, &a));
    }

    #[test]
    fn winning_fraction_counts_hits() {
        let a = TieAnalysis::of(&colors(&[0, 0, 1, 1]), 3).unwrap();
        let outs = colors(&[0, 1, 2, 2]);
        assert!((winning_output_fraction(&outs, &a) - 0.5).abs() < 1e-12);
        assert_eq!(winning_output_fraction(&[], &a), 0.0);
    }
}
