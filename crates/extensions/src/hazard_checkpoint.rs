//! Checkpoint persistence for hazardous runs — the glue that makes a
//! [`run_with_hazards`](crate::hazards::run_with_hazards) campaign crash-tolerant.
//!
//! The engine's own [`RunCheckpoint`] captures counts, counters and the
//! trial RNG, but a hazardous run carries extra driver state: which hazards
//! already fired, the pending [`HazardPlan`] tail, the quarantined (stuck)
//! mass, and the *hazard* RNG's stream position. This module persists all of
//! that in one named auxiliary checkpoint section
//! ([`HAZARD_AUX_SECTION`]), and provides
//! [`run_with_hazards_checkpointed`] — a drop-in for `run_with_hazards`
//! whose trajectory (engine draws *and* hazard draws) is bit-identical to
//! the uninterrupted driver, while periodically offering complete,
//! resumable checkpoints to a save hook.
//!
//! Resume flow: load the `.pprc`, [`decode_hazard_aux`] its hazard section
//! into a [`HazardProgress`] plus the restored hazard RNG, resume the
//! engine ([`CountEngine::resume`]), and call
//! [`run_with_hazards_checkpointed`] again — the remainder of the run is
//! byte-identical to the run that was never killed.

use std::fmt::Display;
use std::ops::ControlFlow;
use std::str::FromStr;

use pp_protocol::{
    Activity, CheckpointError, CountConfig, CountEngine, CountScheduler, FrameworkError, Protocol,
    ResumableRng, RunCheckpoint,
};

use crate::hazards::{apply_hazard, Hazard, HazardKind, HazardOutcome, HazardPlan};

/// Name of the auxiliary checkpoint section holding hazard-driver state.
/// The `/v1` suffix versions the payload independently of the `.pprc`
/// container format.
pub const HAZARD_AUX_SECTION: &str = "hazards/v1";

/// Upper bound on hazard-RNG state words in the aux payload — mirrors the
/// engine checkpoint's own cap so a corrupt count cannot drive an absurd
/// allocation.
const MAX_RNG_WORDS: u64 = 64;

/// The hazard driver's resumable state: how far through the schedule a run
/// got, what remains, and the mass quarantined so far. Fresh runs start
/// from [`HazardProgress::fresh`]; resumed runs decode theirs from the
/// checkpoint's aux section with [`decode_hazard_aux`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HazardProgress<S: Clone + Ord> {
    /// Hazards fired before this progress was captured.
    pub applied: usize,
    /// Interaction count when the last fired hazard struck (0 when none
    /// has).
    pub last_hazard_step: u64,
    /// The engine's `state_changes` counter when the last hazard struck —
    /// the baseline for recovery accounting.
    pub changes_at_last_hazard: u64,
    /// The not-yet-fired tail of the schedule.
    pub pending: HazardPlan,
    /// Mass removed by [`HazardKind::Stick`] so far, in the state each unit
    /// was stuck in.
    pub quarantined: CountConfig<S>,
}

impl<S: Clone + Ord> HazardProgress<S> {
    /// Progress for a run that has not started its schedule: nothing fired,
    /// everything pending.
    pub fn fresh(plan: HazardPlan) -> Self {
        HazardProgress {
            applied: 0,
            last_hazard_step: 0,
            changes_at_last_hazard: 0,
            pending: plan,
            quarantined: CountConfig::new(),
        }
    }
}

fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn hazard_kind_byte(kind: HazardKind) -> u8 {
    match kind {
        HazardKind::Crash => 0,
        HazardKind::Corrupt => 1,
        HazardKind::Stick => 2,
        HazardKind::Depart => 3,
        HazardKind::Arrive => 4,
    }
}

fn hazard_kind_from_byte(b: u8) -> Option<HazardKind> {
    Some(match b {
        0 => HazardKind::Crash,
        1 => HazardKind::Corrupt,
        2 => HazardKind::Stick,
        3 => HazardKind::Depart,
        4 => HazardKind::Arrive,
        _ => return None,
    })
}

/// Serializes hazard-driver state plus the hazard RNG's stream position
/// into an aux payload for
/// [`RunCheckpoint::set_aux`]`(`[`HAZARD_AUX_SECTION`]`, ..)`.
/// [`decode_hazard_aux`] is the exact inverse.
pub fn encode_hazard_aux<S: Display + Clone + Ord, H: ResumableRng>(
    progress: &HazardProgress<S>,
    hazard_rng: &H,
) -> Vec<u8> {
    let mut buf = Vec::new();
    push_varint(&mut buf, progress.applied as u64);
    push_varint(&mut buf, progress.last_hazard_step);
    push_varint(&mut buf, progress.changes_at_last_hazard);
    push_varint(&mut buf, progress.pending.len() as u64);
    for hazard in progress.pending.events() {
        push_varint(&mut buf, hazard.at_step);
        buf.push(hazard_kind_byte(hazard.kind));
    }
    push_varint(&mut buf, progress.quarantined.distinct() as u64);
    for (state, count) in progress.quarantined.iter() {
        let text = state.to_string();
        push_varint(&mut buf, text.len() as u64);
        buf.extend_from_slice(text.as_bytes());
        push_varint(&mut buf, count as u64);
    }
    let words = hazard_rng.save_words();
    push_varint(&mut buf, u64::from(H::RNG_KIND));
    push_varint(&mut buf, words.len() as u64);
    for w in words {
        buf.extend_from_slice(&w.to_le_bytes());
    }
    buf
}

/// Bounds-checked reader over the aux payload, erroring as
/// [`CheckpointError::Corrupt`] with a `hazard aux` prefix.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn corrupt(msg: &str) -> CheckpointError {
        CheckpointError::Corrupt(format!("hazard aux: {msg}"))
    }

    fn varint(&mut self) -> Result<u64, CheckpointError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let &b = self
                .buf
                .get(self.pos)
                .ok_or_else(|| Self::corrupt("payload ends inside a varint"))?;
            self.pos += 1;
            if shift >= 64 || (shift == 63 && b & 0x7F > 1) {
                return Err(Self::corrupt("oversized varint"));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn byte(&mut self) -> Result<u8, CheckpointError> {
        let &b = self
            .buf
            .get(self.pos)
            .ok_or_else(|| Self::corrupt("payload shorter than declared"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Self::corrupt("payload shorter than declared"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn finish(self) -> Result<(), CheckpointError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Self::corrupt("trailing bytes"))
        }
    }
}

/// Deserializes an [`encode_hazard_aux`] payload back into the driver's
/// progress and its restored hazard RNG.
///
/// # Errors
///
/// [`CheckpointError::RngMismatch`] when the payload was written under a
/// different hazard-RNG family than `H`; [`CheckpointError::Corrupt`] for
/// every structural defect (bad varint, unknown hazard kind, unsorted plan,
/// undecodable RNG words, truncation, trailing bytes).
pub fn decode_hazard_aux<S, H>(bytes: &[u8]) -> Result<(HazardProgress<S>, H), CheckpointError>
where
    S: FromStr + Clone + Ord,
    <S as FromStr>::Err: Display,
    H: ResumableRng,
{
    let mut cur = Cursor { buf: bytes, pos: 0 };
    let applied = usize::try_from(cur.varint()?)
        .map_err(|_| Cursor::corrupt("applied count exceeds usize"))?;
    let last_hazard_step = cur.varint()?;
    let changes_at_last_hazard = cur.varint()?;

    let pending_len = cur.varint()?;
    // Each pending hazard needs at least two bytes (step varint + kind).
    if pending_len
        .checked_mul(2)
        .is_none_or(|b| b > bytes.len() as u64)
    {
        return Err(Cursor::corrupt("pending count exceeds the payload"));
    }
    let mut pending = HazardPlan::new();
    let mut prev_step = 0u64;
    for _ in 0..pending_len {
        let at_step = cur.varint()?;
        if at_step < prev_step {
            return Err(Cursor::corrupt("pending hazards out of step order"));
        }
        prev_step = at_step;
        let kind = hazard_kind_from_byte(cur.byte()?)
            .ok_or_else(|| Cursor::corrupt("unknown hazard kind byte"))?;
        pending.push(Hazard { at_step, kind });
    }

    let distinct = cur.varint()?;
    if distinct
        .checked_mul(2)
        .is_none_or(|b| b > bytes.len() as u64)
    {
        return Err(Cursor::corrupt("quarantine count exceeds the payload"));
    }
    let mut quarantined = CountConfig::new();
    for i in 0..distinct {
        let len = usize::try_from(cur.varint()?)
            .map_err(|_| Cursor::corrupt("state text length exceeds usize"))?;
        let text = std::str::from_utf8(cur.take(len)?)
            .map_err(|_| Cursor::corrupt("quarantined state is not UTF-8"))?;
        let state = text.parse::<S>().map_err(|e| {
            Cursor::corrupt(&format!(
                "quarantined state {i} ({text:?}) does not parse: {e}"
            ))
        })?;
        let count = usize::try_from(cur.varint()?)
            .map_err(|_| Cursor::corrupt("quarantine count exceeds usize"))?;
        if count == 0 || quarantined.count(&state) != 0 {
            return Err(Cursor::corrupt("quarantine entry empty or duplicated"));
        }
        quarantined.insert(state, count);
    }

    let rng_kind =
        u32::try_from(cur.varint()?).map_err(|_| Cursor::corrupt("rng kind exceeds u32"))?;
    if rng_kind != H::RNG_KIND {
        return Err(CheckpointError::RngMismatch {
            stored: rng_kind,
            expected: H::RNG_KIND,
        });
    }
    let word_count = cur.varint()?;
    if word_count > MAX_RNG_WORDS {
        return Err(Cursor::corrupt("rng word count exceeds the cap"));
    }
    let mut words = Vec::with_capacity(word_count as usize);
    for _ in 0..word_count {
        let w = cur.take(4)?;
        words.push(u32::from_le_bytes(w.try_into().expect("4-byte slice")));
    }
    cur.finish()?;
    let rng = H::load_words(&words)
        .ok_or_else(|| Cursor::corrupt("rng state words do not decode to a generator state"))?;

    Ok((
        HazardProgress {
            applied,
            last_hazard_step,
            changes_at_last_hazard,
            pending,
            quarantined,
        },
        rng,
    ))
}

/// [`run_with_hazards`](crate::hazards::run_with_hazards) with periodic resumable
/// checkpoints: every `every_changes` state changes the `save` hook
/// receives a complete [`RunCheckpoint`] — engine state plus a
/// [`HAZARD_AUX_SECTION`] carrying the schedule tail, quarantine ledger and
/// hazard-RNG position. The hook typically persists it with
/// [`pp_protocol::run_checkpoint::save`]; returning
/// [`ControlFlow::Break`] pauses the run
/// ([`FrameworkError::Interrupted`]).
///
/// With `every_changes == 0` (or a hook that never breaks) the run is
/// **bit-identical** to `run_with_hazards` over the same engine, plan, pool
/// and RNGs — hooks observe, they never draw. A killed run resumed from the
/// last saved checkpoint (engine via [`CountEngine::resume`], driver via
/// [`decode_hazard_aux`]) continues exactly where the uninterrupted run
/// would be, including every subsequent hazard draw.
///
/// # Errors
///
/// As [`run_with_hazards`](crate::hazards::run_with_hazards), plus
/// [`FrameworkError::Interrupted`] when the hook breaks.
///
/// # Panics
///
/// Panics when the pending schedule draws restart states and `pool` is
/// empty or zero-weight.
pub fn run_with_hazards_checkpointed<P, CS, A, R, H, F>(
    engine: &mut CountEngine<'_, P, CS, A, R>,
    progress: HazardProgress<P::State>,
    pool: &[(P::Input, u64)],
    hazard_rng: &mut H,
    max_steps: u64,
    every_changes: u64,
    mut save: F,
) -> Result<HazardOutcome<P>, FrameworkError>
where
    P: Protocol,
    P::State: Display,
    CS: CountScheduler<P::State>,
    A: Activity,
    R: ResumableRng,
    H: ResumableRng,
    F: FnMut(&RunCheckpoint<P::State>) -> ControlFlow<()>,
{
    let pool_total: u64 = pool.iter().map(|(_, w)| w).sum();
    assert!(
        pool_total > 0
            || progress
                .pending
                .events()
                .iter()
                .all(|h| !h.kind.needs_pool()),
        "hazard plan draws restart states but the pool is empty"
    );
    let HazardProgress {
        applied: applied_before,
        mut last_hazard_step,
        mut changes_at_last_hazard,
        pending,
        mut quarantined,
    } = progress;
    let events = pending.events().to_vec();
    let mut fired = 0usize;
    for (idx, hazard) in events.iter().enumerate() {
        if hazard.at_step > max_steps {
            break;
        }
        if engine.n() >= 2 {
            engine.advance_to_checkpointed(hazard.at_step, every_changes, |e| {
                let mut tail = HazardPlan::new();
                for h in &events[idx..] {
                    tail.push(*h);
                }
                let snapshot = HazardProgress {
                    applied: applied_before + idx,
                    last_hazard_step,
                    changes_at_last_hazard,
                    pending: tail,
                    quarantined: quarantined.clone(),
                };
                let mut ck = e.checkpoint();
                ck.set_aux(
                    HAZARD_AUX_SECTION,
                    encode_hazard_aux(&snapshot, &*hazard_rng),
                );
                save(&ck)
            })?;
        }
        apply_hazard(
            engine,
            hazard.kind,
            pool,
            pool_total,
            hazard_rng,
            &mut quarantined,
        );
        fired = idx + 1;
        last_hazard_step = engine.steps().max(hazard.at_step);
        changes_at_last_hazard = engine.stats().state_changes;
    }
    let tail_hook = |e: &CountEngine<'_, P, CS, A, R>| {
        let snapshot = HazardProgress {
            applied: applied_before + fired,
            last_hazard_step,
            changes_at_last_hazard,
            pending: HazardPlan::new(),
            quarantined: quarantined.clone(),
        };
        let mut ck = e.checkpoint();
        ck.set_aux(
            HAZARD_AUX_SECTION,
            encode_hazard_aux(&snapshot, &*hazard_rng),
        );
        save(&ck)
    };
    let (report, silent) =
        match engine.run_until_silent_checkpointed(max_steps, every_changes, tail_hook) {
            Ok(report) => (report, true),
            Err(FrameworkError::MaxStepsExceeded { .. }) => (engine.report(), false),
            Err(e) => return Err(e),
        };
    let final_config = engine.config();
    let final_n = engine.n() + quarantined.n() as u64;
    Ok(HazardOutcome {
        recovery_steps: report.steps_to_silence.saturating_sub(last_hazard_step),
        recovery_changes: report.state_changes - changes_at_last_hazard,
        stabilized: silent && fired == events.len(),
        report,
        applied: applied_before + fired,
        last_hazard_step,
        final_config,
        quarantined,
        final_n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocol::{SparseActivity, UniformCountScheduler};
    use rand::rngs::Philox4x32;
    use rand::RngCore;

    use crate::hazards::run_with_hazards;

    /// Symmetric max toy (both agents adopt the larger value).
    #[derive(Debug)]
    struct SymMax;

    impl Protocol for SymMax {
        type State = u8;
        type Input = u8;
        type Output = u8;

        fn name(&self) -> &str {
            "sym-max"
        }

        fn input(&self, i: &u8) -> u8 {
            *i
        }

        fn output(&self, s: &u8) -> u8 {
            *s
        }

        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            let m = *a.max(b);
            (m, m)
        }

        fn is_symmetric(&self) -> bool {
            true
        }
    }

    fn mixed_plan(n: u64) -> HazardPlan {
        let mut plan = HazardPlan::new();
        for (i, kind) in [
            HazardKind::Crash,
            HazardKind::Corrupt,
            HazardKind::Stick,
            HazardKind::Depart,
            HazardKind::Arrive,
            HazardKind::Crash,
        ]
        .into_iter()
        .enumerate()
        {
            plan.push(Hazard {
                at_step: (i as u64 + 1) * n / 4,
                kind,
            });
        }
        plan
    }

    fn engine_from(
        seed: u64,
    ) -> CountEngine<'static, SymMax, UniformCountScheduler, SparseActivity, Philox4x32> {
        let config: CountConfig<u8> = (0..400u32).map(|i| (i % 19) as u8).collect();
        CountEngine::with_rng(
            &SymMax,
            config,
            UniformCountScheduler::new(),
            Philox4x32::stream(11, seed),
        )
    }

    #[test]
    fn aux_payload_round_trips() {
        let mut plan = HazardPlan::crashes([10, 20, 30]);
        plan.push(Hazard {
            at_step: 25,
            kind: HazardKind::Stick,
        });
        let mut quarantined = CountConfig::new();
        quarantined.insert(3u8, 2);
        quarantined.insert(7u8, 1);
        let progress = HazardProgress {
            applied: 4,
            last_hazard_step: 99,
            changes_at_last_hazard: 42,
            pending: plan,
            quarantined,
        };
        let mut rng = Philox4x32::stream(5, 6);
        rng.next_u64(); // mid-block position must survive the round trip
        let payload = encode_hazard_aux(&progress, &rng);
        let (decoded, mut restored): (HazardProgress<u8>, Philox4x32) =
            decode_hazard_aux(&payload).unwrap();
        assert_eq!(decoded, progress);
        for _ in 0..8 {
            assert_eq!(restored.next_u64(), rng.next_u64());
        }
    }

    #[test]
    fn aux_corruption_yields_typed_errors() {
        let progress: HazardProgress<u8> = HazardProgress::fresh(HazardPlan::crashes([7]));
        let rng = Philox4x32::stream(0, 0);
        let payload = encode_hazard_aux(&progress, &rng);
        // Truncation at every prefix either round-trips (never true here:
        // full length is required) or errors typed — no panic.
        for cut in 0..payload.len() {
            let err = decode_hazard_aux::<u8, Philox4x32>(&payload[..cut]).unwrap_err();
            assert!(matches!(
                err,
                CheckpointError::Corrupt(_) | CheckpointError::RngMismatch { .. }
            ));
        }
        // Trailing garbage is rejected too.
        let mut long = payload.clone();
        long.push(0);
        assert!(decode_hazard_aux::<u8, Philox4x32>(&long).is_err());
        // Wrong RNG family is a mismatch, not a decode.
        use rand::rngs::StdRng;
        assert!(matches!(
            decode_hazard_aux::<u8, StdRng>(&payload),
            Err(CheckpointError::RngMismatch {
                stored: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn checkpointed_driver_matches_uninterrupted_hazard_run() {
        let pool: Vec<(u8, u64)> = (0..19).map(|c| (c as u8, 1)).collect();
        let plan = mixed_plan(400);

        let mut reference = engine_from(1);
        let mut ref_rng = Philox4x32::stream(11, 1 | (1 << 63));
        let expected =
            run_with_hazards(&mut reference, &plan, &pool, &mut ref_rng, u64::MAX).unwrap();

        let mut hooked = engine_from(1);
        let mut rng = Philox4x32::stream(11, 1 | (1 << 63));
        let mut checkpoints = 0u32;
        let outcome = run_with_hazards_checkpointed(
            &mut hooked,
            HazardProgress::fresh(plan),
            &pool,
            &mut rng,
            u64::MAX,
            25,
            |ck| {
                assert!(ck.aux(HAZARD_AUX_SECTION).is_some());
                checkpoints += 1;
                ControlFlow::Continue(())
            },
        )
        .unwrap();
        assert!(checkpoints > 0, "the hook fired at least once");
        assert_eq!(outcome.report, expected.report);
        assert_eq!(outcome.applied, expected.applied);
        assert_eq!(outcome.stabilized, expected.stabilized);
        assert_eq!(outcome.last_hazard_step, expected.last_hazard_step);
        assert_eq!(outcome.recovery_steps, expected.recovery_steps);
        assert_eq!(outcome.recovery_changes, expected.recovery_changes);
        assert_eq!(outcome.final_config, expected.final_config);
        assert_eq!(outcome.quarantined, expected.quarantined);
        assert_eq!(outcome.final_n, expected.final_n);
    }

    #[test]
    fn killed_and_resumed_hazard_run_is_bit_identical() {
        let pool: Vec<(u8, u64)> = (0..19).map(|c| (c as u8, 1)).collect();
        let plan = mixed_plan(400);

        let mut reference = engine_from(2);
        let mut ref_rng = Philox4x32::stream(11, 2 | (1 << 63));
        let expected =
            run_with_hazards(&mut reference, &plan, &pool, &mut ref_rng, u64::MAX).unwrap();

        // "Kill" the run at its third checkpoint offer.
        let mut victim = engine_from(2);
        let mut rng = Philox4x32::stream(11, 2 | (1 << 63));
        let mut latest = None;
        let mut offers = 0u32;
        let err = run_with_hazards_checkpointed(
            &mut victim,
            HazardProgress::fresh(plan),
            &pool,
            &mut rng,
            u64::MAX,
            20,
            |ck| {
                latest = Some(ck.clone());
                offers += 1;
                if offers == 3 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        )
        .unwrap_err();
        assert!(matches!(err, FrameworkError::Interrupted { .. }));
        let ck = latest.expect("a checkpoint was offered");

        // Resume from nothing but the checkpoint: engine + hazard driver.
        let (progress, mut resumed_rng): (HazardProgress<u8>, Philox4x32) =
            decode_hazard_aux(ck.aux(HAZARD_AUX_SECTION).unwrap()).unwrap();
        let mut resumed = CountEngine::<_, _, SparseActivity, Philox4x32>::resume(
            &SymMax,
            UniformCountScheduler::new(),
            &ck,
        )
        .unwrap();
        let outcome = run_with_hazards_checkpointed(
            &mut resumed,
            progress,
            &pool,
            &mut resumed_rng,
            u64::MAX,
            0,
            |_| ControlFlow::Continue(()),
        )
        .unwrap();
        assert_eq!(outcome.report, expected.report);
        assert_eq!(outcome.applied, expected.applied);
        assert_eq!(outcome.stabilized, expected.stabilized);
        assert_eq!(outcome.final_config, expected.final_config);
        assert_eq!(outcome.quarantined, expected.quarantined);
        assert_eq!(outcome.final_n, expected.final_n);
    }
}
