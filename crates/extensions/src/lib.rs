//! Extensions of the Circles protocol (paper §4).
//!
//! The brief announcement sketches two extension directions and defers the
//! constructions to a full version. This crate reconstructs what the sketch
//! pins down and documents what it does not (see `DESIGN.md` §6):
//!
//! - [`ordering`]: the per-color leader-election + label protocol
//!   ("generate an ordering between colors using `O(k²)` states"): every
//!   agent starts as a leader; same-color leaders merge using interaction
//!   asymmetry; leaders increment their numeric label whenever they meet a
//!   leader with the same label; followers copy their leader's label.
//! - [`unordered`]: the composition of the ordering protocol with Circles
//!   for the *unordered* setting (colors comparable only for equality),
//!   using `O(k⁴)` states: Circles runs over labels, and an agent whose
//!   label changes enters an *undoing* phase in which it waits to recover
//!   the ket matching its own bra before re-initializing — exactly the
//!   paper's "wait to undo changes … until they are consistent again".
//! - [`ties`]: tie semantics (report / break / share) as oracles and
//!   checkers. The BA proves just enough theory to show vanilla Circles
//!   *stalls* under ties (no self-loop survives, Lemma 3.2/3.6); a locally
//!   checkable tie witness is not derivable from the BA, so no tie-handling
//!   *protocol* is shipped — experiment E7 instead quantifies the stall.
//! - [`faults`]: out-of-model crash/recovery injection on the *indexed*
//!   engine, measuring Circles' empirical self-healing (bra-ket conservation
//!   is deliberately violated and the damage measured).
//! - [`hazards`]: the count-level hazard layer — anonymous crash/corruption/
//!   stuck-agent faults, churn (arrivals and departures), and adversarial
//!   initial configurations, scaling the robustness probes to `n = 10^9`
//!   populations on the batched [`CountEngine`](pp_protocol::CountEngine).
//! - [`hazard_checkpoint`]: crash-tolerance for the hazard layer itself —
//!   the driver's schedule tail, quarantine ledger and hazard-RNG position
//!   persist inside engine run checkpoints (`.pprc`), so a killed hazardous
//!   run resumes bit-identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod hazard_checkpoint;
pub mod hazards;
pub mod ordering;
pub mod ties;
pub mod unordered;

pub use hazard_checkpoint::{
    decode_hazard_aux, encode_hazard_aux, run_with_hazards_checkpointed, HazardProgress,
    HAZARD_AUX_SECTION,
};
pub use hazards::{Hazard, HazardKind, HazardOutcome, HazardPlan, HazardReport};
pub use ordering::{OrderingProtocol, OrderingState, Role};
pub use ties::{TieAnalysis, TieSemantics};
pub use unordered::{UnorderedCircles, UnorderedOutput, UnorderedState};
