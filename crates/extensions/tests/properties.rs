//! Property-based tests for the §4 extensions: label-range safety, leader
//! uniqueness dynamics, and the undo machinery's conservation guarantee.

use circles_core::Color;
use pp_extensions::ordering::{OrderingProtocol, OrderingState, Role};
use pp_extensions::unordered::{UnorderedCircles, UnorderedPhase};
use pp_protocol::{Population, Simulation, UniformPairScheduler};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ordering: labels always stay in [0, k); per color, the number of
    /// leaders never increases and never reaches zero.
    #[test]
    fn ordering_leader_counts_monotone(
        raw in proptest::collection::vec(0u16..4, 2..10),
        seed in any::<u64>(),
        steps in 1u64..500,
    ) {
        let k = 4u16;
        let inputs: Vec<Color> = raw.iter().map(|&c| Color(c + 7)).collect();
        let protocol = OrderingProtocol::new(k);
        let population = Population::from_inputs(&protocol, &inputs);
        let leaders_per_color = |p: &Population<OrderingState>| {
            let mut m = std::collections::HashMap::new();
            for s in p.iter() {
                if s.role == Role::Leader {
                    *m.entry(s.color).or_insert(0usize) += 1;
                }
            }
            m
        };
        let mut last = leaders_per_color(&population);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        for _ in 0..steps {
            let _ = sim.step().unwrap();
            prop_assert!(sim.population().iter().all(|s| s.label < k));
            let now = leaders_per_color(sim.population());
            for (color, count) in &now {
                prop_assert!(count <= last.get(color).unwrap_or(&0));
                prop_assert!(*count >= 1, "color {color:?} lost all leaders");
            }
            last = now;
        }
    }

    /// Unordered composition: per-label conservation holds at every step of
    /// every run (the key invariant the undo machinery protects), and every
    /// color keeps at least one leader.
    #[test]
    fn unordered_conservation_and_leadership(
        raw in proptest::collection::vec(0u16..3, 2..8),
        seed in any::<u64>(),
        steps in 1u64..600,
    ) {
        let k = 3u16;
        let inputs: Vec<Color> = raw.iter().map(|&c| Color(c * 31 + 5)).collect();
        let protocol = UnorderedCircles::new(k);
        let population = Population::from_inputs(&protocol, &inputs);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        for _ in 0..steps {
            let _ = sim.step().unwrap();
            prop_assert!(
                UnorderedCircles::conservation_holds(sim.population(), k),
                "conservation broken at step {}",
                sim.stats().steps
            );
            // Each color retains a leader (Active or Undoing).
            let mut colors: std::collections::HashMap<Color, bool> =
                std::collections::HashMap::new();
            for s in sim.population().iter() {
                let is_leader = matches!(
                    s.phase,
                    UnorderedPhase::Active(Role::Leader) | UnorderedPhase::Undoing(Role::Leader)
                );
                let entry = colors.entry(s.color).or_insert(false);
                *entry |= is_leader;
            }
            for (color, has_leader) in colors {
                prop_assert!(has_leader, "color {color:?} lost its leader");
            }
        }
    }

    /// Unordered composition: outputs are always labels in range, and
    /// Active agents' bras stay in range.
    #[test]
    fn unordered_states_stay_in_label_space(
        raw in proptest::collection::vec(0u16..3, 2..8),
        seed in any::<u64>(),
    ) {
        let k = 3u16;
        let inputs: Vec<Color> = raw.iter().map(|&c| Color(c + 1000)).collect();
        let protocol = UnorderedCircles::new(k);
        let population = Population::from_inputs(&protocol, &inputs);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        for _ in 0..400 {
            let _ = sim.step().unwrap();
            for s in sim.population().iter() {
                prop_assert!(s.out < k);
                if s.holds_braket() {
                    prop_assert!(s.braket.bra.0 < k && s.braket.ket.0 < k);
                }
            }
        }
    }
}
