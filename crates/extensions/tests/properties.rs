//! Property-based tests for the §4 extensions: label-range safety, leader
//! uniqueness dynamics, the undo machinery's conservation guarantee, and
//! the hazard layer's mass-conservation and zero-overhead contracts.

use circles_core::{CirclesProtocol, Color};
use pp_extensions::hazards::{run_with_hazards, Hazard, HazardKind, HazardPlan};
use pp_extensions::ordering::{OrderingProtocol, OrderingState, Role};
use pp_extensions::unordered::{UnorderedCircles, UnorderedPhase};
use pp_protocol::{
    Activity, CompactActivity, CountConfig, CountEngine, DenseActivity, Population, Protocol,
    RunReport, Simulation, SparseActivity, TransitionTable, UniformCountScheduler,
    UniformPairScheduler,
};
use proptest::prelude::*;
use rand::rngs::Philox4x32;

/// Runs a hazard-free plan on the given activity index, cold or warm from
/// `table`, and returns the measurement report.
fn hazard_free_report<A: Activity>(
    protocol: &CirclesProtocol,
    inputs: &[Color],
    seed: u64,
    table: Option<&TransitionTable<CirclesProtocol>>,
) -> RunReport<Color> {
    let config: CountConfig<_> = inputs.iter().map(|c| protocol.input(c)).collect();
    let scheduler = UniformCountScheduler::new();
    let rng = Philox4x32::stream(0, seed);
    let mut engine = match table {
        Some(table) => {
            CountEngine::<_, _, A, _>::with_table_rng(protocol, config, scheduler, rng, table)
        }
        None => CountEngine::<_, _, A, _>::with_rng(protocol, config, scheduler, rng),
    };
    let mut hazard_rng = Philox4x32::stream(0, seed | 1 << 63);
    let outcome = run_with_hazards(
        &mut engine,
        &HazardPlan::new(),
        &[],
        &mut hazard_rng,
        u64::MAX / 2,
    )
    .unwrap();
    assert!(outcome.stabilized);
    outcome.report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ordering: labels always stay in [0, k); per color, the number of
    /// leaders never increases and never reaches zero.
    #[test]
    fn ordering_leader_counts_monotone(
        raw in proptest::collection::vec(0u16..4, 2..10),
        seed in any::<u64>(),
        steps in 1u64..500,
    ) {
        let k = 4u16;
        let inputs: Vec<Color> = raw.iter().map(|&c| Color(c + 7)).collect();
        let protocol = OrderingProtocol::new(k);
        let population = Population::from_inputs(&protocol, &inputs);
        let leaders_per_color = |p: &Population<OrderingState>| {
            let mut m = std::collections::HashMap::new();
            for s in p.iter() {
                if s.role == Role::Leader {
                    *m.entry(s.color).or_insert(0usize) += 1;
                }
            }
            m
        };
        let mut last = leaders_per_color(&population);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        for _ in 0..steps {
            let _ = sim.step().unwrap();
            prop_assert!(sim.population().iter().all(|s| s.label < k));
            let now = leaders_per_color(sim.population());
            for (color, count) in &now {
                prop_assert!(count <= last.get(color).unwrap_or(&0));
                prop_assert!(*count >= 1, "color {color:?} lost all leaders");
            }
            last = now;
        }
    }

    /// Unordered composition: per-label conservation holds at every step of
    /// every run (the key invariant the undo machinery protects), and every
    /// color keeps at least one leader.
    #[test]
    fn unordered_conservation_and_leadership(
        raw in proptest::collection::vec(0u16..3, 2..8),
        seed in any::<u64>(),
        steps in 1u64..600,
    ) {
        let k = 3u16;
        let inputs: Vec<Color> = raw.iter().map(|&c| Color(c * 31 + 5)).collect();
        let protocol = UnorderedCircles::new(k);
        let population = Population::from_inputs(&protocol, &inputs);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        for _ in 0..steps {
            let _ = sim.step().unwrap();
            prop_assert!(
                UnorderedCircles::conservation_holds(sim.population(), k),
                "conservation broken at step {}",
                sim.stats().steps
            );
            // Each color retains a leader (Active or Undoing).
            let mut colors: std::collections::HashMap<Color, bool> =
                std::collections::HashMap::new();
            for s in sim.population().iter() {
                let is_leader = matches!(
                    s.phase,
                    UnorderedPhase::Active(Role::Leader) | UnorderedPhase::Undoing(Role::Leader)
                );
                let entry = colors.entry(s.color).or_insert(false);
                *entry |= is_leader;
            }
            for (color, has_leader) in colors {
                prop_assert!(has_leader, "color {color:?} lost its leader");
            }
        }
    }

    /// Unordered composition: outputs are always labels in range, and
    /// Active agents' bras stay in range.
    #[test]
    fn unordered_states_stay_in_label_space(
        raw in proptest::collection::vec(0u16..3, 2..8),
        seed in any::<u64>(),
    ) {
        let k = 3u16;
        let inputs: Vec<Color> = raw.iter().map(|&c| Color(c + 1000)).collect();
        let protocol = UnorderedCircles::new(k);
        let population = Population::from_inputs(&protocol, &inputs);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        for _ in 0..400 {
            let _ = sim.step().unwrap();
            for s in sim.population().iter() {
                prop_assert!(s.out < k);
                if s.holds_braket() {
                    prop_assert!(s.braket.bra.0 < k && s.braket.ket.0 < k);
                }
            }
        }
    }

    /// Hazards: every non-churn hazard (crash, corruption, stuck-agent)
    /// conserves total mass — the population observable to grading (active
    /// plus quarantined) never changes size.
    #[test]
    fn non_churn_hazards_conserve_total_mass(
        raw in proptest::collection::vec(0u16..3, 2..40),
        schedule in proptest::collection::vec((0u64..2_000, 0u8..3), 0..8),
        seed in any::<u64>(),
    ) {
        let k = 3u16;
        let protocol = CirclesProtocol::new(k).unwrap();
        let inputs: Vec<Color> = raw.iter().map(|&c| Color(c)).collect();
        let mut pool: std::collections::BTreeMap<Color, u64> = std::collections::BTreeMap::new();
        for &c in &inputs {
            *pool.entry(c).or_insert(0) += 1;
        }
        let pool: Vec<(Color, u64)> = pool.into_iter().collect();
        let mut plan = HazardPlan::new();
        for &(at_step, kind) in &schedule {
            plan.push(Hazard {
                at_step,
                kind: match kind {
                    0 => HazardKind::Crash,
                    1 => HazardKind::Corrupt,
                    _ => HazardKind::Stick,
                },
            });
        }
        let config: CountConfig<_> = inputs.iter().map(|c| protocol.input(c)).collect();
        let mut engine = CountEngine::<_, _, SparseActivity, _>::with_rng(
            &protocol,
            config,
            UniformCountScheduler::new(),
            Philox4x32::stream(0, seed),
        );
        let mut hazard_rng = Philox4x32::stream(1, seed);
        let outcome =
            run_with_hazards(&mut engine, &plan, &pool, &mut hazard_rng, u64::MAX / 2).unwrap();
        prop_assert_eq!(outcome.final_n, inputs.len() as u64);
        prop_assert_eq!(outcome.observable_config().n(), inputs.len());
    }

    /// Hazards: a hazard-free plan produces `RunReport`s byte-identical to
    /// the plain engine run of the same seed, across
    /// {flat, compact, dense} × {cold, warm}.
    #[test]
    fn hazard_free_plans_are_invisible_across_engines(
        raw in proptest::collection::vec(0u16..3, 2..40),
        seed in any::<u64>(),
    ) {
        let k = 3u16;
        let protocol = CirclesProtocol::new(k).unwrap();
        let inputs: Vec<Color> = raw.iter().map(|&c| Color(c)).collect();
        // The reference: a plain flat-index run, no hazard layer at all.
        let config: CountConfig<_> = inputs.iter().map(|c| protocol.input(c)).collect();
        let mut plain = CountEngine::<_, _, SparseActivity, _>::with_rng(
            &protocol,
            config,
            UniformCountScheduler::new(),
            Philox4x32::stream(0, seed),
        );
        let reference = plain.run_until_silent(u64::MAX / 2).unwrap();
        // Warm runs read the table this cold run discovered.
        let table = TransitionTable::new();
        plain.export_to(&table);
        let flat_cold = hazard_free_report::<SparseActivity>(&protocol, &inputs, seed, None);
        let compact_cold = hazard_free_report::<CompactActivity>(&protocol, &inputs, seed, None);
        let dense_cold = hazard_free_report::<DenseActivity>(&protocol, &inputs, seed, None);
        let flat_warm =
            hazard_free_report::<SparseActivity>(&protocol, &inputs, seed, Some(&table));
        let compact_warm =
            hazard_free_report::<CompactActivity>(&protocol, &inputs, seed, Some(&table));
        let dense_warm =
            hazard_free_report::<DenseActivity>(&protocol, &inputs, seed, Some(&table));
        prop_assert_eq!(&flat_cold, &reference);
        prop_assert_eq!(&compact_cold, &reference);
        prop_assert_eq!(&dense_cold, &reference);
        prop_assert_eq!(&flat_warm, &reference);
        prop_assert_eq!(&compact_warm, &reference);
        prop_assert_eq!(&dense_warm, &reference);
    }
}
