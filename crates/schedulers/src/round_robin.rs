//! Deterministic round-robin over all ordered pairs.

use pp_protocol::{Population, Scheduler};
use rand::RngCore;

/// Cycles through all `n(n-1)` ordered pairs in lexicographic order,
/// forever.
///
/// The canonical *deterministic* weakly fair scheduler: every ordered pair
/// recurs with period exactly `n(n-1)`. Useful both as a fairness baseline
/// and because one full unproductive round certifies silence.
///
/// # Example
///
/// ```
/// use pp_protocol::{Population, Scheduler};
/// use pp_schedulers::RoundRobinScheduler;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let population: Population<u8> = (0u8..3).collect();
/// let mut scheduler = RoundRobinScheduler::new();
/// let mut rng = StdRng::seed_from_u64(0);
/// let first: Vec<(usize, usize)> =
///     (0..6).map(|_| scheduler.next_pair(&population, &mut rng)).collect();
/// assert_eq!(first, vec![(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoundRobinScheduler {
    cursor: usize,
}

impl RoundRobinScheduler {
    /// Creates a round-robin scheduler starting at pair `(0, 1)`.
    pub fn new() -> Self {
        RoundRobinScheduler { cursor: 0 }
    }

    /// Maps a cursor in `[0, n(n-1))` to the ordered pair it denotes.
    fn pair_at(cursor: usize, n: usize) -> (usize, usize) {
        let i = cursor / (n - 1);
        let mut j = cursor % (n - 1);
        if j >= i {
            j += 1;
        }
        (i, j)
    }
}

impl<S> Scheduler<S> for RoundRobinScheduler {
    fn next_pair(&mut self, population: &Population<S>, _rng: &mut dyn RngCore) -> (usize, usize) {
        let n = population.len();
        debug_assert!(n >= 2);
        let total = n * (n - 1);
        // Population sizes are fixed during a run; if a caller swaps
        // populations the cursor simply wraps within the new range.
        if self.cursor >= total {
            self.cursor = 0;
        }
        let pair = Self::pair_at(self.cursor, n);
        self.cursor += 1;
        pair
    }

    fn name(&self) -> &str {
        "round-robin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn one_round_visits_every_ordered_pair_once() {
        let population: Population<u8> = (0u8..5).collect();
        let mut s = RoundRobinScheduler::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20 {
            let (i, j) = s.next_pair(&population, &mut rng);
            assert_ne!(i, j);
            assert!(
                seen.insert((i, j)),
                "pair ({i},{j}) repeated within a round"
            );
        }
        assert_eq!(seen.len(), 20);
    }

    #[test]
    fn period_is_exactly_n_times_n_minus_one() {
        let population: Population<u8> = (0u8..4).collect();
        let mut s = RoundRobinScheduler::new();
        let mut rng = StdRng::seed_from_u64(0);
        let round1: Vec<_> = (0..12)
            .map(|_| s.next_pair(&population, &mut rng))
            .collect();
        let round2: Vec<_> = (0..12)
            .map(|_| s.next_pair(&population, &mut rng))
            .collect();
        assert_eq!(round1, round2);
    }

    #[test]
    fn two_agents_alternate() {
        let population: Population<u8> = (0u8..2).collect();
        let mut s = RoundRobinScheduler::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.next_pair(&population, &mut rng), (0, 1));
        assert_eq!(s.next_pair(&population, &mut rng), (1, 0));
        assert_eq!(s.next_pair(&population, &mut rng), (0, 1));
    }
}
