//! Weakly fair schedulers for population protocols.
//!
//! The Circles paper's correctness theorem quantifies over *all* weakly fair
//! schedulers (Definition 1.2: every pair of agents interacts infinitely
//! often). Exercising a protocol against a single scheduler therefore
//! validates little; this crate provides a family of qualitatively different
//! weakly fair schedulers:
//!
//! - [`pp_protocol::UniformPairScheduler`] (re-exported as
//!   [`UniformPairScheduler`]): i.i.d. uniform pairs — the standard
//!   probabilistic model, weakly fair with probability 1.
//! - [`RoundRobinScheduler`]: all `n(n-1)` ordered pairs in a fixed cyclic
//!   order — deterministic, weakly fair with gap bound `n(n-1)`.
//! - [`ShuffledRoundsScheduler`]: each round visits every ordered pair once
//!   in a fresh random order — weakly fair with gap bound `2n(n-1)`.
//! - [`LazyAdversaryScheduler`]: a state-aware adversary that schedules
//!   *unproductive* interactions whenever it can, touching productive pairs
//!   only when a fairness deadline forces it — a worst-case-flavored
//!   scheduler that remains weakly fair by construction.
//! - [`ClusteredScheduler`]: two cliques with rare cross-clique contact —
//!   weakly fair but with a tunable mixing bottleneck.
//! - [`TraceScheduler`]: replays a recorded [`pp_protocol::InteractionTrace`].
//!
//! [`record_schedule`] and [`InteractionTrace::max_pair_gap`] let tests
//! audit fairness of any scheduler empirically.
//!
//! [`InteractionTrace::max_pair_gap`]: pp_protocol::InteractionTrace::max_pair_gap

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clustered;
mod lazy;
mod replay;
mod round_robin;
mod shuffled;

pub use clustered::ClusteredScheduler;
pub use lazy::LazyAdversaryScheduler;
pub use pp_protocol::UniformPairScheduler;
pub use replay::TraceScheduler;
pub use round_robin::RoundRobinScheduler;
pub use shuffled::ShuffledRoundsScheduler;

use pp_protocol::{InteractionTrace, Population, Scheduler};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Records the first `steps` interactions a scheduler would produce on a
/// fixed population, for fairness audits.
///
/// The population is not evolved, so for state-aware schedulers this records
/// the schedule they produce against a *frozen* population; audits of
/// adversaries in-flight use [`pp_protocol::Simulation::record_trace`]
/// instead.
///
/// # Example
///
/// ```
/// use pp_protocol::Population;
/// use pp_schedulers::{record_schedule, RoundRobinScheduler};
///
/// let population: Population<u8> = (0u8..4).collect();
/// let trace = record_schedule(&mut RoundRobinScheduler::new(), &population, 24, 7);
/// // One full round of 4*3 ordered pairs twice: every pair within gap 12.
/// assert!(trace.max_pair_gap().unwrap() <= 12);
/// ```
pub fn record_schedule<S, Sch: Scheduler<S>>(
    scheduler: &mut Sch,
    population: &Population<S>,
    steps: usize,
    seed: u64,
) -> InteractionTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trace = InteractionTrace::new(population.len());
    for _ in 0..steps {
        let (i, j) = scheduler.next_pair(population, &mut rng);
        trace.push(i, j);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_schedule_produces_requested_length() {
        let population: Population<u8> = (0u8..3).collect();
        let trace = record_schedule(&mut UniformPairScheduler::new(), &population, 100, 3);
        assert_eq!(trace.len(), 100);
        assert_eq!(trace.n(), 3);
    }
}
