//! Replaying recorded schedules.

use pp_protocol::{InteractionTrace, Population, Scheduler};
use rand::RngCore;

/// Replays a recorded [`InteractionTrace`], cycling back to the start when
/// the trace is exhausted (so that runs longer than the recording remain
/// well-defined; a trace that covers all pairs yields a weakly fair cyclic
/// schedule).
///
/// # Example
///
/// ```
/// use pp_protocol::{InteractionTrace, Population, Scheduler};
/// use pp_schedulers::TraceScheduler;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let trace = InteractionTrace::from_pairs(3, vec![(0, 1), (1, 2)])?;
/// let mut scheduler = TraceScheduler::new(trace);
/// let population: Population<u8> = (0u8..3).collect();
/// let mut rng = StdRng::seed_from_u64(0);
/// assert_eq!(scheduler.next_pair(&population, &mut rng), (0, 1));
/// assert_eq!(scheduler.next_pair(&population, &mut rng), (1, 2));
/// assert_eq!(scheduler.next_pair(&population, &mut rng), (0, 1)); // wrapped
/// # Ok::<(), pp_protocol::FrameworkError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceScheduler {
    trace: InteractionTrace,
    cursor: usize,
}

impl TraceScheduler {
    /// Creates a scheduler replaying `trace`.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace — there would be nothing to replay.
    pub fn new(trace: InteractionTrace) -> Self {
        assert!(!trace.is_empty(), "cannot replay an empty trace");
        TraceScheduler { trace, cursor: 0 }
    }

    /// How many times the full trace has been replayed so far.
    pub fn wraps(&self) -> usize {
        self.cursor / self.trace.len()
    }
}

impl<S> Scheduler<S> for TraceScheduler {
    fn next_pair(&mut self, population: &Population<S>, _rng: &mut dyn RngCore) -> (usize, usize) {
        debug_assert_eq!(
            population.len(),
            self.trace.n(),
            "trace recorded for a different population size"
        );
        let pair = self.trace.pairs()[self.cursor % self.trace.len()];
        self.cursor += 1;
        pair
    }

    fn name(&self) -> &str {
        "trace-replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn replays_in_order_and_wraps() {
        let trace = InteractionTrace::from_pairs(4, vec![(0, 1), (2, 3), (1, 2)]).unwrap();
        let mut s = TraceScheduler::new(trace);
        let population: Population<u8> = (0u8..4).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let got: Vec<_> = (0..7).map(|_| s.next_pair(&population, &mut rng)).collect();
        assert_eq!(
            got,
            vec![(0, 1), (2, 3), (1, 2), (0, 1), (2, 3), (1, 2), (0, 1)]
        );
        assert_eq!(s.wraps(), 2);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        let _ = TraceScheduler::new(InteractionTrace::new(3));
    }
}
