//! A two-clique scheduler with a tunable mixing bottleneck.

use pp_protocol::{Population, Scheduler};
use rand::{RngCore, RngExt};

/// Splits the population into two halves ("cliques"). Most interactions are
/// uniform *within* a clique; every `cross_period`-th interaction is a
/// uniform *cross*-clique pair.
///
/// Weakly fair with probability 1 (cross pairs recur forever), but with a
/// mixing bottleneck of strength `cross_period` — the population-protocol
/// analogue of two well-mixed beakers connected by a thin pipe. Experiment
/// E5 uses it to show always-correctness is preserved while convergence
/// slows roughly linearly in the period.
#[derive(Debug, Clone)]
pub struct ClusteredScheduler {
    cross_period: u64,
    ticks: u64,
}

impl ClusteredScheduler {
    /// Creates the scheduler; every `cross_period`-th interaction crosses
    /// cliques.
    ///
    /// # Panics
    ///
    /// Panics when `cross_period == 0`.
    pub fn new(cross_period: u64) -> Self {
        assert!(cross_period > 0, "cross period must be positive");
        ClusteredScheduler {
            cross_period,
            ticks: 0,
        }
    }

    /// The configured period.
    pub fn cross_period(&self) -> u64 {
        self.cross_period
    }
}

impl<S> Scheduler<S> for ClusteredScheduler {
    fn next_pair(&mut self, population: &Population<S>, rng: &mut dyn RngCore) -> (usize, usize) {
        let n = population.len();
        debug_assert!(n >= 2);
        let half = n / 2;
        self.ticks += 1;
        // With fewer than 2 agents per side, clustering degenerates to
        // uniform.
        if half == 0 || n - half == 0 {
            let i = rng.random_range(0..n);
            let mut j = rng.random_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            return (i, j);
        }
        if self.ticks.is_multiple_of(self.cross_period) {
            // Cross pair: one from each side, random orientation.
            let a = rng.random_range(0..half);
            let b = half + rng.random_range(0..n - half);
            if rng.random_range(0..2) == 0 {
                (a, b)
            } else {
                (b, a)
            }
        } else {
            // Intra pair within a uniformly chosen side (weighted by the
            // number of ordered pairs on each side so agents mix evenly).
            let side = if rng.random_range(0..2) == 0 && half >= 2 || n - half < 2 {
                0..half
            } else {
                half..n
            };
            let m = side.end - side.start;
            if m < 2 {
                // Single-agent side: fall back to a cross pair.
                let a = rng.random_range(0..half);
                let b = half + rng.random_range(0..n - half);
                return (a, b);
            }
            let i = side.start + rng.random_range(0..m);
            let mut j = rng.random_range(0..m - 1);
            if side.start + j >= i {
                j += 1;
            }
            (i, side.start + j)
        }
    }

    fn name(&self) -> &str {
        "clustered"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record_schedule;

    #[test]
    fn cross_pairs_appear_with_configured_period() {
        let population: Population<u8> = (0u8..10).collect();
        let period = 5;
        let trace = record_schedule(&mut ClusteredScheduler::new(period), &population, 1000, 1);
        let cross = trace
            .pairs()
            .iter()
            .filter(|(i, j)| (*i < 5) != (*j < 5))
            .count();
        assert_eq!(cross, 200, "expected exactly every 5th pair to cross");
    }

    #[test]
    fn all_pairs_eventually_occur() {
        let population: Population<u8> = (0u8..6).collect();
        let trace = record_schedule(&mut ClusteredScheduler::new(4), &population, 5000, 2);
        assert!(trace.max_pair_gap().is_some(), "some pair never occurred");
    }

    #[test]
    fn pairs_are_valid() {
        let population: Population<u8> = (0u8..7).collect();
        let trace = record_schedule(&mut ClusteredScheduler::new(3), &population, 2000, 3);
        for &(i, j) in trace.pairs() {
            assert_ne!(i, j);
            assert!(i < 7 && j < 7);
        }
    }

    #[test]
    fn tiny_populations_fall_back_to_uniform() {
        let population: Population<u8> = (0u8..2).collect();
        let trace = record_schedule(&mut ClusteredScheduler::new(2), &population, 50, 4);
        assert_eq!(trace.len(), 50);
        for &(i, j) in trace.pairs() {
            assert_ne!(i, j);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = ClusteredScheduler::new(0);
    }
}
