//! A state-aware adversary that delays progress as long as weak fairness
//! allows.

use pp_protocol::{Population, Protocol, Scheduler};
use rand::RngCore;

/// The *lazy adversary*: prefers interactions that change nothing, and
/// schedules a productive pair only when that pair's fairness deadline
/// expires.
///
/// Concretely, with deadline window `w` (in steps):
///
/// 1. if some unordered pair has not interacted for `w` steps, schedule the
///    most overdue pair (fairness first — this guarantees every pair recurs
///    within bounded gaps, i.e. the schedule is weakly fair by
///    construction);
/// 2. otherwise, schedule the *null* interaction (one that changes neither
///    agent) whose pair is most overdue, if any exists;
/// 3. otherwise — every possible interaction makes progress — schedule the
///    most overdue pair.
///
/// This is the harshest weakly fair schedule the test suite can produce
/// without solving an optimization problem per step: progress happens only
/// when forced by fairness or when literally every interaction is
/// productive. For always-correct protocols like Circles the outcome must
/// still be correct (Theorem 3.7); experiment E5 measures the slowdown.
///
/// Each decision scans all pairs: `O(n²)` per step — intended for modest
/// populations (n ≤ a few hundred).
#[derive(Debug, Clone)]
pub struct LazyAdversaryScheduler<P> {
    protocol: P,
    window: u64,
    /// Step counter (number of pairs handed out so far).
    now: u64,
    /// `last[i*n + j]` (i < j) = step at which the unordered pair last ran;
    /// `u64::MAX` marks "never".
    last: Vec<u64>,
    n: usize,
}

impl<P: Protocol> LazyAdversaryScheduler<P> {
    /// Creates a lazy adversary for `protocol` with fairness window
    /// `window`.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`; the adversary needs room to be lazy.
    pub fn new(protocol: P, window: u64) -> Self {
        assert!(window > 0, "fairness window must be positive");
        LazyAdversaryScheduler {
            protocol,
            window,
            now: 0,
            last: Vec::new(),
            n: 0,
        }
    }

    fn ensure_capacity(&mut self, n: usize) {
        if self.n != n {
            self.n = n;
            self.last = vec![u64::MAX; n * n];
            self.now = 0;
        }
    }

    fn age(&self, i: usize, j: usize) -> u64 {
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        match self.last[a * self.n + b] {
            u64::MAX => self.now + 1, // never scheduled: maximally overdue
            t => self.now - t,
        }
    }

    fn mark(&mut self, i: usize, j: usize) {
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.last[a * self.n + b] = self.now;
    }
}

impl<P: Protocol> Scheduler<P::State> for LazyAdversaryScheduler<P> {
    fn next_pair(
        &mut self,
        population: &Population<P::State>,
        _rng: &mut dyn RngCore,
    ) -> (usize, usize) {
        let n = population.len();
        debug_assert!(n >= 2);
        self.ensure_capacity(n);

        let mut most_overdue: (u64, (usize, usize)) = (0, (0, 1));
        let mut best_null: Option<(u64, (usize, usize))> = None;
        for i in 0..n {
            for j in (i + 1)..n {
                let age = self.age(i, j);
                if age > most_overdue.0 {
                    most_overdue = (age, (i, j));
                }
                if self
                    .protocol
                    .is_null_interaction(population.state(i), population.state(j))
                    && best_null.is_none_or(|(a, _)| age > a)
                {
                    best_null = Some((age, (i, j)));
                }
            }
        }

        let pair = if most_overdue.0 >= self.window {
            most_overdue.1
        } else if let Some((_, pair)) = best_null {
            pair
        } else {
            most_overdue.1
        };
        self.now += 1;
        self.mark(pair.0, pair.1);
        pair
    }

    fn name(&self) -> &str {
        "lazy-adversary"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record_schedule;

    /// Max-epidemic toy protocol: productive iff states differ.
    #[derive(Clone)]
    struct Max;

    impl Protocol for Max {
        type State = u8;
        type Input = u8;
        type Output = u8;

        fn name(&self) -> &str {
            "max"
        }

        fn input(&self, i: &u8) -> u8 {
            *i
        }

        fn output(&self, s: &u8) -> u8 {
            *s
        }

        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            let m = *a.max(b);
            (m, m)
        }
    }

    #[test]
    fn prefers_null_interactions() {
        // Agents 0 and 1 share a state; the adversary should keep pairing
        // them instead of touching agent 2 until the window forces it.
        let population: Population<u8> = [5u8, 5, 9].into_iter().collect();
        let mut s = LazyAdversaryScheduler::new(Max, 10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        // First call: everything is "never scheduled" (infinitely overdue),
        // so fairness fires on (0,1) first — the scan order maximum is fine;
        // what matters is that once ages settle, null pairs dominate.
        let mut null_hits = 0;
        for _ in 0..30 {
            let (i, j) = s.next_pair(&population, &mut rng);
            if population.state(i) == population.state(j) {
                null_hits += 1;
            }
        }
        assert!(null_hits >= 20, "adversary too eager: {null_hits}/30 null");
    }

    #[test]
    fn remains_weakly_fair_within_window() {
        let population: Population<u8> = [1u8, 1, 1, 2].into_iter().collect();
        let window = 8;
        let trace = record_schedule(
            &mut LazyAdversaryScheduler::new(Max, window),
            &population,
            400,
            0,
        );
        let gap = trace.max_pair_gap().expect("some pair never scheduled");
        // Every unordered pair must recur within roughly the window (plus
        // slack for simultaneous expiries: at most one forced pair per step,
        // so worst case window + #pairs).
        let pairs = 4 * 3 / 2;
        assert!(
            gap <= (window as usize) + pairs,
            "max gap {gap} exceeds fairness bound"
        );
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = LazyAdversaryScheduler::new(Max, 0);
    }

    use rand::SeedableRng;
}
