//! Random-permutation rounds: every ordered pair once per round, in a fresh
//! order each round.

use pp_protocol::{Population, Scheduler};
use rand::seq::SliceRandom;
use rand::RngCore;

/// Visits every ordered pair exactly once per round, shuffling the order
/// anew for each round.
///
/// Weakly fair with a deterministic gap bound: consecutive occurrences of a
/// pair are at most `2·n(n-1) - 1` steps apart (last position in one round,
/// first in the next). Randomizing the order breaks the systematic phase
/// effects a fixed round-robin order can have on convergence measurements.
#[derive(Debug, Clone, Default)]
pub struct ShuffledRoundsScheduler {
    order: Vec<(usize, usize)>,
    cursor: usize,
}

impl ShuffledRoundsScheduler {
    /// Creates a shuffled-rounds scheduler.
    pub fn new() -> Self {
        ShuffledRoundsScheduler {
            order: Vec::new(),
            cursor: 0,
        }
    }

    fn refill(&mut self, n: usize, rng: &mut dyn RngCore) {
        self.order.clear();
        self.order.reserve(n * (n - 1));
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    self.order.push((i, j));
                }
            }
        }
        self.order.shuffle(rng);
        self.cursor = 0;
    }
}

impl<S> Scheduler<S> for ShuffledRoundsScheduler {
    fn next_pair(&mut self, population: &Population<S>, rng: &mut dyn RngCore) -> (usize, usize) {
        let n = population.len();
        debug_assert!(n >= 2);
        if self.cursor >= self.order.len() || self.order.len() != n * (n - 1) {
            self.refill(n, rng);
        }
        let pair = self.order[self.cursor];
        self.cursor += 1;
        pair
    }

    fn name(&self) -> &str {
        "shuffled-rounds"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn each_round_is_a_permutation_of_all_pairs() {
        let population: Population<u8> = (0u8..4).collect();
        let mut s = ShuffledRoundsScheduler::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _round in 0..3 {
            let mut seen = std::collections::HashSet::new();
            for _ in 0..12 {
                let (i, j) = s.next_pair(&population, &mut rng);
                assert_ne!(i, j);
                assert!(seen.insert((i, j)));
            }
            assert_eq!(seen.len(), 12);
        }
    }

    #[test]
    fn rounds_differ_with_high_probability() {
        let population: Population<u8> = (0u8..5).collect();
        let mut s = ShuffledRoundsScheduler::new();
        let mut rng = StdRng::seed_from_u64(6);
        let r1: Vec<_> = (0..20)
            .map(|_| s.next_pair(&population, &mut rng))
            .collect();
        let r2: Vec<_> = (0..20)
            .map(|_| s.next_pair(&population, &mut rng))
            .collect();
        assert_ne!(r1, r2, "two shuffled rounds came out identical");
    }

    #[test]
    fn gap_bound_holds_on_recorded_prefix() {
        let population: Population<u8> = (0u8..4).collect();
        let trace =
            crate::record_schedule(&mut ShuffledRoundsScheduler::new(), &population, 12 * 10, 8);
        let bound = 2 * 12; // 2·n(n-1)
        assert!(trace.max_pair_gap().unwrap() <= bound);
    }
}
