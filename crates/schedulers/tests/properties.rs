//! Property-based fairness tests: every scheduler in the family produces
//! valid pairs and bounded pair gaps on recorded prefixes.

use pp_protocol::Population;
use pp_schedulers::{
    record_schedule, ClusteredScheduler, RoundRobinScheduler, ShuffledRoundsScheduler,
    UniformPairScheduler,
};
use proptest::prelude::*;

fn population(n: usize) -> Population<u8> {
    (0..n as u8).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All schedulers produce pairs of distinct in-range agents.
    #[test]
    fn pairs_are_always_valid(n in 2usize..12, seed in any::<u64>(), steps in 1usize..300) {
        let pop = population(n);
        let traces = [
            record_schedule(&mut UniformPairScheduler::new(), &pop, steps, seed),
            record_schedule(&mut RoundRobinScheduler::new(), &pop, steps, seed),
            record_schedule(&mut ShuffledRoundsScheduler::new(), &pop, steps, seed),
            record_schedule(&mut ClusteredScheduler::new(3), &pop, steps, seed),
        ];
        for trace in traces {
            for &(i, j) in trace.pairs() {
                prop_assert!(i < n && j < n && i != j);
            }
        }
    }

    /// Round-robin has the exact gap bound n(n-1) on any long-enough
    /// prefix.
    #[test]
    fn round_robin_gap_bound(n in 2usize..9) {
        let pop = population(n);
        let period = n * (n - 1);
        let trace = record_schedule(&mut RoundRobinScheduler::new(), &pop, period * 3, 0);
        prop_assert!(trace.max_pair_gap().unwrap() <= period);
    }

    /// Shuffled rounds never exceed twice the round length between
    /// occurrences of the same pair.
    #[test]
    fn shuffled_rounds_gap_bound(n in 2usize..9, seed in any::<u64>()) {
        let pop = population(n);
        let period = n * (n - 1);
        let trace = record_schedule(&mut ShuffledRoundsScheduler::new(), &pop, period * 4, seed);
        prop_assert!(trace.max_pair_gap().unwrap() <= 2 * period);
    }

    /// The uniform scheduler covers all unordered pairs on a prefix of
    /// length well beyond the coupon-collector horizon.
    #[test]
    fn uniform_eventually_covers_all_pairs(n in 2usize..8, seed in any::<u64>()) {
        let pop = population(n);
        let pairs = n * (n - 1);
        // ~ O(pairs * ln pairs) with a generous constant.
        let horizon = pairs * 20 + 200;
        let trace = record_schedule(&mut UniformPairScheduler::new(), &pop, horizon, seed);
        prop_assert!(trace.max_pair_gap().is_some(), "some pair starved in {horizon} steps");
    }
}
