//! Property-based tests of the Circles theory modules against randomized
//! instances — each property is a statement from the paper.

use circles_core::energy::{terminal_energy, total_energy};
use circles_core::invariants::BraKetTally;
use circles_core::potential::{descent_chain_bound, weight_vector};
use circles_core::prediction::{
    braket_config_of_population, circle_of, is_exchange_stable, predicted_brakets, self_loop_colors,
};
use circles_core::{weight, would_exchange, BraKet, CirclesProtocol, Color, GreedyDecomposition};
use pp_protocol::{CountConfig, Population, Protocol, Simulation, UniformPairScheduler};
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = (Vec<Color>, u16)> {
    (1u16..=6).prop_flat_map(|k| {
        (
            proptest::collection::vec((0..k).prop_map(Color), 1..=12),
            Just(k),
        )
    })
}

fn arb_braket(k: u16) -> impl Strategy<Value = BraKet> {
    ((0..k), (0..k)).prop_map(|(i, j)| BraKet::new(Color(i), Color(j)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Weights are total and within [1, k] for every bra-ket.
    #[test]
    fn weights_are_in_range(k in 1u16..=64, i in 0u16..64, j in 0u16..64) {
        prop_assume!(i < k && j < k);
        let w = weight(k, BraKet::new(Color(i), Color(j)));
        prop_assert!(w >= 1 && w <= u32::from(k));
    }

    /// Exchange symmetry: the rule never depends on argument order.
    #[test]
    fn exchange_is_argument_symmetric(k in 2u16..=9, seed in any::<u64>()) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let x = BraKet::new(Color(rng.random_range(0..k)), Color(rng.random_range(0..k)));
            let y = BraKet::new(Color(rng.random_range(0..k)), Color(rng.random_range(0..k)));
            let xy = would_exchange(k, x, y);
            let yx = would_exchange(k, y, x);
            match (xy, yx) {
                (None, None) => {}
                (Some((a, b)), Some((b2, a2))) => {
                    prop_assert_eq!(a, a2);
                    prop_assert_eq!(b, b2);
                }
                other => prop_assert!(false, "asymmetric exchange {:?}", other),
            }
        }
    }

    /// Exchanging never touches bras and conserves the ket multiset.
    #[test]
    fn exchange_conserves_bras_and_kets(
        k in 2u16..=8,
        x in (0u16..8, 0u16..8),
        y in (0u16..8, 0u16..8),
    ) {
        prop_assume!(x.0 < k && x.1 < k && y.0 < k && y.1 < k);
        let bx = BraKet::new(Color(x.0), Color(x.1));
        let by = BraKet::new(Color(y.0), Color(y.1));
        if let Some((nx, ny)) = would_exchange(k, bx, by) {
            prop_assert_eq!(nx.bra, bx.bra);
            prop_assert_eq!(ny.bra, by.bra);
            let mut old_kets = [bx.ket, by.ket];
            let mut new_kets = [nx.ket, ny.ket];
            old_kets.sort();
            new_kets.sort();
            prop_assert_eq!(old_kets, new_kets);
        }
    }

    /// Greedy sets: |G_1| + … + |G_q| = n and the winner (when unique) is in
    /// all of them; G_q = {μ} (Lemma 3.2).
    #[test]
    fn greedy_decomposition_shape((inputs, k) in arb_instance()) {
        let greedy = GreedyDecomposition::from_inputs(&inputs, k).unwrap();
        let total: usize = greedy.sets().map(|s| s.len()).sum();
        prop_assert_eq!(total, inputs.len());
        if let Some(mu) = greedy.winner() {
            prop_assert_eq!(greedy.set(greedy.num_sets()), vec![mu]);
        }
    }

    /// The predicted terminal configuration (Lemma 3.6) always: has size n,
    /// satisfies conservation (Lemma 3.3), is exchange-stable, and has
    /// self-loops exactly for the unique winner (Lemma 3.2) or none on a
    /// tie.
    #[test]
    fn prediction_invariants((inputs, k) in arb_instance()) {
        let greedy = GreedyDecomposition::from_inputs(&inputs, k).unwrap();
        let predicted = predicted_brakets(&inputs, k).unwrap();
        prop_assert_eq!(predicted.n(), inputs.len());
        prop_assert!(BraKetTally::of(&predicted, k).is_conserved());
        prop_assert!(is_exchange_stable(&predicted, k));
        let loops = self_loop_colors(&predicted);
        match greedy.winner() {
            Some(mu) => {
                prop_assert!(!loops.is_empty());
                prop_assert!(loops.iter().all(|(c, _)| *c == mu));
            }
            None => prop_assert!(loops.is_empty()),
        }
    }

    /// The terminal energy never exceeds the initial all-self-loop energy,
    /// and equals it exactly when only one color is present.
    #[test]
    fn terminal_energy_bounds((inputs, k) in arb_instance()) {
        let initial = (inputs.len() as u64) * u64::from(k);
        let terminal = terminal_energy(&inputs, k).unwrap();
        prop_assert!(terminal <= initial);
        let distinct: std::collections::HashSet<_> = inputs.iter().collect();
        if distinct.len() == 1 {
            prop_assert_eq!(terminal, initial);
        }
    }

    /// circle_of over a sorted set conserves per-color bra/ket counts and
    /// produces |G| arcs.
    #[test]
    fn circle_structure(mut raw in proptest::collection::btree_set(0u16..12, 1..8)) {
        let colors: Vec<Color> = raw.iter().map(|&c| Color(c)).collect();
        raw.clear();
        let circle = circle_of(&colors);
        prop_assert_eq!(circle.len(), colors.len());
        let config: CountConfig<BraKet> = circle.iter().copied().collect();
        prop_assert!(BraKetTally::of(&config, 12).is_conserved());
    }

    /// Simulation: total energy at silence equals the predicted terminal
    /// energy (the unique ground state).
    #[test]
    fn energy_lands_on_ground_state((inputs, k) in arb_instance(), seed in any::<u64>()) {
        prop_assume!(inputs.len() >= 2);
        let protocol = CirclesProtocol::new(k).unwrap();
        let population = Population::from_inputs(&protocol, &inputs);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        sim.run_until_silent(50_000_000, 16).unwrap();
        let config = braket_config_of_population(sim.population());
        prop_assert_eq!(
            total_energy(&config, k),
            terminal_energy(&inputs, k).unwrap()
        );
    }

    /// The descent-chain bound is monotone in n and k.
    #[test]
    fn descent_bound_monotone(n in 1usize..200, k in 1u16..16) {
        prop_assert!(descent_chain_bound(n, k) <= descent_chain_bound(n + 1, k));
        prop_assert!(descent_chain_bound(n, k) <= descent_chain_bound(n, k + 1));
    }

    /// weight_vector is sorted ascending and has one entry per agent.
    #[test]
    fn weight_vector_shape(
        k in 2u16..=6,
        brakets in proptest::collection::vec((0u16..6, 0u16..6), 1..20),
    ) {
        let config: CountConfig<BraKet> = brakets
            .iter()
            .filter(|(i, j)| *i < k && *j < k)
            .map(|&(i, j)| BraKet::new(Color(i), Color(j)))
            .collect();
        prop_assume!(!config.is_empty());
        let v = weight_vector(&config, k);
        prop_assert_eq!(v.len(), config.n());
        prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Transition totality: the protocol never panics on any state pair
    /// from its declared state space, and outputs stay in range.
    #[test]
    fn transition_is_total_on_state_space(k in 1u16..=4, seed in any::<u64>()) {
        use pp_protocol::EnumerableProtocol;
        use rand::{seq::IndexedRandom, SeedableRng};
        let protocol = CirclesProtocol::new(k).unwrap();
        let states = protocol.states();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let a = states.choose(&mut rng).unwrap();
            let b = states.choose(&mut rng).unwrap();
            let (x, y) = protocol.transition(a, b);
            for s in [x, y] {
                prop_assert!(s.braket.bra.0 < k);
                prop_assert!(s.braket.ket.0 < k);
                prop_assert!(s.out.0 < k);
            }
        }
    }
}

/// Strategy sanity: `arb_braket` respects the color bound (meta-test kept
/// because strategies are code too).
#[test]
fn arb_braket_respects_bounds() {
    use proptest::strategy::{Strategy, ValueTree};
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    for _ in 0..100 {
        let b = arb_braket(5).new_tree(&mut runner).unwrap().current();
        assert!(b.bra.0 < 5 && b.ket.0 < 5);
    }
}
