//! Circle bra-ket sets (paper Definition 3.5) and the predicted terminal
//! configuration (Lemma 3.6).
//!
//! Lemma 3.6 states that after stabilization the multiset of bra-kets equals
//! `⋃_{p=1..q} f(G_p)`, where for a greedy set `G_p` with elements
//! `g₀ < g₁ < … < g_m`,
//!
//! ```text
//! f(G_p) = { ⟨g₀|g₁⟩, ⟨g₁|g₂⟩, …, ⟨g_m|g₀⟩ }
//! ```
//!
//! — a directed *circle* through the set's colors (a single self-loop for a
//! singleton set). This module computes the prediction, checks whether a
//! configuration is exchange-stable, and compares live configurations with
//! the prediction. The model checker (`pp-mc`) uses these functions to
//! verify Lemma 3.6 exhaustively on small instances.

use pp_protocol::{CountConfig, Population};

use crate::braket::{would_exchange, BraKet};
use crate::color::Color;
use crate::error::CirclesError;
use crate::greedy::GreedyDecomposition;
use crate::protocol::CirclesState;

/// The circle bra-ket set `f(G)` of a sorted color set (Definition 3.5).
///
/// # Example
///
/// ```
/// use circles_core::prediction::circle_of;
/// use circles_core::{BraKet, Color};
///
/// let circle = circle_of(&[Color(1), Color(4), Color(6)]);
/// assert_eq!(circle, vec![
///     BraKet::new(Color(1), Color(4)),
///     BraKet::new(Color(4), Color(6)),
///     BraKet::new(Color(6), Color(1)),
/// ]);
/// // A singleton set yields its self-loop.
/// assert_eq!(circle_of(&[Color(3)]), vec![BraKet::self_loop(Color(3))]);
/// ```
///
/// # Panics
///
/// Panics when `sorted_colors` is empty or not strictly increasing — greedy
/// sets are sets, not multisets.
pub fn circle_of(sorted_colors: &[Color]) -> Vec<BraKet> {
    assert!(!sorted_colors.is_empty(), "circle of an empty set");
    assert!(
        sorted_colors.windows(2).all(|w| w[0] < w[1]),
        "colors must be strictly increasing"
    );
    let m = sorted_colors.len();
    (0..m)
        .map(|l| BraKet::new(sorted_colors[l], sorted_colors[(l + 1) % m]))
        .collect()
}

/// The predicted terminal bra-ket multiset `⋃_p f(G_p)` for the given input
/// multiset (Lemma 3.6).
///
/// # Errors
///
/// Propagates input validation errors from [`GreedyDecomposition`].
pub fn predicted_brakets(inputs: &[Color], k: u16) -> Result<CountConfig<BraKet>, CirclesError> {
    let greedy = GreedyDecomposition::from_inputs(inputs, k)?;
    Ok(predicted_brakets_of(&greedy))
}

/// The predicted terminal bra-ket multiset from an existing decomposition.
pub fn predicted_brakets_of(greedy: &GreedyDecomposition) -> CountConfig<BraKet> {
    let mut config = CountConfig::new();
    for set in greedy.sets() {
        for braket in circle_of(&set) {
            config.insert(braket, 1);
        }
    }
    config
}

/// The predicted final *full* configuration when a unique majority color
/// exists: the predicted bra-kets, every agent outputting `μ`
/// (Theorem 3.7).
///
/// # Errors
///
/// Propagates input validation errors; additionally returns `None` inside
/// `Ok` when the input has a tie (no unique final output exists).
pub fn predicted_final_config(
    inputs: &[Color],
    k: u16,
) -> Result<Option<CountConfig<CirclesState>>, CirclesError> {
    let greedy = GreedyDecomposition::from_inputs(inputs, k)?;
    let Some(mu) = greedy.winner() else {
        return Ok(None);
    };
    let mut config = CountConfig::new();
    for (braket, count) in predicted_brakets_of(&greedy).iter() {
        config.insert(
            CirclesState {
                braket: *braket,
                out: mu,
            },
            count,
        );
    }
    Ok(Some(config))
}

/// Extracts the bra-ket multiset of a full-state configuration (projecting
/// out the `out` registers).
pub fn braket_config(config: &CountConfig<CirclesState>) -> CountConfig<BraKet> {
    let mut out = CountConfig::new();
    for (s, c) in config.iter() {
        out.insert(s.braket, c);
    }
    out
}

/// Extracts the bra-ket multiset of an indexed population.
pub fn braket_config_of_population(population: &Population<CirclesState>) -> CountConfig<BraKet> {
    population.iter().map(|s| s.braket).collect()
}

/// Whether no pair of bra-kets present in `config` can exchange kets: the
/// configuration is *exchange-stable*. Weak fairness forces every execution's
/// bra-ket tail to be exchange-stable, and Lemma 3.6 says the predicted
/// multiset is the only reachable one.
pub fn is_exchange_stable(config: &CountConfig<BraKet>, k: u16) -> bool {
    // The exchange test is symmetric, so unordered pairs suffice; a bra-ket
    // can pair with an identical one only at multiplicity >= 2 (and such a
    // pair never exchanges — the swap reproduces the same two bra-kets, so
    // the minimum cannot strictly decrease).
    let states: Vec<(&BraKet, usize)> = config.iter().collect();
    for (idx, (x, cx)) in states.iter().enumerate() {
        if *cx >= 2 && would_exchange(k, **x, **x).is_some() {
            return false;
        }
        for (y, _) in states.iter().skip(idx + 1) {
            if would_exchange(k, **x, **y).is_some() {
                return false;
            }
        }
    }
    true
}

/// The number of self-loops per color in a bra-ket configuration, as
/// `(color, count)` pairs for colors with at least one self-loop.
pub fn self_loop_colors(config: &CountConfig<BraKet>) -> Vec<(Color, usize)> {
    config
        .iter()
        .filter(|(b, _)| b.is_self_loop())
        .map(|(b, c)| (b.bra, c))
        .collect()
}

/// Compares a population's bra-kets against the Lemma 3.6 prediction.
///
/// # Errors
///
/// Propagates input validation errors.
pub fn matches_prediction(
    population: &Population<CirclesState>,
    inputs: &[Color],
    k: u16,
) -> Result<bool, CirclesError> {
    let predicted = predicted_brakets(inputs, k)?;
    Ok(braket_config_of_population(population) == predicted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn colors(xs: &[u16]) -> Vec<Color> {
        xs.iter().map(|&x| Color(x)).collect()
    }

    fn bk(i: u16, j: u16) -> BraKet {
        BraKet::new(Color(i), Color(j))
    }

    #[test]
    fn circle_of_two_colors_is_two_cycle() {
        assert_eq!(circle_of(&colors(&[2, 5])), vec![bk(2, 5), bk(5, 2)]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn circle_rejects_unsorted() {
        let _ = circle_of(&colors(&[5, 2]));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn circle_rejects_empty() {
        let _ = circle_of(&[]);
    }

    #[test]
    fn prediction_for_paper_style_instance() {
        // counts: c0 ×1, c1 ×3, c2 ×2 over k=3.
        // G1 = {0,1,2} → ⟨0|1⟩⟨1|2⟩⟨2|0⟩
        // G2 = {1,2}   → ⟨1|2⟩⟨2|1⟩
        // G3 = {1}     → ⟨1|1⟩
        let inputs = colors(&[1, 2, 1, 0, 1, 2]);
        let predicted = predicted_brakets(&inputs, 3).unwrap();
        assert_eq!(predicted.n(), 6);
        assert_eq!(predicted.count(&bk(0, 1)), 1);
        assert_eq!(predicted.count(&bk(1, 2)), 2);
        assert_eq!(predicted.count(&bk(2, 0)), 1);
        assert_eq!(predicted.count(&bk(2, 1)), 1);
        assert_eq!(predicted.count(&bk(1, 1)), 1);
    }

    #[test]
    fn prediction_preserves_population_size() {
        // |⋃ f(G_p)| = Σ |G_p| = Σ counts = n.
        let inputs = colors(&[0, 0, 0, 1, 2, 2, 4]);
        let predicted = predicted_brakets(&inputs, 5).unwrap();
        assert_eq!(predicted.n(), inputs.len());
    }

    #[test]
    fn unique_majority_gives_single_self_loop_color() {
        let inputs = colors(&[0, 0, 0, 1, 1, 2]);
        let predicted = predicted_brakets(&inputs, 3).unwrap();
        let loops = self_loop_colors(&predicted);
        assert_eq!(loops, vec![(Color(0), 1)]);
    }

    #[test]
    fn tie_gives_no_self_loop() {
        let inputs = colors(&[0, 0, 1, 1]);
        let predicted = predicted_brakets(&inputs, 2).unwrap();
        assert!(self_loop_colors(&predicted).is_empty());
        // Instead the top circle repeats q times.
        assert_eq!(predicted.count(&bk(0, 1)), 2);
        assert_eq!(predicted.count(&bk(1, 0)), 2);
    }

    #[test]
    fn predicted_configuration_is_exchange_stable() {
        for (inputs, k) in [
            (colors(&[0, 0, 0, 1, 1, 2]), 3),
            (colors(&[0, 1, 2, 3, 3]), 4),
            (colors(&[5, 5, 5, 5]), 6),
            (colors(&[0, 2, 2, 4, 4, 4, 7]), 8),
        ] {
            let predicted = predicted_brakets(&inputs, k).unwrap();
            assert!(
                is_exchange_stable(&predicted, k),
                "prediction unstable for {inputs:?}"
            );
        }
    }

    #[test]
    fn initial_config_with_two_colors_is_not_stable() {
        let config: CountConfig<BraKet> = [bk(0, 0), bk(1, 1)].into_iter().collect();
        assert!(!is_exchange_stable(&config, 2));
    }

    #[test]
    fn predicted_final_config_outputs_mu() {
        let inputs = colors(&[2, 2, 0]);
        let config = predicted_final_config(&inputs, 3).unwrap().unwrap();
        for (s, _) in config.iter() {
            assert_eq!(s.out, Color(2));
        }
        assert_eq!(config.n(), 3);
    }

    #[test]
    fn predicted_final_config_none_on_tie() {
        let inputs = colors(&[0, 1]);
        assert_eq!(predicted_final_config(&inputs, 2).unwrap(), None);
    }

    #[test]
    fn braket_projection_collapses_outs() {
        let config: CountConfig<CirclesState> = [
            CirclesState {
                braket: bk(0, 1),
                out: Color(0),
            },
            CirclesState {
                braket: bk(0, 1),
                out: Color(1),
            },
        ]
        .into_iter()
        .collect();
        let brakets = braket_config(&config);
        assert_eq!(brakets.count(&bk(0, 1)), 2);
    }

    #[test]
    fn conservation_in_prediction() {
        // The prediction must satisfy Lemma 3.3: per color, #bras == #kets.
        let inputs = colors(&[0, 0, 1, 2, 2, 2, 3]);
        let predicted = predicted_brakets(&inputs, 4).unwrap();
        for c in 0..4u16 {
            let bras: usize = predicted
                .iter()
                .filter(|(b, _)| b.bra == Color(c))
                .map(|(_, n)| n)
                .sum();
            let kets: usize = predicted
                .iter()
                .filter(|(b, _)| b.ket == Color(c))
                .map(|(_, n)| n)
                .sum();
            assert_eq!(bras, kets, "conservation broken for color {c}");
        }
    }
}
