//! Color permutations, the canonicalization layer, and the rotation
//! quotient of the Circles state space.
//!
//! The Circles transition rule is built from the cyclic weight
//! `w(⟨i|j⟩) = (j − i) mod k` and the self-loop predicate `i = j`, both of
//! which are invariant under *rotations* `x ↦ (x + c) mod k` of the color
//! circle. Rotating every color of both interaction partners therefore
//! commutes with the transition function (rotation equivariance, verified
//! exhaustively in this module's tests), which makes the transition table a
//! function of rotation *orbits* of state pairs rather than of concrete
//! pairs. [`CirclesColorQuotient`] packages that symmetry as a
//! [`StateQuotient`] so the discovery engine classifies one canonical
//! representative per orbit and expands the rest mechanically.
//!
//! General (non-rotation) color permutations do **not** preserve the
//! ordered protocol — the weight function reads cyclic *distances*, not
//! bare equality — so the quotient group here is `Z_k`, of order `k`, not
//! the full symmetric group `S_k` the unordered-setting extension (paper
//! §4) would admit. [`ColorPerm`] still models arbitrary permutations:
//! first-appearance canonicalization ([`CirclesState::canonicalize`]) is
//! the pattern-level view the paper's §4 extension and the test suite use.

use std::fmt;

use pp_protocol::quotient::{CanonicalPair, StateQuotient};

use crate::braket::BraKet;
use crate::color::Color;
use crate::protocol::CirclesState;

/// A permutation of the `k` colors, stored as its image table:
/// `perm.apply(Color(x)) == Color(map[x])`.
///
/// # Example
///
/// ```
/// use circles_core::{Color, ColorPerm};
///
/// let rot = ColorPerm::rotation(5, 2);
/// assert_eq!(rot.apply(Color(4)), Color(1));
/// assert_eq!(rot.invert().compose(&rot), ColorPerm::identity(5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColorPerm {
    map: Vec<u16>,
}

impl ColorPerm {
    /// The identity permutation on `k` colors.
    pub fn identity(k: u16) -> Self {
        ColorPerm {
            map: (0..k).collect(),
        }
    }

    /// The rotation `x ↦ (x + shift) mod k` — the symmetry the ordered
    /// Circles protocol is invariant under.
    pub fn rotation(k: u16, shift: u16) -> Self {
        assert!(k > 0, "rotation of zero colors");
        let shift = shift % k;
        ColorPerm {
            map: (0..k).map(|x| (x + shift) % k).collect(),
        }
    }

    /// A permutation from its image table; `None` when `map` is not a
    /// bijection of `[0, map.len())`.
    pub fn from_map(map: Vec<u16>) -> Option<Self> {
        let k = map.len();
        let mut seen = vec![false; k];
        for &v in &map {
            let v = usize::from(v);
            if v >= k || seen[v] {
                return None;
            }
            seen[v] = true;
        }
        Some(ColorPerm { map })
    }

    /// The number of colors this permutation acts on.
    pub fn k(&self) -> u16 {
        self.map.len() as u16
    }

    /// The image of `color`.
    ///
    /// # Panics
    ///
    /// Panics when `color` is outside `[0, k)`.
    pub fn apply(&self, color: Color) -> Color {
        Color(self.map[color.index()])
    }

    /// The composition `self ∘ other`: applies `other` first, then `self`.
    ///
    /// # Panics
    ///
    /// Panics when the two permutations act on different color counts.
    pub fn compose(&self, other: &ColorPerm) -> ColorPerm {
        assert_eq!(self.k(), other.k(), "composing permutations of different k");
        ColorPerm {
            map: other
                .map
                .iter()
                .map(|&v| self.map[usize::from(v)])
                .collect(),
        }
    }

    /// The inverse permutation: `perm.invert().apply(perm.apply(c)) == c`.
    pub fn invert(&self) -> ColorPerm {
        let mut map = vec![0u16; self.map.len()];
        for (x, &v) in self.map.iter().enumerate() {
            map[usize::from(v)] = x as u16;
        }
        ColorPerm { map }
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(x, &v)| x as u16 == v)
    }
}

impl fmt::Display for ColorPerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{i}→{v}")?;
        }
        write!(f, ")")
    }
}

impl BraKet {
    /// This bra-ket with both colors relabeled through `perm`.
    pub fn permuted(&self, perm: &ColorPerm) -> BraKet {
        BraKet::new(perm.apply(self.bra), perm.apply(self.ket))
    }
}

impl CirclesState {
    /// This state with all three colors relabeled through `perm`.
    pub fn permuted(&self, perm: &ColorPerm) -> CirclesState {
        CirclesState {
            braket: self.braket.permuted(perm),
            out: perm.apply(self.out),
        }
    }

    /// The first-appearance canonical form of this state under arbitrary
    /// color permutations, over `k` colors: colors are relabeled `0, 1, …`
    /// in the order they first appear in `(bra, ket, out)`, with unused
    /// colors filling the remaining labels in ascending order. Returns the
    /// canonical state together with the permutation mapping it *back*:
    /// `canonical.permuted(&perm) == *self`.
    ///
    /// This is the color-*pattern* view: two states canonicalize equal iff
    /// some color permutation maps one to the other. The ordered protocol
    /// is only rotation-invariant (see the [module docs](self)), so
    /// discovery uses [`CirclesColorQuotient`] instead; pattern
    /// canonicalization is the coarser class the unordered-setting
    /// extension works with.
    ///
    /// # Panics
    ///
    /// Panics when any color of the state is `>= k`.
    pub fn canonicalize(&self, k: u16) -> (CirclesState, ColorPerm) {
        let mut relabel = vec![u16::MAX; usize::from(k)];
        let mut next = 0u16;
        for c in [self.braket.bra, self.braket.ket, self.out] {
            let slot = &mut relabel[c.index()];
            if *slot == u16::MAX {
                *slot = next;
                next += 1;
            }
        }
        for slot in relabel.iter_mut() {
            if *slot == u16::MAX {
                *slot = next;
                next += 1;
            }
        }
        let forward = ColorPerm { map: relabel };
        let canonical = self.permuted(&forward);
        (canonical, forward.invert())
    }
}

/// The rotation quotient of the Circles state space: the group `Z_k`
/// acting by `x ↦ (x + g) mod k` on all three colors of a state, plus the
/// initiator/responder swap fold (sound because the Circles transition is
/// symmetric).
///
/// Canonical representatives are the states with `bra = 0` (`k²` of the
/// `k³` states), and a canonical *pair* additionally picks the
/// lexicographically smaller of the two swap orientations — so full-table
/// discovery classifies `~k⁵/2` representative pairs instead of the
/// symmetric memo's `~k⁶/2`, an orbit factor of `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CirclesColorQuotient {
    k: u16,
}

impl CirclesColorQuotient {
    /// The rotation quotient for `k` colors.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(k: u16) -> Self {
        assert!(k > 0, "rotation quotient of zero colors");
        CirclesColorQuotient { k }
    }

    /// Rotates every color of `s` by `+shift` (taken mod `k`).
    fn rot(&self, shift: u16, s: &CirclesState) -> CirclesState {
        let k = self.k;
        let r = |c: Color| Color((c.0 + shift) % k);
        CirclesState {
            braket: BraKet::new(r(s.braket.bra), r(s.braket.ket)),
            out: r(s.out),
        }
    }
}

impl StateQuotient<CirclesState> for CirclesColorQuotient {
    fn group_order(&self) -> u32 {
        u32::from(self.k)
    }

    fn apply(&self, g: u32, state: &CirclesState) -> CirclesState {
        debug_assert!(g < u32::from(self.k), "group element {g} out of range");
        self.rot(g as u16, state)
    }

    fn canonical_state(&self, state: &CirclesState) -> (CirclesState, u32) {
        // Rotate the initiator's bra to color 0; rotating back by `bra`
        // recovers the original.
        let g = state.braket.bra.0 % self.k;
        (self.rot(self.k - g, state), u32::from(g))
    }

    fn canonical_pair(&self, a: &CirclesState, b: &CirclesState) -> CanonicalPair<CirclesState> {
        let ga = a.braket.bra.0 % self.k;
        let gb = b.braket.bra.0 % self.k;
        // Two candidates put one partner's bra at color 0: the unswapped
        // orientation rotates by the initiator's bra, the swapped one by
        // the responder's (sound to fold because the Circles transition is
        // symmetric). The lexicographic minimum is the orbit
        // representative; ties keep the unswapped orientation.
        let fwd = (self.rot(self.k - ga, a), self.rot(self.k - ga, b));
        let rev = (self.rot(self.k - gb, b), self.rot(self.k - gb, a));
        if rev < fwd {
            CanonicalPair {
                a: rev.0,
                b: rev.1,
                g: u32::from(gb),
                swapped: true,
            }
        } else {
            CanonicalPair {
                a: fwd.0,
                b: fwd.1,
                g: u32::from(ga),
                swapped: false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CirclesProtocol;
    use pp_protocol::{EnumerableProtocol, Protocol};

    fn state(bra: u16, ket: u16, out: u16) -> CirclesState {
        CirclesState {
            braket: BraKet::new(Color(bra), Color(ket)),
            out: Color(out),
        }
    }

    #[test]
    fn perm_laws_hold() {
        let k = 7;
        for shift in 0..k {
            let rot = ColorPerm::rotation(k, shift);
            assert_eq!(rot.compose(&rot.invert()), ColorPerm::identity(k));
            assert_eq!(rot.invert().compose(&rot), ColorPerm::identity(k));
            assert_eq!(rot.is_identity(), shift == 0);
            for x in 0..k {
                assert_eq!(rot.apply(Color(x)), Color((x + shift) % k));
                assert_eq!(rot.invert().apply(rot.apply(Color(x))), Color(x));
            }
        }
        let a = ColorPerm::rotation(5, 2);
        let b = ColorPerm::from_map(vec![1, 0, 3, 2, 4]).unwrap();
        for x in 0..5 {
            // compose applies the right operand first.
            assert_eq!(a.compose(&b).apply(Color(x)), a.apply(b.apply(Color(x))));
        }
    }

    #[test]
    fn from_map_rejects_non_bijections() {
        assert!(ColorPerm::from_map(vec![0, 0, 1]).is_none(), "duplicate");
        assert!(ColorPerm::from_map(vec![0, 3]).is_none(), "out of range");
        assert!(ColorPerm::from_map(vec![2, 0, 1]).is_some());
    }

    #[test]
    fn permuted_acts_componentwise() {
        let perm = ColorPerm::rotation(4, 1);
        assert_eq!(state(0, 2, 3).permuted(&perm), state(1, 3, 0));
        assert_eq!(
            BraKet::new(Color(3), Color(3)).permuted(&perm),
            BraKet::new(Color(0), Color(0)),
        );
    }

    #[test]
    fn canonicalize_relabels_by_first_appearance() {
        let (canon, perm) = state(4, 4, 2).canonicalize(6);
        assert_eq!(canon, state(0, 0, 1));
        assert_eq!(canon.permuted(&perm), state(4, 4, 2));
        // Same pattern, different concrete colors: equal canonical forms.
        let (canon2, _) = state(1, 1, 5).canonicalize(6);
        assert_eq!(canon, canon2);
        // Different patterns stay apart.
        let (canon3, _) = state(1, 5, 5).canonicalize(6);
        assert_ne!(canon, canon3);
    }

    #[test]
    fn canonicalize_round_trips_all_states() {
        for k in 1..=5u16 {
            let p = CirclesProtocol::new(k).unwrap();
            for s in p.states() {
                let (canon, perm) = s.canonicalize(k);
                assert_eq!(canon.permuted(&perm), s);
                let (again, _) = canon.canonicalize(k);
                assert_eq!(again, canon, "canonical form must be a fixed point");
            }
        }
    }

    #[test]
    fn rotation_equivariance_of_the_transition() {
        // The load-bearing property behind quotient discovery: rotating
        // both partners commutes with the transition. Exhaustive for small
        // k over all pairs and all rotations.
        for k in 1..=5u16 {
            let p = CirclesProtocol::new(k).unwrap();
            let q = CirclesColorQuotient::new(k);
            let states = p.states();
            for a in &states {
                for b in &states {
                    let (oa, ob) = p.transition(a, b);
                    for g in 0..u32::from(k) {
                        let (ra, rb) = p.transition(&q.apply(g, a), &q.apply(g, b));
                        assert_eq!(
                            (ra, rb),
                            (q.apply(g, &oa), q.apply(g, &ob)),
                            "rotation {g} does not commute at ({a}, {b})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn canonical_state_contract() {
        for k in 1..=6u16 {
            let p = CirclesProtocol::new(k).unwrap();
            let q = CirclesColorQuotient::new(k);
            let mut reps = std::collections::HashSet::new();
            for s in p.states() {
                let (canon, g) = q.canonical_state(&s);
                assert_eq!(q.apply(g, &canon), s, "apply(g, canon) must recover");
                assert_eq!(canon.braket.bra, Color(0), "reps put bra at color 0");
                assert_eq!(
                    q.canonical_state(&canon),
                    (canon, 0),
                    "rep is a fixed point"
                );
                reps.insert(canon);
            }
            assert_eq!(reps.len(), usize::from(k) * usize::from(k), "k² orbits");
        }
    }

    #[test]
    fn canonical_pair_contract() {
        for k in 1..=4u16 {
            let p = CirclesProtocol::new(k).unwrap();
            let q = CirclesColorQuotient::new(k);
            let states = p.states();
            for a in &states {
                for b in &states {
                    let cp = q.canonical_pair(a, b);
                    // Reconstruction: the recorded element and swap map the
                    // canonical pair back onto the original.
                    let (ra, rb) = if cp.swapped {
                        (q.apply(cp.g, &cp.b), q.apply(cp.g, &cp.a))
                    } else {
                        (q.apply(cp.g, &cp.a), q.apply(cp.g, &cp.b))
                    };
                    assert_eq!((&ra, &rb), (a, b));
                    // Orbit invariance: every pair of the orbit (rotations ×
                    // swap) shares one canonical representative.
                    for g in 0..u32::from(k) {
                        let cg = q.canonical_pair(&q.apply(g, a), &q.apply(g, b));
                        assert_eq!((&cg.a, &cg.b), (&cp.a, &cp.b));
                        let cs = q.canonical_pair(&q.apply(g, b), &q.apply(g, a));
                        assert_eq!((&cs.a, &cs.b), (&cp.a, &cp.b));
                    }
                }
            }
        }
    }
}
