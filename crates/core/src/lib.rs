//! # The Circles protocol
//!
//! A faithful implementation of the **Circles** population protocol from
//! *"Brief Announcement: Minimizing Energy Solves Relative Majority with a
//! Cubic Number of States in Population Protocols"* (Breitkopf, Dallot,
//! El-Hayek, Schmid — PODC 2025), together with the paper's proof artifacts
//! as executable, testable theory.
//!
//! ## The protocol (paper §2)
//!
//! Each agent stores a *bra-ket* `⟨i|j⟩` plus an output color `out`, all in
//! `[0, k-1]` — exactly `k³` states. Every bra-ket has a weight
//!
//! ```text
//! w(⟨i|j⟩) = k            if i = j
//!            (j − i) mod k otherwise
//! ```
//!
//! When two agents interact they (1) exchange their kets if and only if this
//! *strictly decreases the minimum* of their two weights, then (2) if either
//! agent is a self-loop `⟨i|i⟩`, both set `out := i`. Under any weakly fair
//! scheduler all agents eventually output the relative-majority color,
//! forever (paper Theorem 3.7).
//!
//! ## Executable theory
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Greedy independent sets (Def. 3.1), Lemma 3.2 | [`greedy`] |
//! | Global bra-ket invariant (Lemma 3.3) | [`invariants`] |
//! | Lexicographic potential (Theorem 3.4) | [`potential`] |
//! | Circle bra-ket sets and predicted terminal configuration (Def. 3.5, Lemma 3.6) | [`prediction`] |
//! | Energy-minimization view (title, §1) | [`energy`] |
//! | Ablation variants of the exchange rule | [`variants`] |
//!
//! # Example
//!
//! ```
//! use circles_core::{CirclesProtocol, Color};
//! use pp_protocol::{Population, Simulation, UniformPairScheduler};
//!
//! let protocol = CirclesProtocol::new(3)?;
//! let inputs: Vec<Color> = [2, 0, 1, 2, 1, 2].map(Color).to_vec();
//! let population = Population::from_inputs(&protocol, &inputs);
//! let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 7);
//! let report = sim.run_until_silent(1_000_000, 16)?;
//! assert_eq!(report.consensus, Some(Color(2))); // color 2 has plurality 3
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod braket;
mod color;
pub mod energy;
mod error;
pub mod greedy;
pub mod invariants;
pub mod ordinal;
pub mod perm;
pub mod potential;
pub mod prediction;
mod protocol;
pub mod variants;

pub use braket::{weight, would_exchange, BraKet};
pub use color::Color;
pub use error::CirclesError;
pub use greedy::GreedyDecomposition;
pub use perm::{CirclesColorQuotient, ColorPerm};
pub use protocol::{CirclesProtocol, CirclesState};

/// Convenience: run Circles on `inputs` with `k` colors under the
/// uniform-random scheduler until silent, and return the unanimous output.
///
/// Intended for examples and quick experiments; real measurement code should
/// construct the simulation directly.
///
/// # Errors
///
/// Returns an error when `k` or the inputs are invalid, or when the run does
/// not reach silence within `max_steps`.
pub fn run_to_consensus(
    inputs: &[Color],
    k: u16,
    seed: u64,
    max_steps: u64,
) -> Result<Color, Box<dyn std::error::Error>> {
    use pp_protocol::{Population, Simulation, UniformPairScheduler};

    let protocol = CirclesProtocol::new(k)?;
    for c in inputs {
        protocol.validate_color(*c)?;
    }
    let population = Population::from_inputs(&protocol, inputs);
    let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
    let report = sim.run_until_silent(max_steps, 64)?;
    report
        .consensus
        .ok_or_else(|| "silent configuration without output consensus (tie?)".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_to_consensus_finds_plurality() {
        let inputs: Vec<Color> = [0, 0, 1, 1, 1, 2].map(Color).to_vec();
        let winner = run_to_consensus(&inputs, 3, 1, 1_000_000).unwrap();
        assert_eq!(winner, Color(1));
    }

    #[test]
    fn run_to_consensus_rejects_bad_color() {
        let inputs = vec![Color(5)];
        assert!(run_to_consensus(&inputs, 3, 1, 1000).is_err());
    }
}
