//! The [`Color`] newtype: an input color in `[0, k-1]`.

use std::fmt;
use std::str::FromStr;

use crate::error::CirclesError;

/// An input color (an "opinion") in `[0, k-1]`.
///
/// Colors are numeric in the ordered setting the paper's main protocol works
/// in: the weight function computes cyclic distances between colors. The
/// unordered-setting extension (paper §4) treats colors as opaque and is
/// implemented in the `pp-extensions` crate.
///
/// The inner value is public: `Color` is a plain, passive identifier and the
/// protocol constructors validate ranges at the boundary.
///
/// # Example
///
/// ```
/// use circles_core::Color;
///
/// let c = Color(3);
/// assert_eq!(c.index(), 3);
/// assert_eq!(c.to_string(), "c3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Color(pub u16);

impl Color {
    /// The color's numeric index as a `usize`, for table lookups.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl FromStr for Color {
    type Err = CirclesError;

    /// Parses the `Display` form `c<index>` (count-level traces serialize
    /// states textually and parse them back on replay).
    fn from_str(s: &str) -> Result<Self, CirclesError> {
        let index = s
            .strip_prefix('c')
            .ok_or_else(|| CirclesError::StateParse(format!("color {s:?} lacks the c prefix")))?;
        index
            .parse()
            .map(Color)
            .map_err(|e| CirclesError::StateParse(format!("bad color index {index:?}: {e}")))
    }
}

impl From<u16> for Color {
    fn from(value: u16) -> Self {
        Color(value)
    }
}

impl From<Color> for u16 {
    fn from(value: Color) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_index() {
        assert!(Color(1) < Color(2));
        assert_eq!(Color(4), Color(4));
    }

    #[test]
    fn conversions_round_trip() {
        let c: Color = 9u16.into();
        let v: u16 = c.into();
        assert_eq!(v, 9);
        assert_eq!(c.index(), 9);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Color(0).to_string(), "c0");
    }

    #[test]
    fn display_round_trips_through_fromstr() {
        for c in [Color(0), Color(7), Color(u16::MAX)] {
            assert_eq!(c.to_string().parse::<Color>().unwrap(), c);
        }
        assert!("7".parse::<Color>().is_err(), "prefix is mandatory");
        assert!("cx".parse::<Color>().is_err());
        assert!("c70000".parse::<Color>().is_err(), "u16 overflow");
    }
}
