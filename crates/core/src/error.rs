//! Error type for Circles construction and validation.

use std::error::Error;
use std::fmt;

use crate::color::Color;

/// Errors from constructing or feeding the Circles protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CirclesError {
    /// `k = 0`: the protocol needs at least one color.
    ZeroColors,
    /// A color index was outside `[0, k-1]`.
    ColorOutOfRange {
        /// The offending color.
        color: Color,
        /// The number of colors the protocol was built for.
        k: u16,
    },
    /// An operation that requires at least one agent got none.
    EmptyInput,
    /// Two terms of an ordinal in Cantor normal form share a degree.
    DuplicateOrdinalDegree {
        /// The repeated degree.
        degree: u64,
    },
    /// A textual state representation (the `Display` forms of `Color`,
    /// `BraKet`, `CirclesState`) could not be parsed back.
    StateParse(String),
}

impl fmt::Display for CirclesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CirclesError::ZeroColors => write!(f, "k must be at least 1"),
            CirclesError::ColorOutOfRange { color, k } => {
                write!(f, "color {color} out of range for k={k}")
            }
            CirclesError::EmptyInput => write!(f, "input multiset is empty"),
            CirclesError::DuplicateOrdinalDegree { degree } => {
                write!(f, "duplicate ordinal term of degree {degree}")
            }
            CirclesError::StateParse(msg) => write!(f, "invalid state text: {msg}"),
        }
    }
}

impl Error for CirclesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(CirclesError::ZeroColors.to_string(), "k must be at least 1");
        assert_eq!(
            CirclesError::ColorOutOfRange {
                color: Color(7),
                k: 3
            }
            .to_string(),
            "color c7 out of range for k=3"
        );
        assert_eq!(
            CirclesError::EmptyInput.to_string(),
            "input multiset is empty"
        );
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<CirclesError>();
    }
}
