//! Greedy independent sets (paper Definition 3.1) and the majority-color
//! lemma (Lemma 3.2).
//!
//! The input multiset is partitioned into sets `G₁, G₂, …, G_q`: `G₁` takes
//! one copy of every color present, `G₂` one copy of every color still
//! remaining, and so on. Equivalently, `G_p` is the set of colors whose
//! count is at least `p`, and `q` is the maximum count.
//!
//! Lemma 3.2: when a unique color `μ` has relative majority, `G_q = {μ}` and
//! no other set is a singleton of a different color.

use std::collections::BTreeMap;

use crate::color::Color;
use crate::error::CirclesError;

/// The greedy-independent-set decomposition of an input multiset.
///
/// # Example
///
/// ```
/// use circles_core::{Color, GreedyDecomposition};
///
/// // counts: c0 ×1, c1 ×3, c2 ×2
/// let inputs: Vec<Color> = [1, 2, 1, 0, 1, 2].map(Color).to_vec();
/// let g = GreedyDecomposition::from_inputs(&inputs, 3)?;
/// assert_eq!(g.num_sets(), 3);
/// assert_eq!(g.set(1), [Color(0), Color(1), Color(2)]);
/// assert_eq!(g.set(2), [Color(1), Color(2)]);
/// assert_eq!(g.set(3), [Color(1)]);
/// assert_eq!(g.winner(), Some(Color(1)));
/// # Ok::<(), circles_core::CirclesError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreedyDecomposition {
    k: u16,
    /// `counts[c]` = multiplicity of color `c` in the input multiset.
    counts: Vec<usize>,
    /// `q` = maximum multiplicity (number of greedy sets).
    q: usize,
    n: usize,
}

impl GreedyDecomposition {
    /// Builds the decomposition of `inputs` over `k` colors.
    ///
    /// # Errors
    ///
    /// Returns [`CirclesError::EmptyInput`] for an empty multiset,
    /// [`CirclesError::ZeroColors`] for `k = 0`, and
    /// [`CirclesError::ColorOutOfRange`] when an input is `>= k`.
    pub fn from_inputs(inputs: &[Color], k: u16) -> Result<Self, CirclesError> {
        if k == 0 {
            return Err(CirclesError::ZeroColors);
        }
        if inputs.is_empty() {
            return Err(CirclesError::EmptyInput);
        }
        let mut counts = vec![0usize; usize::from(k)];
        for &c in inputs {
            if c.0 >= k {
                return Err(CirclesError::ColorOutOfRange { color: c, k });
            }
            counts[c.index()] += 1;
        }
        let q = counts.iter().copied().max().unwrap_or(0);
        Ok(GreedyDecomposition {
            k,
            counts,
            q,
            n: inputs.len(),
        })
    }

    /// Builds the decomposition from a color-count histogram.
    ///
    /// # Errors
    ///
    /// Same as [`from_inputs`](Self::from_inputs).
    pub fn from_counts(counts: &BTreeMap<Color, usize>, k: u16) -> Result<Self, CirclesError> {
        let mut inputs = Vec::new();
        for (&c, &count) in counts {
            for _ in 0..count {
                inputs.push(c);
            }
        }
        Self::from_inputs(&inputs, k)
    }

    /// Number of colors `k`.
    pub fn k(&self) -> u16 {
        self.k
    }

    /// Population size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Multiplicity of `color` in the input multiset.
    pub fn count(&self, color: Color) -> usize {
        self.counts.get(color.index()).copied().unwrap_or(0)
    }

    /// The number of greedy sets, `q` = the maximum multiplicity.
    pub fn num_sets(&self) -> usize {
        self.q
    }

    /// The greedy set `G_p` (1-based, `1 <= p <= q`): the colors with count
    /// at least `p`, in increasing color order.
    ///
    /// # Panics
    ///
    /// Panics when `p` is `0` or greater than [`num_sets`](Self::num_sets).
    pub fn set(&self, p: usize) -> Vec<Color> {
        assert!(
            p >= 1 && p <= self.q,
            "greedy set index {p} out of [1, {}]",
            self.q
        );
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= p)
            .map(|(i, _)| Color(i as u16))
            .collect()
    }

    /// Iterates over all greedy sets `G₁ … G_q`.
    pub fn sets(&self) -> impl Iterator<Item = Vec<Color>> + '_ {
        (1..=self.q).map(|p| self.set(p))
    }

    /// The colors with maximum multiplicity (the winners; more than one in a
    /// tie).
    pub fn winners(&self) -> Vec<Color> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == self.q && c > 0)
            .map(|(i, _)| Color(i as u16))
            .collect()
    }

    /// The unique relative-majority color, or `None` on a tie.
    pub fn winner(&self) -> Option<Color> {
        let winners = self.winners();
        if winners.len() == 1 {
            Some(winners[0])
        } else {
            None
        }
    }

    /// Whether the maximum multiplicity is attained by several colors.
    pub fn is_tie(&self) -> bool {
        self.winners().len() > 1
    }

    /// Verifies that the sets form a partition of the input multiset:
    /// each color `c` appears in exactly `count(c)` many sets, namely
    /// `G₁ … G_{count(c)}` (the defining property of the greedy
    /// construction).
    pub fn is_partition(&self) -> bool {
        for (i, &c) in self.counts.iter().enumerate() {
            let color = Color(i as u16);
            let member_of = (1..=self.q)
                .filter(|&p| self.set(p).contains(&color))
                .count();
            if member_of != c {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn colors(xs: &[u16]) -> Vec<Color> {
        xs.iter().map(|&x| Color(x)).collect()
    }

    #[test]
    fn sets_are_nested_decreasing() {
        let g = GreedyDecomposition::from_inputs(&colors(&[0, 0, 0, 1, 1, 3]), 4).unwrap();
        assert_eq!(g.num_sets(), 3);
        assert_eq!(g.set(1), colors(&[0, 1, 3]));
        assert_eq!(g.set(2), colors(&[0, 1]));
        assert_eq!(g.set(3), colors(&[0]));
        // Nesting: G_{p+1} ⊆ G_p.
        for p in 1..g.num_sets() {
            let outer = g.set(p);
            for c in g.set(p + 1) {
                assert!(outer.contains(&c));
            }
        }
    }

    #[test]
    fn lemma_3_2_majority_in_every_set() {
        // μ = 2 with count 4; all sets must contain μ, G_q = {μ}, and no
        // other singleton color exists.
        let g = GreedyDecomposition::from_inputs(&colors(&[2, 2, 2, 2, 1, 1, 0, 0, 0]), 3).unwrap();
        let mu = g.winner().unwrap();
        assert_eq!(mu, Color(2));
        for p in 1..=g.num_sets() {
            assert!(g.set(p).contains(&mu));
        }
        assert_eq!(g.set(g.num_sets()), vec![mu]);
        for p in 1..=g.num_sets() {
            let set = g.set(p);
            if set.len() == 1 {
                assert_eq!(set[0], mu, "non-majority singleton set G_{p}");
            }
        }
    }

    #[test]
    fn tie_detected() {
        let g = GreedyDecomposition::from_inputs(&colors(&[0, 0, 1, 1, 2]), 3).unwrap();
        assert!(g.is_tie());
        assert_eq!(g.winner(), None);
        assert_eq!(g.winners(), colors(&[0, 1]));
    }

    #[test]
    fn partition_property_holds() {
        let g = GreedyDecomposition::from_inputs(&colors(&[5, 5, 1, 0, 5, 1]), 6).unwrap();
        assert!(g.is_partition());
    }

    #[test]
    fn single_color_population() {
        let g = GreedyDecomposition::from_inputs(&colors(&[1, 1, 1]), 2).unwrap();
        assert_eq!(g.num_sets(), 3);
        for p in 1..=3 {
            assert_eq!(g.set(p), vec![Color(1)]);
        }
        assert_eq!(g.winner(), Some(Color(1)));
    }

    #[test]
    fn single_agent() {
        let g = GreedyDecomposition::from_inputs(&colors(&[0]), 1).unwrap();
        assert_eq!(g.num_sets(), 1);
        assert_eq!(g.winner(), Some(Color(0)));
    }

    #[test]
    fn absent_colors_are_skipped() {
        let g = GreedyDecomposition::from_inputs(&colors(&[3, 3]), 9).unwrap();
        assert_eq!(g.set(1), vec![Color(3)]);
        assert_eq!(g.count(Color(0)), 0);
    }

    #[test]
    fn errors_on_invalid_input() {
        assert_eq!(
            GreedyDecomposition::from_inputs(&[], 3).unwrap_err(),
            CirclesError::EmptyInput
        );
        assert_eq!(
            GreedyDecomposition::from_inputs(&colors(&[0]), 0).unwrap_err(),
            CirclesError::ZeroColors
        );
        assert_eq!(
            GreedyDecomposition::from_inputs(&colors(&[4]), 3).unwrap_err(),
            CirclesError::ColorOutOfRange {
                color: Color(4),
                k: 3
            }
        );
    }

    #[test]
    #[should_panic(expected = "out of [1, 2]")]
    fn set_index_zero_panics() {
        let g = GreedyDecomposition::from_inputs(&colors(&[0, 0, 1]), 2).unwrap();
        let _ = g.set(0);
    }

    #[test]
    fn from_counts_agrees_with_from_inputs() {
        let mut counts = BTreeMap::new();
        counts.insert(Color(0), 2);
        counts.insert(Color(2), 1);
        let a = GreedyDecomposition::from_counts(&counts, 3).unwrap();
        let b = GreedyDecomposition::from_inputs(&colors(&[0, 0, 2]), 3).unwrap();
        assert_eq!(a, b);
    }
}
