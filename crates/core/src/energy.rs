//! The energy-minimization view of Circles.
//!
//! The paper's title credits the design to "energy minimization in chemical
//! settings": read each bra-ket as a chemical *bond* whose energy is its
//! weight. Self-loops are maximally strained bonds (energy `k`); a ket
//! exchange is a reaction that is allowed precisely when it relaxes the
//! weakest of the two bonds involved. Stabilization (Theorem 3.4) is the
//! statement that the system reaches a local — and by Lemma 3.6 global,
//! unique — energy minimum.
//!
//! This module exposes the quantities that make that narrative measurable:
//! per-bond energies, total energy, the energy histogram, and a descent
//! recorder for plotting energy over the course of a run. Note that the
//! *Lyapunov function* of the protocol is the lexicographic potential of
//! [`crate::potential`], not the total energy — the total can transiently
//! rise; the descent recorder demonstrates exactly that in experiment E4.

use pp_protocol::CountConfig;

use crate::braket::{weight, BraKet};
use crate::protocol::CirclesState;

/// Total energy: the sum of all bond weights.
///
/// # Example
///
/// ```
/// use circles_core::energy::total_energy;
/// use circles_core::{BraKet, Color};
/// use pp_protocol::CountConfig;
///
/// let config: CountConfig<BraKet> =
///     [BraKet::self_loop(Color(0)), BraKet::new(Color(0), Color(1))].into_iter().collect();
/// assert_eq!(total_energy(&config, 3), 3 + 1);
/// ```
pub fn total_energy(config: &CountConfig<BraKet>, k: u16) -> u64 {
    config
        .iter()
        .map(|(b, c)| u64::from(weight(k, *b)) * c as u64)
        .sum()
}

/// Total energy of a full-state configuration.
pub fn total_energy_of_states(config: &CountConfig<CirclesState>, k: u16) -> u64 {
    config
        .iter()
        .map(|(s, c)| u64::from(weight(k, s.braket)) * c as u64)
        .sum()
}

/// Histogram of bond energies: `histogram[w - 1]` = number of bonds with
/// weight `w`, for `w` in `[1, k]`.
pub fn energy_histogram(config: &CountConfig<BraKet>, k: u16) -> Vec<usize> {
    let mut hist = vec![0usize; usize::from(k)];
    for (b, c) in config.iter() {
        hist[(weight(k, *b) - 1) as usize] += c;
    }
    hist
}

/// The theoretical minimum total energy for an input multiset — the energy
/// of the predicted terminal configuration of Lemma 3.6.
///
/// # Errors
///
/// Propagates input validation errors.
pub fn terminal_energy(inputs: &[crate::Color], k: u16) -> Result<u64, crate::CirclesError> {
    let predicted = crate::prediction::predicted_brakets(inputs, k)?;
    Ok(total_energy(&predicted, k))
}

/// One sample along an energy descent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnergySample {
    /// Interaction index at which the sample was taken.
    pub step: u64,
    /// Total energy after that interaction.
    pub total: u64,
    /// Number of self-loop bonds (maximum-energy bonds) present.
    pub self_loops: usize,
}

/// Records total-energy samples along a run, for descent plots (E4) and the
/// chemical example.
#[derive(Debug, Clone, Default)]
pub struct EnergyTrace {
    samples: Vec<EnergySample>,
}

impl EnergyTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        EnergyTrace {
            samples: Vec::new(),
        }
    }

    /// Records a sample from the current configuration.
    pub fn record(&mut self, step: u64, config: &CountConfig<BraKet>, k: u16) {
        let self_loops = config
            .iter()
            .filter(|(b, _)| b.is_self_loop())
            .map(|(_, c)| c)
            .sum();
        self.samples.push(EnergySample {
            step,
            total: total_energy(config, k),
            self_loops,
        });
    }

    /// The recorded samples, in order.
    pub fn samples(&self) -> &[EnergySample] {
        &self.samples
    }

    /// Whether the recorded total energy is non-increasing. Not guaranteed
    /// by the protocol (the Lyapunov function is lexicographic, not the
    /// sum); exposed so experiments can report how often the sum transiently
    /// rises.
    pub fn is_monotone_nonincreasing(&self) -> bool {
        self.samples.windows(2).all(|w| w[1].total <= w[0].total)
    }

    /// Largest single-step energy increase observed (0 if none).
    pub fn max_rise(&self) -> u64 {
        self.samples
            .windows(2)
            .map(|w| w[1].total.saturating_sub(w[0].total))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Color;

    fn bk(i: u16, j: u16) -> BraKet {
        BraKet::new(Color(i), Color(j))
    }

    #[test]
    fn initial_energy_is_n_times_k() {
        // All agents start as self-loops with weight k.
        let config: CountConfig<BraKet> = [bk(0, 0), bk(1, 1), bk(2, 2), bk(2, 2)]
            .into_iter()
            .collect();
        assert_eq!(total_energy(&config, 5), 4 * 5);
    }

    #[test]
    fn histogram_counts_by_weight() {
        let config: CountConfig<BraKet> = [bk(0, 1), bk(1, 0), bk(2, 2)].into_iter().collect();
        // k=3: w(0,1)=1, w(1,0)=2, w(2,2)=3.
        assert_eq!(energy_histogram(&config, 3), vec![1, 1, 1]);
    }

    #[test]
    fn terminal_energy_is_below_initial() {
        let inputs: Vec<Color> = [0, 0, 0, 1, 1, 2].map(Color).to_vec();
        let terminal = terminal_energy(&inputs, 3).unwrap();
        let initial = 6 * 3; // n self-loops of weight k
        assert!(
            terminal < initial,
            "terminal {terminal} >= initial {initial}"
        );
    }

    #[test]
    fn trace_records_and_detects_rises() {
        let mut trace = EnergyTrace::new();
        let high: CountConfig<BraKet> = [bk(0, 0), bk(1, 1)].into_iter().collect();
        let low: CountConfig<BraKet> = [bk(0, 1), bk(1, 0)].into_iter().collect();
        trace.record(0, &high, 2);
        trace.record(1, &low, 2);
        assert!(trace.is_monotone_nonincreasing());
        assert_eq!(trace.max_rise(), 0);
        trace.record(2, &high, 2);
        assert!(!trace.is_monotone_nonincreasing());
        assert_eq!(trace.max_rise(), 2);
        assert_eq!(trace.samples().len(), 3);
        assert_eq!(trace.samples()[0].self_loops, 2);
    }
}
