//! Bra-kets `⟨i|j⟩`, their weights, and the ket-exchange rule.
//!
//! The paper borrows quantum mechanics' bra-ket notation purely as an ordered
//! pair: for an agent storing `⟨i|j⟩`, `i` is its *bra* and `j` its *ket*.
//! Bras never move between agents (Lemma 3.3's proof relies on this); kets
//! are exchanged to greedily minimize weight.

use std::fmt;
use std::str::FromStr;

use crate::color::Color;
use crate::error::CirclesError;

/// An ordered pair `⟨bra|ket⟩` of colors.
///
/// # Example
///
/// ```
/// use circles_core::{weight, BraKet, Color};
///
/// let arc = BraKet::new(Color(1), Color(4));
/// assert_eq!(weight(5, arc), 3);          // (4 - 1) mod 5
/// assert_eq!(weight(5, BraKet::self_loop(Color(2))), 5); // self-loops weigh k
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BraKet {
    /// The bra `i` of `⟨i|j⟩`; fixed at initialization, never transferred.
    pub bra: Color,
    /// The ket `j` of `⟨i|j⟩`; exchanged between agents by the protocol.
    pub ket: Color,
}

impl BraKet {
    /// Creates `⟨bra|ket⟩`.
    pub fn new(bra: Color, ket: Color) -> Self {
        BraKet { bra, ket }
    }

    /// Creates the self-loop `⟨i|i⟩`.
    pub fn self_loop(color: Color) -> Self {
        BraKet {
            bra: color,
            ket: color,
        }
    }

    /// Whether this is a self-loop `⟨i|i⟩`.
    pub fn is_self_loop(&self) -> bool {
        self.bra == self.ket
    }
}

impl fmt::Display for BraKet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}|{}⟩", self.bra.0, self.ket.0)
    }
}

impl FromStr for BraKet {
    type Err = CirclesError;

    /// Parses the `Display` form `⟨i|j⟩` (count-level traces serialize
    /// states textually and parse them back on replay).
    fn from_str(s: &str) -> Result<Self, CirclesError> {
        let bad = |why: &str| CirclesError::StateParse(format!("bra-ket {s:?}: {why}"));
        let inner = s
            .strip_prefix('⟨')
            .and_then(|rest| rest.strip_suffix('⟩'))
            .ok_or_else(|| bad("missing angle brackets"))?;
        let (bra, ket) = inner.split_once('|').ok_or_else(|| bad("missing |"))?;
        let parse = |part: &str| {
            part.parse::<u16>()
                .map(Color)
                .map_err(|e| bad(&format!("bad color index {part:?}: {e}")))
        };
        Ok(BraKet {
            bra: parse(bra)?,
            ket: parse(ket)?,
        })
    }
}

/// The weight of a bra-ket (paper §2):
///
/// ```text
/// w(⟨i|j⟩) = k            if i = j
///            (j − i) mod k otherwise
/// ```
///
/// Weights lie in `[1, k]`; self-loops carry the maximum weight `k`, which is
/// what makes them the least stable arcs — any color strictly "inside" an arc
/// can insert itself, and any self-loop pair of distinct colors must split.
///
/// # Panics
///
/// Panics (in debug builds) if either color is `>= k`.
pub fn weight(k: u16, braket: BraKet) -> u32 {
    debug_assert!(
        braket.bra.0 < k && braket.ket.0 < k,
        "color out of range for k={k}"
    );
    if braket.bra == braket.ket {
        u32::from(k)
    } else {
        // Euclidean remainder of (ket - bra) mod k, computed without sign
        // issues: add k before reducing.
        let j = u32::from(braket.ket.0);
        let i = u32::from(braket.bra.0);
        let k32 = u32::from(k);
        (j + k32 - i) % k32
    }
}

/// Decides the ket-exchange rule of the transition function (paper §2, step
/// 1): two agents holding `x` and `y` exchange kets **iff doing so strictly
/// decreases the minimum** of their two weights.
///
/// Returns the post-exchange bra-kets `Some((x', y'))` when the exchange
/// fires, `None` otherwise.
pub fn would_exchange(k: u16, x: BraKet, y: BraKet) -> Option<(BraKet, BraKet)> {
    let x2 = BraKet::new(x.bra, y.ket);
    let y2 = BraKet::new(y.bra, x.ket);
    let old_min = weight(k, x).min(weight(k, y));
    let new_min = weight(k, x2).min(weight(k, y2));
    if new_min < old_min {
        Some((x2, y2))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bk(i: u16, j: u16) -> BraKet {
        BraKet::new(Color(i), Color(j))
    }

    #[test]
    fn weight_of_self_loop_is_k() {
        for k in 1..=8u16 {
            for i in 0..k {
                assert_eq!(weight(k, bk(i, i)), u32::from(k));
            }
        }
    }

    #[test]
    fn weight_is_cyclic_distance() {
        assert_eq!(weight(5, bk(1, 4)), 3);
        assert_eq!(weight(5, bk(4, 1)), 2); // wraps around
        assert_eq!(weight(10, bk(8, 3)), 5);
        assert_eq!(weight(2, bk(0, 1)), 1);
        assert_eq!(weight(2, bk(1, 0)), 1);
    }

    #[test]
    fn weights_lie_in_one_to_k() {
        for k in 1..=9u16 {
            for i in 0..k {
                for j in 0..k {
                    let w = weight(k, bk(i, j));
                    assert!(w >= 1 && w <= u32::from(k), "w({i},{j})={w} for k={k}");
                }
            }
        }
    }

    #[test]
    fn two_distinct_self_loops_always_exchange() {
        // ⟨x|x⟩ + ⟨y|y⟩ (x ≠ y) → ⟨x|y⟩ + ⟨y|x⟩; min drops from k to < k.
        for k in 2..=7u16 {
            for x in 0..k {
                for y in 0..k {
                    if x == y {
                        continue;
                    }
                    let swapped = would_exchange(k, bk(x, x), bk(y, y));
                    assert_eq!(swapped, Some((bk(x, y), bk(y, x))));
                }
            }
        }
    }

    #[test]
    fn identical_self_loops_do_not_exchange() {
        assert_eq!(would_exchange(4, bk(2, 2), bk(2, 2)), None);
    }

    #[test]
    fn color_inside_arc_inserts_itself() {
        // ⟨0|3⟩ (weight 3 in k=5) meets ⟨1|1⟩ (weight 5): exchanging gives
        // ⟨0|1⟩ (weight 1) and ⟨1|3⟩ (weight 2): min 3 → 1, fires.
        assert_eq!(
            would_exchange(5, bk(0, 3), bk(1, 1)),
            Some((bk(0, 1), bk(1, 3)))
        );
    }

    #[test]
    fn color_outside_arc_does_not_insert() {
        // ⟨0|1⟩ (weight 1, k=5) meets ⟨3|3⟩ (weight 5): exchange would give
        // ⟨0|3⟩ (weight 3) and ⟨3|1⟩ (weight 3): min 1 → 3, refused.
        assert_eq!(would_exchange(5, bk(0, 1), bk(3, 3)), None);
    }

    #[test]
    fn exchange_is_symmetric_in_arguments() {
        for k in 2..=5u16 {
            for a in 0..k {
                for b in 0..k {
                    for c in 0..k {
                        for d in 0..k {
                            let xy = would_exchange(k, bk(a, b), bk(c, d));
                            let yx = would_exchange(k, bk(c, d), bk(a, b));
                            match (xy, yx) {
                                (None, None) => {}
                                (Some((x2, y2)), Some((y3, x3))) => {
                                    assert_eq!((x2, y2), (x3, y3));
                                }
                                other => panic!("asymmetric exchange: {other:?}"),
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn exchange_agrees_with_bruteforce_min_comparison() {
        for k in 2..=6u16 {
            for a in 0..k {
                for b in 0..k {
                    for c in 0..k {
                        for d in 0..k {
                            let x = bk(a, b);
                            let y = bk(c, d);
                            let old_min = weight(k, x).min(weight(k, y));
                            let new_min = weight(k, bk(a, d)).min(weight(k, bk(c, b)));
                            let expect = new_min < old_min;
                            assert_eq!(would_exchange(k, x, y).is_some(), expect);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn display_uses_braket_notation() {
        assert_eq!(bk(1, 2).to_string(), "⟨1|2⟩");
    }

    #[test]
    fn k_equals_one_is_degenerate_but_total() {
        assert_eq!(weight(1, bk(0, 0)), 1);
        assert_eq!(would_exchange(1, bk(0, 0), bk(0, 0)), None);
    }
}
