//! The stabilization potential of Theorem 3.4.
//!
//! The paper defines, for a configuration `C` with sorted weights
//! `w₁ ≤ w₂ ≤ … ≤ w_n`,
//!
//! ```text
//! g(C) = ω^{n-1}·w₁ + ω^{n-2}·w₂ + … + ω·w_{n-1} + w_n
//! ```
//!
//! with `ω` the smallest infinite ordinal. Comparing such ordinal
//! polynomials is exactly *lexicographic comparison of the ascending-sorted
//! weight vectors* (most significant coefficient first = smallest weight
//! first), which is what this module implements. Every ket exchange strictly
//! decreases the potential, so no execution — fair or not — exchanges kets
//! infinitely often.

use std::cmp::Ordering;

use pp_protocol::CountConfig;

use crate::braket::{weight, BraKet};
use crate::protocol::CirclesState;

/// The ascending-sorted weight vector of a bra-ket multiset — the
/// coefficient list of the paper's ordinal potential `g(C)`, most
/// significant first.
pub fn weight_vector(config: &CountConfig<BraKet>, k: u16) -> Vec<u32> {
    let mut ws: Vec<u32> = Vec::with_capacity(config.n());
    for (b, c) in config.iter() {
        let w = weight(k, *b);
        for _ in 0..c {
            ws.push(w);
        }
    }
    ws.sort_unstable();
    ws
}

/// The weight vector of a full-state configuration (outs ignored — the
/// potential depends on bra-kets only).
pub fn weight_vector_of_states(config: &CountConfig<CirclesState>, k: u16) -> Vec<u32> {
    let mut ws: Vec<u32> = Vec::with_capacity(config.n());
    for (s, c) in config.iter() {
        let w = weight(k, s.braket);
        for _ in 0..c {
            ws.push(w);
        }
    }
    ws.sort_unstable();
    ws
}

/// Compares two configurations by potential: `Less` means `a` has strictly
/// smaller potential than `b` (is closer to stabilization).
///
/// # Panics
///
/// Panics when the two vectors have different lengths — potentials are only
/// comparable for the same population size.
pub fn compare_weight_vectors(a: &[u32], b: &[u32]) -> Ordering {
    assert_eq!(a.len(), b.len(), "potentials of different population sizes");
    a.cmp(b)
}

/// A running tracker asserting that every ket exchange strictly decreases
/// the potential (the executable form of Theorem 3.4's proof obligation).
///
/// Feed it the configuration after each interaction; it returns whether the
/// potential decreased, stayed equal, or — which would falsify the theorem —
/// increased while kets moved.
///
/// # Example
///
/// ```
/// use circles_core::potential::PotentialTracker;
/// use circles_core::{BraKet, Color};
/// use pp_protocol::CountConfig;
///
/// let initial: CountConfig<BraKet> =
///     [BraKet::self_loop(Color(0)), BraKet::self_loop(Color(1))].into_iter().collect();
/// let mut tracker = PotentialTracker::new(&initial, 2);
/// // After the exchange ⟨0|0⟩⟨1|1⟩ → ⟨0|1⟩⟨1|0⟩:
/// let after: CountConfig<BraKet> =
///     [BraKet::new(Color(0), Color(1)), BraKet::new(Color(1), Color(0))].into_iter().collect();
/// assert_eq!(tracker.observe(&after), std::cmp::Ordering::Less);
/// ```
#[derive(Debug, Clone)]
pub struct PotentialTracker {
    k: u16,
    current: Vec<u32>,
    /// Number of strict decreases observed (= number of ket exchanges).
    decreases: u64,
}

impl PotentialTracker {
    /// Starts tracking from `initial`.
    pub fn new(initial: &CountConfig<BraKet>, k: u16) -> Self {
        PotentialTracker {
            k,
            current: weight_vector(initial, k),
            decreases: 0,
        }
    }

    /// The current weight vector.
    pub fn current(&self) -> &[u32] {
        &self.current
    }

    /// How many strict decreases have been observed.
    pub fn decreases(&self) -> u64 {
        self.decreases
    }

    /// Observes the next configuration and returns how the potential moved.
    ///
    /// # Panics
    ///
    /// Panics if the population size changed.
    pub fn observe(&mut self, config: &CountConfig<BraKet>) -> Ordering {
        let next = weight_vector(config, self.k);
        let ord = compare_weight_vectors(&next, &self.current);
        if ord == Ordering::Less {
            self.decreases += 1;
        }
        self.current = next;
        ord
    }
}

/// An upper bound on the potential-descent chain length for population `n`
/// and `k` colors: the number of distinct ascending-sorted weight vectors,
/// i.e. multisets of size `n` over `[1, k]` — `C(n + k - 1, k - 1)`.
///
/// The *actual* number of exchanges is far smaller (experiment E4); this
/// bound only certifies finiteness with concrete numbers. Saturates at
/// `u128::MAX` for large parameters.
pub fn descent_chain_bound(n: usize, k: u16) -> u128 {
    // C(n + k - 1, k - 1) with saturation.
    let k = u128::from(k);
    let n = n as u128;
    let mut result: u128 = 1;
    for i in 0..(k - 1) {
        result = match result.checked_mul(n + k - 1 - i) {
            Some(v) => v / (i + 1),
            None => return u128::MAX,
        };
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::braket::would_exchange;
    use crate::color::Color;

    fn bk(i: u16, j: u16) -> BraKet {
        BraKet::new(Color(i), Color(j))
    }

    #[test]
    fn weight_vector_is_sorted_expansion() {
        let config: CountConfig<BraKet> = [bk(0, 1), bk(1, 1), bk(0, 1)].into_iter().collect();
        // k = 2: w(⟨0|1⟩) = 1 (twice), w(⟨1|1⟩) = 2.
        assert_eq!(weight_vector(&config, 2), vec![1, 1, 2]);
    }

    #[test]
    fn exchange_strictly_decreases_potential_exhaustively() {
        // For every pair of bra-kets over small k that exchanges, the sorted
        // two-element weight vector must strictly decrease lexicographically.
        for k in 2..=6u16 {
            for a in 0..k {
                for b in 0..k {
                    for c in 0..k {
                        for d in 0..k {
                            let x = bk(a, b);
                            let y = bk(c, d);
                            if let Some((x2, y2)) = would_exchange(k, x, y) {
                                let mut old = [weight(k, x), weight(k, y)];
                                let mut new = [weight(k, x2), weight(k, y2)];
                                old.sort_unstable();
                                new.sort_unstable();
                                assert!(
                                    new < old,
                                    "exchange did not decrease potential: {x} {y} k={k}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn tracker_counts_decreases() {
        let initial: CountConfig<BraKet> = [bk(0, 0), bk(1, 1), bk(2, 2)].into_iter().collect();
        let mut tracker = PotentialTracker::new(&initial, 3);
        let step1: CountConfig<BraKet> = [bk(0, 1), bk(1, 0), bk(2, 2)].into_iter().collect();
        assert_eq!(tracker.observe(&step1), Ordering::Less);
        assert_eq!(tracker.observe(&step1), Ordering::Equal);
        assert_eq!(tracker.decreases(), 1);
    }

    #[test]
    #[should_panic(expected = "different population sizes")]
    fn tracker_rejects_size_change() {
        let initial: CountConfig<BraKet> = [bk(0, 0)].into_iter().collect();
        let mut tracker = PotentialTracker::new(&initial, 2);
        let bigger: CountConfig<BraKet> = [bk(0, 0), bk(1, 1)].into_iter().collect();
        let _ = tracker.observe(&bigger);
    }

    #[test]
    fn chain_bound_small_values() {
        // n=2, k=2: multisets of size 2 over {1,2}: {1,1},{1,2},{2,2} = 3.
        assert_eq!(descent_chain_bound(2, 2), 3);
        // n=3, k=3: C(5,2) = 10.
        assert_eq!(descent_chain_bound(3, 3), 10);
        // k=1: single weight value, exactly one vector.
        assert_eq!(descent_chain_bound(10, 1), 1);
    }

    #[test]
    fn chain_bound_saturates() {
        assert_eq!(descent_chain_bound(usize::MAX / 2, 64), u128::MAX);
    }
}
