//! Ablation variants of the ket-exchange rule (experiment E10).
//!
//! The paper's rule — exchange iff the exchange *strictly decreases the
//! minimum* of the two weights — looks innocuous, but each of its
//! ingredients is load-bearing:
//!
//! - **strictness** rules out livelock (the potential argument needs strict
//!   descent);
//! - **the minimum** (rather than the sum) is what the Lemma 3.6 induction
//!   exploits: arcs of the innermost circles are locally optimal;
//! - **conditionality** (versus always swapping) is what makes terminal
//!   configurations exist at all.
//!
//! [`VariantCircles`] implements the protocol with a pluggable rule so the
//! model checker and the experiment harness can demonstrate how each variant
//! fails: livelocks (no silent configuration reachable on some schedule) or
//! wrong/foreign terminal configurations.

use std::fmt;

use pp_protocol::{EnumerableProtocol, Protocol};

use crate::braket::{weight, BraKet};
use crate::color::Color;
use crate::error::CirclesError;
use crate::protocol::{CirclesProtocol, CirclesState};

/// Which exchange rule a [`VariantCircles`] instance applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ExchangeRule {
    /// The paper's rule: exchange iff the minimum weight strictly decreases.
    StrictMinDecrease,
    /// Exchange iff the minimum weight does not increase. Breaks Theorem
    /// 3.4: states can swap forever (livelock under adversarial weakly fair
    /// schedules).
    NonStrictMinDecrease,
    /// Exchange iff the *sum* of the two weights strictly decreases. A
    /// plausible alternative "energy" that loses Lemma 3.6: foreign terminal
    /// configurations become reachable.
    SumDecrease,
    /// Always exchange kets. Never stabilizes (except in trivial
    /// configurations where the swap is a no-op).
    AlwaysSwap,
}

impl ExchangeRule {
    /// All rules, for sweeping in experiments.
    pub const ALL: [ExchangeRule; 4] = [
        ExchangeRule::StrictMinDecrease,
        ExchangeRule::NonStrictMinDecrease,
        ExchangeRule::SumDecrease,
        ExchangeRule::AlwaysSwap,
    ];

    /// Short identifier for tables.
    pub fn id(&self) -> &'static str {
        match self {
            ExchangeRule::StrictMinDecrease => "strict-min",
            ExchangeRule::NonStrictMinDecrease => "nonstrict-min",
            ExchangeRule::SumDecrease => "sum",
            ExchangeRule::AlwaysSwap => "always",
        }
    }

    /// Decides whether agents holding `x` and `y` exchange kets under this
    /// rule.
    pub fn fires(&self, k: u16, x: BraKet, y: BraKet) -> bool {
        let x2 = BraKet::new(x.bra, y.ket);
        let y2 = BraKet::new(y.bra, x.ket);
        let (wx, wy) = (weight(k, x), weight(k, y));
        let (wx2, wy2) = (weight(k, x2), weight(k, y2));
        match self {
            ExchangeRule::StrictMinDecrease => wx2.min(wy2) < wx.min(wy),
            ExchangeRule::NonStrictMinDecrease => wx2.min(wy2) <= wx.min(wy),
            ExchangeRule::SumDecrease => wx2 + wy2 < wx + wy,
            ExchangeRule::AlwaysSwap => true,
        }
    }
}

impl fmt::Display for ExchangeRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Circles with a pluggable exchange rule — the paper's protocol when the
/// rule is [`ExchangeRule::StrictMinDecrease`], an ablation otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VariantCircles {
    k: u16,
    rule: ExchangeRule,
}

impl VariantCircles {
    /// Creates the variant protocol.
    ///
    /// # Errors
    ///
    /// Returns [`CirclesError::ZeroColors`] when `k == 0`.
    pub fn new(k: u16, rule: ExchangeRule) -> Result<Self, CirclesError> {
        if k == 0 {
            return Err(CirclesError::ZeroColors);
        }
        Ok(VariantCircles { k, rule })
    }

    /// The number of colors.
    pub fn k(&self) -> u16 {
        self.k
    }

    /// The rule in force.
    pub fn rule(&self) -> ExchangeRule {
        self.rule
    }
}

impl Protocol for VariantCircles {
    type State = CirclesState;
    type Input = Color;
    type Output = Color;

    fn name(&self) -> &str {
        match self.rule {
            ExchangeRule::StrictMinDecrease => "circles[strict-min]",
            ExchangeRule::NonStrictMinDecrease => "circles[nonstrict-min]",
            ExchangeRule::SumDecrease => "circles[sum]",
            ExchangeRule::AlwaysSwap => "circles[always]",
        }
    }

    /// # Panics
    ///
    /// Panics when `input >= k`.
    fn input(&self, input: &Color) -> CirclesState {
        assert!(input.0 < self.k, "input color {input} out of range");
        CirclesState::initial(*input)
    }

    fn output(&self, state: &CirclesState) -> Color {
        state.out
    }

    fn transition(
        &self,
        initiator: &CirclesState,
        responder: &CirclesState,
    ) -> (CirclesState, CirclesState) {
        let mut a = *initiator;
        let mut b = *responder;
        if self.rule.fires(self.k, a.braket, b.braket) {
            std::mem::swap(&mut a.braket.ket, &mut b.braket.ket);
        }
        // Step 2 is shared with the paper's protocol. Under ablated rules
        // two distinct self-loops can coexist after step 1; resolve the
        // ambiguity deterministically in favor of the initiator, mirroring
        // the paper's (vacuous there) clause order.
        let loop_color = if a.braket.is_self_loop() {
            Some(a.braket.bra)
        } else if b.braket.is_self_loop() {
            Some(b.braket.bra)
        } else {
            None
        };
        if let Some(i) = loop_color {
            a.out = i;
            b.out = i;
        }
        (a, b)
    }

    fn is_symmetric(&self) -> bool {
        // Only the paper's rule is guaranteed symmetric including the out
        // tie-break; ablations may break symmetry via the initiator-first
        // self-loop clause.
        matches!(self.rule, ExchangeRule::StrictMinDecrease)
    }

    /// The color count `k`; the rule already distinguishes variants through
    /// [`name`](Protocol::name), which the store fingerprint also covers.
    fn fingerprint_param(&self) -> u64 {
        u64::from(self.k)
    }
}

impl EnumerableProtocol for VariantCircles {
    fn states(&self) -> Vec<CirclesState> {
        CirclesProtocol::new(self.k)
            .expect("k validated at construction")
            .states()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(bra: u16, ket: u16, out: u16) -> CirclesState {
        CirclesState {
            braket: BraKet::new(Color(bra), Color(ket)),
            out: Color(out),
        }
    }

    #[test]
    fn strict_variant_matches_paper_protocol() {
        let paper = CirclesProtocol::new(4).unwrap();
        let variant = VariantCircles::new(4, ExchangeRule::StrictMinDecrease).unwrap();
        for a in paper.states() {
            for b in paper.states() {
                assert_eq!(
                    paper.transition(&a, &b),
                    variant.transition(&a, &b),
                    "divergence at {a} {b}"
                );
            }
        }
    }

    #[test]
    fn always_swap_never_stabilizes_two_agents() {
        let p = VariantCircles::new(2, ExchangeRule::AlwaysSwap).unwrap();
        let a = state(0, 0, 0);
        let b = state(1, 1, 1);
        let (a1, b1) = p.transition(&a, &b);
        // Kets swapped unconditionally.
        assert_eq!(a1.braket, BraKet::new(Color(0), Color(1)));
        assert_eq!(b1.braket, BraKet::new(Color(1), Color(0)));
        // And swapping again returns to self-loops: a 2-cycle, no terminal.
        let (a2, b2) = p.transition(&a1, &b1);
        assert!(a2.braket.is_self_loop() && b2.braket.is_self_loop());
    }

    #[test]
    fn nonstrict_allows_neutral_swaps() {
        // The non-strict rule must (a) be implied by the strict rule and
        // (b) additionally fire on some state-changing, min-preserving swap
        // — the seed of its livelock.
        let k = 5u16;
        let mut found = false;
        for a in 0..k {
            for b in 0..k {
                for c in 0..k {
                    for d in 0..k {
                        let x = BraKet::new(Color(a), Color(b));
                        let y = BraKet::new(Color(c), Color(d));
                        let strict = ExchangeRule::StrictMinDecrease.fires(k, x, y);
                        let nonstrict = ExchangeRule::NonStrictMinDecrease.fires(k, x, y);
                        assert!(!strict || nonstrict, "strict implies nonstrict");
                        if nonstrict && !strict && b != d {
                            found = true;
                        }
                    }
                }
            }
        }
        assert!(found, "no state-changing neutral swap exists for k=5");
    }

    #[test]
    fn sum_rule_differs_from_min_rule() {
        // Find a pair where the two rules disagree, witnessing the ablation
        // is a genuinely different protocol.
        let k = 5u16;
        let mut disagree = false;
        for a in 0..k {
            for b in 0..k {
                for c in 0..k {
                    for d in 0..k {
                        let x = BraKet::new(Color(a), Color(b));
                        let y = BraKet::new(Color(c), Color(d));
                        if ExchangeRule::SumDecrease.fires(k, x, y)
                            != ExchangeRule::StrictMinDecrease.fires(k, x, y)
                        {
                            disagree = true;
                        }
                    }
                }
            }
        }
        assert!(disagree);
    }

    #[test]
    fn ids_are_distinct() {
        let ids: std::collections::HashSet<_> = ExchangeRule::ALL.iter().map(|r| r.id()).collect();
        assert_eq!(ids.len(), ExchangeRule::ALL.len());
    }

    #[test]
    fn constructor_validates() {
        assert!(VariantCircles::new(0, ExchangeRule::SumDecrease).is_err());
    }
}
