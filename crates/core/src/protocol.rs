//! The [`CirclesProtocol`]: the paper's §2 protocol as a
//! [`pp_protocol::Protocol`].

use std::fmt;
use std::str::FromStr;

use pp_protocol::{EnumerableProtocol, Protocol, StateQuotient};

use crate::braket::{would_exchange, BraKet};
use crate::color::Color;
use crate::error::CirclesError;
use crate::perm::CirclesColorQuotient;

/// The full per-agent state: a bra-ket plus the output register — a triple
/// `(i, j, o) ∈ [0, k-1]³`.
///
/// # Example
///
/// ```
/// use circles_core::{BraKet, CirclesState, Color};
///
/// let s = CirclesState::initial(Color(2));
/// assert_eq!(s.braket, BraKet::self_loop(Color(2)));
/// assert_eq!(s.out, Color(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CirclesState {
    /// The agent's bra-ket `⟨i|j⟩`.
    pub braket: BraKet,
    /// The color this agent currently outputs.
    pub out: Color,
}

impl CirclesState {
    /// The initial state for an agent with input color `i`: `⟨i|i⟩`,
    /// `out = i` (paper §2, Input).
    pub fn initial(color: Color) -> Self {
        CirclesState {
            braket: BraKet::self_loop(color),
            out: color,
        }
    }
}

impl fmt::Display for CirclesState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{}", self.braket, self.out)
    }
}

impl FromStr for CirclesState {
    type Err = CirclesError;

    /// Parses the `Display` form `⟨i|j⟩→c<out>` (count-level traces
    /// serialize states textually and parse them back on replay).
    fn from_str(s: &str) -> Result<Self, CirclesError> {
        let (braket, out) = s.split_once('→').ok_or_else(|| {
            CirclesError::StateParse(format!("state {s:?} lacks the → separator"))
        })?;
        Ok(CirclesState {
            braket: braket.parse()?,
            out: out.parse()?,
        })
    }
}

/// The Circles protocol for `k` colors — state complexity exactly `k³`.
///
/// See the [crate-level documentation](crate) for the transition rule and the
/// [crate example](crate#example) for an end-to-end run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CirclesProtocol {
    k: u16,
    name: &'static str,
    quotient: CirclesColorQuotient,
}

impl CirclesProtocol {
    /// Creates the protocol for `k` colors.
    ///
    /// # Errors
    ///
    /// Returns [`CirclesError::ZeroColors`] when `k == 0`.
    pub fn new(k: u16) -> Result<Self, CirclesError> {
        if k == 0 {
            return Err(CirclesError::ZeroColors);
        }
        Ok(CirclesProtocol {
            k,
            name: "circles",
            quotient: CirclesColorQuotient::new(k),
        })
    }

    /// The number of colors `k`.
    pub fn k(&self) -> u16 {
        self.k
    }

    /// Checks that `color < k`.
    ///
    /// # Errors
    ///
    /// Returns [`CirclesError::ColorOutOfRange`] otherwise.
    pub fn validate_color(&self, color: Color) -> Result<(), CirclesError> {
        if color.0 < self.k {
            Ok(())
        } else {
            Err(CirclesError::ColorOutOfRange { color, k: self.k })
        }
    }

    /// The joint transition on bare states, exposed for reuse by the
    /// unordered-setting extension (which embeds Circles over labels).
    pub fn transition_states(
        k: u16,
        a: CirclesState,
        b: CirclesState,
    ) -> (CirclesState, CirclesState) {
        let mut a = a;
        let mut b = b;
        // Step 1: exchange kets iff that strictly decreases the minimum
        // weight of the two bra-kets.
        if let Some((x2, y2)) = would_exchange(k, a.braket, b.braket) {
            a.braket = x2;
            b.braket = y2;
        }
        // Step 2: if either agent is ⟨i|i⟩, both set out := i. After step 1
        // at most one self-loop color can be present: two self-loops of
        // distinct colors always exchange into non-self-loops.
        let loop_color = if a.braket.is_self_loop() {
            Some(a.braket.bra)
        } else if b.braket.is_self_loop() {
            Some(b.braket.bra)
        } else {
            None
        };
        if let Some(i) = loop_color {
            a.out = i;
            b.out = i;
        }
        (a, b)
    }
}

impl Protocol for CirclesProtocol {
    type State = CirclesState;
    type Input = Color;
    type Output = Color;

    fn name(&self) -> &str {
        self.name
    }

    /// # Panics
    ///
    /// Panics when `input >= k`; use
    /// [`validate_color`](CirclesProtocol::validate_color) at the boundary.
    fn input(&self, input: &Color) -> CirclesState {
        assert!(
            input.0 < self.k,
            "input color {input} out of range for k={}",
            self.k
        );
        CirclesState::initial(*input)
    }

    fn output(&self, state: &CirclesState) -> Color {
        state.out
    }

    fn transition(
        &self,
        initiator: &CirclesState,
        responder: &CirclesState,
    ) -> (CirclesState, CirclesState) {
        Self::transition_states(self.k, *initiator, *responder)
    }

    fn is_symmetric(&self) -> bool {
        true
    }

    /// The rotation quotient `Z_k` (see
    /// [`CirclesColorQuotient`]): the cyclic weight function makes the
    /// transition equivariant under rotating all colors, so discovery
    /// classifies one canonical pair per rotation-and-swap orbit.
    fn color_quotient(&self) -> Option<&dyn StateQuotient<CirclesState>> {
        Some(&self.quotient)
    }

    /// The color count `k`, so persisted transition tables for one `k`
    /// never load for another.
    fn fingerprint_param(&self) -> u64 {
        u64::from(self.k)
    }
}

impl EnumerableProtocol for CirclesProtocol {
    /// All `k³` triples `(bra, ket, out)`.
    fn states(&self) -> Vec<CirclesState> {
        let k = self.k;
        let mut out = Vec::with_capacity(usize::from(k).pow(3));
        for bra in 0..k {
            for ket in 0..k {
                for o in 0..k {
                    out.push(CirclesState {
                        braket: BraKet::new(Color(bra), Color(ket)),
                        out: Color(o),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::braket::weight;

    fn state(bra: u16, ket: u16, out: u16) -> CirclesState {
        CirclesState {
            braket: BraKet::new(Color(bra), Color(ket)),
            out: Color(out),
        }
    }

    #[test]
    fn constructor_validates_k() {
        assert_eq!(
            CirclesProtocol::new(0).unwrap_err(),
            CirclesError::ZeroColors
        );
        assert!(CirclesProtocol::new(1).is_ok());
    }

    #[test]
    fn state_complexity_is_k_cubed() {
        for k in 1..=9u16 {
            let p = CirclesProtocol::new(k).unwrap();
            let states = p.states();
            assert_eq!(states.len(), usize::from(k).pow(3));
            // No duplicates.
            let set: std::collections::HashSet<_> = states.iter().collect();
            assert_eq!(set.len(), states.len());
        }
    }

    #[test]
    fn input_builds_self_loop() {
        let p = CirclesProtocol::new(4).unwrap();
        let s = p.input(&Color(3));
        assert_eq!(s, state(3, 3, 3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn input_panics_out_of_range() {
        let p = CirclesProtocol::new(2).unwrap();
        let _ = p.input(&Color(2));
    }

    #[test]
    fn state_display_round_trips_through_fromstr() {
        let state = CirclesState {
            braket: BraKet::new(Color(3), Color(11)),
            out: Color(7),
        };
        assert_eq!(state.to_string(), "⟨3|11⟩→c7");
        assert_eq!(state.to_string().parse::<CirclesState>().unwrap(), state);
        for k in [1u16, 4, 30] {
            let p = CirclesProtocol::new(k).unwrap();
            for s in p.states() {
                assert_eq!(s.to_string().parse::<CirclesState>().unwrap(), s);
            }
        }
        assert!("⟨3|11⟩".parse::<CirclesState>().is_err(), "missing output");
        assert!("3|11→c1".parse::<CirclesState>().is_err(), "bad braket");
        assert!("⟨3|11⟩→1".parse::<CirclesState>().is_err(), "bad color");
    }

    #[test]
    fn validate_color_bounds() {
        let p = CirclesProtocol::new(3).unwrap();
        assert!(p.validate_color(Color(2)).is_ok());
        assert_eq!(
            p.validate_color(Color(3)),
            Err(CirclesError::ColorOutOfRange {
                color: Color(3),
                k: 3
            })
        );
    }

    #[test]
    fn two_distinct_self_loops_break_and_keep_out_unset() {
        // ⟨0|0⟩ + ⟨2|2⟩ (k=3): exchange into ⟨0|2⟩, ⟨2|0⟩ — neither is a
        // self-loop afterwards, so outs are untouched by step 2.
        let p = CirclesProtocol::new(3).unwrap();
        let (a, b) = p.transition(&state(0, 0, 0), &state(2, 2, 2));
        assert_eq!(a, state(0, 2, 0));
        assert_eq!(b, state(2, 0, 2));
    }

    #[test]
    fn surviving_self_loop_broadcasts_out() {
        // ⟨1|1⟩ keeps its self-loop against ⟨0|2⟩ in k=3? Exchange would give
        // ⟨1|2⟩ (w=1) and ⟨0|1⟩ (w=1): old min is min(3, 2)=2, new min 1 —
        // fires. So pick a pair where no exchange happens and a self-loop
        // remains: ⟨0|1⟩ (w=1) + ⟨2|2⟩ (w=3): exchange → ⟨0|2⟩ (w=2), ⟨2|1⟩
        // (w=2): min would go 1 → 2: refused. The self-loop ⟨2|2⟩ sets both
        // outs to 2.
        let p = CirclesProtocol::new(3).unwrap();
        let (a, b) = p.transition(&state(0, 1, 0), &state(2, 2, 2));
        assert_eq!(a, state(0, 1, 2));
        assert_eq!(b, state(2, 2, 2));
    }

    #[test]
    fn out_rule_applies_after_exchange() {
        // ⟨0|2⟩ + ⟨2|2⟩ in k=3: weights 2 and 3. Exchange: ⟨0|2⟩↔⟨2|2⟩ kets:
        // ⟨0|2⟩, ⟨2|2⟩ — identical multiset, min unchanged: refused.
        // Try ⟨0|2⟩ + ⟨1|1⟩: weights 2, 3. Exchange → ⟨0|1⟩ (1), ⟨1|2⟩ (1):
        // fires, and now ⟨1|1⟩ is gone — no self-loop, outs untouched.
        let p = CirclesProtocol::new(3).unwrap();
        let (a, b) = p.transition(&state(0, 2, 0), &state(1, 1, 1));
        assert_eq!(a.braket, BraKet::new(Color(0), Color(1)));
        assert_eq!(b.braket, BraKet::new(Color(1), Color(2)));
        assert_eq!(a.out, Color(0));
        assert_eq!(b.out, Color(1));
    }

    #[test]
    fn transition_is_symmetric() {
        let p = CirclesProtocol::new(4).unwrap();
        let states = p.states();
        for a in states.iter().step_by(7) {
            for b in states.iter().step_by(5) {
                let (x, y) = p.transition(a, b);
                let (y2, x2) = p.transition(b, a);
                assert_eq!((x, y), (x2, y2), "asymmetric at {a} {b}");
            }
        }
    }

    #[test]
    fn no_transition_creates_two_distinct_self_loops() {
        // Paper subtlety: after step 1 at most one self-loop color exists,
        // otherwise "set out to i" would be ambiguous. Verify exhaustively
        // for small k.
        for k in 1..=5u16 {
            let p = CirclesProtocol::new(k).unwrap();
            for a in p.states() {
                for b in p.states() {
                    let (x, y) = p.transition(&a, &b);
                    if x.braket.is_self_loop() && y.braket.is_self_loop() {
                        assert_eq!(
                            x.braket.bra, y.braket.bra,
                            "two distinct self-loops after transition({a}, {b})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exchange_never_touches_bras() {
        let p = CirclesProtocol::new(5).unwrap();
        for a in p.states().iter().step_by(3) {
            for b in p.states().iter().step_by(4) {
                let (x, y) = p.transition(a, b);
                assert_eq!(x.braket.bra, a.braket.bra);
                assert_eq!(y.braket.bra, b.braket.bra);
            }
        }
    }

    #[test]
    fn exchange_decreases_min_weight() {
        let p = CirclesProtocol::new(6).unwrap();
        let k = 6;
        for a in p.states().iter().step_by(5) {
            for b in p.states().iter().step_by(7) {
                let (x, y) = p.transition(a, b);
                let exchanged = x.braket.ket != a.braket.ket;
                if exchanged {
                    let old = weight(k, a.braket).min(weight(k, b.braket));
                    let new = weight(k, x.braket).min(weight(k, y.braket));
                    assert!(new < old);
                }
            }
        }
    }
}
