//! Ordinal arithmetic below `ω^ω`: the literal proof object of Theorem 3.4.
//!
//! The paper proves stabilization by exhibiting the ordinal
//!
//! ```text
//! g(C) = ω^{n-1}·w₁ + ω^{n-2}·w₂ + … + ω·w_{n-1} + w_n
//! ```
//!
//! (`w₁ ≤ … ≤ w_n` the ascending-sorted bra-ket weights) and arguing that it
//! strictly decreases at every ket exchange; since ordinals admit no
//! infinite descending chain, exchanges stop. [`crate::potential`] works
//! with the equivalent lexicographic order on weight vectors; this module
//! implements the ordinals themselves — Cantor normal forms below `ω^ω` —
//! so that the equivalence is *checked* rather than asserted
//! ([`paper_potential`] + the bridge tests below), and so the descent chain
//! can be displayed the way the paper writes it.

use std::cmp::Ordering;
use std::fmt;

use pp_protocol::CountConfig;

use crate::braket::BraKet;
use crate::potential::{weight_vector, weight_vector_of_states};
use crate::protocol::CirclesState;

/// An ordinal strictly below `ω^ω`, in Cantor normal form:
/// `ω^{d₁}·c₁ + ω^{d₂}·c₂ + …` with `d₁ > d₂ > …` and every `cᵢ ≥ 1`.
///
/// The natural order on these ordinals is implemented as [`Ord`].
///
/// # Example
///
/// ```
/// use circles_core::ordinal::OmegaPolynomial;
///
/// // ω²·1 + 3  >  ω·100 + 7: the leading exponent dominates.
/// let a = OmegaPolynomial::from_terms([(2, 1), (0, 3)])?;
/// let b = OmegaPolynomial::from_terms([(1, 100), (0, 7)])?;
/// assert!(a > b);
/// assert_eq!(a.to_string(), "ω^2·1 + 3");
/// # Ok::<(), circles_core::CirclesError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct OmegaPolynomial {
    /// `(degree, coefficient)` pairs, strictly decreasing degrees, all
    /// coefficients positive.
    terms: Vec<(u64, u64)>,
}

impl OmegaPolynomial {
    /// The ordinal `0`.
    pub fn zero() -> Self {
        OmegaPolynomial { terms: Vec::new() }
    }

    /// Builds an ordinal from `(degree, coefficient)` terms.
    ///
    /// Terms may come in any order; zero coefficients are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`CirclesError::DuplicateOrdinalDegree`] when two terms share
    /// a degree (the Cantor normal form would be ambiguous).
    ///
    /// [`CirclesError::DuplicateOrdinalDegree`]: crate::CirclesError::DuplicateOrdinalDegree
    pub fn from_terms(
        terms: impl IntoIterator<Item = (u64, u64)>,
    ) -> Result<Self, crate::CirclesError> {
        let mut collected: Vec<(u64, u64)> = terms.into_iter().filter(|&(_, c)| c > 0).collect();
        collected.sort_unstable_by_key(|&(d, _)| std::cmp::Reverse(d));
        for w in collected.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(crate::CirclesError::DuplicateOrdinalDegree { degree: w[0].0 });
            }
        }
        Ok(OmegaPolynomial { terms: collected })
    }

    /// The finite ordinal `value`.
    pub fn finite(value: u64) -> Self {
        if value == 0 {
            Self::zero()
        } else {
            OmegaPolynomial {
                terms: vec![(0, value)],
            }
        }
    }

    /// Builds `ω^{n-1}·w₁ + … + ω⁰·w_n` from an ascending weight vector —
    /// the paper's `g(C)` given its coefficient list.
    ///
    /// # Panics
    ///
    /// Panics when `weights` is not ascending: the construction is only the
    /// paper's potential for sorted weights.
    pub fn from_ascending_weights(weights: &[u32]) -> Self {
        assert!(
            weights.windows(2).all(|w| w[0] <= w[1]),
            "weight vector must be ascending"
        );
        let n = weights.len() as u64;
        let terms = weights
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > 0)
            .map(|(i, &w)| (n - 1 - i as u64, u64::from(w)))
            .collect();
        OmegaPolynomial { terms }
    }

    /// Whether this is the ordinal `0`.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Whether the ordinal is finite (below `ω`).
    pub fn is_finite(&self) -> bool {
        self.terms.iter().all(|&(d, _)| d == 0)
    }

    /// The degree of the leading term (`None` for `0`).
    pub fn degree(&self) -> Option<u64> {
        self.terms.first().map(|&(d, _)| d)
    }

    /// The `(degree, coefficient)` terms, highest degree first.
    pub fn terms(&self) -> &[(u64, u64)] {
        &self.terms
    }

    /// The natural (Hessenberg) sum: coefficients added degree-wise. Unlike
    /// ordinary ordinal addition it is commutative, and it is strictly
    /// monotone in both arguments — the form of addition under which
    /// potentials of disjoint sub-populations compose.
    pub fn natural_sum(&self, other: &Self) -> Self {
        let mut terms = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() || j < other.terms.len() {
            match (self.terms.get(i), other.terms.get(j)) {
                (Some(&(da, ca)), Some(&(db, cb))) => match da.cmp(&db) {
                    Ordering::Greater => {
                        terms.push((da, ca));
                        i += 1;
                    }
                    Ordering::Less => {
                        terms.push((db, cb));
                        j += 1;
                    }
                    Ordering::Equal => {
                        terms.push((da, ca + cb));
                        i += 1;
                        j += 1;
                    }
                },
                (Some(&t), None) => {
                    terms.push(t);
                    i += 1;
                }
                (None, Some(&t)) => {
                    terms.push(t);
                    j += 1;
                }
                (None, None) => unreachable!("loop guard"),
            }
        }
        OmegaPolynomial { terms }
    }
}

impl Ord for OmegaPolynomial {
    /// The ordinal order: compare Cantor normal forms term by term, highest
    /// degree first; a longer remaining tail is larger.
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.terms.iter().zip(&other.terms) {
            match a.0.cmp(&b.0) {
                Ordering::Equal => {}
                unequal => return unequal, // higher leading degree wins
            }
            match a.1.cmp(&b.1) {
                Ordering::Equal => {}
                unequal => return unequal, // then the larger coefficient
            }
        }
        self.terms.len().cmp(&other.terms.len())
    }
}

impl PartialOrd for OmegaPolynomial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for OmegaPolynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (idx, &(d, c)) in self.terms.iter().enumerate() {
            if idx > 0 {
                write!(f, " + ")?;
            }
            match d {
                0 => write!(f, "{c}")?,
                1 => write!(f, "ω·{c}")?,
                _ => write!(f, "ω^{d}·{c}")?,
            }
        }
        Ok(())
    }
}

/// The paper's `g(C)` for a bra-ket multiset: `ω^{n-1}·w₁ + … + w_n` over
/// the ascending-sorted weights.
///
/// # Example
///
/// ```
/// use circles_core::ordinal::paper_potential;
/// use circles_core::{BraKet, Color};
/// use pp_protocol::CountConfig;
///
/// // Two self-loops, k = 2: weights (2, 2) → g = ω·2 + 2.
/// let config: CountConfig<BraKet> =
///     [BraKet::self_loop(Color(0)), BraKet::self_loop(Color(1))].into_iter().collect();
/// assert_eq!(paper_potential(&config, 2).to_string(), "ω·2 + 2");
/// ```
pub fn paper_potential(config: &CountConfig<BraKet>, k: u16) -> OmegaPolynomial {
    OmegaPolynomial::from_ascending_weights(&weight_vector(config, k))
}

/// [`paper_potential`] for full-state configurations (outs ignored; the
/// potential reads bra-kets only).
pub fn paper_potential_of_states(config: &CountConfig<CirclesState>, k: u16) -> OmegaPolynomial {
    OmegaPolynomial::from_ascending_weights(&weight_vector_of_states(config, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::braket::would_exchange;
    use crate::color::Color;
    use crate::potential::compare_weight_vectors;

    fn bk(i: u16, j: u16) -> BraKet {
        BraKet::new(Color(i), Color(j))
    }

    #[test]
    fn zero_and_finite_ordinals() {
        assert!(OmegaPolynomial::zero().is_zero());
        assert_eq!(OmegaPolynomial::finite(0), OmegaPolynomial::zero());
        let five = OmegaPolynomial::finite(5);
        assert!(five.is_finite());
        assert!(!five.is_zero());
        assert_eq!(five.to_string(), "5");
        assert!(five > OmegaPolynomial::finite(4));
    }

    #[test]
    fn from_terms_normalizes_and_validates() {
        let p = OmegaPolynomial::from_terms([(0, 3), (2, 1), (1, 0)]).unwrap();
        assert_eq!(p.terms(), &[(2, 1), (0, 3)]);
        assert_eq!(
            OmegaPolynomial::from_terms([(1, 2), (1, 3)]).unwrap_err(),
            crate::CirclesError::DuplicateOrdinalDegree { degree: 1 }
        );
    }

    #[test]
    fn leading_degree_dominates_any_tail() {
        // ω² > ω·c + c' for every finite c, c'.
        let omega_sq = OmegaPolynomial::from_terms([(2, 1)]).unwrap();
        let big_tail = OmegaPolynomial::from_terms([(1, u64::MAX), (0, u64::MAX)]).unwrap();
        assert!(omega_sq > big_tail);
    }

    #[test]
    fn display_formats_like_the_paper() {
        let g = OmegaPolynomial::from_terms([(3, 2), (1, 1), (0, 4)]).unwrap();
        assert_eq!(g.to_string(), "ω^3·2 + ω·1 + 4");
        assert_eq!(OmegaPolynomial::zero().to_string(), "0");
    }

    #[test]
    fn ascending_weights_build_the_paper_potential() {
        // Weights (1, 1, 3), n = 3: g = ω²·1 + ω·1 + 3.
        let g = OmegaPolynomial::from_ascending_weights(&[1, 1, 3]);
        assert_eq!(g.terms(), &[(2, 1), (1, 1), (0, 3)]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_weights_panic() {
        let _ = OmegaPolynomial::from_ascending_weights(&[2, 1]);
    }

    /// The bridge lemma: ordinal comparison of `g` equals lexicographic
    /// comparison of ascending weight vectors — checked exhaustively over
    /// all pairs of weight vectors of length ≤ 4 with entries in [1, 4].
    #[test]
    fn ordinal_order_equals_lexicographic_order() {
        fn vectors(len: usize, max: u32) -> Vec<Vec<u32>> {
            if len == 0 {
                return vec![Vec::new()];
            }
            let mut out = Vec::new();
            for rest in vectors(len - 1, max) {
                for w in 1..=max {
                    let mut v = rest.clone();
                    v.push(w);
                    out.push(v);
                }
            }
            out
        }
        for n in 1..=4usize {
            let mut all = vectors(n, 4);
            for v in &mut all {
                v.sort_unstable();
            }
            all.sort();
            all.dedup();
            for a in &all {
                for b in &all {
                    let lex = compare_weight_vectors(a, b);
                    let ord = OmegaPolynomial::from_ascending_weights(a)
                        .cmp(&OmegaPolynomial::from_ascending_weights(b));
                    assert_eq!(lex, ord, "orders disagree on {a:?} vs {b:?}");
                }
            }
        }
    }

    /// Theorem 3.4 through the ordinal lens: every ket exchange strictly
    /// decreases `g`, exhaustively over bra-ket pairs for small `k` embedded
    /// in a 3-agent configuration with a spectator.
    #[test]
    fn exchange_strictly_decreases_g() {
        for k in 2..=5u16 {
            let spectator = bk(0, if k > 1 { 1 } else { 0 });
            for a in 0..k {
                for b in 0..k {
                    for c in 0..k {
                        for d in 0..k {
                            let x = bk(a, b);
                            let y = bk(c, d);
                            if let Some((x2, y2)) = would_exchange(k, x, y) {
                                let before: CountConfig<BraKet> =
                                    [x, y, spectator].into_iter().collect();
                                let after: CountConfig<BraKet> =
                                    [x2, y2, spectator].into_iter().collect();
                                assert!(
                                    paper_potential(&after, k) < paper_potential(&before, k),
                                    "g did not decrease for {x} {y} (k={k})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn natural_sum_is_commutative_and_monotone() {
        let a = OmegaPolynomial::from_terms([(2, 1), (0, 3)]).unwrap();
        let b = OmegaPolynomial::from_terms([(2, 2), (1, 5)]).unwrap();
        let c = OmegaPolynomial::from_terms([(1, 1)]).unwrap();
        assert_eq!(a.natural_sum(&b), b.natural_sum(&a));
        assert_eq!(
            a.natural_sum(&b).terms(),
            &[(2, 3), (1, 5), (0, 3)],
            "degree-wise coefficient sum"
        );
        // Strict monotonicity: a < b ⇒ a ⊕ c < b ⊕ c.
        assert!(a < b);
        assert!(a.natural_sum(&c) < b.natural_sum(&c));
        // Identity.
        assert_eq!(a.natural_sum(&OmegaPolynomial::zero()), a);
    }

    #[test]
    fn potential_of_disjoint_populations_composes_via_natural_sum() {
        // Weight multisets compose by multiset union; g composes by ⊕ *of
        // the degree-shifted parts* only when sizes align — here we check
        // the simplest sound form: equal-size halves with identical weight
        // multisets double every coefficient.
        let half: CountConfig<BraKet> = [bk(0, 1), bk(1, 0)].into_iter().collect();
        let whole: CountConfig<BraKet> = [bk(0, 1), bk(1, 0), bk(0, 1), bk(1, 0)]
            .into_iter()
            .collect();
        let g_half = paper_potential(&half, 2);
        let g_whole = paper_potential(&whole, 2);
        // Same ascending weight pattern (all ones) at doubled length.
        assert_eq!(g_half.terms(), &[(1, 1), (0, 1)]);
        assert_eq!(g_whole.terms(), &[(3, 1), (2, 1), (1, 1), (0, 1)]);
    }

    #[test]
    fn full_state_potential_ignores_outs() {
        let s1 = CirclesState {
            braket: bk(0, 1),
            out: Color(0),
        };
        let s2 = CirclesState {
            braket: bk(0, 1),
            out: Color(1),
        };
        let c1: CountConfig<CirclesState> = [s1].into_iter().collect();
        let c2: CountConfig<CirclesState> = [s2].into_iter().collect();
        assert_eq!(
            paper_potential_of_states(&c1, 2),
            paper_potential_of_states(&c2, 2)
        );
    }
}
