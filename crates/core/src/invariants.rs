//! The global bra-ket invariant (paper Lemma 3.3) and related checks.
//!
//! Lemma 3.3: in every configuration and for every color `i`, the number of
//! bras `⟨i|` equals the number of kets `|i⟩`. The proof is structural —
//! agents start as self-loops and only ever *exchange* kets — and this module
//! makes the invariant checkable on any live configuration, which is how the
//! property tests and the fault-injection experiments detect corruption.

use pp_protocol::{CountConfig, Population};

use crate::braket::BraKet;
use crate::color::Color;
use crate::protocol::CirclesState;

/// Per-color tallies of bras and kets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BraKetTally {
    /// `bras[c]` = number of agents whose bra is color `c`.
    pub bras: Vec<usize>,
    /// `kets[c]` = number of agents whose ket is color `c`.
    pub kets: Vec<usize>,
}

impl BraKetTally {
    /// Tallies a bra-ket multiset over `k` colors.
    pub fn of(config: &CountConfig<BraKet>, k: u16) -> Self {
        let mut bras = vec![0usize; usize::from(k)];
        let mut kets = vec![0usize; usize::from(k)];
        for (b, c) in config.iter() {
            bras[b.bra.index()] += c;
            kets[b.ket.index()] += c;
        }
        BraKetTally { bras, kets }
    }

    /// Whether the Lemma 3.3 invariant holds: per color, #bras == #kets.
    pub fn is_conserved(&self) -> bool {
        self.bras == self.kets
    }

    /// Colors violating conservation, as `(color, #bras, #kets)`.
    pub fn violations(&self) -> Vec<(Color, usize, usize)> {
        self.bras
            .iter()
            .zip(&self.kets)
            .enumerate()
            .filter(|(_, (b, k))| b != k)
            .map(|(i, (b, k))| (Color(i as u16), *b, *k))
            .collect()
    }
}

/// Checks Lemma 3.3 on a bra-ket multiset.
pub fn conservation_holds(config: &CountConfig<BraKet>, k: u16) -> bool {
    BraKetTally::of(config, k).is_conserved()
}

/// Checks Lemma 3.3 on an indexed population of full states.
pub fn population_conserves(population: &Population<CirclesState>, k: u16) -> bool {
    let config: CountConfig<BraKet> = population.iter().map(|s| s.braket).collect();
    conservation_holds(&config, k)
}

/// Checks that the multiset of *bras* matches the input color multiset —
/// bras never move, so this holds in every reachable configuration and pins
/// the greedy decomposition of Lemma 3.6 to the inputs.
pub fn bras_match_inputs(population: &Population<CirclesState>, inputs: &[Color], k: u16) -> bool {
    let mut expected = vec![0usize; usize::from(k)];
    for c in inputs {
        expected[c.index()] += 1;
    }
    let mut actual = vec![0usize; usize::from(k)];
    for s in population.iter() {
        actual[s.braket.bra.index()] += 1;
    }
    expected == actual
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bk(i: u16, j: u16) -> BraKet {
        BraKet::new(Color(i), Color(j))
    }

    #[test]
    fn initial_configuration_conserves() {
        let config: CountConfig<BraKet> = [bk(0, 0), bk(1, 1), bk(1, 1)].into_iter().collect();
        assert!(conservation_holds(&config, 2));
    }

    #[test]
    fn swapped_kets_conserve() {
        let config: CountConfig<BraKet> = [bk(0, 1), bk(1, 0)].into_iter().collect();
        assert!(conservation_holds(&config, 2));
    }

    #[test]
    fn corruption_is_detected_with_details() {
        // Two agents both holding ket |1⟩ but only one bra ⟨1| exists.
        let config: CountConfig<BraKet> = [bk(0, 1), bk(1, 1)].into_iter().collect();
        let tally = BraKetTally::of(&config, 2);
        assert!(!tally.is_conserved());
        assert_eq!(tally.violations(), vec![(Color(0), 1, 0), (Color(1), 1, 2)]);
    }

    #[test]
    fn population_check_projects_out_outs() {
        let population: Population<CirclesState> = [
            CirclesState {
                braket: bk(0, 1),
                out: Color(0),
            },
            CirclesState {
                braket: bk(1, 0),
                out: Color(1),
            },
        ]
        .into_iter()
        .collect();
        assert!(population_conserves(&population, 2));
    }

    #[test]
    fn bras_match_inputs_detects_drift() {
        let inputs = vec![Color(0), Color(1)];
        let good: Population<CirclesState> = [
            CirclesState {
                braket: bk(0, 1),
                out: Color(0),
            },
            CirclesState {
                braket: bk(1, 0),
                out: Color(0),
            },
        ]
        .into_iter()
        .collect();
        assert!(bras_match_inputs(&good, &inputs, 2));

        let bad: Population<CirclesState> = [
            CirclesState {
                braket: bk(0, 1),
                out: Color(0),
            },
            CirclesState {
                braket: bk(0, 0),
                out: Color(0),
            },
        ]
        .into_iter()
        .collect();
        assert!(!bras_match_inputs(&bad, &inputs, 2));
    }
}
