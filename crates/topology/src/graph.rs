//! Interaction graphs: which pairs of agents are allowed to meet.
//!
//! The population-protocol model of the Circles paper is the *complete*
//! interaction graph — the weakly fair scheduler ranges over **all** pairs
//! (Definition 1.2). Restricting interactions to the edges of a graph is a
//! standard model variation; Circles' correctness proof does *not* carry
//! over (its exchange argument summons specific pairs at will), which makes
//! topology restriction a sharp probe of how load-bearing the completeness
//! assumption is. Experiment E15 measures exactly that.

use std::collections::VecDeque;
use std::fmt;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::RngExt;

use crate::error::TopologyError;

/// An undirected interaction graph over agents `0..n`.
///
/// Stores the edge list and per-node adjacency. Self-loops and parallel
/// edges are rejected at construction; the graph may be disconnected (query
/// [`is_connected`](InteractionGraph::is_connected)), but the provided
/// generators only return connected graphs.
///
/// # Example
///
/// ```
/// use pp_topology::InteractionGraph;
///
/// let ring = InteractionGraph::cycle(5)?;
/// assert_eq!(ring.n(), 5);
/// assert_eq!(ring.edge_count(), 5);
/// assert!(ring.is_connected());
/// assert_eq!(ring.degree(0), 2);
/// # Ok::<(), pp_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InteractionGraph {
    n: usize,
    edges: Vec<(usize, usize)>,
    neighbors: Vec<Vec<usize>>,
    name: String,
}

impl InteractionGraph {
    /// Builds a graph from an explicit edge list over `n` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] when `n < 2`, an endpoint is out of range,
    /// an edge is a self-loop, or an edge repeats (in either orientation).
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
        name: impl Into<String>,
    ) -> Result<Self, TopologyError> {
        if n < 2 {
            return Err(TopologyError::TooFewAgents { n });
        }
        let mut seen = std::collections::HashSet::new();
        let mut normalized = Vec::new();
        let mut neighbors = vec![Vec::new(); n];
        for (u, v) in edges {
            if u >= n || v >= n {
                return Err(TopologyError::EndpointOutOfRange {
                    endpoint: u.max(v),
                    n,
                });
            }
            if u == v {
                return Err(TopologyError::SelfLoop { node: u });
            }
            let key = (u.min(v), u.max(v));
            if !seen.insert(key) {
                return Err(TopologyError::DuplicateEdge { u: key.0, v: key.1 });
            }
            normalized.push(key);
            neighbors[u].push(v);
            neighbors[v].push(u);
        }
        if normalized.is_empty() {
            return Err(TopologyError::NoEdges);
        }
        for list in &mut neighbors {
            list.sort_unstable();
        }
        Ok(InteractionGraph {
            n,
            edges: normalized,
            neighbors,
            name: name.into(),
        })
    }

    /// The complete graph `K_n` — the paper's own model.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::TooFewAgents`] when `n < 2`.
    pub fn complete(n: usize) -> Result<Self, TopologyError> {
        let edges = (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v)));
        Self::from_edges(n, edges, format!("complete({n})"))
    }

    /// The cycle `C_n` (ring).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::TooFewAgents`] when `n < 3` (a 2-cycle would
    /// duplicate its single edge).
    pub fn cycle(n: usize) -> Result<Self, TopologyError> {
        if n < 3 {
            return Err(TopologyError::TooFewAgents { n });
        }
        let edges = (0..n).map(|u| (u, (u + 1) % n));
        Self::from_edges(n, edges, format!("cycle({n})"))
    }

    /// The path `P_n` (line).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::TooFewAgents`] when `n < 2`.
    pub fn path(n: usize) -> Result<Self, TopologyError> {
        let edges = (0..n.saturating_sub(1)).map(|u| (u, u + 1));
        Self::from_edges(n, edges, format!("path({n})"))
    }

    /// The star `S_n`: node 0 is the hub.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::TooFewAgents`] when `n < 2`.
    pub fn star(n: usize) -> Result<Self, TopologyError> {
        let edges = (1..n).map(|v| (0, v));
        Self::from_edges(n, edges, format!("star({n})"))
    }

    /// The `rows × cols` grid (4-neighborhood).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::TooFewAgents`] when the grid has fewer than
    /// two nodes.
    pub fn grid(rows: usize, cols: usize) -> Result<Self, TopologyError> {
        let n = rows * cols;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let u = r * cols + c;
                if c + 1 < cols {
                    edges.push((u, u + 1));
                }
                if r + 1 < rows {
                    edges.push((u, u + cols));
                }
            }
        }
        Self::from_edges(n, edges, format!("grid({rows}x{cols})"))
    }

    /// A uniformly random connected `d`-regular graph via the configuration
    /// (pairing) model with rejection, retrying until simple and connected.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::BadDegree`] when `n·d` is odd or `d ≥ n` or
    /// `d == 0`, and [`TopologyError::GenerationFailed`] when 1000 pairing
    /// attempts all produce a non-simple or disconnected graph (practically
    /// unreachable for `d ≥ 3`).
    pub fn random_regular(n: usize, d: usize, rng: &mut StdRng) -> Result<Self, TopologyError> {
        if n < 2 {
            return Err(TopologyError::TooFewAgents { n });
        }
        if d == 0 || d >= n || !(n * d).is_multiple_of(2) {
            return Err(TopologyError::BadDegree { n, d });
        }
        'attempt: for _ in 0..1000 {
            let mut stubs: Vec<usize> = (0..n).flat_map(|u| std::iter::repeat_n(u, d)).collect();
            stubs.shuffle(rng);
            let mut seen = std::collections::HashSet::new();
            let mut edges = Vec::with_capacity(n * d / 2);
            for pair in stubs.chunks_exact(2) {
                let (u, v) = (pair[0], pair[1]);
                if u == v {
                    continue 'attempt;
                }
                let key = (u.min(v), u.max(v));
                if !seen.insert(key) {
                    continue 'attempt;
                }
                edges.push(key);
            }
            let graph = Self::from_edges(n, edges, format!("regular({n},d={d})"))?;
            if graph.is_connected() {
                return Ok(graph);
            }
        }
        Err(TopologyError::GenerationFailed {
            what: "random regular graph",
        })
    }

    /// A connected Erdős–Rényi graph `G(n, p)`, retrying until connected.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::BadProbability`] for `p` outside `(0, 1]`
    /// and [`TopologyError::GenerationFailed`] when 1000 draws are all
    /// disconnected (choose `p ≳ ln n / n` to avoid this).
    pub fn erdos_renyi(n: usize, p: f64, rng: &mut StdRng) -> Result<Self, TopologyError> {
        if n < 2 {
            return Err(TopologyError::TooFewAgents { n });
        }
        if !(p > 0.0 && p <= 1.0) {
            return Err(TopologyError::BadProbability { p });
        }
        for _ in 0..1000 {
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.random::<f64>() < p {
                        edges.push((u, v));
                    }
                }
            }
            if edges.is_empty() {
                continue;
            }
            let graph = Self::from_edges(n, edges, format!("gnp({n},p={p})"))?;
            if graph.is_connected() {
                return Ok(graph);
            }
        }
        Err(TopologyError::GenerationFailed {
            what: "Erdős–Rényi graph",
        })
    }

    /// Number of agents.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The undirected edges, normalized as `(min, max)`.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Neighbors of `node`, sorted.
    pub fn neighbors(&self, node: usize) -> &[usize] {
        &self.neighbors[node]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: usize) -> usize {
        self.neighbors[node].len()
    }

    /// Human-readable generator name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether `u` and `v` may interact.
    pub fn allows(&self, u: usize, v: usize) -> bool {
        u != v && self.neighbors[u].binary_search(&v).is_ok()
    }

    /// Whether every node can reach every other.
    pub fn is_connected(&self) -> bool {
        let mut seen = vec![false; self.n];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut visited = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &self.neighbors[u] {
                if !seen[v] {
                    seen[v] = true;
                    visited += 1;
                    queue.push_back(v);
                }
            }
        }
        visited == self.n
    }

    /// Whether this graph is complete (the paper's model).
    pub fn is_complete(&self) -> bool {
        self.edge_count() == self.n * (self.n - 1) / 2
    }

    /// Graph diameter (longest shortest path), by BFS from every node.
    ///
    /// Returns `None` for disconnected graphs. `O(n·m)` — intended for the
    /// modest instances of experiment E15.
    pub fn diameter(&self) -> Option<usize> {
        let mut best = 0;
        for start in 0..self.n {
            let mut dist = vec![usize::MAX; self.n];
            dist[start] = 0;
            let mut queue = VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for &v in &self.neighbors[u] {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            let far = *dist.iter().max().expect("n >= 2");
            if far == usize::MAX {
                return None;
            }
            best = best.max(far);
        }
        Some(best)
    }
}

impl fmt::Display for InteractionGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} nodes, {} edges)",
            self.name,
            self.n,
            self.edge_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_has_all_pairs() {
        let g = InteractionGraph::complete(6).unwrap();
        assert_eq!(g.edge_count(), 15);
        assert!(g.is_complete());
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(1));
        for u in 0..6 {
            for v in 0..6 {
                assert_eq!(g.allows(u, v), u != v);
            }
        }
    }

    #[test]
    fn cycle_properties() {
        let g = InteractionGraph::cycle(8).unwrap();
        assert_eq!(g.edge_count(), 8);
        assert!(g.is_connected());
        assert!(!g.is_complete());
        assert_eq!(g.diameter(), Some(4));
        assert!((0..8).all(|u| g.degree(u) == 2));
    }

    #[test]
    fn path_and_star_shapes() {
        let p = InteractionGraph::path(5).unwrap();
        assert_eq!(p.edge_count(), 4);
        assert_eq!(p.diameter(), Some(4));
        let s = InteractionGraph::star(5).unwrap();
        assert_eq!(s.edge_count(), 4);
        assert_eq!(s.degree(0), 4);
        assert_eq!(s.diameter(), Some(2));
    }

    #[test]
    fn grid_shape() {
        let g = InteractionGraph::grid(3, 4).unwrap();
        assert_eq!(g.n(), 12);
        // 3 rows × 3 horizontal + 2×4 vertical = 9 + 8.
        assert_eq!(g.edge_count(), 17);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(5));
    }

    #[test]
    fn random_regular_is_regular_and_connected() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = InteractionGraph::random_regular(20, 3, &mut rng).unwrap();
        assert!(g.is_connected());
        assert!((0..20).all(|u| g.degree(u) == 3));
        assert_eq!(g.edge_count(), 30);
    }

    #[test]
    fn random_regular_rejects_bad_degrees() {
        let mut rng = StdRng::seed_from_u64(5);
        // n·d odd.
        assert!(matches!(
            InteractionGraph::random_regular(5, 3, &mut rng),
            Err(TopologyError::BadDegree { .. })
        ));
        assert!(matches!(
            InteractionGraph::random_regular(5, 0, &mut rng),
            Err(TopologyError::BadDegree { .. })
        ));
        assert!(matches!(
            InteractionGraph::random_regular(5, 5, &mut rng),
            Err(TopologyError::BadDegree { .. })
        ));
    }

    #[test]
    fn erdos_renyi_is_connected_and_validated() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = InteractionGraph::erdos_renyi(30, 0.3, &mut rng).unwrap();
        assert!(g.is_connected());
        assert!(matches!(
            InteractionGraph::erdos_renyi(30, 0.0, &mut rng),
            Err(TopologyError::BadProbability { .. })
        ));
        assert!(matches!(
            InteractionGraph::erdos_renyi(30, 1.5, &mut rng),
            Err(TopologyError::BadProbability { .. })
        ));
    }

    #[test]
    fn from_edges_rejects_malformed_input() {
        assert!(matches!(
            InteractionGraph::from_edges(1, [], "x"),
            Err(TopologyError::TooFewAgents { n: 1 })
        ));
        assert!(matches!(
            InteractionGraph::from_edges(3, [(0, 0)], "x"),
            Err(TopologyError::SelfLoop { node: 0 })
        ));
        assert!(matches!(
            InteractionGraph::from_edges(3, [(0, 1), (1, 0)], "x"),
            Err(TopologyError::DuplicateEdge { u: 0, v: 1 })
        ));
        assert!(matches!(
            InteractionGraph::from_edges(3, [(0, 7)], "x"),
            Err(TopologyError::EndpointOutOfRange { endpoint: 7, n: 3 })
        ));
        assert!(matches!(
            InteractionGraph::from_edges(3, [], "x"),
            Err(TopologyError::NoEdges)
        ));
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = InteractionGraph::from_edges(4, [(0, 1), (2, 3)], "two islands").unwrap();
        assert!(!g.is_connected());
        assert_eq!(g.diameter(), None);
    }

    #[test]
    fn display_mentions_name_and_size() {
        let g = InteractionGraph::cycle(4).unwrap();
        let s = g.to_string();
        assert!(s.contains("cycle(4)"));
        assert!(s.contains("4 edges"));
    }
}
