//! Schedulers restricted to a graph's edges.
//!
//! Both schedulers are *weakly fair with respect to the graph*: every
//! ordered pair that shares an edge recurs infinitely often (almost surely
//! for the random scheduler, deterministically for the round-robin one).
//! Pairs without an edge never interact — which is exactly the deviation
//! from Definition 1.2 that experiment E15 probes.

use pp_protocol::{Population, Scheduler};
use rand::seq::SliceRandom;
use rand::{RngCore, RngExt};

use crate::graph::InteractionGraph;

/// Uniform-random scheduler over the directed edges of a graph.
///
/// Each step draws one undirected edge uniformly and orients it uniformly.
/// On the complete graph this coincides with
/// [`UniformPairScheduler`](pp_protocol::UniformPairScheduler).
///
/// # Example
///
/// ```
/// use pp_protocol::{Population, Scheduler};
/// use pp_topology::{EdgeScheduler, InteractionGraph};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let ring = InteractionGraph::cycle(5)?;
/// let mut scheduler = EdgeScheduler::new(ring);
/// let population: Population<u8> = (0u8..5).collect();
/// let mut rng = StdRng::seed_from_u64(3);
/// let (i, j) = scheduler.next_pair(&population, &mut rng);
/// assert!(scheduler.graph().allows(i, j));
/// # Ok::<(), pp_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EdgeScheduler {
    graph: InteractionGraph,
    name: String,
}

impl EdgeScheduler {
    /// Creates a uniform edge scheduler over `graph`.
    pub fn new(graph: InteractionGraph) -> Self {
        let name = format!("edge-uniform[{}]", graph.name());
        EdgeScheduler { graph, name }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &InteractionGraph {
        &self.graph
    }
}

impl<S> Scheduler<S> for EdgeScheduler {
    fn next_pair(&mut self, population: &Population<S>, rng: &mut dyn RngCore) -> (usize, usize) {
        assert_eq!(
            population.len(),
            self.graph.n(),
            "population size {} does not match graph size {}",
            population.len(),
            self.graph.n()
        );
        let (u, v) = self.graph.edges()[rng.random_range(0..self.graph.edge_count())];
        if rng.random::<bool>() {
            (u, v)
        } else {
            (v, u)
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Deterministic round-robin over the directed edges of a graph, with the
/// order reshuffled once per round.
///
/// Every directed edge runs exactly once per round of `2·|E|` steps, so the
/// schedule is weakly fair on the graph by construction — the graph analog
/// of the shuffled-rounds scheduler of `pp-schedulers`.
#[derive(Debug, Clone)]
pub struct RoundRobinEdgeScheduler {
    graph: InteractionGraph,
    name: String,
    order: Vec<(usize, usize)>,
    cursor: usize,
}

impl RoundRobinEdgeScheduler {
    /// Creates a round-robin edge scheduler over `graph`.
    pub fn new(graph: InteractionGraph) -> Self {
        let name = format!("edge-round-robin[{}]", graph.name());
        let order = graph
            .edges()
            .iter()
            .flat_map(|&(u, v)| [(u, v), (v, u)])
            .collect();
        RoundRobinEdgeScheduler {
            graph,
            name,
            order,
            cursor: 0,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &InteractionGraph {
        &self.graph
    }
}

impl<S> Scheduler<S> for RoundRobinEdgeScheduler {
    fn next_pair(&mut self, population: &Population<S>, rng: &mut dyn RngCore) -> (usize, usize) {
        assert_eq!(
            population.len(),
            self.graph.n(),
            "population size {} does not match graph size {}",
            population.len(),
            self.graph.n()
        );
        if self.cursor == 0 {
            self.order.shuffle(rng);
        }
        let pair = self.order[self.cursor];
        self.cursor = (self.cursor + 1) % self.order.len();
        pair
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocol::Population;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn population(n: usize) -> Population<u8> {
        (0..n).map(|i| i as u8).collect()
    }

    #[test]
    fn edge_scheduler_only_emits_graph_edges() {
        let g = InteractionGraph::cycle(7).unwrap();
        let mut s = EdgeScheduler::new(g);
        let p = population(7);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5_000 {
            let (i, j) = s.next_pair(&p, &mut rng);
            assert!(s.graph().allows(i, j), "({i}, {j}) is not an edge");
        }
    }

    #[test]
    fn edge_scheduler_covers_all_directed_edges() {
        let g = InteractionGraph::star(5).unwrap();
        let mut s = EdgeScheduler::new(g);
        let p = population(5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = HashSet::new();
        for _ in 0..2_000 {
            seen.insert(s.next_pair(&p, &mut rng));
        }
        assert_eq!(seen.len(), 8, "4 undirected star edges = 8 directed pairs");
    }

    #[test]
    fn round_robin_visits_every_directed_edge_each_round() {
        let g = InteractionGraph::grid(2, 3).unwrap();
        let directed = 2 * g.edge_count();
        let mut s = RoundRobinEdgeScheduler::new(g);
        let p = population(6);
        let mut rng = StdRng::seed_from_u64(3);
        for round in 0..3 {
            let mut seen = HashSet::new();
            for _ in 0..directed {
                seen.insert(s.next_pair(&p, &mut rng));
            }
            assert_eq!(seen.len(), directed, "round {round} missed a directed edge");
        }
    }

    #[test]
    #[should_panic(expected = "does not match graph size")]
    fn size_mismatch_panics() {
        let g = InteractionGraph::cycle(5).unwrap();
        let mut s = EdgeScheduler::new(g);
        let p = population(4);
        let mut rng = StdRng::seed_from_u64(4);
        let _ = s.next_pair(&p, &mut rng);
    }

    #[test]
    fn complete_graph_scheduler_matches_uniform_support() {
        let g = InteractionGraph::complete(4).unwrap();
        let mut s = EdgeScheduler::new(g);
        let p = population(4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = HashSet::new();
        for _ in 0..2_000 {
            seen.insert(s.next_pair(&p, &mut rng));
        }
        assert_eq!(seen.len(), 12, "all ordered pairs of K4");
    }

    #[test]
    fn scheduler_names_mention_graph() {
        let g = InteractionGraph::cycle(4).unwrap();
        let s = EdgeScheduler::new(g.clone());
        assert!(Scheduler::<u8>::name(&s).contains("cycle(4)"));
        let r = RoundRobinEdgeScheduler::new(g);
        assert!(Scheduler::<u8>::name(&r).contains("round-robin"));
    }
}
