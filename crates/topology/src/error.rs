//! Error type for topology construction.

use std::error::Error;
use std::fmt;

/// Errors produced when building interaction graphs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// Fewer than two agents (or fewer than the generator's minimum).
    TooFewAgents {
        /// Number of agents supplied.
        n: usize,
    },
    /// An edge endpoint is outside `0..n`.
    EndpointOutOfRange {
        /// The offending endpoint.
        endpoint: usize,
        /// Number of agents.
        n: usize,
    },
    /// An edge connects a node to itself.
    SelfLoop {
        /// The node.
        node: usize,
    },
    /// The same undirected edge was supplied twice.
    DuplicateEdge {
        /// Smaller endpoint.
        u: usize,
        /// Larger endpoint.
        v: usize,
    },
    /// The edge list is empty: no interaction is possible.
    NoEdges,
    /// Degree `d` is impossible for `n` nodes.
    BadDegree {
        /// Number of agents.
        n: usize,
        /// Requested degree.
        d: usize,
    },
    /// Edge probability outside `(0, 1]`.
    BadProbability {
        /// The offending probability.
        p: f64,
    },
    /// A randomized generator exhausted its retry budget.
    GenerationFailed {
        /// What was being generated.
        what: &'static str,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::TooFewAgents { n } => {
                write!(f, "too few agents ({n}) for this topology")
            }
            TopologyError::EndpointOutOfRange { endpoint, n } => {
                write!(f, "edge endpoint {endpoint} out of range for {n} agents")
            }
            TopologyError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            TopologyError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
            TopologyError::NoEdges => write!(f, "graph has no edges"),
            TopologyError::BadDegree { n, d } => {
                write!(f, "degree {d} is impossible for {n} nodes")
            }
            TopologyError::BadProbability { p } => {
                write!(f, "edge probability {p} outside (0, 1]")
            }
            TopologyError::GenerationFailed { what } => {
                write!(f, "failed to generate a {what} within the retry budget")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            TopologyError::TooFewAgents { n: 1 },
            TopologyError::EndpointOutOfRange { endpoint: 9, n: 3 },
            TopologyError::SelfLoop { node: 0 },
            TopologyError::DuplicateEdge { u: 0, v: 1 },
            TopologyError::NoEdges,
            TopologyError::BadDegree { n: 5, d: 3 },
            TopologyError::BadProbability { p: 0.0 },
            TopologyError::GenerationFailed { what: "graph" },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TopologyError>();
    }
}
