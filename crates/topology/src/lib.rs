//! Interaction topologies for population protocols.
//!
//! The Circles paper's model lets every pair of agents interact
//! (Definition 1.2 quantifies fairness over *all* pairs — implicitly the
//! complete interaction graph). This crate restricts interactions to the
//! edges of a graph, the standard "population protocols on graphs" model
//! variation, to probe how load-bearing the completeness assumption is:
//!
//! - [`InteractionGraph`]: generators for complete, cycle, path, star,
//!   grid, random-regular and Erdős–Rényi graphs, plus structural queries
//!   (connectivity, degree, diameter).
//! - [`EdgeScheduler`] / [`RoundRobinEdgeScheduler`]: weakly fair
//!   schedulers *relative to the graph* — every adjacent pair recurs, no
//!   non-adjacent pair ever runs.
//! - [`audit_schedule`]: finite-horizon fairness audit of a recorded
//!   schedule against a graph.
//! - [`is_graph_silent`]: the quiescence notion that matches a restricted
//!   topology — no *edge* carries a productive interaction.
//!
//! Restricting the topology breaks Circles' guarantees in three distinct
//! ways, from mildest to worst:
//!
//! 1. **Dissemination fails.** Rule 2 transmits outputs only on direct
//!    contact with a self-loop agent, so even a run that stabilizes on
//!    exactly Lemma 3.6's multiset leaves stale outputs on agents not
//!    adjacent to a `⟨μ|μ⟩`. On the 3-path `0–1–2` with inputs `[0, 0, 1]`
//!    the run can freeze as `⟨0|0⟩, ⟨0|1⟩, ⟨1|0⟩` — the *predicted*
//!    multiset — with the far agent outputting the minority color forever.
//! 2. **The terminal multiset is wrong.** Lemma 3.6's uniqueness argument
//!    summons an exchange between two specific agents, which an incomplete
//!    graph may never let meet, so non-predicted exchange-stable multisets
//!    are reachable (E15 measures how often).
//! 3. **Silence fails entirely.** Two non-adjacent self-loops of different
//!    colors can both survive; agents adjacent to both flip their outputs
//!    forever (a star with rival self-loop leaves oscillates through its
//!    hub).
//!
//! What *does* survive any topology: Theorem 3.4 (the potential argument
//! never cites fairness, so kets are exchanged finitely often) and
//! Lemma 3.3's conservation law. Experiment E15 quantifies the failure
//! rates and slowdowns per topology.
//!
//! # Example
//!
//! Theorem 3.4 is topology-proof: kets are exchanged finitely often even on
//! a ring, so the bra-ket multiset always freezes — here we run a bounded
//! number of steps and observe the conserved bra/ket tallies (Lemma 3.3
//! also never cites the topology). Output *correctness* is exactly what a
//! ring does **not** guarantee; see experiment E15.
//!
//! ```
//! use circles_core::{invariants, prediction, CirclesProtocol, Color};
//! use pp_protocol::{Population, Protocol, Simulation};
//! use pp_topology::{EdgeScheduler, InteractionGraph};
//!
//! let protocol = CirclesProtocol::new(2)?;
//! let inputs: Vec<Color> = [0, 0, 0, 1, 1].iter().map(|&c| Color(c)).collect();
//! let population = Population::from_inputs(&protocol, &inputs);
//! let ring = InteractionGraph::cycle(5)?;
//! let mut sim = Simulation::new(&protocol, population, EdgeScheduler::new(ring), 7);
//! sim.run_observed(10_000, |_| ())?;
//! let brakets = prediction::braket_config_of_population(sim.population());
//! assert!(invariants::conservation_holds(&brakets, 2));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fairness;
mod graph;
mod scheduler;

pub use error::TopologyError;
pub use fairness::{audit_schedule, is_graph_silent, FairnessReport};
pub use graph::InteractionGraph;
pub use scheduler::{EdgeScheduler, RoundRobinEdgeScheduler};
