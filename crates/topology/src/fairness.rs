//! Auditing schedules for weak fairness *relative to a graph*.
//!
//! Weak fairness (Definition 1.2) on a restricted topology means: every
//! ordered pair that shares an edge recurs infinitely often. A finite
//! schedule cannot prove that, but it can be audited for the finite-horizon
//! proxies that matter in experiments: full directed-edge coverage and
//! bounded recurrence gaps.

use std::collections::HashMap;

use pp_protocol::{Population, Protocol};

use crate::graph::InteractionGraph;

/// Whether no *edge* of the graph carries a productive interaction — the
/// correct quiescence notion for topology-restricted runs.
///
/// The model's plain silence (no productive pair anywhere) is strictly
/// stronger: a frozen run on a sparse graph can be graph-silent while
/// distant, non-adjacent agents would still react if they could ever meet.
/// Using the plain notion on a restricted topology misclassifies every
/// such frozen run as "still running".
///
/// # Panics
///
/// Panics when the population size does not match the graph.
pub fn is_graph_silent<P>(
    graph: &InteractionGraph,
    population: &Population<P::State>,
    protocol: &P,
) -> bool
where
    P: Protocol,
{
    assert_eq!(
        population.len(),
        graph.n(),
        "population size does not match graph size"
    );
    graph.edges().iter().all(|&(u, v)| {
        protocol.is_null_interaction(&population[u], &population[v])
            && protocol.is_null_interaction(&population[v], &population[u])
    })
}

/// The result of auditing a finite schedule against a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FairnessReport {
    /// Steps audited.
    pub steps: usize,
    /// Number of directed edges of the graph.
    pub directed_edges: usize,
    /// Directed edges that occurred at least once.
    pub covered: usize,
    /// Largest recurrence gap observed over covered directed edges
    /// (including the leading gap before the first occurrence and the
    /// trailing gap after the last).
    pub max_gap: usize,
    /// Scheduled pairs that are *not* edges of the graph.
    pub off_graph_pairs: usize,
}

impl FairnessReport {
    /// Whether every directed edge occurred and nothing ran off-graph.
    pub fn is_covering(&self) -> bool {
        self.covered == self.directed_edges && self.off_graph_pairs == 0
    }
}

/// Audits `schedule` against `graph`.
///
/// # Panics
///
/// Panics when a scheduled index is out of range for the graph — that is a
/// bug in the scheduler under audit, not a property to report.
pub fn audit_schedule(graph: &InteractionGraph, schedule: &[(usize, usize)]) -> FairnessReport {
    let mut last_seen: HashMap<(usize, usize), usize> = HashMap::new();
    let mut max_gap = 0usize;
    let mut off_graph = 0usize;
    for (step, &(i, j)) in schedule.iter().enumerate() {
        assert!(
            i < graph.n() && j < graph.n(),
            "agent index out of range at step {step}"
        );
        if !graph.allows(i, j) {
            off_graph += 1;
            continue;
        }
        let gap = step - last_seen.get(&(i, j)).copied().unwrap_or(0);
        max_gap = max_gap.max(gap);
        last_seen.insert((i, j), step);
    }
    // Trailing gaps.
    for &seen in last_seen.values() {
        max_gap = max_gap.max(schedule.len() - seen);
    }
    FairnessReport {
        steps: schedule.len(),
        directed_edges: 2 * graph.edge_count(),
        covered: last_seen.len(),
        max_gap,
        off_graph_pairs: off_graph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{EdgeScheduler, RoundRobinEdgeScheduler};
    use pp_protocol::{Population, Scheduler};
    use rand::{rngs::StdRng, SeedableRng};

    fn record<S: Scheduler<u8>>(
        s: &mut S,
        n: usize,
        steps: usize,
        seed: u64,
    ) -> Vec<(usize, usize)> {
        let p: Population<u8> = (0..n).map(|i| i as u8).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..steps).map(|_| s.next_pair(&p, &mut rng)).collect()
    }

    #[test]
    fn round_robin_schedule_is_covering_with_tight_gaps() {
        let g = InteractionGraph::cycle(6).unwrap();
        let directed = 2 * g.edge_count();
        let mut s = RoundRobinEdgeScheduler::new(g.clone());
        let schedule = record(&mut s, 6, directed * 10, 1);
        let report = audit_schedule(&g, &schedule);
        assert!(report.is_covering());
        assert_eq!(report.off_graph_pairs, 0);
        // A directed edge recurs within two rounds at worst.
        assert!(
            report.max_gap <= 2 * directed,
            "gap {} too large",
            report.max_gap
        );
    }

    #[test]
    fn uniform_edge_schedule_covers_eventually() {
        let g = InteractionGraph::star(5).unwrap();
        let mut s = EdgeScheduler::new(g.clone());
        let schedule = record(&mut s, 5, 4_000, 2);
        let report = audit_schedule(&g, &schedule);
        assert!(report.is_covering());
    }

    #[test]
    fn off_graph_pairs_are_counted() {
        let g = InteractionGraph::path(4).unwrap();
        // (0, 3) is not an edge of the path.
        let schedule = vec![(0, 1), (0, 3), (1, 0)];
        let report = audit_schedule(&g, &schedule);
        assert_eq!(report.off_graph_pairs, 1);
        assert!(!report.is_covering());
    }

    #[test]
    fn short_schedule_reports_partial_coverage() {
        let g = InteractionGraph::complete(4).unwrap();
        let schedule = vec![(0, 1), (1, 2)];
        let report = audit_schedule(&g, &schedule);
        assert_eq!(report.covered, 2);
        assert_eq!(report.directed_edges, 12);
        assert!(!report.is_covering());
    }

    /// Max epidemic: both agents adopt the larger value.
    struct MaxProtocol;
    impl pp_protocol::Protocol for MaxProtocol {
        type State = u8;
        type Input = u8;
        type Output = u8;
        fn name(&self) -> &str {
            "max"
        }
        fn input(&self, i: &u8) -> u8 {
            *i
        }
        fn output(&self, s: &u8) -> u8 {
            *s
        }
        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            let m = (*a).max(*b);
            (m, m)
        }
    }

    #[test]
    fn graph_silence_is_weaker_than_plain_silence() {
        use super::is_graph_silent;
        // Two islands 0–1 and 2–3: [5, 5, 9, 9] is graph-silent although
        // (1, 2) would react if they could meet.
        let g = InteractionGraph::from_edges(4, [(0, 1), (2, 3)], "islands").unwrap();
        let population: Population<u8> = [5u8, 5, 9, 9].into_iter().collect();
        assert!(is_graph_silent(&g, &population, &MaxProtocol));
        assert!(
            !population.is_silent(&MaxProtocol),
            "plain silence must disagree"
        );
        // Make one edge productive: no longer graph-silent.
        let population2: Population<u8> = [5u8, 7, 9, 9].into_iter().collect();
        assert!(!is_graph_silent(&g, &population2, &MaxProtocol));
    }

    #[test]
    #[should_panic(expected = "does not match graph size")]
    fn graph_silence_checks_sizes() {
        use super::is_graph_silent;
        let g = InteractionGraph::cycle(4).unwrap();
        let population: Population<u8> = [1u8, 2].into_iter().collect();
        let _ = is_graph_silent(&g, &population, &MaxProtocol);
    }
}
